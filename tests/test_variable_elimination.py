"""Tests for the textbook variable-elimination baseline."""

import pytest

from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, QueryError, Variable
from repro.core.variable_elimination import variable_elimination
from repro.semiring.aggregates import ProductAggregate, SemiringAggregate
from repro.semiring.standard import COUNTING

from _helpers import make_factor, small_random_query


class TestCorrectness:
    def test_matches_brute_force_on_triangle(self, triangle_query):
        expected = triangle_query.evaluate_scalar_brute_force()
        assert variable_elimination(triangle_query).scalar == expected

    def test_matches_insideout_on_random_single_semiring_queries(self):
        matched = 0
        for seed in range(60):
            query = small_random_query(seed, allow_products=True)
            tags = {query.aggregates[v].tag for v in query.semiring_variables}
            if len(tags) > 1:
                continue
            matched += 1
            expected = inside_out(query).factor
            got = variable_elimination(query).factor
            assert expected.equals(got, query.semiring), f"seed {seed}"
        assert matched >= 10  # the filter must not have skipped everything

    def test_free_variable_output(self):
        psi = make_factor(("A", "B"), {(0, 0): 1, (0, 1): 2, (1, 1): 3})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
            free=["A"],
            aggregates={"B": SemiringAggregate.sum()},
            factors=[psi],
            semiring=COUNTING,
        )
        assert variable_elimination(query).factor.table == {(0,): 3, (1,): 3}

    def test_isolated_free_variable_expansion(self):
        psi = make_factor(("A",), {(0,): 2})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
            free=["A", "B"],
            aggregates={},
            factors=[psi],
            semiring=COUNTING,
        )
        result = variable_elimination(query)
        assert result.factor.value({"A": 0, "B": 1}, COUNTING) == 2

    def test_product_aggregates_supported(self):
        psi = make_factor(("A", "B"), {(0, 0): 2, (0, 1): 3, (1, 0): 5})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
            free=["A"],
            aggregates={"B": ProductAggregate.product()},
            factors=[psi],
            semiring=COUNTING,
        )
        assert variable_elimination(query).factor.table == {(0,): 6}


class TestRestrictions:
    def test_multiple_semiring_aggregates_rejected(self):
        psi = make_factor(("A", "B"), {(0, 0): 1})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
            free=[],
            aggregates={"A": SemiringAggregate.sum(), "B": SemiringAggregate.max()},
            factors=[psi],
            semiring=COUNTING,
        )
        with pytest.raises(QueryError):
            variable_elimination(query)

    def test_invalid_ordering_rejected(self, triangle_query):
        with pytest.raises(QueryError):
            variable_elimination(triangle_query, ordering=["A", "B"])

    def test_scalar_accessor_requires_no_free_variables(self):
        psi = make_factor(("A",), {(0,): 1})
        query = FAQQuery(
            variables=[Variable("A", (0, 1))],
            free=["A"],
            aggregates={},
            factors=[psi],
            semiring=COUNTING,
        )
        with pytest.raises(QueryError):
            _ = variable_elimination(query).scalar


class TestStats:
    def test_intermediate_sizes_recorded(self, triangle_query):
        result = variable_elimination(triangle_query)
        assert result.stats.max_intermediate_size >= 1
        assert len(result.stats.intermediate_sizes) >= 1

    def test_insideout_intermediates_never_larger_with_projections(self):
        # On the highly selective triangle instance the InsideOut intermediate
        # (bounded by the AGM/fractional cover of the bags) must not exceed
        # the pairwise-product intermediate of plain variable elimination.
        r = make_factor(("A", "B"), {(i, j): 1 for i in range(8) for j in range(8)})
        s = make_factor(("B", "C"), {(i, i): 1 for i in range(8)})
        t = make_factor(("A", "C"), {(i, i): 1 for i in range(8)})
        query = FAQQuery(
            variables=[Variable(v, tuple(range(8))) for v in "ABC"],
            free=[],
            aggregates={v: SemiringAggregate.sum() for v in "ABC"},
            factors=[r, s, t],
            semiring=COUNTING,
        )
        io = inside_out(query, ordering=["A", "B", "C"])
        ve = variable_elimination(query, ordering=["A", "B", "C"])
        assert io.scalar == ve.scalar
        assert io.stats.max_intermediate_size <= ve.stats.max_intermediate_size

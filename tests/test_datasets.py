"""Tests for the synthetic workload generators."""

from repro.datasets.cnf import beta_acyclic_cnf, chain_cnf, random_k_cnf
from repro.datasets.graphs import clique_pattern, cycle_pattern, graph_edge_relation, random_graph
from repro.datasets.pgm_models import chain_model, grid_model, random_sparse_model, star_model
from repro.datasets.queries import (
    example_5_6_query,
    example_6_13_query,
    example_6_19_query,
    example_6_2_query,
    random_faq_query,
)
from repro.datasets.relations import (
    cycle_query_relations,
    path_query_relations,
    random_relation,
    star_query_relations,
)
from repro.hypergraph.treedecomp import treewidth


class TestRelationGenerators:
    def test_random_relation_size_and_schema(self):
        rel = random_relation("R", ("a", "b"), domain_size=5, num_tuples=12, seed=1)
        assert len(rel) == 12
        assert rel.schema == ("a", "b")
        assert all(0 <= v < 5 for row in rel.tuples for v in row)

    def test_random_relation_caps_at_domain_capacity(self):
        rel = random_relation("R", ("a",), domain_size=3, num_tuples=100, seed=2)
        assert len(rel) == 3

    def test_deterministic_given_seed(self):
        a = random_relation("R", ("a", "b"), 6, 10, seed=7)
        b = random_relation("R", ("a", "b"), 6, 10, seed=7)
        assert a.tuples == b.tuples

    def test_query_shapes(self):
        assert [r.schema for r in path_query_relations(3, 4, 5)] == [
            ("A1", "A2"), ("A2", "A3"), ("A3", "A4")
        ]
        star = star_query_relations(3, 4, 5)
        assert all(r.schema[0] == "Hub" for r in star)
        cycle = cycle_query_relations(4, 4, 5)
        assert cycle[-1].schema == ("A4", "A1")


class TestGraphGenerators:
    def test_random_graph_edge_count(self):
        graph = random_graph(20, 40, seed=3)
        assert graph.number_of_nodes() == 20
        assert graph.number_of_edges() == 40

    def test_random_graph_caps_edges(self):
        graph = random_graph(4, 100, seed=4)
        assert graph.number_of_edges() == 6

    def test_edge_relation_symmetric(self):
        graph = random_graph(6, 8, seed=5)
        rel = graph_edge_relation(graph)
        assert len(rel) == 2 * graph.number_of_edges()

    def test_patterns(self):
        assert clique_pattern(3).number_of_edges() == 3
        assert cycle_pattern(4).number_of_edges() == 4


class TestPGMGenerators:
    def test_chain_model_treewidth_one(self):
        model = chain_model(6, domain_size=2, seed=1)
        assert treewidth(model.hypergraph()) == 1

    def test_star_model_structure(self):
        model = star_model(5, seed=2)
        assert len(model.factors) == 5
        assert "Hub" in model.variables

    def test_grid_model_factor_count(self):
        model = grid_model(3, 3, seed=3)
        assert len(model.factors) == 12  # 6 horizontal + 6 vertical

    def test_random_sparse_model_is_well_formed(self):
        model = random_sparse_model(8, 10, max_arity=3, domain_size=3, seed=4)
        assert len(model.factors) == 10
        for factor in model.factors:
            assert len(factor) >= 1
            assert all(v >= 0 for v in factor.table.values())


class TestCNFGenerators:
    def test_random_k_cnf_clause_width(self):
        formula = random_k_cnf(10, 20, 3, seed=5)
        assert len(formula) <= 20
        assert all(len(clause) <= 3 for clause in formula.clauses)

    def test_chain_cnf_is_beta_acyclic(self):
        assert chain_cnf(8, seed=1).is_beta_acyclic()

    def test_beta_acyclic_generator_really_is_beta_acyclic(self):
        for seed in range(5):
            assert beta_acyclic_cnf(4, 3, seed=seed).is_beta_acyclic()


class TestQueryGenerators:
    def test_paper_examples_have_expected_signatures(self):
        q56 = example_5_6_query()
        assert q56.product_variables == ("x3",)
        q62 = example_6_2_query()
        assert len(q62.factors) == 6
        q613 = example_6_13_query()
        assert q613.num_variables == 3
        q619 = example_6_19_query()
        assert set(q619.product_variables) == {"x5", "x7"}

    def test_random_faq_query_is_reproducible(self):
        a = random_faq_query(seed=11)
        b = random_faq_query(seed=11)
        assert a.order == b.order
        assert [f.table for f in a.factors] == [f.table for f in b.factors]

    def test_random_faq_query_respects_flags(self):
        query = random_faq_query(seed=13, allow_products=False, allow_free=False)
        assert not query.product_variables
        assert not query.free

    def test_example_queries_evaluate_consistently(self):
        from repro.core.insideout import inside_out

        for maker in (example_5_6_query, example_6_2_query, example_6_13_query, example_6_19_query):
            query = maker()
            expected = query.evaluate_scalar_brute_force()
            got = inside_out(query).scalar_or_zero(query.semiring)
            assert abs(complex(got) - complex(expected)) < 1e-9

"""Unit tests for edge covers and the AGM bound (:mod:`repro.hypergraph.covers`)."""


import pytest

from repro.hypergraph.covers import (
    agm_bound,
    fractional_edge_cover,
    fractional_edge_cover_number,
    integral_edge_cover_number,
)
from repro.hypergraph.hypergraph import Hypergraph, HypergraphError


TRIANGLE = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("A", "C")])
PATH = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("C", "D")])
BIG_EDGE = Hypergraph.from_scopes([("A", "B", "C", "D")])


class TestFractionalCover:
    def test_triangle_fractional_cover_is_three_halves(self):
        assert fractional_edge_cover_number(TRIANGLE) == pytest.approx(1.5)

    def test_triangle_solution_uses_half_each(self):
        objective, solution = fractional_edge_cover(TRIANGLE)
        assert objective == pytest.approx(1.5)
        assert all(weight == pytest.approx(0.5) for weight in solution.values())

    def test_path_cover(self):
        # Two disjoint edges {A,B} and {C,D} cover the path.
        assert fractional_edge_cover_number(PATH) == pytest.approx(2.0)

    def test_single_big_edge(self):
        assert fractional_edge_cover_number(BIG_EDGE) == pytest.approx(1.0)

    def test_subset_cover(self):
        assert fractional_edge_cover_number(TRIANGLE, {"A", "B"}) == pytest.approx(1.0)
        assert fractional_edge_cover_number(PATH, {"B", "C"}) == pytest.approx(1.0)

    def test_empty_subset_costs_nothing(self):
        assert fractional_edge_cover_number(TRIANGLE, set()) == 0.0

    def test_uncovered_vertex_raises(self):
        h = Hypergraph(vertices=["A", "Z"], edges=[("A",)])
        with pytest.raises(HypergraphError):
            fractional_edge_cover_number(h, {"A", "Z"})

    def test_uncovered_vertex_can_be_ignored(self):
        h = Hypergraph(vertices=["A", "Z"], edges=[("A",)])
        value = fractional_edge_cover_number(h, {"A", "Z"}, ignore_uncovered=True)
        assert value == pytest.approx(1.0)

    def test_weighted_cover_prefers_cheap_edges(self):
        h = Hypergraph.from_scopes([("A", "B"), ("A",), ("B",)])
        weights = {
            frozenset({"A", "B"}): 10.0,
            frozenset({"A"}): 1.0,
            frozenset({"B"}): 1.0,
        }
        objective, solution = fractional_edge_cover(h, weights=weights)
        assert objective == pytest.approx(2.0)
        assert solution[frozenset({"A", "B"})] == pytest.approx(0.0)

    def test_five_cycle_cover(self):
        cycle = Hypergraph.from_scopes(
            [("A", "B"), ("B", "C"), ("C", "D"), ("D", "E"), ("E", "A")]
        )
        assert fractional_edge_cover_number(cycle) == pytest.approx(2.5)


class TestIntegralCover:
    def test_triangle_needs_two_edges(self):
        assert integral_edge_cover_number(TRIANGLE) == 2

    def test_path_needs_two_edges(self):
        assert integral_edge_cover_number(PATH) == 2

    def test_single_edge(self):
        assert integral_edge_cover_number(BIG_EDGE) == 1

    def test_subset(self):
        assert integral_edge_cover_number(TRIANGLE, {"A"}) == 1

    def test_empty_subset(self):
        assert integral_edge_cover_number(TRIANGLE, set()) == 0

    def test_uncoverable_raises(self):
        h = Hypergraph(vertices=["A", "Z"], edges=[("A",)])
        with pytest.raises(HypergraphError):
            integral_edge_cover_number(h, {"Z"})

    def test_greedy_fallback_still_covers(self):
        star = Hypergraph.from_scopes([("Hub", f"L{i}") for i in range(25)])
        # Exact search limit exceeded → greedy; every leaf needs its own edge.
        assert integral_edge_cover_number(star, exact_limit=5) == 25


class TestAgmBound:
    def test_triangle_agm_is_n_to_three_halves(self):
        sizes = {edge: 100 for edge in TRIANGLE.edges}
        assert agm_bound(TRIANGLE, sizes) == pytest.approx(100 ** 1.5, rel=1e-6)

    def test_agm_uses_individual_sizes(self):
        sizes = {
            frozenset({"A", "B"}): 100,
            frozenset({"B", "C"}): 1,
            frozenset({"A", "C"}): 100,
        }
        # The tiny relation makes the bound collapse towards 100.
        assert agm_bound(TRIANGLE, sizes) <= 100 * 1.0001

    def test_agm_with_zero_size_edge_is_zero(self):
        sizes = {edge: 100 for edge in TRIANGLE.edges}
        sizes[frozenset({"A", "B"})] = 0
        assert agm_bound(TRIANGLE, sizes) == 0.0

    def test_agm_of_empty_subset_is_one(self):
        sizes = {edge: 100 for edge in TRIANGLE.edges}
        assert agm_bound(TRIANGLE, sizes, subset=set()) == 1.0

    def test_agm_never_exceeds_n_to_rho_star(self):
        sizes = {edge: 50 for edge in PATH.edges}
        bound = agm_bound(PATH, sizes)
        rho_star = fractional_edge_cover_number(PATH)
        assert bound <= (50 ** rho_star) * 1.0001

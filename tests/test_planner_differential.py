"""Randomized differential testing of the planner against brute force.

Every plan the planner can emit — each applicable strategy (InsideOut,
textbook variable elimination, Yannakakis, generic join), each factor
backend (sparse / dense / auto) and a spread of EVO-valid candidate
orderings — is executed on small random FAQ queries over five semirings
(sum-product counting, max-product, min-plus, Boolean, set) with random
free-variable sets, and the output is compared against the exhaustive
reference semantics of :meth:`FAQQuery.evaluate_brute_force` (the
``pgm/brute.py``-style ground truth).

Runs are fully seeded; on failure the assertion message prints the
semiring/seed pair (and the exact strategy/backend/ordering) needed to
reproduce:

    query = _random_query("<semiring>", <seed>)

The quick profile (8 seeds per semiring, 40 queries) runs in tier-1; the
remaining 42 seeds per semiring (210 queries) carry the ``slow`` marker, so
a full run of this module covers 50 seeds per semiring — 250 queries, the
200+ of the acceptance criterion.
"""

import itertools
import random

import pytest

from repro.core.query import FAQQuery, Variable
from repro.factors.factor import Factor
from repro.planner import (
    PlanCache,
    STRATEGY_GENERIC_JOIN,
    STRATEGY_INSIDEOUT,
    STRATEGY_YANNAKAKIS,
    applicable_strategies,
    candidate_orderings,
    plan,
)
from repro.semiring.aggregates import ProductAggregate, SemiringAggregate, semiring_aggregate
from repro.semiring.standard import BOOLEAN, COUNTING, MAX_PRODUCT, MIN_PLUS, set_semiring

SET_UNIVERSE = (0, 1, 2, 3)
SET_SEMIRING = set_semiring(SET_UNIVERSE)

BACKENDS = ("sparse", "dense", "auto")
JOIN_STRATEGIES = (STRATEGY_YANNAKAKIS, STRATEGY_GENERIC_JOIN)


def _union_aggregate():
    return semiring_aggregate("union", lambda a, b: a | b, frozenset())


# name -> (semiring, random value generator, semiring-aggregate factory, offset)
SEMIRINGS = {
    "counting": (COUNTING, lambda rng: rng.randint(1, 4), SemiringAggregate.sum, 0),
    "max-product": (
        MAX_PRODUCT,
        lambda rng: round(rng.uniform(0.1, 2.0), 3),
        SemiringAggregate.max,
        1,
    ),
    "min-plus": (
        MIN_PLUS,
        lambda rng: round(rng.uniform(0.1, 2.0), 3),
        SemiringAggregate.min,
        2,
    ),
    "boolean": (BOOLEAN, lambda rng: True, SemiringAggregate.logical_or, 3),
    "set": (
        SET_SEMIRING,
        lambda rng: frozenset(v for v in SET_UNIVERSE if rng.random() < 0.5),
        _union_aggregate,
        4,
    ),
}

QUICK_SEEDS = tuple(range(8))
FULL_SEEDS = tuple(range(8, 50))


def _random_query(name: str, seed: int) -> FAQQuery:
    """A small random FAQ query over the named semiring (deterministic)."""
    semiring, value_of, aggregate_factory, offset = SEMIRINGS[name]
    rng = random.Random(100_003 * offset + seed)
    n = rng.randint(2, 5)
    names = [f"x{i}" for i in range(n)]
    domains = {v: tuple(range(rng.randint(2, 3))) for v in names}

    all_free = rng.random() < 0.25
    if all_free:
        free = list(names)
        aggregates = {}
    else:
        free = names[: min(rng.randint(0, 2), n - 1)]
        aggregates = {}
        for variable in names[len(free):]:
            if rng.random() < 0.3:
                aggregates[variable] = ProductAggregate.product()
            else:
                aggregates[variable] = aggregate_factory()

    factors = []
    for index in range(rng.randint(1, 4)):
        arity = rng.randint(1, min(3, n))
        scope = tuple(rng.sample(names, arity))
        table = {}
        for values in itertools.product(*(domains[v] for v in scope)):
            if rng.random() < 0.7:
                # All-free queries use indicator values so the relational
                # strategies (Yannakakis / generic join) become applicable.
                table[values] = semiring.one if all_free else value_of(rng)
        factors.append(Factor(scope, table, name=f"psi{index}"))

    return FAQQuery(
        variables=[Variable(v, domains[v]) for v in names],
        free=free,
        aggregates=aggregates,
        factors=factors,
        semiring=semiring,
        name=f"diff-{name}-{seed}",
    )


def _run_differential(name: str, seed: int) -> None:
    semiring = SEMIRINGS[name][0]
    query = _random_query(name, seed)
    expected = query.evaluate_brute_force()
    cache = PlanCache()

    def check(result, label):
        assert expected.equals(result.factor, semiring), (
            f"planner disagreement with brute force!\n"
            f"  reproduce: _random_query({name!r}, {seed})\n"
            f"  plan     : {label}\n"
            f"  query    : {query!r}\n"
            f"  expected : {sorted(expected.table.items(), key=repr)}\n"
            f"  got      : {sorted(result.factor.table.items(), key=repr)}"
        )

    # 1. the planner's own free choice — serial, then through the parallel
    # step-DAG executor (which must agree with brute force too; exact
    # serial/parallel equality is asserted in test_exec_parallel.py).
    # Only the InsideOut strategy parallelises — for the others workers=
    # would re-run the identical serial path and add no coverage.
    chosen = plan(query, cache=cache)
    check(chosen.execute(), f"free choice: {chosen.strategy}/{chosen.backend}")
    if chosen.strategy == STRATEGY_INSIDEOUT:
        check(
            chosen.execute(workers=2),
            f"free choice (workers=2): {chosen.strategy}/{chosen.backend}",
        )

    # 2. every strategy x backend over a spread of valid orderings
    orderings = [chosen.ordering]
    for candidate in candidate_orderings(query):
        if candidate not in orderings:
            orderings.append(candidate)
    strategies = applicable_strategies(query)
    for ordering in orderings[:4]:
        for strategy in strategies:
            backends = ("sparse",) if strategy in JOIN_STRATEGIES else BACKENDS
            for backend in backends:
                pinned = plan(
                    query,
                    ordering=list(ordering),
                    strategy=strategy,
                    backend=backend,
                )
                check(
                    pinned.execute(),
                    f"strategy={strategy} backend={backend} ordering={ordering}",
                )

    # 3. the repeated query hits the plan cache and still agrees
    repeated = plan(query, cache=cache)
    assert repeated.cache_hit, f"expected a plan-cache hit (seed={seed})"
    check(repeated.execute(), "plan cache hit")


@pytest.mark.parametrize("name", sorted(SEMIRINGS))
@pytest.mark.parametrize("seed", QUICK_SEEDS)
def test_differential_quick(name, seed):
    """Tier-1 profile: 8 seeds per semiring (40 random queries)."""
    _run_differential(name, seed)


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(SEMIRINGS))
@pytest.mark.parametrize("seed", FULL_SEEDS)
def test_differential_full(name, seed):
    """Slow remainder (42 seeds per semiring): together with the quick
    profile this makes 50 seeds per semiring — 250 random queries, the
    200+ of the acceptance criterion."""
    _run_differential(name, seed)


# --------------------------------------------------------------------- #
# the randomized update-stream profile: incremental maintenance vs a full
# recompute, cell-for-cell
# --------------------------------------------------------------------- #

from repro.factors.backend import as_sparse, supports_dense  # noqa: E402
from repro.factors.delta import FactorDelta  # noqa: E402
from repro.incremental import IncrementalView  # noqa: E402

# Integer-valued generators: products/sums of small ints are exact in
# every backend (Python ints, float64 within 2**53), so the incremental
# answer must match the brute-force recompute *bit for bit* — `==` on the
# output tables, not approximate equality.
UPDATE_SEMIRINGS = {
    "counting": (COUNTING, lambda rng: rng.randint(1, 5), SemiringAggregate.sum, 0),
    "max-product": (MAX_PRODUCT, lambda rng: rng.randint(1, 6), SemiringAggregate.max, 1),
    "min-plus": (MIN_PLUS, lambda rng: rng.randint(1, 6), SemiringAggregate.min, 2),
    "boolean": (BOOLEAN, lambda rng: True, SemiringAggregate.logical_or, 3),
}


def _random_update_query(name: str, seed: int) -> FAQQuery:
    """A small random query with integer-exact values (deterministic).

    Mixes flat queries (all aggregates = the semiring ⊕ — eligible for
    the delta/append regimes) with product-aggregate queries (forced onto
    the dirty-subgraph fallback), so one profile exercises all three
    regimes *and* the regime-selection logic.
    """
    semiring, value_of, aggregate_factory, offset = UPDATE_SEMIRINGS[name]
    rng = random.Random(900_001 * offset + seed)
    n = rng.randint(2, 4)
    names = [f"x{i}" for i in range(n)]
    domains = {v: tuple(range(rng.randint(2, 3))) for v in names}
    free = names[: rng.randint(1, max(1, n - 1))]
    aggregates = {}
    for variable in names[len(free):]:
        if rng.random() < 0.25:
            aggregates[variable] = ProductAggregate.product()
        else:
            aggregates[variable] = aggregate_factory()
    factors = []
    for index in range(rng.randint(2, 3)):
        arity = rng.randint(1, min(2, n))
        scope = tuple(rng.sample(names, arity))
        table = {}
        for values in itertools.product(*(domains[v] for v in scope)):
            if rng.random() < 0.8:
                table[values] = value_of(rng)
        factors.append(Factor(scope, table, name=f"psi{index}"))
    return FAQQuery(
        variables=[Variable(v, domains[v]) for v in names],
        free=free,
        aggregates=aggregates,
        factors=factors,
        semiring=semiring,
        name=f"upd-{name}-{seed}",
    )


def _run_update_stream(name: str, seed: int, backend: str, workers: int) -> None:
    semiring, value_of, _, offset = UPDATE_SEMIRINGS[name]
    if backend == "dense" and not supports_dense(semiring):
        pytest.skip(f"{name} has no dense ops")
    query = _random_update_query(name, seed)
    rng = random.Random(700_001 * offset + seed)
    view = IncrementalView(query, backend=backend, workers=workers)
    out = view.result()

    def check(step):
        expected = as_sparse(
            view.query.evaluate_brute_force(), semiring
        ).normalize_scope(view.query.free)
        assert out.scope == expected.scope
        assert out.table == expected.table, (
            f"incremental answer diverged from full recompute!\n"
            f"  reproduce: _random_update_query({name!r}, {seed}) "
            f"backend={backend} workers={workers} step={step}\n"
            f"  regimes  : {view.stats.regimes}\n"
            f"  expected : {sorted(expected.table.items(), key=repr)}\n"
            f"  got      : {sorted(out.table.items(), key=repr)}"
        )

    check("baseline")
    for step in range(4):
        index = rng.randrange(len(view.query.factors))
        factor = view.query.factors[index]
        cell_domains = [view.query.domain(v) for v in factor.scope]
        changes = {}
        for _ in range(rng.randint(1, 3)):
            cell = tuple(rng.choice(domain) for domain in cell_domains)
            if rng.random() < 0.2:
                changes[cell] = semiring.zero  # deletion
            else:
                changes[cell] = value_of(rng)
        out = view.update_factor(index, FactorDelta(factor.scope, changes))
        check(step)


@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("backend", ("sparse", "dense"))
@pytest.mark.parametrize("name", sorted(UPDATE_SEMIRINGS))
@pytest.mark.parametrize("seed", (0, 1, 2))
def test_update_stream_quick(name, seed, backend, workers):
    """Tier-1 update-stream profile: random cell deltas, bit-identical."""
    _run_update_stream(name, seed, backend, workers)


@pytest.mark.slow
@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("backend", ("sparse", "dense"))
@pytest.mark.parametrize("name", sorted(UPDATE_SEMIRINGS))
@pytest.mark.parametrize("seed", tuple(range(3, 12)))
def test_update_stream_full(name, seed, backend, workers):
    _run_update_stream(name, seed, backend, workers)


def test_update_stream_reaches_all_regimes():
    """The random update space exercises delta, append and dirty."""
    from repro.incremental import REGIME_APPEND, REGIME_DELTA, REGIME_DIRTY

    seen = set()
    for name in sorted(UPDATE_SEMIRINGS):
        for seed in range(6):
            semiring, value_of, _, offset = UPDATE_SEMIRINGS[name]
            query = _random_update_query(name, seed)
            rng = random.Random(700_001 * offset + seed)
            view = IncrementalView(query)
            view.result()
            for _ in range(4):
                index = rng.randrange(len(view.query.factors))
                factor = view.query.factors[index]
                cell_domains = [view.query.domain(v) for v in factor.scope]
                changes = {}
                for _ in range(rng.randint(1, 3)):
                    cell = tuple(rng.choice(domain) for domain in cell_domains)
                    if rng.random() < 0.2:
                        changes[cell] = semiring.zero
                    else:
                        changes[cell] = value_of(rng)
                view.update_factor(index, FactorDelta(factor.scope, changes))
            seen.update(view.stats.regimes)
    assert {REGIME_DELTA, REGIME_APPEND, REGIME_DIRTY} <= seen


def test_join_strategies_are_exercised():
    """The random query space actually reaches Yannakakis and generic join."""
    seen = set()
    for name in sorted(SEMIRINGS):
        for seed in range(50):
            query = _random_query(name, seed)
            seen.update(applicable_strategies(query))
    assert STRATEGY_YANNAKAKIS in seen
    assert STRATEGY_GENERIC_JOIN in seen

"""Parallel determinism of the step-DAG executor.

The contract of :mod:`repro.exec` is strict: for *any* worker count the
:class:`~repro.exec.DagExecutor` must reproduce the sequential
:func:`~repro.core.insideout.inside_out` run exactly — the output factor
(values included, not just up to semiring equality) *and* the
:class:`~repro.core.insideout.InsideOutStats` totals.  The seeded property
test below checks that across semirings, factor backends and
``workers ∈ {1, 2, 8}``, on the same randomized query family the planner
differential harness uses.
"""

import pytest

from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, QueryError, Variable
from repro.exec import (
    KIND_OUTPUT,
    KIND_SEMIRING,
    DagExecutor,
    lower_insideout,
)
from repro.factors.factor import Factor
from repro.planner import plan
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import COUNTING

from test_planner_differential import SEMIRINGS, _random_query

WORKER_COUNTS = (1, 2, 8)
BACKENDS = ("sparse", "dense", "auto")


def _assert_identical(serial, parallel, context):
    """Outputs and stats totals must match the serial run exactly."""
    assert parallel.ordering == serial.ordering, context
    assert parallel.factor.scope == serial.factor.scope, context
    assert parallel.factor.table == serial.factor.table, (
        f"{context}: parallel table diverged\n"
        f"  serial  : {sorted(serial.factor.table.items(), key=repr)}\n"
        f"  parallel: {sorted(parallel.factor.table.items(), key=repr)}"
    )
    s, p = serial.stats, parallel.stats
    assert len(p.steps) == len(s.steps), context
    for a, b in zip(s.steps, p.steps):
        assert (
            a.variable, a.kind, a.induced_set, a.incident_count,
            a.projection_count, a.result_size, a.backend,
        ) == (
            b.variable, b.kind, b.induced_set, b.incident_count,
            b.projection_count, b.result_size, b.backend,
        ), f"{context}: step record diverged for {a.variable}"
    assert (
        p.join_stats.search_steps,
        p.join_stats.emitted_tuples,
        p.join_stats.intersections,
    ) == (
        s.join_stats.search_steps,
        s.join_stats.emitted_tuples,
        s.join_stats.intersections,
    ), context
    assert p.max_intermediate_size == s.max_intermediate_size, context
    assert p.output_size == s.output_size, context


@pytest.mark.parametrize("name", sorted(SEMIRINGS))
@pytest.mark.parametrize("seed", range(6))
def test_dag_executor_matches_serial(name, seed):
    """Values and stats totals are identical across backends and workers."""
    query = _random_query(name, seed)
    for backend in BACKENDS:
        serial = inside_out(query, ordering=None, backend=backend)
        for workers in WORKER_COUNTS:
            parallel = DagExecutor(workers=workers).run(
                query, ordering=None, backend=backend
            )
            _assert_identical(
                serial, parallel, f"{name}/seed={seed}/backend={backend}/workers={workers}"
            )


@pytest.mark.parametrize("name", sorted(SEMIRINGS))
def test_dag_executor_matches_planned_ordering(name):
    """The planner's chosen ordering parallelises identically too."""
    query = _random_query(name, 7)
    chosen = plan(query)
    serial = chosen.execute()
    for workers in WORKER_COUNTS:
        parallel = chosen.execute(workers=workers)
        if chosen.strategy != "insideout":
            # Only the InsideOut strategy parallelises; the others must
            # still return the same result with workers set.
            assert parallel.factor.table == serial.factor.table
            continue
        _assert_identical(
            serial.raw, parallel.raw, f"{name}/planned/workers={workers}"
        )


def test_dag_executor_factorized_mode():
    query = _random_query("counting", 2)
    serial = inside_out(query, output_mode="factorized")
    parallel = DagExecutor(workers=4).run(query, output_mode="factorized")
    assert serial.factor is None and parallel.factor is None
    assert len(parallel.factorized.factors) == len(serial.factorized.factors)
    for a, b in zip(serial.factorized.factors, parallel.factorized.factors):
        assert a.scope == b.scope and a.table == b.table


def _multi_block_query(blocks=3, chain=3, domain=3):
    """Disjoint chain blocks: the canonical parallelisable workload."""
    variables, aggregates, factors = [], {}, []
    for block in range(blocks):
        names = [f"b{block}v{i}" for i in range(chain)]
        for name in names:
            variables.append(Variable(name, tuple(range(domain))))
            aggregates[name] = SemiringAggregate.sum()
        for left, right in zip(names, names[1:]):
            table = {(i, j): 1 for i in range(domain) for j in range(domain)}
            factors.append(Factor((left, right), table, name=f"{left}{right}"))
    return FAQQuery(variables, [], aggregates, factors, COUNTING, name="blocks")


def test_disjoint_blocks_expose_parallelism():
    """Steps over disjoint factor groups get no DAG edge (the tentpole claim)."""
    query = _multi_block_query(blocks=4)
    dag = lower_insideout(query, list(query.order))
    assert dag.max_parallelism >= 4
    # Only the final output node joins the blocks together.
    output_nodes = [n for n in dag.nodes if n.kind == KIND_OUTPUT]
    assert len(output_nodes) == 1
    serial = inside_out(query)
    for workers in WORKER_COUNTS:
        _assert_identical(
            serial, inside_out(query, workers=workers), f"blocks/workers={workers}"
        )


def test_single_chain_is_sequential():
    """A single chain has no step-level parallelism — the DAG shows it."""
    query = _multi_block_query(blocks=1, chain=4)
    dag = lower_insideout(query, list(query.order))
    semiring_nodes = [n for n in dag.nodes if n.kind == KIND_SEMIRING]
    assert dag.max_parallelism == 1
    assert dag.critical_path_length == len(semiring_nodes) + 1  # + output


def test_dag_explain_mentions_structure():
    query = _multi_block_query(blocks=2)
    dag = lower_insideout(query, list(query.order))
    report = dag.explain()
    assert "max parallelism" in report
    assert "output" in report


def test_lowering_matches_loop_projections():
    """Indicator-projection reads appear as DAG read edges, not consume edges."""
    # A triangle-ish query where eliminating one variable projects another
    # factor: psi(a,b), psi(b,c), psi(a,c) — eliminating c induces {a,b,c}
    # and reads psi(a,b) as an indicator projection.
    domain = (0, 1)
    table = {(i, j): 1 for i in domain for j in domain}
    query = FAQQuery(
        variables=[Variable(v, domain) for v in "abc"],
        free=[],
        aggregates={v: SemiringAggregate.sum() for v in "abc"},
        factors=[
            Factor(("a", "b"), dict(table), name="ab"),
            Factor(("b", "c"), dict(table), name="bc"),
            Factor(("a", "c"), dict(table), name="ac"),
        ],
        semiring=COUNTING,
        name="triangle",
    )
    dag = lower_insideout(query, list(query.order))
    first = dag.nodes[0]
    assert first.kind == KIND_SEMIRING and first.variable == "c"
    assert set(first.incident) == {1, 2}  # bc, ac
    assert set(first.reads) == {0}        # ab participates as a projection
    serial = inside_out(query)
    _assert_identical(serial, inside_out(query, workers=4), "triangle")


def test_empty_query_and_isolated_variables():
    query = FAQQuery(
        [Variable("x", (0, 1, 2))], [], {"x": SemiringAggregate.sum()}, [], COUNTING,
        name="no-factors",
    )
    serial = inside_out(query)
    for workers in WORKER_COUNTS:
        _assert_identical(serial, inside_out(query, workers=workers), "empty")
    assert serial.factor.table == {(): 3}


def test_workers_validation():
    query = _random_query("counting", 0)
    with pytest.raises(QueryError):
        inside_out(query, workers=0)
    with pytest.raises(QueryError):
        inside_out(query, workers=-2)
    with pytest.raises(QueryError):
        inside_out(query, workers=True)
    with pytest.raises(QueryError):
        DagExecutor(workers=0)


def test_solver_entry_points_accept_workers():
    """The opt-in ``workers=`` kwarg reaches the engines from the solvers."""
    import networkx as nx

    from repro.solvers.joins import count_homomorphisms
    from repro.solvers.sat import count_models
    from repro.datasets.cnf import random_k_cnf

    triangle = nx.cycle_graph(3)
    host = nx.complete_graph(4)
    assert count_homomorphisms(triangle, host, workers=2) == count_homomorphisms(
        triangle, host
    )
    formula = random_k_cnf(num_variables=5, num_clauses=8, clause_width=3, seed=11)
    assert count_models(formula, workers=2) == count_models(formula)

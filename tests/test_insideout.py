"""Tests for the InsideOut algorithm (Algorithm 1 of the paper)."""

import pytest

from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, QueryError, Variable
from repro.factors.factor import Factor
from repro.semiring.aggregates import ProductAggregate, SemiringAggregate
from repro.semiring.standard import BOOLEAN, COUNTING, MAX_PRODUCT

from _helpers import make_factor, small_random_query


class TestScalarQueries:
    def test_matches_brute_force(self, triangle_query):
        expected = triangle_query.evaluate_scalar_brute_force()
        result = inside_out(triangle_query)
        assert result.scalar == expected

    def test_scalar_or_zero_on_empty_output(self):
        psi = Factor(("A",), {})
        query = FAQQuery(
            variables=[Variable("A", (0, 1))],
            free=[],
            aggregates={"A": SemiringAggregate.sum()},
            factors=[psi],
            semiring=COUNTING,
        )
        result = inside_out(query)
        assert result.scalar_or_zero(COUNTING) == 0

    def test_boolean_satisfiability_style_query(self):
        psi = make_factor(("A", "B"), {(0, 1): True})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
            free=[],
            aggregates={v: SemiringAggregate.logical_or() for v in "AB"},
            factors=[psi],
            semiring=BOOLEAN,
        )
        assert inside_out(query).scalar is True

    def test_max_product_query(self):
        psi = make_factor(("A", "B"), {(0, 0): 0.5, (1, 1): 0.9})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
            free=[],
            aggregates={v: SemiringAggregate.max() for v in "AB"},
            factors=[psi, psi],
            semiring=MAX_PRODUCT,
        )
        assert inside_out(query).scalar == pytest.approx(0.81)


class TestFreeVariables:
    def test_output_factor_over_free_variables(self):
        psi = make_factor(("A", "B"), {(0, 0): 1, (0, 1): 2, (1, 1): 3})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
            free=["A"],
            aggregates={"B": SemiringAggregate.sum()},
            factors=[psi],
            semiring=COUNTING,
        )
        result = inside_out(query)
        assert result.factor.table == {(0,): 3, (1,): 3}

    def test_scalar_accessor_rejected_with_free_variables(self):
        psi = make_factor(("A",), {(0,): 1})
        query = FAQQuery(
            variables=[Variable("A", (0, 1))],
            free=["A"],
            aggregates={},
            factors=[psi],
            semiring=COUNTING,
        )
        result = inside_out(query)
        with pytest.raises(QueryError):
            _ = result.scalar

    def test_isolated_free_variable_is_expanded(self):
        # B is free but appears in no factor: the output must be constant in B.
        psi = make_factor(("A",), {(0,): 2, (1,): 5})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1, 2))],
            free=["A", "B"],
            aggregates={},
            factors=[psi],
            semiring=COUNTING,
        )
        result = inside_out(query)
        assert len(result.factor) == 6
        assert result.factor.value({"A": 1, "B": 2}, COUNTING) == 5

    def test_all_variables_free_is_a_join(self):
        left = make_factor(("A", "B"), {(0, 0): 1, (1, 1): 1})
        right = make_factor(("B", "C"), {(0, 5): 1, (1, 6): 1})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1)), Variable("C", (5, 6))],
            free=["A", "B", "C"],
            aggregates={},
            factors=[left, right],
            semiring=COUNTING,
        )
        result = inside_out(query)
        assert set(result.factor.table) == {(0, 0, 5), (1, 1, 6)}


class TestProductAggregates:
    def test_universal_quantifier_style(self):
        # forall B: psi(A, B) -- holds only for A values listing every B.
        psi = make_factor(("A", "B"), {(0, 0): 1, (0, 1): 1, (1, 0): 1})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
            free=["A"],
            aggregates={"B": ProductAggregate.product()},
            factors=[psi],
            semiring=COUNTING,
        )
        result = inside_out(query)
        assert result.factor.table == {(0,): 1}

    def test_non_idempotent_factor_is_powered(self):
        # psi(A) does not mention B; the product over Dom(B) of size 3 must
        # raise psi to the third power.
        psi = make_factor(("A",), {(0,): 2})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1, 2))],
            free=["A"],
            aggregates={"B": ProductAggregate.product()},
            factors=[psi],
            semiring=COUNTING,
        )
        result = inside_out(query)
        assert result.factor.table == {(0,): 8}

    def test_idempotent_factor_is_left_alone(self):
        psi = make_factor(("A",), {(0,): 1})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1, 2))],
            free=["A"],
            aggregates={"B": ProductAggregate.product()},
            factors=[psi],
            semiring=COUNTING,
        )
        assert inside_out(query).factor.table == {(0,): 1}

    def test_matches_brute_force_on_random_product_queries(self):
        for seed in range(40):
            query = small_random_query(seed, allow_products=True)
            expected = query.evaluate_brute_force()
            got = inside_out(query).factor
            assert expected.equals(got, query.semiring), f"seed {seed}"


class TestOrderings:
    def test_explicit_equivalent_ordering_gives_same_result(self, triangle_query):
        expected = inside_out(triangle_query).scalar
        reordered = inside_out(triangle_query, ordering=["C", "A", "B"])
        assert reordered.scalar == expected

    def test_auto_ordering(self, triangle_query):
        expected = triangle_query.evaluate_scalar_brute_force()
        assert inside_out(triangle_query, ordering="auto").scalar == expected

    def test_invalid_ordering_string_rejected(self, triangle_query):
        with pytest.raises(QueryError):
            inside_out(triangle_query, ordering="fastest")

    def test_non_permutation_ordering_rejected(self, triangle_query):
        with pytest.raises(QueryError):
            inside_out(triangle_query, ordering=["A", "B"])

    def test_free_variables_must_stay_first(self):
        psi = make_factor(("A", "B"), {(0, 0): 1})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
            free=["A"],
            aggregates={"B": SemiringAggregate.sum()},
            factors=[psi],
            semiring=COUNTING,
        )
        with pytest.raises(QueryError):
            inside_out(query, ordering=["B", "A"])


class TestEdgeCases:
    def test_no_factors_counts_domain_product(self):
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1, 2))],
            free=[],
            aggregates={"A": SemiringAggregate.sum(), "B": SemiringAggregate.sum()},
            factors=[],
            semiring=COUNTING,
        )
        # Empty product is 1 for each of the 6 assignments.
        assert inside_out(query).scalar == 6

    def test_bound_variable_absent_from_all_factors(self):
        psi = make_factor(("A",), {(0,): 2, (1,): 3})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1, 2))],
            free=[],
            aggregates={"A": SemiringAggregate.sum(), "B": SemiringAggregate.sum()},
            factors=[psi],
            semiring=COUNTING,
        )
        # Sum over B contributes a factor |Dom(B)| = 3.
        assert inside_out(query).scalar == 15

    def test_constant_factor_participates(self):
        constant = Factor((), {(): 4})
        psi = make_factor(("A",), {(0,): 2})
        query = FAQQuery(
            variables=[Variable("A", (0, 1))],
            free=[],
            aggregates={"A": SemiringAggregate.sum()},
            factors=[constant, psi],
            semiring=COUNTING,
        )
        assert inside_out(query).scalar == 8

    def test_unknown_output_mode_rejected(self, triangle_query):
        with pytest.raises(QueryError):
            inside_out(triangle_query, output_mode="compressed")


class TestStatsAndAblation:
    def test_stats_record_every_elimination(self, triangle_query):
        result = inside_out(triangle_query)
        assert len(result.stats.steps) == 3
        assert result.stats.total_seconds >= 0.0
        assert result.stats.output_size == len(result.factor)

    def test_indicator_projections_shrink_intermediates(self):
        # Classic example: R(A,B) ⋈ S(B,C) ⋈ T(A,C) where S and T are very
        # selective.  Without indicator projections the intermediate on
        # eliminating C ignores R... build a case where the pruning helps.
        r = make_factor(("A", "B"), {(i, j): 1 for i in range(6) for j in range(6)})
        s = make_factor(("B", "C"), {(i, i): 1 for i in range(6)})
        t = make_factor(("A", "C"), {(i, i): 1 for i in range(6)})
        query = FAQQuery(
            variables=[Variable(v, tuple(range(6))) for v in "ABC"],
            free=[],
            aggregates={v: SemiringAggregate.sum() for v in "ABC"},
            factors=[r, s, t],
            semiring=COUNTING,
        )
        with_proj = inside_out(query, ordering=["C", "B", "A"])
        without_proj = inside_out(
            query, ordering=["C", "B", "A"], use_indicator_projections=False
        )
        assert with_proj.scalar == without_proj.scalar
        assert (
            with_proj.stats.max_intermediate_size
            <= without_proj.stats.max_intermediate_size
        )

    def test_results_identical_with_and_without_projections(self):
        for seed in range(25):
            query = small_random_query(seed + 100)
            a = inside_out(query).factor
            b = inside_out(query, use_indicator_projections=False).factor
            assert a.equals(b, query.semiring)


class TestAgainstBruteForceAtScale:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_queries(self, seed):
        query = small_random_query(seed + 500)
        expected = query.evaluate_brute_force()
        got = inside_out(query).factor
        assert expected.equals(got, query.semiring)

    @pytest.mark.parametrize("seed", range(15))
    def test_random_boolean_queries(self, seed):
        import random

        rng = random.Random(seed)
        names = ["A", "B", "C", "D"][: rng.randint(2, 4)]
        domains = {v: tuple(range(rng.randint(2, 3))) for v in names}
        factors = []
        for _ in range(rng.randint(1, 3)):
            scope = tuple(rng.sample(names, rng.randint(1, len(names))))
            table = {}
            import itertools

            for values in itertools.product(*(domains[v] for v in scope)):
                if rng.random() < 0.6:
                    table[values] = True
            factors.append(Factor(scope, table))
        query = FAQQuery(
            variables=[Variable(v, domains[v]) for v in names],
            free=names[:1],
            aggregates={v: SemiringAggregate.logical_or() for v in names[1:]},
            factors=factors,
            semiring=BOOLEAN,
        )
        expected = query.evaluate_brute_force()
        got = inside_out(query).factor
        assert expected.equals(got, query.semiring)

"""Tests for the logic (CQ/#CQ/QCQ/#QCQ) and SAT/#SAT application layers."""


import pytest

from repro.datasets.cnf import beta_acyclic_cnf, chain_cnf, random_k_cnf
from repro.datasets.relations import random_relation
from repro.factors.compact import Clause, Literal
from repro.solvers.logic import (
    EXISTS,
    FORALL,
    Atom,
    QuantifiedConjunctiveQuery,
    boolean_cq,
    conjunctive_query,
    count_conjunctive_query_answers,
)
from repro.solvers.sat import (
    CNFFormula,
    count_models,
    davis_putnam_sat,
    is_satisfiable,
    sharp_sat_query,
)


def small_qcq(seed=0, quantifiers=(EXISTS, FORALL)):
    r = random_relation("R", ("a", "b"), 3, 6, seed=seed)
    s = random_relation("S", ("b", "c"), 3, 6, seed=seed + 1)
    return QuantifiedConjunctiveQuery(
        free=("u",),
        quantifiers=(("v", quantifiers[0]), ("w", quantifiers[1])),
        atoms=(Atom(r, ("u", "v")), Atom(s, ("v", "w"))),
        domains={"w": (0, 1, 2)},
    )


class TestQCQ:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("quantifiers", [
        (EXISTS, EXISTS), (EXISTS, FORALL), (FORALL, EXISTS), (FORALL, FORALL),
    ])
    def test_qcq_matches_brute_force(self, seed, quantifiers):
        query = small_qcq(seed=seed * 3, quantifiers=quantifiers)
        assert query.solve().tuples == query.solve_brute_force().tuples

    @pytest.mark.parametrize("seed", range(8))
    def test_sharp_qcq_matches_brute_force(self, seed):
        query = small_qcq(seed=seed * 5, quantifiers=(FORALL, EXISTS))
        assert query.count() == query.count_brute_force()

    def test_atom_arity_checked(self):
        r = random_relation("R", ("a", "b"), 2, 3, seed=1)
        with pytest.raises(Exception):
            Atom(r, ("x",))

    def test_variable_without_domain_rejected(self):
        r = random_relation("R", ("a",), 2, 2, seed=1)
        with pytest.raises(Exception):
            QuantifiedConjunctiveQuery(
                free=(), quantifiers=(("z", FORALL),), atoms=(Atom(r, ("x",)),)
            )

    def test_prefix_width_at_least_faqw_proxy(self):
        query = small_qcq(seed=2)
        assert query.prefix_width() >= 1

    def test_chen_dalmau_separation_example(self):
        """Section 7.2.1: ∀x1..xn ∃y  S(x1..xn) ∧ ⋀ R(xi, y) has prefix width
        n+1 but faqw 2."""
        n = 3
        domain = tuple(range(2))
        s_rel = random_relation("S", tuple(f"x{i}" for i in range(1, n + 1)), 2, 6, seed=3)
        r_rel = random_relation("R", ("u", "y"), 2, 3, seed=4)
        atoms = [Atom(s_rel, tuple(f"x{i}" for i in range(1, n + 1)))]
        for i in range(1, n + 1):
            atoms.append(Atom(r_rel, (f"x{i}", "y")))
        query = QuantifiedConjunctiveQuery(
            free=(),
            quantifiers=tuple((f"x{i}", FORALL) for i in range(1, n + 1)) + (("y", EXISTS),),
            atoms=tuple(atoms),
        )
        assert query.prefix_width() == n + 1
        from repro.core.faqw import faq_width_of_query

        assert faq_width_of_query(query.decision_query()) <= 2.0
        # And the reduction is still correct.
        assert query.solve().tuples == query.solve_brute_force().tuples

    def test_boolean_cq_and_counting_helpers(self):
        r = random_relation("R", ("a", "b"), 3, 5, seed=6)
        s = random_relation("S", ("b", "c"), 3, 5, seed=7)
        atoms = [Atom(r, ("x", "y")), Atom(s, ("y", "z"))]
        bcq = boolean_cq(atoms)
        assert bcq.count_brute_force() in (0, 1)
        cq = conjunctive_query(atoms, free=("x",))
        assert cq.count() == cq.count_brute_force()
        assert count_conjunctive_query_answers(atoms, ("x",)) == cq.count_brute_force()

    def test_repeated_variable_atom(self):
        r = random_relation("R", ("a", "b"), 3, 7, seed=8)
        query = QuantifiedConjunctiveQuery(
            free=(), quantifiers=(("x", EXISTS),), atoms=(Atom(r, ("x", "x")),)
        )
        expected = any(row[0] == row[1] for row in r.tuples)
        assert (query.count_brute_force() > 0) == expected
        assert (len(query.solve().tuples) > 0) == expected


class TestSAT:
    @pytest.mark.parametrize("seed", range(10))
    def test_davis_putnam_matches_brute_force_on_random_cnf(self, seed):
        formula = random_k_cnf(6, 14, 3, seed=seed)
        satisfiable, _ = davis_putnam_sat(formula)
        assert satisfiable == formula.is_satisfiable_brute_force()

    @pytest.mark.parametrize("seed", range(6))
    def test_davis_putnam_on_beta_acyclic(self, seed):
        formula = beta_acyclic_cnf(3, 3, seed=seed)
        assert formula.is_beta_acyclic()
        satisfiable, stats = davis_putnam_sat(formula)
        assert satisfiable == formula.is_satisfiable_brute_force()
        assert stats.eliminations >= 1

    def test_beta_acyclic_clause_count_stays_bounded(self):
        formula = beta_acyclic_cnf(6, 3, seed=1)
        _, stats = davis_putnam_sat(formula)
        # Theorem 8.3: along a NEO the clause set never grows.
        assert stats.max_clauses <= len(formula.clauses)

    def test_unsatisfiable_formula(self):
        formula = CNFFormula(
            [Clause([Literal("x", True)]), Clause([Literal("x", False)])]
        )
        assert not is_satisfiable(formula)
        assert count_models(formula) == 0

    def test_empty_formula_is_satisfiable(self):
        formula = CNFFormula([])
        assert is_satisfiable(formula)

    def test_tautologies_are_dropped(self):
        formula = CNFFormula([Clause([Literal("x", True), Literal("x", False)])])
        assert len(formula) == 0


class TestSharpSAT:
    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(8))
    def test_count_models_matches_brute_force_random(self, seed):
        formula = random_k_cnf(7, 16, 3, seed=seed + 50)
        assert count_models(formula) == formula.count_models_brute_force()

    @pytest.mark.parametrize("seed", range(5))
    def test_count_models_beta_acyclic(self, seed):
        formula = beta_acyclic_cnf(3, 3, seed=seed + 10)
        assert count_models(formula) == formula.count_models_brute_force()

    def test_chain_cnf_counts(self):
        formula = chain_cnf(6, seed=2)
        assert count_models(formula) == formula.count_models_brute_force()

    def test_count_models_on_formula_without_clauses(self):
        formula = CNFFormula([])
        assert count_models(formula) == 1

    def test_sharp_sat_query_structure(self):
        formula = random_k_cnf(5, 8, 3, seed=4)
        query = sharp_sat_query(formula)
        assert query.num_free == 0
        assert len(query.factors) == len(formula.clauses)

    def test_explicit_ordering_accepted(self):
        formula = chain_cnf(5, seed=3)
        ordering = list(formula.variables)
        assert count_models(formula, ordering=ordering) == formula.count_models_brute_force()

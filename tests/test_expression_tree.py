"""Generic unit tests for expression trees and precedence posets."""

import pytest

from repro.core.expression_tree import (
    ExpressionNode,
    build_expression_tree,
    extended_components,
)
from repro.core.query import FAQQuery, Variable
from repro.factors.factor import Factor
from repro.hypergraph.hypergraph import Hypergraph
from repro.semiring.aggregates import FREE_TAG, ProductAggregate, SemiringAggregate
from repro.semiring.standard import COUNTING

from _helpers import small_random_query


def simple_query(aggregate_tags, scopes, free=()):
    """Build a query from variable→tag and a list of scopes (all domains {0,1})."""
    names = list(aggregate_tags)
    factories = {
        "sum": SemiringAggregate.sum,
        "max": SemiringAggregate.max,
        "product": ProductAggregate.product,
    }
    aggregates = {
        v: factories[tag]() for v, tag in aggregate_tags.items() if v not in free
    }
    factors = [
        Factor(scope, {tuple(0 for _ in scope): 1}) for scope in scopes
    ]
    return FAQQuery(
        variables=[Variable(v, (0, 1)) for v in names],
        free=list(free),
        aggregates=aggregates,
        factors=factors,
        semiring=COUNTING,
    )


class TestExtendedComponents:
    def test_plain_connected_components_without_products(self):
        h = Hypergraph.from_scopes([("a", "b"), ("c", "d")])
        components, dangling = extended_components(h, block=(), product_variables=())
        assert len(components) == 2
        assert dangling == frozenset()

    def test_product_variables_are_added_back(self):
        h = Hypergraph.from_scopes([("a", "p"), ("b", "p")])
        components, dangling = extended_components(h, block=(), product_variables=("p",))
        # Removing p disconnects a and b; each extended component gets p back.
        assert len(components) == 2
        for vertex_set, sub in components:
            assert "p" in vertex_set

    def test_dangling_product_variables(self):
        # p appears only in an edge fully inside the block ∪ products.
        h = Hypergraph.from_scopes([("a", "b"), ("b", "p")])
        components, dangling = extended_components(
            h, block=("b",), product_variables=("p",)
        )
        assert dangling == frozenset({"p"})

    def test_isolated_product_variable_is_dangling(self):
        h = Hypergraph(vertices=["a", "p"], edges=[("a",)])
        components, dangling = extended_components(h, block=(), product_variables=("p",))
        assert dangling == frozenset({"p"})

    def test_block_removal(self):
        h = Hypergraph.from_scopes([("a", "b"), ("b", "c")])
        components, _ = extended_components(h, block=("b",), product_variables=())
        assert len(components) == 2


class TestTreeShape:
    def test_faq_ss_tree_has_depth_at_most_one_below_root_child(self):
        # Single semiring aggregate: paper says depth ≤ 1 (root + one node per
        # connected component).
        query = simple_query(
            {"a": "sum", "b": "sum", "c": "sum"},
            scopes=[("a", "b"), ("b", "c")],
        )
        tree = build_expression_tree(query)
        assert tree.root.tag == FREE_TAG
        assert len(tree.root.children) == 1
        assert frozenset(tree.root.children[0].variables) == frozenset({"a", "b", "c"})
        assert tree.root.children[0].children == []

    def test_free_variables_form_the_root(self):
        query = simple_query(
            {"a": "sum", "b": "sum", "c": "sum"},
            scopes=[("a", "b"), ("b", "c")],
            free=("a",),
        )
        tree = build_expression_tree(query)
        assert tree.root.variables == ["a"]
        assert tree.root.tag == FREE_TAG

    def test_disconnected_components_become_sibling_subtrees(self):
        query = simple_query(
            {"a": "sum", "b": "max", "c": "sum", "d": "max"},
            scopes=[("a", "b"), ("c", "d")],
        )
        tree = build_expression_tree(query)
        assert len(tree.root.children) == 2

    def test_alternating_tags_build_a_chain(self):
        query = simple_query(
            {"a": "sum", "b": "max", "c": "sum"},
            scopes=[("a", "b"), ("b", "c")],
        )
        tree = build_expression_tree(query)
        top = tree.root.children[0]
        assert top.variables == ["a"]
        assert top.children[0].variables == ["b"]
        assert top.children[0].children[0].variables == ["c"]

    def test_compression_merges_same_tag_parent_child(self):
        # sum_a max_b sum_c with edges {a,c},{b,c}: removing {a} leaves {b,c}
        # connected, but c has the same tag as a... compression applies only
        # when tags match along parent-child edges.
        query = simple_query(
            {"a": "sum", "b": "sum", "c": "max"},
            scopes=[("a", "b"), ("b", "c")],
        )
        tree = build_expression_tree(query)
        top = tree.root.children[0]
        assert frozenset(top.variables) == frozenset({"a", "b"})
        assert top.children[0].variables == ["c"]

    def test_isolated_bound_semiring_variable_becomes_leaf(self):
        query = simple_query(
            {"a": "sum", "z": "max"},
            scopes=[("a",)],
        )
        tree = build_expression_tree(query)
        all_vars = [v for node in tree.iter_nodes() for v in node.variables]
        assert sorted(all_vars) == ["a", "z"]

    def test_pretty_renders_every_node(self):
        query = simple_query(
            {"a": "sum", "b": "max"}, scopes=[("a", "b")]
        )
        rendering = build_expression_tree(query).pretty()
        assert "a" in rendering and "b" in rendering and "[max]" in rendering


class TestTreeNavigation:
    @pytest.fixture
    def tree(self):
        query = simple_query(
            {"a": "sum", "b": "max", "c": "sum"},
            scopes=[("a", "b"), ("b", "c")],
        )
        return build_expression_tree(query)

    def test_iter_nodes_preorder(self, tree):
        nodes = list(tree.iter_nodes())
        assert nodes[0] is tree.root

    def test_nodes_containing(self, tree):
        nodes = tree.nodes_containing("b")
        assert len(nodes) == 1
        assert nodes[0].variables == ["b"]

    def test_depth_of(self, tree):
        assert tree.depth_of(tree.root) == 0
        child = tree.root.children[0]
        assert tree.depth_of(child) == 1

    def test_depth_of_foreign_node_raises(self, tree):
        foreign = ExpressionNode(variables=["zz"], tag="sum")
        with pytest.raises(Exception):
            tree.depth_of(foreign)

    def test_parent_of(self, tree):
        child = tree.root.children[0]
        assert tree.parent_of(child) is tree.root
        assert tree.parent_of(tree.root) is None

    def test_subtree_variables(self, tree):
        assert tree.root.subtree_variables() == frozenset({"a", "b", "c"})


class TestPrecedencePoset:
    def test_chain_precedence(self):
        query = simple_query(
            {"a": "sum", "b": "max", "c": "sum"},
            scopes=[("a", "b"), ("b", "c")],
        )
        pairs = build_expression_tree(query).precedence_pairs()
        assert ("a", "b") in pairs
        assert ("b", "c") in pairs
        assert ("a", "c") in pairs
        assert ("c", "a") not in pairs

    def test_free_variables_precede_everything(self):
        query = simple_query(
            {"f": "sum", "a": "sum", "b": "max"},
            scopes=[("f", "a"), ("a", "b")],
            free=("f",),
        )
        pairs = build_expression_tree(query).precedence_pairs()
        assert ("f", "a") in pairs and ("f", "b") in pairs

    def test_predecessor_map(self):
        query = simple_query(
            {"a": "sum", "b": "max"},
            scopes=[("a", "b")],
        )
        tree = build_expression_tree(query)
        predecessors = tree.precedence_predecessors()
        assert predecessors["b"] == {"a"}
        assert predecessors["a"] == set()

    def test_random_queries_have_antisymmetric_posets(self):
        for seed in range(30):
            query = small_random_query(seed + 2000, allow_products=True)
            pairs = build_expression_tree(query).precedence_pairs()
            for u, v in pairs:
                assert (v, u) not in pairs

"""Tests for the PGM substrate: models, brute force, junction tree, solvers."""

import pytest

from repro.datasets.pgm_models import chain_model, grid_model, random_sparse_model, star_model
from repro.factors.factor import Factor
from repro.pgm.brute import brute_force_map, brute_force_marginal, brute_force_partition
from repro.pgm.junction_tree import JunctionTree, junction_tree_map, junction_tree_marginal
from repro.pgm.model import DiscreteGraphicalModel, PGMError
from repro.solvers.pgm import (
    compare_marginal_inference,
    map_insideout,
    marginal_insideout,
    marginal_junction_tree,
    marginal_variable_elimination,
    partition_function_insideout,
)


@pytest.fixture
def small_model():
    return random_sparse_model(5, 5, max_arity=2, domain_size=2, density=0.9, seed=3)


class TestModel:
    def test_unnormalized_probability(self):
        model = DiscreteGraphicalModel(
            {"X": (0, 1), "Y": (0, 1)},
            [Factor(("X", "Y"), {(0, 0): 0.5, (1, 1): 2.0})],
        )
        assert model.unnormalized_probability({"X": 1, "Y": 1}) == 2.0
        assert model.unnormalized_probability({"X": 0, "Y": 1}) == 0.0

    def test_negative_factor_rejected(self):
        with pytest.raises(PGMError):
            DiscreteGraphicalModel({"X": (0, 1)}, [Factor(("X",), {(0,): -1.0})])

    def test_unknown_scope_variable_rejected(self):
        with pytest.raises(PGMError):
            DiscreteGraphicalModel({"X": (0, 1)}, [Factor(("Z",), {(0,): 1.0})])

    def test_empty_domain_rejected(self):
        with pytest.raises(PGMError):
            DiscreteGraphicalModel({"X": ()}, [])

    def test_condition_absorbs_evidence(self, small_model):
        variable = small_model.variables[0]
        value = small_model.domain(variable)[0]
        conditioned = small_model.condition({variable: value})
        assert variable not in conditioned.variables

    def test_condition_validates_evidence(self, small_model):
        with pytest.raises(PGMError):
            small_model.condition({"nope": 0})
        with pytest.raises(PGMError):
            small_model.condition({small_model.variables[0]: "bad-value"})

    def test_query_constructions(self, small_model):
        target = small_model.variables[0]
        marginal = small_model.marginal_query([target])
        assert marginal.free == (target,)
        assert all(a.tag == "sum" for a in marginal.aggregates.values())
        map_query = small_model.map_query([target])
        assert all(a.tag == "max" for a in map_query.aggregates.values())
        assert small_model.partition_function_query().free == ()


class TestBruteForce:
    def test_partition_function_of_independent_variables(self):
        model = DiscreteGraphicalModel(
            {"X": (0, 1), "Y": (0, 1)},
            [Factor(("X",), {(0,): 1.0, (1,): 2.0}), Factor(("Y",), {(0,): 3.0, (1,): 4.0})],
        )
        assert brute_force_partition(model) == pytest.approx(3.0 * 7.0)

    def test_marginal_sums_to_partition(self, small_model):
        target = small_model.variables[0]
        marginal = brute_force_marginal(small_model, [target])
        assert sum(marginal.values()) == pytest.approx(brute_force_partition(small_model))

    def test_map_is_max_of_joint(self):
        model = chain_model(3, domain_size=2, seed=1)
        target = model.variables[0]
        max_marginals = brute_force_map(model, [target])
        assert max(max_marginals.values()) <= brute_force_partition(model)


class TestJunctionTree:
    @pytest.mark.parametrize(
        "model",
        [
            chain_model(5, domain_size=3, seed=2),
            star_model(4, domain_size=2, seed=3),
            grid_model(2, 3, domain_size=2, seed=4),
            random_sparse_model(6, 6, max_arity=3, domain_size=2, density=0.8, seed=5),
        ],
    )
    def test_partition_function_matches_brute_force(self, model):
        tree = JunctionTree(model, mode="sum")
        assert tree.partition_function() == pytest.approx(brute_force_partition(model), rel=1e-9)

    def test_marginals_match_brute_force(self):
        model = grid_model(2, 2, domain_size=2, seed=7)
        for variable in model.variables:
            expected = brute_force_marginal(model, [variable])
            got = junction_tree_marginal(model, variable)
            for value, weight in got.items():
                assert weight == pytest.approx(expected.get((value,), 0.0), abs=1e-9)

    def test_max_marginals_match_brute_force(self):
        model = chain_model(4, domain_size=2, seed=8)
        variable = model.variables[1]
        expected = brute_force_map(model, [variable])
        got = junction_tree_map(model, variable)
        for value, weight in got.items():
            assert weight == pytest.approx(expected.get((value,), 0.0), abs=1e-9)

    def test_joint_marginal_within_a_bag(self):
        model = chain_model(4, domain_size=2, seed=9)
        tree = JunctionTree(model, mode="sum")
        pair = None
        for bag in tree.bags.values():
            if len(bag) >= 2:
                pair = tuple(bag)[:2]
                break
        expected = brute_force_marginal(model, list(pair))
        got = tree.joint_marginal(pair)
        for key, weight in got.items():
            assert weight == pytest.approx(expected.get(key, 0.0), abs=1e-9)

    def test_out_of_clique_joint_marginal_rejected(self):
        model = chain_model(6, domain_size=2, seed=10)
        tree = JunctionTree(model, mode="sum")
        ends = (model.variables[0], model.variables[-1])
        with pytest.raises(PGMError):
            tree.joint_marginal(ends)

    def test_unknown_mode_rejected(self, small_model):
        with pytest.raises(PGMError):
            JunctionTree(small_model, mode="median")

    def test_dense_cell_count_reflects_treewidth(self):
        model = grid_model(2, 3, domain_size=3, seed=11)
        tree = JunctionTree(model, mode="sum")
        assert tree.largest_potential_cells >= 3 ** tree.max_bag_size / 27


class TestSolverWrappers:
    def test_partition_function_agreement(self, small_model):
        expected = brute_force_partition(small_model)
        assert partition_function_insideout(small_model) == pytest.approx(expected)

    def test_marginal_agreement_across_engines(self, small_model):
        target = small_model.variables[0]
        expected = brute_force_marginal(small_model, [target])
        io = marginal_insideout(small_model, [target])
        ve = marginal_variable_elimination(small_model, [target])
        jt = marginal_junction_tree(small_model, target)
        for (value,), weight in expected.items():
            assert io.get((value,), 0.0) == pytest.approx(weight)
            assert ve.get((value,), 0.0) == pytest.approx(weight)
            assert jt.get(value, 0.0) == pytest.approx(weight)

    def test_map_agreement(self, small_model):
        target = small_model.variables[0]
        expected = brute_force_map(small_model, [target])
        got = map_insideout(small_model, [target])
        for (value,), weight in expected.items():
            assert got.get((value,), 0.0) == pytest.approx(weight)

    def test_comparison_report(self, small_model):
        target = small_model.variables[0]
        report = compare_marginal_inference(small_model, [target])
        assert report.insideout_max_intermediate >= 0
        assert report.junction_tree_dense_cells >= 1
        assert report.speedup_proxy > 0

"""Tests for the extra counting problems (permanent, weighted homomorphisms)."""

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.datasets.graphs import random_graph
from repro.solvers.counting import (
    count_weighted_homomorphisms,
    permanent,
    permanent_query,
    ryser_permanent,
)
from repro.solvers.joins import count_homomorphisms


def brute_force_permanent(matrix):
    size = matrix.shape[0]
    total = 0.0
    for perm in itertools.permutations(range(size)):
        product = 1.0
        for i, j in enumerate(perm):
            product *= matrix[i, j]
        total += product
    return total


class TestPermanent:
    @pytest.mark.parametrize("size", [1, 2, 3, 4])
    def test_matches_brute_force(self, size):
        rng = np.random.default_rng(size)
        matrix = rng.integers(0, 4, size=(size, size)).astype(float)
        assert permanent(matrix) == pytest.approx(brute_force_permanent(matrix))

    def test_matches_ryser(self):
        rng = np.random.default_rng(9)
        matrix = rng.random((4, 4))
        assert permanent(matrix) == pytest.approx(ryser_permanent(matrix))

    def test_identity_matrix(self):
        assert permanent(np.eye(4)) == pytest.approx(1.0)

    def test_all_ones_matrix_is_factorial(self):
        assert permanent(np.ones((4, 4))) == pytest.approx(24.0)

    def test_zero_row_gives_zero(self):
        matrix = np.ones((3, 3))
        matrix[1, :] = 0.0
        assert permanent(matrix) == pytest.approx(0.0)

    def test_non_square_rejected(self):
        with pytest.raises(Exception):
            permanent_query(np.ones((2, 3)))

    def test_query_structure(self):
        query = permanent_query(np.ones((3, 3)))
        assert query.num_variables == 3
        # 3 row factors + 3 pairwise all-different factors.
        assert len(query.factors) == 6


class TestWeightedHomomorphisms:
    def test_unit_weights_reduce_to_counting(self):
        graph = random_graph(10, 18, seed=2)
        pattern = nx.path_graph(3)
        weighted = count_weighted_homomorphisms(pattern, graph)
        assert weighted == pytest.approx(count_homomorphisms(pattern, graph))

    def test_single_edge_pattern_sums_weights(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        weights = {(0, 1): 2.0, (1, 2): 5.0}
        pattern = nx.path_graph(2)
        # Each data edge is counted in both orientations.
        expected = 2 * (2.0 + 5.0)
        assert count_weighted_homomorphisms(pattern, graph, weights) == pytest.approx(expected)

    def test_zero_weight_edges_do_not_contribute(self):
        graph = nx.cycle_graph(3)
        weights = {edge: 0.0 for edge in graph.edges}
        assert count_weighted_homomorphisms(nx.path_graph(2), graph, weights) == pytest.approx(0.0)

    def test_triangle_pattern_weighted(self):
        graph = nx.complete_graph(4)
        rng = np.random.default_rng(5)
        weights = {edge: float(rng.integers(1, 4)) for edge in graph.edges}
        # Reference: explicit sum over ordered vertex triples.
        def weight(u, v):
            return weights.get((u, v), weights.get((v, u), 0.0)) if graph.has_edge(u, v) else 0.0

        expected = 0.0
        for a in graph.nodes:
            for b in graph.nodes:
                for c in graph.nodes:
                    expected += weight(a, b) * weight(b, c) * weight(a, c)
        got = count_weighted_homomorphisms(nx.complete_graph(3), graph, weights)
        assert got == pytest.approx(expected)

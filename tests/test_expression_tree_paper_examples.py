"""Reproduction of the paper's expression-tree figures (Figures 2-6).

These tests check, node by node, that the compartmentalisation + compression
construction of Section 6 produces exactly the trees drawn in the paper for
Example 6.2 (Figures 2-3), Example 6.13, and Example 6.19 (Figures 4-6).
"""

import pytest

from repro.core.expression_tree import build_expression_tree
from repro.datasets.queries import (
    example_6_13_query,
    example_6_19_query,
    example_6_2_query,
)
from repro.semiring.aggregates import FREE_TAG, PRODUCT_TAG


def nodes_by_variables(tree):
    """Map frozenset(variables) -> node for easy lookup."""
    return {frozenset(node.variables): node for node in tree.iter_nodes()}


class TestExample62Figures2And3:
    """Figures 2-3: the final tree is {} → {1,2,4}Σ → [{3,7}max → {5}Σ, {6}max]."""

    @pytest.fixture
    def tree(self):
        return build_expression_tree(example_6_2_query())

    def test_root_is_empty_free_node(self, tree):
        assert tree.root.variables == []
        assert tree.root.tag == FREE_TAG
        assert len(tree.root.children) == 1

    def test_top_sum_node_is_1_2_4(self, tree):
        top = tree.root.children[0]
        assert frozenset(top.variables) == frozenset({"x1", "x2", "x4"})
        assert top.tag == "sum"

    def test_top_node_children_are_37_and_6(self, tree):
        top = tree.root.children[0]
        children = {frozenset(c.variables): c for c in top.children}
        assert frozenset({"x3", "x7"}) in children
        assert frozenset({"x6"}) in children
        assert children[frozenset({"x3", "x7"})].tag == "max"
        assert children[frozenset({"x6"})].tag == "max"

    def test_node_37_has_single_child_5(self, tree):
        top = tree.root.children[0]
        node37 = next(
            c for c in top.children if frozenset(c.variables) == frozenset({"x3", "x7"})
        )
        assert len(node37.children) == 1
        assert node37.children[0].variables == ["x5"]
        assert node37.children[0].tag == "sum"

    def test_node_6_is_a_leaf(self, tree):
        top = tree.root.children[0]
        node6 = next(c for c in top.children if frozenset(c.variables) == frozenset({"x6"}))
        assert node6.children == []

    def test_every_variable_appears_exactly_once(self, tree):
        seen = []
        for node in tree.iter_nodes():
            seen.extend(node.variables)
        assert sorted(seen) == sorted(f"x{i}" for i in range(1, 8))


class TestExample613:
    """Example 6.13: root {} → {1,3}Σ → {2}max and EVO has exactly 3 members."""

    @pytest.fixture
    def tree(self):
        return build_expression_tree(example_6_13_query())

    def test_shape(self, tree):
        assert tree.root.variables == []
        top = tree.root.children[0]
        assert frozenset(top.variables) == frozenset({"x1", "x3"})
        assert top.tag == "sum"
        assert len(top.children) == 1
        assert top.children[0].variables == ["x2"]
        assert top.children[0].tag == "max"

    def test_precedence_pairs(self, tree):
        pairs = tree.precedence_pairs()
        assert ("x1", "x2") in pairs
        assert ("x3", "x2") in pairs
        assert ("x1", "x3") not in pairs and ("x3", "x1") not in pairs


class TestExample619Figures4To6:
    """Figures 4-6: root {} → {1,2,6}max with children {5,7}∏, {3,4}Σ, {7}∏ → {8}max, {7}∏."""

    @pytest.fixture
    def tree(self):
        return build_expression_tree(example_6_19_query())

    def test_root_and_top_node(self, tree):
        assert tree.root.tag == FREE_TAG
        assert len(tree.root.children) == 1
        top = tree.root.children[0]
        assert frozenset(top.variables) == frozenset({"x1", "x2", "x6"})
        assert top.tag == "max"

    def test_top_node_children_variable_sets(self, tree):
        from collections import Counter

        top = tree.root.children[0]
        child_sets = Counter(
            (tuple(sorted(c.variables)), c.tag) for c in top.children
        )
        expected = Counter(
            [
                (("x5", "x7"), PRODUCT_TAG),
                (("x3", "x4"), "sum"),
                (("x7",), PRODUCT_TAG),
                (("x7",), PRODUCT_TAG),
            ]
        )
        assert child_sets == expected

    def test_one_x7_copy_has_the_x8_child(self, tree):
        top = tree.root.children[0]
        x7_nodes = [c for c in top.children if frozenset(c.variables) == frozenset({"x7"})]
        children_counts = sorted(len(c.children) for c in x7_nodes)
        assert children_counts == [0, 1]
        with_child = next(c for c in x7_nodes if c.children)
        assert with_child.children[0].variables == ["x8"]
        assert with_child.children[0].tag == "max"

    def test_product_variable_copies(self, tree):
        # x7 occurs in three nodes (the dangling node {5,7} plus two copies).
        occurrences = sum(1 for node in tree.iter_nodes() if "x7" in node.variables)
        assert occurrences == 3
        # x5 occurs only in the dangling node.
        assert sum(1 for node in tree.iter_nodes() if "x5" in node.variables) == 1

    def test_semiring_variables_appear_once(self, tree):
        for variable in ("x1", "x2", "x3", "x4", "x6", "x8"):
            assert sum(1 for n in tree.iter_nodes() if variable in n.variables) == 1

    def test_precedence_poset_is_antisymmetric(self, tree):
        pairs = tree.precedence_pairs()
        for u, v in pairs:
            assert (v, u) not in pairs

    def test_x8_is_below_x7_and_the_root_block(self, tree):
        pairs = tree.precedence_pairs()
        assert ("x7", "x8") in pairs
        assert ("x1", "x8") in pairs
        assert ("x1", "x3") in pairs

"""Tests for the join/counting and CSP application layers."""

import networkx as nx
import pytest

from repro.datasets.graphs import clique_pattern, cycle_pattern, random_graph
from repro.datasets.relations import cycle_query_relations, path_query_relations
from repro.db.generic_join import generic_join
from repro.solvers.csp import CSP, Constraint, count_proper_colorings, graph_coloring_csp, is_k_colorable
from repro.solvers.joins import (
    count_homomorphisms,
    count_join_results,
    count_triangles,
    homomorphism_count_query,
    natural_join_insideout,
    natural_join_query,
    triangle_join_relations,
)


class TestNaturalJoin:
    def test_join_query_structure(self):
        rels = path_query_relations(2, 4, 8, seed=1)
        query = natural_join_query(rels)
        assert query.num_free == query.num_variables
        assert len(query.factors) == 2

    @pytest.mark.parametrize("maker,args", [
        (path_query_relations, (3, 5, 15)),
        (cycle_query_relations, (3, 5, 15)),
        (cycle_query_relations, (4, 4, 12)),
    ])
    def test_insideout_join_matches_generic_join(self, maker, args):
        rels = maker(*args, seed=7)
        expected = generic_join(rels)
        got = natural_join_insideout(rels)
        assert got.project(expected.schema).tuples == expected.tuples

    def test_count_join_results(self):
        rels = path_query_relations(2, 4, 10, seed=3)
        assert count_join_results(rels) == len(generic_join(rels))


class TestPatternCounting:
    def test_triangle_count_matches_networkx(self):
        graph = random_graph(25, 70, seed=5)
        assert count_triangles(graph) == sum(nx.triangles(graph).values()) // 3

    def test_triangle_count_on_triangle_free_graph(self):
        graph = nx.cycle_graph(8)
        assert count_triangles(graph) == 0

    def test_homomorphism_count_of_single_edge_is_twice_edges(self):
        graph = random_graph(10, 20, seed=6)
        pattern = nx.path_graph(2)
        assert count_homomorphisms(pattern, graph) == 2 * graph.number_of_edges()

    def test_four_cycle_homomorphisms_match_trace_formula(self):
        import numpy as np

        graph = random_graph(12, 30, seed=8)
        adjacency = nx.to_numpy_array(graph)
        expected = int(np.trace(np.linalg.matrix_power(adjacency, 4)))
        assert count_homomorphisms(cycle_pattern(4), graph) == expected

    def test_clique_query_width(self):
        query = homomorphism_count_query(clique_pattern(3), random_graph(6, 10, seed=9))
        from repro.core.faqw import faq_width_of_query

        assert faq_width_of_query(query) == pytest.approx(1.5)

    def test_triangle_join_relations_shape(self):
        rels = triangle_join_relations(random_graph(8, 15, seed=10))
        assert [r.schema for r in rels] == [("A", "B"), ("B", "C"), ("A", "C")]


class TestCSP:
    def test_count_solutions_matches_brute_force(self):
        domains = {"a": (0, 1, 2), "b": (0, 1, 2), "c": (0, 1)}
        constraints = [
            Constraint.from_predicate(("a", "b"), domains, lambda a, b: a != b),
            Constraint.from_predicate(("b", "c"), domains, lambda b, c: b >= c),
        ]
        csp = CSP(domains, constraints)
        assert csp.count_solutions() == csp.count_solutions_brute_force()

    def test_satisfiability_and_enumeration_agree(self):
        domains = {"a": (0, 1), "b": (0, 1)}
        constraints = [Constraint(("a", "b"), ((0, 1),))]
        csp = CSP(domains, constraints)
        assert csp.is_satisfiable()
        assert csp.solutions() == [{"a": 0, "b": 1}]

    def test_unsatisfiable_instance(self):
        domains = {"a": (0, 1)}
        constraints = [Constraint(("a",), ())]
        csp = CSP(domains, constraints)
        assert not csp.is_satisfiable()
        assert csp.count_solutions() == 0

    def test_unknown_constraint_variable_rejected(self):
        with pytest.raises(Exception):
            CSP({"a": (0, 1)}, [Constraint(("z",), ((0,),))])


class TestGraphColoring:
    def test_chromatic_polynomial_of_cycle(self):
        # Proper k-colourings of C_n: (k-1)^n + (-1)^n (k-1).
        for n, k in [(4, 3), (5, 3), (5, 2)]:
            expected = (k - 1) ** n + (-1) ** n * (k - 1)
            assert count_proper_colorings(nx.cycle_graph(n), k) == expected

    def test_complete_graph_colorability(self):
        assert is_k_colorable(nx.complete_graph(4), 4)
        assert not is_k_colorable(nx.complete_graph(4), 3)

    def test_bipartite_graph_is_two_colorable(self):
        assert is_k_colorable(nx.cycle_graph(6), 2)
        assert not is_k_colorable(nx.cycle_graph(5), 2)

    def test_edgeless_graph(self):
        graph = nx.empty_graph(4)
        assert is_k_colorable(graph, 1)
        assert count_proper_colorings(graph, 3) == 81

    def test_coloring_csp_structure(self):
        csp = graph_coloring_csp(nx.path_graph(3), 2)
        assert len(csp.constraints) == 2
        assert csp.count_solutions() == 2

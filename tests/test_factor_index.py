"""Unit tests for the factor trie index (:mod:`repro.factors.index`)."""

import pytest

from repro.factors.factor import Factor
from repro.factors.index import FactorTrie, build_tries
from repro.semiring.standard import COUNTING


@pytest.fixture
def psi():
    return Factor(
        ("A", "B", "C"),
        {(0, 0, 0): 1, (0, 1, 0): 2, (1, 0, 1): 3, (1, 1, 1): 4},
    )


class TestTrieConstruction:
    def test_levels_follow_global_order(self, psi):
        trie = FactorTrie(psi, ["C", "A", "B"], COUNTING)
        assert trie.variables == ("C", "A", "B")
        assert trie.depth == 3

    def test_missing_order_variable_raises(self, psi):
        with pytest.raises(ValueError):
            FactorTrie(psi, ["A", "B"], COUNTING)

    def test_zero_entries_are_skipped(self):
        factor = Factor(("A",), {(0,): 0, (1,): 2})
        trie = FactorTrie(factor, ["A"], COUNTING)
        assert trie.candidate_values(()) == {1}

    def test_empty_scope_factor(self):
        constant = Factor((), {(): 5})
        trie = FactorTrie(constant, ["A"], COUNTING)
        assert trie.depth == 0
        assert trie.value(()) == 5


class TestTrieNavigation:
    def test_candidate_values_at_root(self, psi):
        trie = FactorTrie(psi, ["A", "B", "C"], COUNTING)
        assert trie.candidate_values(()) == {0, 1}

    def test_candidate_values_after_prefix(self, psi):
        trie = FactorTrie(psi, ["A", "B", "C"], COUNTING)
        assert trie.candidate_values((0,)) == {0, 1}
        assert trie.candidate_values((0, 1)) == {0}

    def test_candidate_values_for_absent_prefix(self, psi):
        trie = FactorTrie(psi, ["A", "B", "C"], COUNTING)
        assert trie.candidate_values((7,)) == set()

    def test_has_prefix(self, psi):
        trie = FactorTrie(psi, ["A", "B", "C"], COUNTING)
        assert trie.has_prefix((1, 1))
        assert not trie.has_prefix((1, 2))

    def test_full_tuple_value(self, psi):
        trie = FactorTrie(psi, ["A", "B", "C"], COUNTING)
        assert trie.value((1, 1, 1)) == 4
        assert trie.value((1, 1, 0), default=0) == 0

    def test_value_respects_reordered_levels(self, psi):
        trie = FactorTrie(psi, ["C", "B", "A"], COUNTING)
        # levels are (C, B, A): tuple (1, 0, 1) corresponds to A=1,B=0,C=1.
        assert trie.value((1, 0, 1)) == 3

    def test_children_returns_subtrie_nodes(self, psi):
        trie = FactorTrie(psi, ["A", "B", "C"], COUNTING)
        children = trie.children((0,))
        assert set(children) == {0, 1}


class TestBuildTries:
    def test_build_tries_indexes_every_factor(self, psi):
        other = Factor(("B",), {(0,): 1})
        tries = build_tries([psi, other], ["A", "B", "C"], COUNTING)
        assert len(tries) == 2
        assert tries[1].variables == ("B",)

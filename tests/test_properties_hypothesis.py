"""Property-based tests (hypothesis) for the core data structures and invariants."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.evo import is_equivalent_ordering, linear_extensions
from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, Variable
from repro.core.outsidein import enumerate_join
from repro.factors.factor import Factor
from repro.hypergraph.covers import fractional_edge_cover_number, integral_edge_cover_number
from repro.hypergraph.elimination import elimination_sequence
from repro.hypergraph.hypergraph import Hypergraph
from repro.semiring.aggregates import ProductAggregate, SemiringAggregate
from repro.semiring.standard import (
    COUNTING,
    MAX_PRODUCT,
    MAX_SUM,
    MIN_PLUS,
    MIN_PRODUCT,
)


# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #
VARIABLE_NAMES = ["a", "b", "c", "d"]


@st.composite
def factors(draw, names=VARIABLE_NAMES, max_arity=3, max_value=4):
    arity = draw(st.integers(1, min(max_arity, len(names))))
    scope = tuple(draw(st.permutations(names))[:arity])
    domain = (0, 1)
    entries = {}
    for values in itertools.product(domain, repeat=arity):
        value = draw(st.integers(0, max_value))
        if value:
            entries[values] = value
    return Factor(scope, entries)


@st.composite
def faq_queries(draw, allow_products=True):
    num_vars = draw(st.integers(2, 4))
    names = VARIABLE_NAMES[:num_vars]
    num_free = draw(st.integers(0, 1))
    free = names[:num_free]
    aggregates = {}
    for name in names[num_free:]:
        choice = draw(st.sampled_from(["sum", "max", "product"] if allow_products else ["sum", "max"]))
        if choice == "sum":
            aggregates[name] = SemiringAggregate.sum()
        elif choice == "max":
            aggregates[name] = SemiringAggregate.max()
        else:
            aggregates[name] = ProductAggregate.product()
    num_factors = draw(st.integers(1, 3))
    factor_list = [draw(factors(names=names)) for _ in range(num_factors)]
    return FAQQuery(
        variables=[Variable(v, (0, 1)) for v in names],
        free=free,
        aggregates=aggregates,
        factors=factor_list,
        semiring=COUNTING,
    )


@st.composite
def hypergraphs(draw):
    num_vars = draw(st.integers(2, 6))
    names = [f"v{i}" for i in range(num_vars)]
    num_edges = draw(st.integers(1, 6))
    edges = []
    for _ in range(num_edges):
        size = draw(st.integers(1, min(3, num_vars)))
        edges.append(tuple(draw(st.permutations(names))[:size]))
    return Hypergraph(names, edges)


# --------------------------------------------------------------------- #
# semiring / factor properties
# --------------------------------------------------------------------- #
@given(factors(), factors())
@settings(max_examples=60, deadline=None)
def test_factor_multiplication_is_commutative(left, right):
    product_lr = left.multiply(right, COUNTING)
    product_rl = right.multiply(left, COUNTING)
    assert product_lr.equals(product_rl, COUNTING)


@given(factors())
@settings(max_examples=60, deadline=None)
def test_indicator_projection_is_idempotent_valued(factor):
    projection = factor.indicator_projection(factor.scope, COUNTING)
    assert all(COUNTING.is_one(v) for v in projection.table.values())
    assert set(projection.table) == set(factor.table)


@given(factors(), st.sampled_from(VARIABLE_NAMES))
@settings(max_examples=60, deadline=None)
def test_aggregate_then_restrict_consistency(factor, variable):
    """Summing a variable out never increases the factor size."""
    if variable not in factor.scope:
        return
    reduced = factor.aggregate_marginalize(variable, lambda a, b: a + b, COUNTING)
    assert len(reduced) <= len(factor)
    assert variable not in reduced.scope


# --------------------------------------------------------------------- #
# join properties
# --------------------------------------------------------------------- #
@given(st.lists(factors(), min_size=1, max_size=3))
@settings(max_examples=40, deadline=None)
def test_outsidein_matches_nested_loops(factor_list):
    names = sorted({v for f in factor_list for v in f.scope})
    expected = {}
    for values in itertools.product((0, 1), repeat=len(names)):
        assignment = dict(zip(names, values))
        product = 1
        for factor in factor_list:
            product *= factor.value(assignment, COUNTING)
        if product:
            expected[values] = product
    got = {
        tuple(assignment[v] for v in names): value
        for assignment, value in enumerate_join(factor_list, COUNTING, names)
    }
    assert got == expected


# --------------------------------------------------------------------- #
# hypergraph properties
# --------------------------------------------------------------------- #
@given(hypergraphs())
@settings(max_examples=50, deadline=None)
def test_fractional_cover_lower_bounds_integral_cover(hypergraph):
    covered = set()
    for edge in hypergraph.edges:
        covered |= edge
    if not covered:
        return
    fractional = fractional_edge_cover_number(hypergraph, covered)
    integral = integral_edge_cover_number(hypergraph, covered)
    assert fractional <= integral + 1e-9


@given(hypergraphs(), st.randoms())
@settings(max_examples=50, deadline=None)
def test_elimination_sequence_unions_cover_incident_edges(hypergraph, rng):
    ordering = sorted(hypergraph.vertices, key=repr)
    rng.shuffle(ordering)
    steps = elimination_sequence(hypergraph, ordering)
    assert [s.vertex for s in steps] == ordering
    for step in steps:
        for edge in step.incident:
            assert edge <= step.union
        assert step.vertex in step.union


@given(hypergraphs())
@settings(max_examples=30, deadline=None)
def test_monotonicity_of_fractional_cover(hypergraph):
    covered = set()
    for edge in hypergraph.edges:
        covered |= edge
    covered = sorted(covered, key=repr)
    if len(covered) < 2:
        return
    small = set(covered[: len(covered) // 2])
    assert fractional_edge_cover_number(hypergraph, small) <= fractional_edge_cover_number(
        hypergraph, covered
    ) + 1e-9


# --------------------------------------------------------------------- #
# tropical semiring and factor-algebra properties
#
# The tropical semirings carry an *infinite* additive identity
# (0 = +inf for min-plus / min-product, 0 = -inf for max-sum).  Before the
# Semiring.values_equal fix, the relative-tolerance float comparison
# declared every value equal to the infinite identity, which silently
# zero-pruned entire tropical factors.  These properties pin the axioms and
# the factor algebra over those semirings so that class of bug cannot recur.
# --------------------------------------------------------------------- #
TROPICALS = [MIN_PLUS, MAX_SUM, MAX_PRODUCT, MIN_PRODUCT]

finite_weights = st.floats(
    min_value=0.001, max_value=100.0, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite_weights, min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_tropical_semiring_axioms(values):
    """check_axioms holds on finite samples extended with the identities.

    (min-product values stay strictly positive, matching its documented
    domain ``[0, ∞]`` minus the ``inf · 0 = nan`` corner.)
    """
    for semiring in TROPICALS:
        semiring.check_axioms(list(values) + [semiring.zero, semiring.one])


@given(finite_weights)
@settings(max_examples=60, deadline=None)
def test_finite_value_is_never_the_infinite_zero(value):
    """The values_equal regression: finite values differ from ±inf zeros."""
    for semiring in TROPICALS:
        assert semiring.is_zero(semiring.zero)
        assert not semiring.is_zero(value)
        assert not semiring.values_equal(value, semiring.zero)
        assert not semiring.values_equal(semiring.zero, value)


@given(st.floats(min_value=0.001, max_value=100.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_tropical_mul_idempotence_characterisation(value):
    """``v ⊗ v = v`` only at the expected fixed points of each ``⊗``."""
    # min-plus / max-sum: v + v = v only at v = 0 (and the infinite zero).
    assert MIN_PLUS.is_mul_idempotent(0.0)
    assert MIN_PLUS.is_mul_idempotent(MIN_PLUS.zero)
    assert not MIN_PLUS.is_mul_idempotent(value)
    assert not MAX_SUM.is_mul_idempotent(value)
    # max-product: v * v = v only at v in {0, 1}.
    assert MAX_PRODUCT.is_mul_idempotent(0.0)
    assert MAX_PRODUCT.is_mul_idempotent(1.0)
    if abs(value - 1.0) > 1e-6:
        assert not MAX_PRODUCT.is_mul_idempotent(value)


@st.composite
def tropical_factors(draw, names=VARIABLE_NAMES, max_arity=3):
    arity = draw(st.integers(1, min(max_arity, len(names))))
    scope = tuple(draw(st.permutations(names))[:arity])
    entries = {}
    for values in itertools.product((0, 1), repeat=arity):
        if draw(st.booleans()):
            entries[values] = draw(finite_weights)
    return Factor(scope, entries)


@given(tropical_factors(), tropical_factors())
@settings(max_examples=40, deadline=None)
def test_tropical_factor_multiplication_is_commutative(left, right):
    for semiring in TROPICALS:
        product_lr = left.multiply(right, semiring)
        product_rl = right.multiply(left, semiring)
        assert product_lr.equals(product_rl, semiring)


@given(tropical_factors())
@settings(max_examples=40, deadline=None)
def test_tropical_pruning_keeps_finite_values(factor):
    """Pruning drops only true (infinite) zeros — the old bug dropped all."""
    for semiring in (MIN_PLUS, MAX_SUM):
        padded = Factor(
            factor.scope,
            {**factor.table, (9,) * len(factor.scope): semiring.zero},
        )
        pruned = padded.pruned(semiring)
        assert set(pruned.table) == set(factor.table)
        assert all(not semiring.is_zero(v) for v in pruned.table.values())


@given(tropical_factors(), st.sampled_from(VARIABLE_NAMES))
@settings(max_examples=40, deadline=None)
def test_min_plus_marginalisation_matches_manual(factor, variable):
    if variable not in factor.scope:
        return
    reduced = factor.aggregate_marginalize(
        variable, lambda a, b: a if a <= b else b, MIN_PLUS
    )
    index = factor.scope.index(variable)
    expected = {}
    for key, value in factor.table.items():
        rest = key[:index] + key[index + 1:]
        expected[rest] = min(expected.get(rest, MIN_PLUS.zero), value)
    assert variable not in reduced.scope
    for key, value in expected.items():
        assert MIN_PLUS.values_equal(reduced.table.get(key, MIN_PLUS.zero), value)


@st.composite
def tropical_queries(draw):
    num_vars = draw(st.integers(2, 4))
    names = VARIABLE_NAMES[:num_vars]
    num_free = draw(st.integers(0, 1))
    aggregates = {}
    for name in names[num_free:]:
        if draw(st.booleans()):
            aggregates[name] = ProductAggregate.product()
        else:
            aggregates[name] = SemiringAggregate.min()
    factor_list = [draw(tropical_factors(names=names)) for _ in range(draw(st.integers(1, 3)))]
    return FAQQuery(
        variables=[Variable(v, (0, 1)) for v in names],
        free=names[:num_free],
        aggregates=aggregates,
        factors=factor_list,
        semiring=MIN_PLUS,
    )


@given(tropical_queries())
@settings(max_examples=40, deadline=None)
def test_insideout_matches_brute_force_on_min_plus(query):
    expected = query.evaluate_brute_force()
    got = inside_out(query).factor
    assert expected.equals(got, MIN_PLUS)


# --------------------------------------------------------------------- #
# engine invariants
# --------------------------------------------------------------------- #
@given(faq_queries())
@settings(max_examples=40, deadline=None)
def test_insideout_matches_brute_force(query):
    expected = query.evaluate_brute_force()
    got = inside_out(query).factor
    assert expected.equals(got, query.semiring)


@given(faq_queries(allow_products=False))
@settings(max_examples=25, deadline=None)
def test_linear_extensions_are_equivalent_orderings(query):
    expected = query.evaluate_brute_force()
    for extension in itertools.islice(linear_extensions(query), 3):
        assert is_equivalent_ordering(query, extension)
        result = inside_out(query, ordering=list(extension)).factor
        assert expected.equals(result, query.semiring)


@given(faq_queries())
@settings(max_examples=25, deadline=None)
def test_factorized_output_agrees_with_listing(query):
    listing = inside_out(query).factor
    factorized = inside_out(query, output_mode="factorized").factorized
    assert factorized.to_factor().equals(listing, query.semiring)

"""The shared-memory process-pool executor backend and its fleet plumbing.

Covers the ``workers_mode="process"`` contract end to end:

* bit-identity with the serial run (tables, step records, join counters)
  on genuinely parallel multi-block queries and on the planner
  differential harness's random family;
* graceful degradation when a worker process dies mid-step (retry
  in-process, finish serially, never hang);
* transparent fallback to the thread pool when the run context cannot
  cross the process boundary (lambda semirings);
* the digest-keyed :class:`~repro.exec.StepResultCache` working through
  the process scheduler (exactly-once compute, replay on repeat);
* ``workers="auto"`` resolution and argument validation;
* the shared-memory stores themselves (:class:`~repro.exec.ShmBlobStore`,
  :class:`~repro.exec.SharedCacheStore`) and the replica fleet adopting
  the parent's published warm caches at startup.

The ``FAQ_BENCH_STRICT=1`` scaling gate (process workers=4 at least 2x
workers=1) lives here too, guarded on a >=4-core machine.
"""

import dataclasses
import itertools
import os
import random
import time

import pytest

from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, QueryError, Variable
from repro.exec import (
    AUTO_WORKERS_CAP,
    DagExecutor,
    SharedCacheStore,
    ShmBlobStore,
    StepResultCache,
    lower_insideout,
    read_blob,
    validate_workers,
)
from repro.exec import procpool
from repro.factors.backend import BackendPolicy
from repro.factors.factor import Factor
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import BOOLEAN, MAX_PRODUCT, MIN_PLUS

from test_exec_parallel import _assert_identical
from test_planner_differential import SEMIRINGS, _random_query

ELIGIBLE = {
    "max-product": (MAX_PRODUCT, lambda rng: round(rng.uniform(0.1, 2.0), 3),
                    SemiringAggregate.max),
    "min-plus": (MIN_PLUS, lambda rng: round(rng.uniform(-1.0, 3.0), 3),
                 SemiringAggregate.min),
    "boolean": (BOOLEAN, lambda rng: True, SemiringAggregate.logical_or),
}


def _multi_block(name, seed, blocks=3, chain=3, domain=6, density=0.5):
    """Disjoint sparse chain blocks: real step-DAG parallelism."""
    semiring, value_of, aggregate_factory = ELIGIBLE[name]
    rng = random.Random(104_729 * seed + sum(ord(c) for c in name))
    variables, factors, aggregates = [], [], {}
    for block in range(blocks):
        names = [f"b{block}v{i}" for i in range(chain)]
        for v in names:
            variables.append(Variable(v, tuple(range(domain))))
            aggregates[v] = aggregate_factory()
        for left, right in zip(names, names[1:]):
            table = {
                values: value_of(rng)
                for values in itertools.product(range(domain), range(domain))
                if rng.random() < density
            }
            factors.append(Factor((left, right), table, name=f"{left}{right}"))
    return FAQQuery(
        variables=variables, free=[], aggregates=aggregates,
        factors=factors, semiring=semiring,
    )


# ---------------------------------------------------------------------- #
# bit-identity
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(ELIGIBLE))
@pytest.mark.parametrize("seed", range(3))
def test_process_matches_serial_on_multi_block(name, seed):
    query = _multi_block(name, seed)
    serial = inside_out(query, backend="sparse")
    for workers in (2, 4):
        executor = DagExecutor(workers=workers, workers_mode="process")
        parallel = executor.run(query, backend="sparse")
        _assert_identical(
            serial, parallel, f"{name}/seed={seed}/process-workers={workers}"
        )
        info = executor.last_process_info
        assert info is not None and info["remote_steps"] > 0, (
            f"{name}/seed={seed}: the pool never executed a step remotely"
        )
        assert not info["degraded"]


@pytest.mark.parametrize("name", sorted(SEMIRINGS))
@pytest.mark.parametrize("seed", range(4))
def test_process_matches_serial_on_random_family(name, seed):
    # The harness's random family includes product aggregates, all-free
    # queries and unpicklable ("set") semirings — the latter exercise the
    # transparent thread fallback.
    query = _random_query(name, seed)
    serial = inside_out(query, ordering=None, backend="sparse")
    parallel = inside_out(
        query, ordering=None, backend="sparse", workers=4, workers_mode="process"
    )
    _assert_identical(serial, parallel, f"{name}/seed={seed}/process")


def test_flat_kernel_composes_with_process_pool():
    """Flat-kernel steps run inside worker processes bit-identically."""
    force_flat = BackendPolicy(flat_min_rows=0)
    no_flat = BackendPolicy(flat_enabled=False)
    query = _multi_block("max-product", 5)
    trie = inside_out(query, backend="sparse", backend_policy=no_flat)
    executor = DagExecutor(workers=4, workers_mode="process")
    flat = executor.run(query, backend="sparse", backend_policy=force_flat)
    assert flat.factor.table == trie.factor.table
    assert any(s.backend == "flat" for s in flat.stats.steps)
    assert executor.last_process_info["remote_steps"] > 0
    # And the flat backend labels match the serial flat run's exactly.
    serial_flat = inside_out(query, backend="sparse", backend_policy=force_flat)
    assert [s.backend for s in flat.stats.steps] == [
        s.backend for s in serial_flat.stats.steps
    ]


# ---------------------------------------------------------------------- #
# fault injection
# ---------------------------------------------------------------------- #
def test_worker_crash_degrades_to_serial_not_hang():
    query = _multi_block("max-product", 1)
    serial = inside_out(query, backend="sparse")
    # Poison the worker that receives step 0: it exits before replying.
    procpool._TEST_CRASH_NODES.add(0)
    try:
        executor = DagExecutor(workers=4, workers_mode="process")
        result = executor.run(query, backend="sparse")
    finally:
        procpool._TEST_CRASH_NODES.clear()
    _assert_identical(serial, result, "crash-recovery")
    info = executor.last_process_info
    assert info["degraded"], "a dead worker must degrade the pool"
    assert info["retried_steps"] >= 1, "the lost step must be retried in-process"
    assert info["remote_steps"] + info["local_steps"] == len(
        lower_insideout(query, list(serial.ordering))
        .nodes
    )


def test_crash_with_step_cache_resolves_claims():
    """A mid-run crash must not leave dangling in-flight cache claims."""
    query = _multi_block("min-plus", 2)
    serial = inside_out(query, backend="sparse")
    cache = StepResultCache()
    procpool._TEST_CRASH_NODES.add(1)
    try:
        executor = DagExecutor(workers=3, workers_mode="process")
        first = executor.run(query, backend="sparse", step_cache=cache)
    finally:
        procpool._TEST_CRASH_NODES.clear()
    _assert_identical(serial, first, "crash+cache")
    # A later run on the same cache replays everything (nothing wedged).
    second = inside_out(query, backend="sparse", step_cache=cache)
    _assert_identical(serial, second, "crash+cache/replay")
    assert cache.replayed > 0


# ---------------------------------------------------------------------- #
# fallbacks and caching
# ---------------------------------------------------------------------- #
def test_unpicklable_context_falls_back_to_threads():
    lambda_semiring = dataclasses.replace(MAX_PRODUCT, mul=lambda a, b: a * b)
    query = _multi_block("max-product", 3)
    query = FAQQuery(
        variables=[query.variables[v] for v in query.order],
        free=list(query.free),
        aggregates=dict(query.aggregates),
        factors=list(query.factors),
        semiring=lambda_semiring,
    )
    serial = inside_out(query, backend="sparse")
    executor = DagExecutor(workers=4, workers_mode="process")
    result = executor.run(query, backend="sparse")
    assert executor.last_process_info is None, "pool should refuse lambda semirings"
    _assert_identical(serial, result, "thread-fallback")


def test_step_cache_through_process_scheduler():
    query = _multi_block("max-product", 4)
    serial = inside_out(query, backend="sparse")
    cache = StepResultCache()
    executor = DagExecutor(workers=4, workers_mode="process")
    cold = executor.run(query, backend="sparse", step_cache=cache)
    _assert_identical(serial, cold, "process-cache/cold")
    computed_after_cold = cache.computed
    warm = executor.run(query, backend="sparse", step_cache=cache)
    _assert_identical(serial, warm, "process-cache/warm")
    assert cache.computed == computed_after_cold, "warm run recomputed a step"
    assert cache.replayed >= computed_after_cold


# ---------------------------------------------------------------------- #
# workers="auto" and validation
# ---------------------------------------------------------------------- #
def test_workers_auto_resolution():
    resolved = validate_workers("auto")
    assert isinstance(resolved, int)
    assert 1 <= resolved <= AUTO_WORKERS_CAP
    assert resolved <= max(os.cpu_count() or 1, 1)
    query = _random_query("counting", 3)
    serial = inside_out(query)
    auto = inside_out(query, workers="auto")
    assert auto.factor.table == serial.factor.table
    executor = DagExecutor(workers="auto")
    assert executor.workers == resolved


def test_workers_validation_still_rejects_junk():
    query = _random_query("counting", 0)
    for bad in (0, -2, True, "automatic", 1.5):
        with pytest.raises(QueryError):
            inside_out(query, workers=bad)
    with pytest.raises(QueryError):
        DagExecutor(workers=2, workers_mode="fibers")
    with pytest.raises(QueryError):
        inside_out(query, workers=2, workers_mode="fibers")


def test_plan_server_accepts_auto_and_validates_mode():
    from repro.serve.server import PlanServer

    with PlanServer(workers="auto") as server:
        assert isinstance(server.workers, int) and server.workers >= 1
        assert server.workers_mode == "thread"
    with pytest.raises(QueryError):
        PlanServer(workers_mode="greenlets")


# ---------------------------------------------------------------------- #
# the shared-memory stores
# ---------------------------------------------------------------------- #
def test_blob_store_roundtrip_and_idempotence():
    store = ShmBlobStore()
    try:
        value = {"table": {(1, 2): 3.5}, "scope": ("x", "y")}
        name = store.put("k1", value)
        assert store.put("k1", {"other": True}) == name, "put must be idempotent"
        assert store.name_for("k1") == name
        assert store.name_for("missing") is None
        assert read_blob(name) == value
        assert len(store) == 1
    finally:
        store.close()
    assert len(store) == 0


def test_shared_cache_store_roundtrip_and_rejection():
    sections = {"rho_star": {"kind": "k", "version": 1, "entries": [(1, 2.0)]}}
    store = SharedCacheStore.publish(sections)
    try:
        assert SharedCacheStore.adopt(store.name) == sections
    finally:
        store.close()
    # Best-effort contract: anything invalid adopts nothing.
    assert SharedCacheStore.adopt(None) == {}
    assert SharedCacheStore.adopt("") == {}
    assert SharedCacheStore.adopt("psm_does_not_exist_xyz") == {}
    blob_store = ShmBlobStore()
    try:
        # A blob segment is not a cache store (no checksum) — rejected.
        name = blob_store.put("k", [1, 2, 3])
        assert SharedCacheStore.adopt(name) == {}
    finally:
        blob_store.close()


def test_cache_section_dump_and_adopt():
    from repro.hypergraph.covers import (
        adopt_rho_star_section,
        dump_rho_star_section,
    )
    from repro.planner import plan
    from repro.planner.cache import PlanCache

    query = _random_query("max-product", 9)
    cache = PlanCache()
    plan(query, cache=cache)  # warms both the plan cache and the rho* memo
    plans = cache.dump_section()
    assert plans["entries"], "planning should have cached a plan"
    other = PlanCache()
    assert other.adopt_section(plans) == len(plans["entries"])
    assert other.adopt_section({"kind": "wrong", "version": 0, "entries": []}) == 0
    rho = dump_rho_star_section()
    assert adopt_rho_star_section(rho) == len(rho["entries"])
    assert adopt_rho_star_section(None) == 0


def test_cold_replica_adopts_fleet_warm_caches():
    """The satellite-6 contract: a cold replica starts fleet-warm."""
    from repro.engine import Engine

    query = _multi_block("max-product", 6)
    engine = Engine()
    warm = engine.query(query)  # warms the engine plan cache + rho* memo
    with engine.serve(replicas=1, health_interval=None) as tier:
        results = tier.serve_batch([query])
        assert results[0].factor.table == warm.factor.table
        stats = tier._set.replicas[0].ping()
        assert stats is not None
        assert stats["shared_cache_adopted"] > 0, (
            "cold replica failed to adopt the published fleet caches"
        )
    engine.close()


# ---------------------------------------------------------------------- #
# the strict scaling gate
# ---------------------------------------------------------------------- #
@pytest.mark.skipif(
    not os.environ.get("FAQ_BENCH_STRICT"),
    reason="perf regression gates run under FAQ_BENCH_STRICT=1",
)
def test_process_scaling_beats_serial():
    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(f"needs >= 4 cores for the 2x gate, have {cpus}")
    query = _multi_block(
        "max-product", 0, blocks=4, chain=4, domain=24, density=0.6
    )
    serial = inside_out(query, backend="sparse")

    def timed(workers, mode):
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            result = inside_out(
                query, backend="sparse", workers=workers, workers_mode=mode
            )
            best = min(best, time.perf_counter() - started)
            assert result.factor.table == serial.factor.table
        return best

    t1 = timed(1, "thread")
    t4 = timed(4, "process")
    assert t1 / t4 >= 2.0, (
        f"process workers=4 only {t1 / t4:.2f}x over workers=1 "
        f"(serial {t1 * 1e3:.1f}ms, parallel {t4 * 1e3:.1f}ms)"
    )

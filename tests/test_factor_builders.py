"""Unit tests for the factor builders (:mod:`repro.factors.builders`)."""

import numpy as np
import pytest

from repro.factors.builders import (
    factor_from_function,
    factor_from_matrix,
    factor_from_relation,
    factor_from_vector,
    indicator_factor,
    uniform_factor,
)
from repro.factors.factor import FactorError
from repro.semiring.standard import BOOLEAN, COUNTING, SUM_PRODUCT


DOMAINS = {"A": (0, 1, 2), "B": (0, 1)}


class TestFromFunction:
    def test_materialises_non_zero_entries_only(self):
        factor = factor_from_function(
            ("A", "B"), DOMAINS, lambda a, b: a * b, COUNTING
        )
        assert factor.table == {(1, 1): 1, (2, 1): 2}

    def test_missing_domain_raises(self):
        with pytest.raises(FactorError):
            factor_from_function(("A", "Z"), DOMAINS, lambda a, z: 1, COUNTING)

    def test_respects_semiring_zero(self):
        factor = factor_from_function(
            ("A",), DOMAINS, lambda a: a > 0, BOOLEAN
        )
        assert set(factor.table) == {(1,), (2,)}
        assert all(v is True for v in factor.table.values())


class TestFromRelation:
    def test_tuples_map_to_one(self):
        factor = factor_from_relation(("A", "B"), [(0, 1), (2, 0)], COUNTING)
        assert factor.table == {(0, 1): 1, (2, 0): 1}

    def test_boolean_relation(self):
        factor = factor_from_relation(("A",), [(0,)], BOOLEAN)
        assert factor.table == {(0,): True}


class TestFromMatrixAndVector:
    def test_matrix_entries(self):
        matrix = np.array([[0.0, 2.0], [3.0, 0.0]])
        factor = factor_from_matrix("i", "j", matrix, SUM_PRODUCT)
        assert factor.table == {(0, 1): 2.0, (1, 0): 3.0}

    def test_matrix_wrong_dimension_raises(self):
        with pytest.raises(FactorError):
            factor_from_matrix("i", "j", np.zeros(3), SUM_PRODUCT)

    def test_vector_entries(self):
        factor = factor_from_vector("i", np.array([0.0, 5.0, 1.5]), SUM_PRODUCT)
        assert factor.table == {(1,): 5.0, (2,): 1.5}

    def test_vector_wrong_dimension_raises(self):
        with pytest.raises(FactorError):
            factor_from_vector("i", np.zeros((2, 2)), SUM_PRODUCT)

    def test_matrix_values_are_python_scalars(self):
        factor = factor_from_matrix("i", "j", np.array([[1.5]]), SUM_PRODUCT)
        assert isinstance(factor.table[(0, 0)], float)


class TestIndicatorAndUniform:
    def test_indicator_factor_encodes_predicate(self):
        neq = indicator_factor(("A", "B"), DOMAINS, lambda a, b: a != b, COUNTING)
        assert (0, 0) not in neq.table
        assert neq.table[(2, 1)] == 1

    def test_uniform_factor_lists_full_product(self):
        factor = uniform_factor(("A", "B"), DOMAINS, 3, COUNTING)
        assert len(factor) == len(DOMAINS["A"]) * len(DOMAINS["B"])
        assert set(factor.table.values()) == {3}

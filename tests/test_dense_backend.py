"""Sparse/dense backend equivalence (the pluggable factor-backend layer).

Property-style tests asserting that the dense (ndarray) representation and
the sparse listing representation compute identical results: per-operation
on random factors across the standard semirings, and per-query through
InsideOut / variable elimination against the brute-force evaluator —
including empty-table and zero-annihilation edge cases.
"""

from __future__ import annotations

import itertools
import math
import random

import pytest

from _helpers import random_factor, small_random_query

from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, QueryError, Variable
from repro.core.variable_elimination import variable_elimination
from repro.factors.backend import (
    BackendPolicy,
    as_dense,
    as_sparse,
    dense_join_reduce,
    prefer_dense,
    supports_dense,
)
from repro.factors.factor import Factor
from repro.semiring.aggregates import SemiringAggregate, semiring_aggregate
from repro.semiring.standard import (
    BOOLEAN,
    COUNTING,
    MAX_PRODUCT,
    MAX_SUM,
    MIN_PLUS,
    MIN_PRODUCT,
    SUM_PRODUCT,
    set_semiring,
)

# (semiring, matching aggregate combine, aggregate tag, value sampler)
SEMIRING_CASES = [
    (BOOLEAN, SemiringAggregate.logical_or(), lambda rng: True),
    (COUNTING, SemiringAggregate.sum(), lambda rng: rng.randint(1, 5)),
    (SUM_PRODUCT, SemiringAggregate.sum(), lambda rng: round(rng.uniform(0.1, 2.0), 3)),
    (MAX_PRODUCT, SemiringAggregate.max(), lambda rng: round(rng.uniform(0.1, 2.0), 3)),
    (MIN_PLUS, SemiringAggregate.min(), lambda rng: round(rng.uniform(-1.0, 3.0), 3)),
    (MAX_SUM, SemiringAggregate.max(), lambda rng: round(rng.uniform(-2.0, 2.0), 3)),
]

DOMAINS = {"A": (0, 1, 2), "B": (0, 1), "C": (0, 1, 2, 3)}


def sampled_factor(scope, semiring, sampler, rng, density=0.7):
    table = {}
    for values in itertools.product(*(DOMAINS[v] for v in scope)):
        if rng.random() < density:
            table[values] = sampler(rng)
    return Factor(tuple(scope), table)


@pytest.mark.parametrize(
    "semiring,aggregate,sampler",
    SEMIRING_CASES,
    ids=[case[0].name for case in SEMIRING_CASES],
)
class TestOperationEquivalence:
    """Each factor operation agrees between the two representations."""

    def test_round_trip(self, semiring, aggregate, sampler):
        rng = random.Random(1)
        factor = sampled_factor(("A", "B"), semiring, sampler, rng)
        dense = as_dense(factor, DOMAINS, semiring)
        assert as_sparse(dense, semiring).equals(factor, semiring)
        assert len(dense) == len(factor.pruned(semiring))

    def test_multiply(self, semiring, aggregate, sampler):
        rng = random.Random(2)
        left = sampled_factor(("A", "B"), semiring, sampler, rng)
        right = sampled_factor(("B", "C"), semiring, sampler, rng)
        expected = left.multiply(right, semiring)
        got = as_dense(left, DOMAINS, semiring).multiply(
            as_dense(right, DOMAINS, semiring), semiring
        )
        assert got.equals(expected, semiring)

    def test_aggregate_marginalize(self, semiring, aggregate, sampler):
        rng = random.Random(3)
        factor = sampled_factor(("A", "B", "C"), semiring, sampler, rng)
        expected = factor.aggregate_marginalize("B", aggregate.combine, semiring)
        got = as_dense(factor, DOMAINS, semiring).aggregate_marginalize(
            "B", aggregate.tag, semiring
        )
        assert got.equals(expected, semiring)

    def test_product_marginalize(self, semiring, aggregate, sampler):
        rng = random.Random(4)
        factor = sampled_factor(("A", "B"), semiring, sampler, rng, density=0.8)
        expected = factor.product_marginalize("B", len(DOMAINS["B"]), semiring)
        got = as_dense(factor, DOMAINS, semiring).product_marginalize(
            "B", len(DOMAINS["B"]), semiring
        )
        assert got.equals(expected, semiring)

    def test_power(self, semiring, aggregate, sampler):
        rng = random.Random(5)
        factor = sampled_factor(("A", "B"), semiring, sampler, rng)
        dense = as_dense(factor, DOMAINS, semiring)
        for exponent in (0, 1, 3):
            assert dense.power(exponent, semiring).equals(
                factor.power(exponent, semiring), semiring
            )

    def test_indicator_projection(self, semiring, aggregate, sampler):
        rng = random.Random(6)
        factor = sampled_factor(("A", "B", "C"), semiring, sampler, rng)
        expected = factor.indicator_projection(("A", "C"), semiring)
        got = as_dense(factor, DOMAINS, semiring).indicator_projection(("A", "C"), semiring)
        assert got.equals(expected, semiring)

    def test_join_reduce_matches_sparse_pipeline(self, semiring, aggregate, sampler):
        rng = random.Random(7)
        left = sampled_factor(("A", "B"), semiring, sampler, rng)
        right = sampled_factor(("B", "C"), semiring, sampler, rng)
        expected = left.multiply(right, semiring).aggregate_marginalize(
            "B", aggregate.combine, semiring
        )
        got = dense_join_reduce(
            [left, right], semiring, DOMAINS, ("A", "C"), ("B",), aggregate.tag
        )
        assert got.equals(expected, semiring)

    def test_has_idempotent_range(self, semiring, aggregate, sampler):
        rng = random.Random(8)
        factor = sampled_factor(("A",), semiring, sampler, rng, density=1.0)
        dense = as_dense(factor, DOMAINS, semiring)
        assert dense.has_idempotent_range(semiring) == factor.has_idempotent_range(semiring)


class TestEdgeCases:
    def test_empty_table_round_trip(self):
        empty = Factor(("A", "B"), {})
        dense = as_dense(empty, DOMAINS, COUNTING)
        assert len(dense) == 0
        assert dense.is_identically_zero(COUNTING)
        assert as_sparse(dense, COUNTING).table == {}

    def test_zero_annihilation_in_dense_product(self):
        """A zero cell annihilates the product even when the other operand
        lists a value there — the dense analogue of key absence."""
        left = Factor(("A",), {(0,): 2, (1,): 3})
        right = Factor(("A",), {(1,): 5})  # zero at A=0
        got = as_dense(left, DOMAINS, COUNTING).multiply(
            as_dense(right, DOMAINS, COUNTING), COUNTING
        )
        assert as_sparse(got, COUNTING).table == {(1,): 15}

    def test_empty_factor_in_query_gives_zero_result(self):
        query = FAQQuery(
            variables=[Variable("A", DOMAINS["A"]), Variable("B", DOMAINS["B"])],
            free=[],
            aggregates={
                "A": SemiringAggregate.sum(),
                "B": SemiringAggregate.sum(),
            },
            factors=[Factor(("A", "B"), {}), Factor(("A",), {(0,): 4})],
            semiring=COUNTING,
        )
        for backend in ("sparse", "dense", "auto"):
            assert inside_out(query, backend=backend).factor.table == {}

    def test_scalar_query_dense(self):
        query = FAQQuery(
            variables=[Variable("A", (0, 1))],
            free=[],
            aggregates={"A": SemiringAggregate.sum()},
            factors=[Factor(("A",), {(0,): 2, (1,): 3})],
            semiring=COUNTING,
        )
        assert inside_out(query, backend="dense").scalar == 5

    def test_tropical_zero_is_not_equal_to_finite_values(self):
        """Regression: a relative tolerance of 1e-9 * inf used to declare
        every value equal to the tropical identity ``+inf``."""
        assert not MIN_PLUS.is_zero(4.5)
        assert not MAX_SUM.is_zero(-3.0)
        assert MIN_PLUS.is_zero(math.inf)

    def test_counting_uses_exact_python_ints(self):
        big = 10**30
        factor = Factor(("A",), {(0,): big, (1,): big})
        dense = as_dense(factor, DOMAINS, COUNTING)
        squared = dense.power(3, COUNTING)
        assert as_sparse(squared, COUNTING).table[(0,)] == big**3

    def test_dense_factor_as_query_input(self):
        sparse = Factor(("A", "B"), {(0, 0): 1, (1, 1): 2, (2, 0): 3})
        dense = as_dense(sparse, DOMAINS, COUNTING)
        variables = [Variable("A", DOMAINS["A"]), Variable("B", DOMAINS["B"])]
        aggregates = {"B": SemiringAggregate.sum()}
        reference = FAQQuery(variables, ["A"], aggregates, [sparse], COUNTING)
        query = FAQQuery(variables, ["A"], aggregates, [dense], COUNTING)
        expected = reference.evaluate_brute_force()
        for backend in ("sparse", "dense", "auto"):
            got = inside_out(query, backend=backend).factor
            assert expected.equals(got, COUNTING), backend

    def test_unsupported_semiring_falls_back_to_sparse(self):
        assert not supports_dense(MIN_PRODUCT)
        assert not supports_dense(set_semiring(range(3)))
        universe = frozenset(range(3))
        sets = set_semiring(universe)
        query = FAQQuery(
            variables=[Variable("A", (0, 1))],
            free=[],
            aggregates={"A": semiring_aggregate("union", lambda a, b: a | b, frozenset())},
            factors=[Factor(("A",), {(0,): frozenset({1}), (1,): frozenset({2})})],
            semiring=sets,
        )
        # backend="dense" must silently stay sparse, not crash.
        result = inside_out(query, backend="dense")
        assert result.stats.steps[0].backend == "sparse"


class TestHeuristic:
    def test_dense_participants_prefer_dense(self):
        rng = random.Random(9)
        factor = sampled_factor(("A", "B"), SUM_PRODUCT, lambda r: r.random() + 0.1, rng, density=1.0)
        assert prefer_dense([factor], ("A", "B"), DOMAINS, SUM_PRODUCT, ("sum",))

    def test_sparse_participants_prefer_sparse(self):
        domains = {"A": tuple(range(500)), "B": tuple(range(500))}
        factor = Factor(("A", "B"), {(i, i): 1.0 for i in range(20)})
        assert not prefer_dense([factor], ("A", "B"), domains, SUM_PRODUCT, ("sum",))

    def test_cell_cap_bounds_the_dense_box(self):
        policy = BackendPolicy(cell_cap=4, density_ratio=8.0)
        rng = random.Random(10)
        factor = sampled_factor(("A", "C"), SUM_PRODUCT, lambda r: 1.0, rng, density=1.0)
        assert not prefer_dense(
            [factor], ("A", "C"), DOMAINS, SUM_PRODUCT, ("sum",), policy
        )

    def test_unmappable_aggregate_tag_stays_sparse(self):
        rng = random.Random(11)
        factor = sampled_factor(("A",), SUM_PRODUCT, lambda r: 1.0, rng, density=1.0)
        assert not prefer_dense([factor], ("A",), DOMAINS, SUM_PRODUCT, ("median",))

    def test_auto_backend_records_per_step_choice(self):
        query = small_random_query(123, semiring=COUNTING)
        result = inside_out(query, backend="auto")
        assert all(step.backend in ("sparse", "dense") for step in result.stats.steps)


class TestQueryEquivalence:
    """InsideOut and VE give brute-force answers on every backend."""

    @pytest.mark.parametrize("seed", range(25))
    def test_insideout_backends_match_brute_force(self, seed):
        for semiring in (COUNTING, SUM_PRODUCT):
            query = small_random_query(seed + 5000, semiring=semiring)
            expected = query.evaluate_brute_force()
            for backend in ("sparse", "dense", "auto"):
                got = inside_out(query, backend=backend).factor
                assert expected.equals(got, query.semiring), (seed, semiring.name, backend)

    @pytest.mark.parametrize("seed", range(15))
    def test_variable_elimination_backends_match_brute_force(self, seed):
        query = small_random_query(seed + 6000, allow_products=False, semiring=COUNTING)
        tags = {query.aggregates[v].tag for v in query.semiring_variables}
        if len(tags) > 1:
            pytest.skip("VE is FAQ-SS only")
        expected = query.evaluate_brute_force()
        for backend in ("sparse", "dense", "auto"):
            got = variable_elimination(query, backend=backend).factor
            assert expected.equals(got, query.semiring), (seed, backend)

    def test_boolean_query_dense(self):
        rng = random.Random(12)
        factors = [
            random_factor(("A", "B"), DOMAINS, rng, zero_one=True),
            random_factor(("B", "C"), DOMAINS, rng, zero_one=True),
        ]
        factors = [f.map_values(lambda v: True) for f in factors]
        query = FAQQuery(
            variables=[Variable(v, DOMAINS[v]) for v in ("A", "B", "C")],
            free=["A"],
            aggregates={
                "B": SemiringAggregate.logical_or(),
                "C": SemiringAggregate.logical_or(),
            },
            factors=factors,
            semiring=BOOLEAN,
        )
        expected = query.evaluate_brute_force()
        for backend in ("sparse", "dense", "auto"):
            assert expected.equals(inside_out(query, backend=backend).factor, BOOLEAN)

    def test_min_plus_query_dense(self):
        rng = random.Random(13)

        def sampler(r):
            return round(r.uniform(-1.0, 3.0), 3)

        factors = [
            sampled_factor(("A", "B"), MIN_PLUS, sampler, rng),
            sampled_factor(("B", "C"), MIN_PLUS, sampler, rng),
        ]
        query = FAQQuery(
            variables=[Variable(v, DOMAINS[v]) for v in ("A", "B", "C")],
            free=["A"],
            aggregates={
                "B": SemiringAggregate.min(),
                "C": SemiringAggregate.min(),
            },
            factors=factors,
            semiring=MIN_PLUS,
        )
        expected = query.evaluate_brute_force()
        for backend in ("sparse", "dense", "auto"):
            assert expected.equals(inside_out(query, backend=backend).factor, MIN_PLUS)

    def test_invalid_backend_rejected(self):
        query = small_random_query(77)
        with pytest.raises((ValueError, QueryError)):
            inside_out(query, backend="gpu")

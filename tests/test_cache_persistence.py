"""LRU caches, disk persistence, and size-bucket drift invalidation."""

import pytest

from repro.caching import LruCache
from repro.core.query import FAQQuery, Variable
from repro.factors.factor import Factor
from repro.hypergraph.covers import (
    clear_rho_star_cache,
    fractional_edge_cover_number,
    load_rho_star_cache,
    rho_star_cache_info,
    save_rho_star_cache,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.planner import PlanCache, plan
from repro.planner.cache import (
    CachedPlan,
    load_planner_caches,
    save_planner_caches,
)
from repro.planner.signature import (
    bucket_drift,
    query_signature,
    signature_shape,
    size_bucket,
)
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import COUNTING


# ---------------------------------------------------------------------- #
# the generic LRU
# ---------------------------------------------------------------------- #
def test_lru_cache_eviction_is_lru_not_wholesale():
    cache = LruCache(maxsize=3)
    for key in "abc":
        cache.put(key, key.upper())
    assert cache.get("a") == "A"          # refreshes 'a'
    evicted = cache.put("d", "D")          # evicts 'b', the oldest untouched
    assert evicted == [("b", "B")]
    assert cache.get("b") is None
    assert cache.get("a") == "A" and cache.get("d") == "D"
    assert len(cache) == 3


def test_lru_cache_counters_and_clear():
    cache = LruCache(maxsize=2)
    cache.put("x", 1)
    assert cache.get("x") == 1
    assert cache.get("y") is None
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.peek("x") == 1            # peek does not count
    assert (cache.hits, cache.misses) == (1, 1)
    cache.clear()
    assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)


def test_lru_cache_save_load_roundtrip(tmp_path):
    cache = LruCache(maxsize=8)
    cache.put(("k", 1), 1.5)
    cache.put(("k", 2), 2.5)
    path = tmp_path / "cache.pkl"
    assert cache.save(path, kind="t", version=1) == 2
    fresh = LruCache(maxsize=8)
    assert fresh.load(path, kind="t", version=1) == 2
    assert fresh.peek(("k", 2)) == 2.5
    # Mismatched kind or version discards the file wholesale.
    assert LruCache(4).load(path, kind="other", version=1) == 0
    assert LruCache(4).load(path, kind="t", version=2) == 0
    assert LruCache(4).load(tmp_path / "missing.pkl", kind="t", version=1) == 0


# ---------------------------------------------------------------------- #
# the ρ* memo is now a real LRU and persists
# ---------------------------------------------------------------------- #
def test_rho_star_memo_is_lru_and_persists(tmp_path):
    clear_rho_star_cache()
    hypergraph = Hypergraph("abc", [frozenset("ab"), frozenset("bc"), frozenset("ac")])
    value = fractional_edge_cover_number(hypergraph)
    assert value == pytest.approx(1.5)
    info = rho_star_cache_info()
    assert info["size"] >= 1 and info["misses"] >= 1
    # Warm call hits the memo.
    assert fractional_edge_cover_number(hypergraph) == pytest.approx(1.5)
    assert rho_star_cache_info()["hits"] >= 1

    path = tmp_path / "rho.pkl"
    written = save_rho_star_cache(path)
    assert written == rho_star_cache_info()["size"]
    clear_rho_star_cache()
    assert rho_star_cache_info()["size"] == 0
    assert load_rho_star_cache(path) == written
    before = rho_star_cache_info()["misses"]
    assert fractional_edge_cover_number(hypergraph) == pytest.approx(1.5)
    assert rho_star_cache_info()["misses"] == before  # served from the memo


# ---------------------------------------------------------------------- #
# plan-cache persistence
# ---------------------------------------------------------------------- #
def _chain_query(size=4, name="chain"):
    domain = (0, 1, 2)
    table = {(i, j): 1 for i in domain for j in domain}
    entries = dict(list(table.items())[:size])
    names = ["x0", "x1", "x2"]
    return FAQQuery(
        variables=[Variable(v, domain) for v in names],
        free=[],
        aggregates={v: SemiringAggregate.sum() for v in names},
        factors=[
            Factor(("x0", "x1"), dict(entries), name="f01"),
            Factor(("x1", "x2"), dict(entries), name="f12"),
        ],
        semiring=COUNTING,
        name=name,
    )


def test_plan_cache_save_load_roundtrip(tmp_path):
    cache = PlanCache()
    query = _chain_query()
    cold = plan(query, cache=cache)
    assert not cold.cache_hit

    directory = tmp_path / "caches"
    counts = save_planner_caches(directory, plan_cache=cache)
    assert counts["plans"] >= 1

    fresh = PlanCache()
    loaded = load_planner_caches(directory, plan_cache=fresh)
    assert loaded["plans"] == counts["plans"]
    warm = plan(query, cache=fresh)
    assert warm.cache_hit
    assert warm.strategy == cold.strategy
    assert warm.ordering == cold.ordering


# ---------------------------------------------------------------------- #
# size-bucket drift
# ---------------------------------------------------------------------- #
def test_signature_shape_splits_buckets():
    small = _chain_query(size=4)
    large = _chain_query(size=8)
    sig_small, _ = query_signature(small)
    sig_large, _ = query_signature(large)
    assert sig_small != sig_large
    shape_small, buckets_small = signature_shape(sig_small)
    shape_large, buckets_large = signature_shape(sig_large)
    assert shape_small == shape_large
    assert bucket_drift(buckets_small, buckets_large) == abs(
        size_bucket(4) - size_bucket(8)
    ) == 1


def test_plan_transfers_within_one_bucket_of_drift():
    cache = PlanCache()
    cold = plan(_chain_query(size=4), cache=cache)
    assert not cold.cache_hit
    # Sizes 4 -> 8 move exactly one bucket: the plan transfers.
    drifted = plan(_chain_query(size=8), cache=cache)
    assert drifted.cache_hit
    assert drifted.strategy == cold.strategy
    # The transfer re-stored under the new signature: now an exact hit.
    again = plan(_chain_query(size=8), cache=cache)
    assert again.cache_hit


def test_plan_does_not_transfer_beyond_one_bucket_of_drift():
    cache = PlanCache()
    plan(_chain_query(size=2), cache=cache)       # bucket 2
    # Size 9 is bucket 4 — two steps away: no transfer, a fresh search.
    far = plan(_chain_query(size=9), cache=cache)
    assert not far.cache_hit
    # Both signatures now hold their own exact entries: excessive drift
    # must never evict the other workload's valid plan (alternating
    # same-shape traffic would otherwise thrash the cache forever).
    assert len(cache) == 2
    assert plan(_chain_query(size=2), cache=cache).cache_hit
    assert plan(_chain_query(size=9), cache=cache).cache_hit


def test_alternating_far_drift_workloads_do_not_thrash():
    """Regression: two same-shape workloads >1 bucket apart both stay cached."""
    cache = PlanCache()
    small, large = _chain_query(size=2), _chain_query(size=9)
    hits = 0
    for round_index in range(4):
        for query in (small, large):
            if plan(query, cache=cache).cache_hit:
                hits += 1
    # Only the two cold plans miss; every later occurrence is an exact hit.
    assert hits == 4 * 2 - 2


def test_persisted_plans_invalidate_on_version_mismatch(tmp_path, monkeypatch):
    cache = PlanCache()
    plan(_chain_query(), cache=cache)
    path = tmp_path / "plans.pkl"
    assert cache.save(path) >= 1
    import repro.planner.cache as cache_module

    monkeypatch.setattr(cache_module, "SIGNATURE_VERSION", 999)
    fresh = PlanCache()
    assert fresh.load(path) == 0


def test_cached_plan_buckets_backfilled_on_store():
    cache = PlanCache()
    query = _chain_query()
    signature, canon = query_signature(query)
    key = (signature, "search", None, None)
    cache.store(key, CachedPlan(
        strategy="insideout", backend="sparse",
        ordering_indices=tuple(range(len(canon))),
        estimated_cost=1.0, faq_width=1.0,
    ))
    entry = cache.lookup(key)
    assert entry.buckets == signature_shape(signature)[1]

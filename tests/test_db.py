"""Tests for the relational substrate: relations, join algorithms, Yannakakis."""

import itertools

import pytest

from repro.datasets.relations import (
    cycle_query_relations,
    path_query_relations,
    star_query_relations,
)
from repro.db.generic_join import generic_join
from repro.db.hash_join import binary_hash_join, left_deep_join_plan
from repro.db.relation import Relation, RelationError
from repro.db.yannakakis import semijoin, yannakakis
from repro.semiring.standard import BOOLEAN


def brute_force_join(relations):
    """Reference natural join by nested loops over the active domains."""
    attributes = sorted({a for r in relations for a in r.schema})
    domains = {a: set() for a in attributes}
    for relation in relations:
        for row in relation.tuples:
            for attribute, value in zip(relation.schema, row):
                domains[attribute].add(value)
    result = set()
    for values in itertools.product(*(sorted(domains[a]) for a in attributes)):
        assignment = dict(zip(attributes, values))
        if all(
            tuple(assignment[a] for a in r.schema) in r.tuples for r in relations
        ):
            result.add(values)
    return attributes, result


class TestRelation:
    def test_construction_and_lookup(self):
        rel = Relation("R", ("a", "b"), [(1, 2), (3, 4)])
        assert len(rel) == 2
        assert (1, 2) in rel
        assert rel.attributes == frozenset({"a", "b"})

    def test_duplicate_rows_are_deduplicated(self):
        rel = Relation("R", ("a",), [(1,), (1,)])
        assert len(rel) == 1

    def test_arity_mismatch_rejected(self):
        with pytest.raises(RelationError):
            Relation("R", ("a", "b"), [(1,)])

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(RelationError):
            Relation("R", ("a", "a"), [])

    def test_project_select_rename(self):
        rel = Relation("R", ("a", "b"), [(1, 2), (1, 3), (2, 3)])
        assert len(rel.project(["a"])) == 2
        assert len(rel.select(lambda row: row["b"] == 3)) == 2
        renamed = rel.rename({"a": "x"})
        assert renamed.schema == ("x", "b")

    def test_project_unknown_attribute_rejected(self):
        rel = Relation("R", ("a",), [(1,)])
        with pytest.raises(RelationError):
            rel.project(["z"])

    def test_factor_roundtrip(self):
        rel = Relation("R", ("a", "b"), [(1, 2)])
        factor = rel.to_factor(BOOLEAN)
        assert factor.table == {(1, 2): True}
        back = Relation.from_factor(factor)
        assert back.tuples == rel.tuples


class TestBinaryHashJoin:
    def test_shared_attribute_join(self):
        r = Relation("R", ("a", "b"), [(1, 2), (2, 3)])
        s = Relation("S", ("b", "c"), [(2, 9), (3, 8), (7, 0)])
        joined = binary_hash_join(r, s)
        assert set(joined.schema) == {"a", "b", "c"}
        assert joined.tuples == frozenset({(1, 2, 9), (2, 3, 8)})

    def test_cartesian_product_when_disjoint(self):
        r = Relation("R", ("a",), [(1,), (2,)])
        s = Relation("S", ("b",), [(9,)])
        assert len(binary_hash_join(r, s)) == 2

    def test_matches_brute_force(self):
        rels = path_query_relations(2, 5, 12, seed=4)
        attributes, expected = brute_force_join(rels)
        joined = binary_hash_join(rels[0], rels[1]).project(attributes)
        assert joined.tuples == frozenset(expected)


class TestLeftDeepPlan:
    def test_result_matches_brute_force(self):
        rels = cycle_query_relations(3, 6, 14, seed=2)
        attributes, expected = brute_force_join(rels)
        result, sizes = left_deep_join_plan(rels)
        assert result.project(attributes).tuples == frozenset(expected)
        assert len(sizes) == len(rels)

    def test_explicit_order(self):
        rels = path_query_relations(3, 5, 10, seed=9)
        result, _ = left_deep_join_plan(rels, order=[2, 1, 0])
        attributes, expected = brute_force_join(rels)
        assert result.project(attributes).tuples == frozenset(expected)

    def test_invalid_order_rejected(self):
        rels = path_query_relations(2, 4, 5, seed=1)
        with pytest.raises(RelationError):
            left_deep_join_plan(rels, order=[0, 0])

    def test_empty_relation_list_rejected(self):
        with pytest.raises(RelationError):
            left_deep_join_plan([])

    def test_triangle_intermediate_blowup_is_recorded(self):
        # On the triangle query, a pairwise plan's first intermediate is a
        # near-cartesian product: strictly larger than the final output.
        rels = cycle_query_relations(3, 20, 60, seed=5)
        result, sizes = left_deep_join_plan(rels)
        assert max(sizes) >= len(result)


class TestSemijoinAndYannakakis:
    def test_semijoin_filters_left(self):
        r = Relation("R", ("a", "b"), [(1, 2), (2, 3)])
        s = Relation("S", ("b", "c"), [(2, 0)])
        assert semijoin(r, s).tuples == frozenset({(1, 2)})

    def test_semijoin_disjoint_schema(self):
        r = Relation("R", ("a",), [(1,)])
        s = Relation("S", ("b",), [])
        assert len(semijoin(r, s)) == 0

    @pytest.mark.parametrize(
        "relations",
        [
            path_query_relations(3, 6, 20, seed=11),
            star_query_relations(3, 6, 20, seed=12),
        ],
    )
    def test_yannakakis_matches_brute_force(self, relations):
        attributes, expected = brute_force_join(relations)
        result = yannakakis(relations, output_attributes=attributes)
        assert result.tuples == frozenset(expected)

    def test_yannakakis_rejects_cyclic_queries(self):
        rels = cycle_query_relations(3, 5, 10, seed=3)
        with pytest.raises(RelationError):
            yannakakis(rels)

    def test_yannakakis_projection(self):
        rels = path_query_relations(3, 5, 15, seed=8)
        result = yannakakis(rels, output_attributes=["A1", "A4"])
        assert set(result.schema) == {"A1", "A4"}


class TestGenericJoin:
    @pytest.mark.parametrize(
        "relations",
        [
            path_query_relations(3, 6, 20, seed=21),
            cycle_query_relations(3, 6, 20, seed=22),
            cycle_query_relations(4, 5, 18, seed=23),
            star_query_relations(3, 5, 15, seed=24),
        ],
    )
    def test_matches_brute_force(self, relations):
        attributes, expected = brute_force_join(relations)
        result = generic_join(relations).project(attributes)
        assert result.tuples == frozenset(expected)

    def test_respects_attribute_order(self):
        rels = path_query_relations(2, 5, 10, seed=30)
        result = generic_join(rels, attribute_order=["A3", "A2", "A1"])
        assert result.schema == ("A3", "A2", "A1")

    def test_empty_relation_list_rejected(self):
        with pytest.raises(RelationError):
            generic_join([])

    def test_agrees_with_yannakakis_on_acyclic(self):
        rels = path_query_relations(4, 6, 25, seed=31)
        attributes = sorted({a for r in rels for a in r.schema})
        gj = generic_join(rels).project(attributes)
        ya = yannakakis(rels, output_attributes=attributes)
        assert gj.tuples == ya.tuples

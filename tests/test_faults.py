"""Deterministic fault injection and the hardening it drives.

This file is the single home for failure-path testing.  Before PR 10 the
failure modes were each covered by a bespoke monkeypatch scattered across
the suite (``_TEST_CRASH_NODES`` in the process-pool tests, a wedged
step-cache claimant in the incremental tests, a hand-set shed EWMA in the
frontend tests); those scenarios are promoted here onto the named fault
sites of :mod:`repro.faults` so one seeded :class:`FaultPlan` can replay
any of them exactly.

Layers, bottom up:

* the :class:`FaultPlan` harness itself (determinism, schedules, child
  configs);
* :class:`RetryPolicy` validation and backoff shape;
* :class:`SnapshotStore` durability (atomic, checksummed, version-tagged,
  best-effort under injected I/O faults);
* in-process hardening — ``step.kernel`` faults abandon step-cache claims
  and surface as typed :class:`PlanFailure`; ``worker.kill`` degrades the
  process pool bit-identically; ``shm.attach`` faults make cache adoption
  a no-op instead of a crash;
* the wire — RPC deadlines (``drop`` → :class:`ReplicaTimeout`), protocol
  desync (``corrupt`` → :class:`ReplicaCrashed`), kills, busy-vs-wedged
  pings, idempotent close;
* warm restarts — a killed server/replica resumes incremental service
  from its snapshot spill (``snapshot_restores >= 1``, no full recompute);
* fleet-wide atomic factor-update batches behind the update-epoch gate;
* chaos — seeded randomized fault schedules against live traffic.  The
  invariant: every request terminates with a bit-correct answer or a
  typed :class:`ServeError`.  Never a hang, never a wrong answer.

The short chaos profile runs in tier-1 (``chaos`` marker); the long soak
is additionally marked ``slow``.
"""

import os
import threading
import time

import pytest

from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, QueryError, Variable
from repro.exec import DagExecutor, SharedCacheStore, StepResultCache
from repro.factors import Factor, FactorDelta
from repro.faults import (
    ACTION_CORRUPT,
    ACTION_DELAY,
    ACTION_DROP,
    ACTION_ERROR,
    ACTION_KILL,
    SITE_REPLICA_KILL,
    SITE_SHM_ATTACH,
    SITE_SNAPSHOT_IO,
    SITE_STEP_KERNEL,
    SITE_WIRE_RECV,
    SITE_WIRE_SEND,
    SITE_WORKER_KILL,
    SITES,
    FaultPlan,
    InjectedFault,
    clear_plan,
    current_plan,
    injected_faults,
    install_plan,
)
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import COUNTING
from repro.serve import (
    Frontend,
    PlanFailure,
    PlanServer,
    ReplicaCrashed,
    ReplicaHandle,
    ReplicaSet,
    ReplicaTimeout,
    RetryPolicy,
    ServeError,
    ServeRequest,
    ServeResult,
    SnapshotStore,
)
from repro.serve import replica as replica_module

from test_exec_process import _multi_block


# ---------------------------------------------------------------------- #
# query helpers
# ---------------------------------------------------------------------- #
def _chain_query(length=3, salt=0, name=None):
    """A small counting chain query; ``salt`` varies the table content."""
    names = [f"v{i}" for i in range(length)]
    variables = [Variable(n, (0, 1, 2)) for n in names]
    factors = [
        Factor(
            (names[i], names[i + 1]),
            {
                (a, b): (a + 2 * b + i + salt) % 5 + 1
                for a in range(3)
                for b in range(3)
            },
            name=f"f{i}",
        )
        for i in range(length - 1)
    ]
    return FAQQuery(
        variables=variables,
        free=[names[0]],
        aggregates={n: SemiringAggregate.sum() for n in names[1:]},
        factors=factors,
        semiring=COUNTING,
        name=name or f"chain{length}s{salt}",
    )


def _expected(query):
    """Fault-free reference answer (brute force, listing scope)."""
    return query.evaluate_brute_force()


def _assert_answer(query, factor, label=""):
    assert _expected(query).equals(factor, COUNTING), f"wrong answer {label}"


def _updated_query(query, deltas):
    """The query after applying ``(factor_index, delta)`` batches (new factors)."""
    factors = list(query.factors)
    for index, delta in deltas:
        factors[index] = factors[index].apply_delta(delta, query.semiring)
    return FAQQuery(
        variables=[query.variables[v] for v in query.order],
        free=query.free,
        aggregates=query.aggregates,
        factors=factors,
        semiring=query.semiring,
        name=query.name,
    )


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no process-global plan installed."""
    clear_plan()
    yield
    clear_plan()


# ---------------------------------------------------------------------- #
# the FaultPlan harness
# ---------------------------------------------------------------------- #
class TestFaultPlan:
    def test_schedule_fires_exactly_the_nth_call(self):
        plan = FaultPlan(schedule={SITE_STEP_KERNEL: {3: ACTION_ERROR}})
        draws = [plan.draw(SITE_STEP_KERNEL) for _ in range(5)]
        assert draws == [None, None, ACTION_ERROR, None, None]
        assert plan.calls[SITE_STEP_KERNEL] == 5
        assert plan.injected == {SITE_STEP_KERNEL: 1}
        assert plan.total_injected == 1

    def test_seeded_rates_are_reproducible(self):
        script_a = [
            FaultPlan(seed=42, rates={SITE_WIRE_RECV: 0.3}).draw(SITE_WIRE_RECV)
            for _ in range(1)
        ]
        plan_a = FaultPlan(seed=42, rates={SITE_WIRE_RECV: 0.3})
        plan_b = FaultPlan(seed=42, rates={SITE_WIRE_RECV: 0.3})
        script_a = [plan_a.draw(SITE_WIRE_RECV) for _ in range(200)]
        script_b = [plan_b.draw(SITE_WIRE_RECV) for _ in range(200)]
        assert script_a == script_b
        assert any(a is not None for a in script_a)
        # A different seed yields a different script (with overwhelming odds).
        plan_c = FaultPlan(seed=43, rates={SITE_WIRE_RECV: 0.3})
        assert [plan_c.draw(SITE_WIRE_RECV) for _ in range(200)] != script_a

    def test_rate_actions_restricted_to_given_set(self):
        plan = FaultPlan(seed=7, rates={SITE_WIRE_SEND: (1.0, [ACTION_DELAY])})
        assert {plan.draw(SITE_WIRE_SEND) for _ in range(20)} == {ACTION_DELAY}

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(rates={"wire.teleport": 0.5})
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(schedule={"quantum.flip": {1: ACTION_ERROR}})

    def test_child_config_roundtrip(self):
        plan = FaultPlan(
            seed=11,
            rates={SITE_WIRE_RECV: (0.25, [ACTION_DROP, ACTION_CORRUPT])},
            schedule={SITE_REPLICA_KILL: {2: ACTION_KILL}},
            delay=0.005,
        )
        config = plan.child_config(3)
        assert config["seed"] == 11 + 7919 * 4  # per-replica offset
        child = FaultPlan.from_config(config)
        assert child.delay == 0.005
        # The child's schedule still fires call 2 at replica.kill.
        assert child.draw(SITE_REPLICA_KILL) is None
        assert child.draw(SITE_REPLICA_KILL) == ACTION_KILL
        # Configs survive pickling (they cross the process boundary).
        import pickle

        assert FaultPlan.from_config(pickle.loads(pickle.dumps(config))) is not None
        assert FaultPlan.from_config(None) is None

    def test_injected_faults_restores_previous_plan(self):
        outer = FaultPlan(seed=1)
        install_plan(outer)
        with injected_faults(FaultPlan(seed=2)) as inner:
            assert current_plan() is inner
        assert current_plan() is outer
        clear_plan()
        assert current_plan() is None

    def test_draw_is_thread_safe(self):
        plan = FaultPlan(seed=5, rates={SITE_STEP_KERNEL: 0.5})
        errors = []

        def hammer():
            try:
                for _ in range(500):
                    plan.draw(SITE_STEP_KERNEL)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert plan.calls[SITE_STEP_KERNEL] == 2000


# ---------------------------------------------------------------------- #
# RetryPolicy
# ---------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(QueryError):
            RetryPolicy(attempts=0)
        with pytest.raises(QueryError):
            RetryPolicy(rpc_timeout=0.0)
        RetryPolicy(attempts=1)  # the minimum is fine

    def test_backoff_is_bounded_exponential(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.08, jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.01)
        assert policy.backoff(2) == pytest.approx(0.02)
        assert policy.backoff(3) == pytest.approx(0.04)
        assert policy.backoff(4) == pytest.approx(0.08)
        assert policy.backoff(10) == pytest.approx(0.08)  # capped

    def test_backoff_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=1.0, jitter=0.5)
        for _ in range(50):
            delay = policy.backoff(2)
            assert 0.02 <= delay <= 0.03


# ---------------------------------------------------------------------- #
# SnapshotStore durability
# ---------------------------------------------------------------------- #
class TestSnapshotStore:
    def test_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        sections = {"views": [("k", {"answer": 42})], "results": None}
        assert store.save("server", sections)
        assert store.load("server") == sections
        stats = store.stats()
        assert stats["snapshot_saves"] == 1
        assert stats["snapshot_loads"] == 1
        assert stats["snapshot_save_errors"] == 0
        assert stats["snapshot_load_errors"] == 0

    def test_missing_file_is_a_clean_miss(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.load("never-saved") is None
        assert store.stats()["snapshot_load_errors"] == 0

    def test_corrupted_payload_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.save("server", {"views": []})
        path = store.path_for("server")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a payload bit: the checksum must catch it
        path.write_bytes(bytes(raw))
        assert store.load("server") is None

    def test_wrong_magic_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.path_for("server").write_bytes(b"NOTASNAP" + b"\0" * 64)
        assert store.load("server") is None

    def test_injected_io_faults_are_best_effort(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with injected_faults(FaultPlan(schedule={SITE_SNAPSHOT_IO: {1: ACTION_ERROR}})):
            assert store.save("server", {"views": []}) is False
        assert store.stats()["snapshot_save_errors"] == 1
        assert store.save("server", {"views": []})  # recovers once clear
        with injected_faults(FaultPlan(schedule={SITE_SNAPSHOT_IO: {1: ACTION_ERROR}})):
            assert store.load("server") is None
        assert store.stats()["snapshot_load_errors"] == 1
        assert store.load("server") == {"views": []}

    def test_failed_save_leaves_previous_snapshot_intact(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.save("server", {"generation": 1})
        with injected_faults(FaultPlan(schedule={SITE_SNAPSHOT_IO: {1: ACTION_ERROR}})):
            assert store.save("server", {"generation": 2}) is False
        assert store.load("server") == {"generation": 1}


# ---------------------------------------------------------------------- #
# in-process hardening (promoted from the old monkeypatch tests)
# ---------------------------------------------------------------------- #
class TestInProcessFaults:
    def test_step_kernel_fault_abandons_claim_then_recovers(self):
        """A kernel fault must release the step-cache claim (no wedge)."""
        query = _chain_query()
        cache = StepResultCache(maxsize=64)
        executor = DagExecutor(workers=1)
        with injected_faults(FaultPlan(schedule={SITE_STEP_KERNEL: {1: ACTION_ERROR}})):
            with pytest.raises(InjectedFault):
                executor.run(query, step_cache=cache)
        assert not cache._inflight, "a failed step left its claim wedged"
        # The very next run (same cache) succeeds — nothing waits forever.
        result = executor.run(query, step_cache=cache)
        _assert_answer(query, result.factor, "after claim release")

    def test_server_converts_kernel_fault_to_typed_plan_failure(self):
        server = PlanServer()
        query = _chain_query()
        with injected_faults(FaultPlan(schedule={SITE_STEP_KERNEL: {1: ACTION_ERROR}})):
            with pytest.raises(PlanFailure) as info:
                server.execute_request(ServeRequest(query=query, coalesce=False))
        assert "InjectedFault" in str(info.value)
        result = server.execute_request(ServeRequest(query=query, coalesce=False))
        _assert_answer(query, result.factor, "served after injected kernel fault")
        server.shutdown()

    def test_worker_kill_degrades_pool_bit_identically(self):
        """The promoted ``_TEST_CRASH_NODES`` scenario, driven by a plan."""
        query = _multi_block("max-product", 1)
        serial = inside_out(query, backend="sparse")
        with injected_faults(
            FaultPlan(schedule={SITE_WORKER_KILL: {1: ACTION_KILL}})
        ) as plan:
            executor = DagExecutor(workers=3, workers_mode="process")
            parallel = executor.run(query, backend="sparse")
            assert plan.injected.get(SITE_WORKER_KILL) == 1
        assert parallel.factor.table == serial.factor.table
        info = executor.last_process_info
        assert info["degraded"], "worker death must degrade, not hang"
        assert info["retried_steps"] >= 1

    def test_shm_attach_fault_makes_adoption_a_noop(self):
        store = SharedCacheStore.publish({"queries": {"k": "v"}})
        try:
            with injected_faults(
                FaultPlan(schedule={SITE_SHM_ATTACH: {1: ACTION_ERROR}})
            ):
                assert SharedCacheStore.adopt(store.name) == {}
            adopted = SharedCacheStore.adopt(store.name)
            assert adopted.get("queries") == {"k": "v"}
        finally:
            store.close()
            store.close()  # idempotent


# ---------------------------------------------------------------------- #
# the wire: deadlines, desync, kills, pings, close
# ---------------------------------------------------------------------- #
@pytest.mark.slow
class TestReplicaWireFaults:
    def test_dropped_reply_surfaces_as_replica_timeout(self):
        replica = ReplicaHandle(0, rpc_timeout=0.5)
        try:
            query = _chain_query()
            # A dropped request means no reply ever comes: the RPC deadline
            # must fire instead of hanging forever.
            with injected_faults(
                FaultPlan(schedule={SITE_WIRE_SEND: {1: ACTION_DROP}})
            ):
                started = time.monotonic()
                with pytest.raises(ReplicaTimeout):
                    replica.execute(ServeRequest(query=query))
                assert time.monotonic() - started < 5.0
            assert replica.timeouts == 1
            # ReplicaTimeout is a ReplicaCrashed: callers restart and go on.
            replica.restart()
            result = replica.execute(ServeRequest(query=query))
            _assert_answer(query, result.factor, "after timeout restart")
        finally:
            replica.close()

    def test_corrupt_send_is_a_protocol_desync_not_a_hang(self):
        replica = ReplicaHandle(0, rpc_timeout=5.0)
        try:
            query = _chain_query()
            with injected_faults(
                FaultPlan(schedule={SITE_WIRE_SEND: {1: ACTION_CORRUPT}})
            ):
                with pytest.raises(ReplicaCrashed):
                    replica.execute(ServeRequest(query=query))
            replica.restart()
            result = replica.execute(ServeRequest(query=query))
            _assert_answer(query, result.factor, "after desync restart")
        finally:
            replica.close()

    def test_corrupt_reply_rejected_by_validation(self):
        replica = ReplicaHandle(0, rpc_timeout=5.0)
        try:
            with injected_faults(
                FaultPlan(schedule={SITE_WIRE_RECV: {1: ACTION_CORRUPT}})
            ):
                with pytest.raises(ReplicaCrashed):
                    replica.execute(ServeRequest(query=_chain_query()))
        finally:
            replica.close()

    def test_injected_kill_detected_and_restartable(self):
        replica = ReplicaHandle(0, rpc_timeout=5.0)
        try:
            query = _chain_query()
            with injected_faults(
                FaultPlan(schedule={SITE_REPLICA_KILL: {1: ACTION_KILL}})
            ):
                with pytest.raises(ReplicaCrashed):
                    replica.execute(ServeRequest(query=query))
            assert not replica.alive()
            replica.restart()
            # The restarted replica lost its factor tables; the NEED
            # handshake re-ships them transparently.
            result = replica.execute(ServeRequest(query=query))
            _assert_answer(query, result.factor, "after kill restart")
        finally:
            replica.close()

    def test_busy_replica_ping_returns_cached_pong_not_restart(self):
        replica = ReplicaHandle(0, rpc_timeout=5.0)
        try:
            first = replica.ping()
            assert first is not None and first.get("served") == 0
            # Simulate "busy": the handle lock is held by an in-flight RPC.
            with replica.lock:
                pong = replica.ping(lock_wait=0.05)
            # Busy is not wedged: we get the cached pong, no restart needed.
            assert pong is first
        finally:
            replica.close()

    def test_wedged_replica_ping_returns_none(self):
        replica = ReplicaHandle(0, rpc_timeout=5.0)
        try:
            with injected_faults(
                FaultPlan(schedule={SITE_WIRE_SEND: {1: ACTION_DROP}})
            ):
                assert replica.ping(timeout=0.3) is None
        finally:
            replica.close()

    def test_close_is_idempotent_and_fleet_registered_for_atexit(self):
        fleet = ReplicaSet(2, rpc_timeout=5.0)
        assert fleet in replica_module._LIVE_SETS
        fleet.close()
        fleet.close()  # second close is a no-op
        handle = ReplicaHandle(0, rpc_timeout=5.0)
        handle.close()
        handle.close()


# ---------------------------------------------------------------------- #
# warm restarts from snapshot spill
# ---------------------------------------------------------------------- #
class TestWarmRestart:
    def test_server_restart_resumes_incremental_from_snapshot(self, tmp_path):
        """The in-process acceptance path: spill on update, restore warm."""
        store = SnapshotStore(tmp_path)
        query = _chain_query(name="warm")
        delta1 = FactorDelta(("v0", "v1"), {(0, 0): 9})
        delta2 = FactorDelta(("v0", "v1"), {(1, 1): 7})
        after1 = _updated_query(query, [(0, delta1)])
        after2 = _updated_query(after1, [(0, delta2)])

        server = PlanServer(snapshot_store=store)
        request = ServeRequest(query=query)
        _assert_answer(query, server.execute_request(request).factor, "baseline")
        result = server.update_factor(request, 0, delta1)
        _assert_answer(after1, result.factor, "first update")
        assert store.stats()["snapshot_saves"] >= 1, "update must spill"
        server.shutdown()

        # A "restarted" server over the same directory restores the warm
        # view and answers the next incremental update without a full run.
        revived = PlanServer(snapshot_store=SnapshotStore(tmp_path))
        stats = revived.stats()
        assert stats["snapshot_restores"] >= 1
        result = revived.update_factor(ServeRequest(query=after1), 0, delta2)
        _assert_answer(after2, result.factor, "post-restore update")
        stats = revived.stats()
        assert stats["incremental_hits"] >= 1, "restored view must be warm"
        assert stats["incremental_full_runs"] == 0, (
            "a warm restart must not pay a cold full recompute"
        )
        revived.shutdown()

    def test_restored_result_cache_serves_without_recompute(self, tmp_path):
        store = SnapshotStore(tmp_path)
        query = _chain_query(name="warm-results")
        server = PlanServer(snapshot_store=store)
        request = ServeRequest(query=query)
        first = server.execute_request(request)
        assert server.snapshot_now()
        server.shutdown()

        revived = PlanServer(snapshot_store=SnapshotStore(tmp_path))
        again = revived.execute_request(request)
        assert again.factor.table == first.factor.table
        revived.shutdown()

    @pytest.mark.slow
    def test_killed_replica_restarts_warm(self, tmp_path):
        """The fleet acceptance path: kill → restart → first answer warm."""
        query = _chain_query(name="fleet-warm")
        delta1 = FactorDelta(("v0", "v1"), {(2, 2): 5})
        delta2 = FactorDelta(("v0", "v1"), {(0, 1): 3})
        after1 = _updated_query(query, [(0, delta1)])
        after2 = _updated_query(after1, [(0, delta2)])

        replica = ReplicaHandle(
            0, rpc_timeout=10.0, snapshot_dir=str(tmp_path / "replica-0")
        )
        try:
            result = replica.update(ServeRequest(query=query), [(0, delta1)])
            _assert_answer(after1, result.factor, "pre-kill update")

            replica.process.terminate()
            replica.process.join(5.0)
            assert not replica.alive()
            replica.restart()

            pong = replica.ping(timeout=10.0)
            assert pong is not None
            assert pong.get("snapshot_restores", 0) >= 1, (
                "the restarted replica did not restore its spill"
            )
            # The first incremental request after the crash is answered
            # warm: delta propagation on the restored view, no full run.
            result = replica.update(ServeRequest(query=after1), [(0, delta2)])
            _assert_answer(after2, result.factor, "post-restart update")
            pong = replica.ping(timeout=10.0)
            assert pong.get("incremental_hits", 0) >= 1
            assert pong.get("incremental_full_runs", 0) == 0, (
                "warm restart paid a cold full recompute"
            )
        finally:
            replica.close()


# ---------------------------------------------------------------------- #
# fleet-wide atomic update batches
# ---------------------------------------------------------------------- #
@pytest.mark.slow
class TestFleetUpdates:
    def test_update_batch_is_atomic_and_fleet_wide(self, tmp_path):
        query = _chain_query(name="fleet-update")
        deltas = [
            (0, FactorDelta(("v0", "v1"), {(0, 0): 11})),
            (1, FactorDelta(("v1", "v2"), {(2, 0): 4})),
        ]
        updated = _updated_query(query, deltas)
        with Frontend(
            replicas=2, health_interval=None, snapshot_dir=str(tmp_path)
        ) as frontend:
            baseline = frontend.serve_batch([ServeRequest(query=query)])[0]
            _assert_answer(query, baseline.factor, "baseline")

            # The whole multi-delta batch lands atomically: the returned
            # answer reflects BOTH deltas, never just the first.
            result = frontend.update_batch(ServeRequest(query=query), deltas)
            _assert_answer(updated, result.factor, "atomic batch")
            assert frontend.stats()["update_epoch"] == 1

            # Every replica now serves the post-batch content.
            outcomes = frontend.serve_batch(
                [ServeRequest(query=updated, coalesce=False) for _ in range(4)]
            )
            for outcome in outcomes:
                _assert_answer(updated, outcome.factor, "post-batch serve")

    def test_update_retries_through_an_injected_crash(self, tmp_path):
        query = _chain_query(name="fleet-update-crash")
        delta = (0, FactorDelta(("v0", "v1"), {(1, 0): 2}))
        updated = _updated_query(query, [delta])
        with Frontend(
            replicas=2,
            health_interval=None,
            retry=RetryPolicy(attempts=3, base_delay=0.01, rpc_timeout=10.0),
            snapshot_dir=str(tmp_path),
        ) as frontend:
            with injected_faults(
                FaultPlan(schedule={SITE_REPLICA_KILL: {1: ACTION_KILL}})
            ):
                result = frontend.update_batch(ServeRequest(query=query), [delta])
            _assert_answer(updated, result.factor, "update through crash")
            stats = frontend.stats()
            assert stats["update_epoch"] == 1
            assert stats["replica_crashes"] >= 1


# ---------------------------------------------------------------------- #
# observability & frontend resilience
# ---------------------------------------------------------------------- #
@pytest.mark.slow
class TestObservability:
    def test_stats_expose_robustness_counters(self, tmp_path):
        with Frontend(
            replicas=1, health_interval=None, snapshot_dir=str(tmp_path)
        ) as frontend:
            query = _chain_query(name="obs")
            frontend.serve_batch([ServeRequest(query=query)])
            frontend.update_batch(
                ServeRequest(query=query),
                [(0, FactorDelta(("v0", "v1"), {(0, 2): 6}))],
            )
            pongs = frontend.ping()
            stats = frontend.stats()
        for key in (
            "retries",
            "timeouts",
            "update_epoch",
            "faults_injected",
            "snapshot_restores",
            "replica_crashes",
        ):
            assert key in stats, f"missing stats key {key!r}"
        assert stats["update_epoch"] == 1
        assert stats["faults_injected"] == 0  # no plan installed
        (pong,) = pongs
        for key in ("faults_injected", "snapshot_restores", "snapshot_saves"):
            assert key in pong, f"missing pong key {key!r}"
        assert pong["snapshot_saves"] >= 1, "the update must have spilled"
        fleet = stats["fleet"]
        assert all("timeouts" in row for row in fleet)

    def test_retry_counters_advance_on_injected_timeouts(self):
        query = _chain_query(name="retry-count")
        with Frontend(
            replicas=1,
            health_interval=None,
            retry=RetryPolicy(attempts=3, base_delay=0.01, rpc_timeout=0.5),
        ) as frontend:
            with injected_faults(
                FaultPlan(schedule={SITE_WIRE_SEND: {1: ACTION_DROP}})
            ):
                result = frontend.serve_batch([ServeRequest(query=query)])[0]
                # faults_injected reads the live plan, so sample it here.
                assert frontend.stats()["faults_injected"] >= 1
            _assert_answer(query, result.factor, "served through a retry")
            stats = frontend.stats()
            assert stats["retries"] >= 1
            assert stats["timeouts"] >= 1

    def test_frontend_close_is_idempotent(self):
        frontend = Frontend(replicas=1, health_interval=None)
        frontend.close()
        frontend.close()

    def test_shed_ewma_recovers_after_injected_latency_spike(self):
        """The promoted shed-EWMA scenario: a wire-delay fault inflates the
        latency estimate; the estimate must decay and admit again."""
        query = _chain_query(name="ewma")
        with Frontend(replicas=1, health_interval=None) as frontend:
            plan = FaultPlan(
                schedule={SITE_WIRE_RECV: {1: ACTION_DELAY}}, delay=0.3
            )
            with injected_faults(plan):
                frontend.serve_batch([ServeRequest(query=query, coalesce=False)])
            assert frontend.stats()["latency_ewma_s"] >= 0.05
            # Deadline-bearing requests shed while the estimate is hot,
            # then admit again once fault-free traffic decays it.
            deadline = 0.05
            admitted = False
            for _ in range(200):
                outcome = frontend.serve_batch(
                    [ServeRequest(query=query, coalesce=False, deadline=deadline)],
                    return_exceptions=True,
                )[0]
                if isinstance(outcome, ServeResult):
                    admitted = True
                    break
                assert isinstance(outcome, ServeError)
            assert admitted, "the shed EWMA never recovered"


# ---------------------------------------------------------------------- #
# chaos: seeded fault schedules against live traffic
# ---------------------------------------------------------------------- #
def _chaos_wave(frontend, queries, expected, wave, width=5):
    """One wave of concurrent uncoalesced requests; asserts the invariant:
    every outcome is bit-correct or a typed ServeError.  Returns counts."""
    picks = [(wave + k) % len(queries) for k in range(width)]
    outcomes = frontend.serve_batch(
        [ServeRequest(query=queries[i], coalesce=False) for i in picks],
        return_exceptions=True,
    )
    ok = errors = 0
    for i, outcome in zip(picks, outcomes):
        if isinstance(outcome, ServeResult):
            assert expected[i].equals(outcome.factor, COUNTING), (
                f"chaos wave {wave}: WRONG answer for query {i}"
            )
            ok += 1
        else:
            assert isinstance(outcome, ServeError), (
                f"chaos wave {wave}: untyped failure {outcome!r}"
            )
            errors += 1
    return ok, errors


@pytest.mark.chaos
def test_chaos_short_profile():
    """Tier-1 chaos: 40 requests under a seeded schedule hitting every
    parent-side fleet fault site.  No hangs, no wrong answers."""
    queries = [_chain_query(length=3 + (i % 2), salt=i, name=f"chaos{i}") for i in range(4)]
    expected = [_expected(q) for q in queries]
    plan = FaultPlan(
        seed=2016,
        schedule={
            SITE_REPLICA_KILL: {3: ACTION_KILL},
            SITE_WIRE_SEND: {5: ACTION_CORRUPT, 11: ACTION_DELAY},
            SITE_WIRE_RECV: {8: ACTION_DROP, 14: ACTION_CORRUPT},
        },
        delay=0.01,
    )
    served = failed = 0
    with Frontend(
        replicas=2,
        health_interval=None,
        retry=RetryPolicy(attempts=4, base_delay=0.01, rpc_timeout=1.5),
    ) as frontend:
        with injected_faults(plan):
            for wave in range(8):
                ok, errors = _chaos_wave(frontend, queries, expected, wave)
                served += ok
                failed += errors
        assert plan.total_injected >= 5, "the schedule never fired"
        assert set(plan.injected) == {
            SITE_REPLICA_KILL,
            SITE_WIRE_SEND,
            SITE_WIRE_RECV,
        }
        # The tier recovered: fault-free traffic is all answers again.
        ok, errors = _chaos_wave(frontend, queries, expected, wave=0)
        assert errors == 0 and ok == 5
    assert served + failed == 40
    assert served >= 30, "retries should absorb most injected faults"


@pytest.mark.chaos
@pytest.mark.slow
def test_chaos_soak_covers_every_fault_site(tmp_path):
    """The long soak: >=200 requests under seeded random fault schedules
    covering all seven sites, in two phases (fleet wire faults, then
    in-process execution/snapshot faults).  The invariant throughout:
    every request terminates with a bit-correct answer or a typed
    ServeError — never a hang, never a wrong answer."""
    queries = [_chain_query(length=3 + (i % 2), salt=i, name=f"soak{i}") for i in range(4)]
    expected = [_expected(q) for q in queries]
    covered = set()
    total_requests = 0

    # -- phase 1: the fleet under wire/replica chaos (150 requests) ----- #
    plan_fleet = FaultPlan(
        seed=20160626,
        rates={
            SITE_REPLICA_KILL: 0.02,
            SITE_WIRE_SEND: (0.04, [ACTION_DELAY, ACTION_CORRUPT]),
            SITE_WIRE_RECV: (0.03, [ACTION_DROP, ACTION_DELAY, ACTION_CORRUPT]),
        },
        schedule={
            # Guarantee coverage regardless of the seeded draws.
            SITE_REPLICA_KILL: {7: ACTION_KILL},
            SITE_WIRE_SEND: {9: ACTION_CORRUPT},
            SITE_WIRE_RECV: {13: ACTION_DROP},
        },
        delay=0.01,
    )
    served = failed = 0
    with Frontend(
        replicas=2,
        health_interval=None,
        retry=RetryPolicy(attempts=4, base_delay=0.01, rpc_timeout=1.0),
    ) as frontend:
        with injected_faults(plan_fleet):
            for wave in range(30):
                ok, errors = _chaos_wave(frontend, queries, expected, wave)
                served += ok
                failed += errors
                total_requests += 5
        covered.update(plan_fleet.injected)
        # Recovery: with the plan cleared the tier answers everything.
        ok, errors = _chaos_wave(frontend, queries, expected, wave=0)
        assert errors == 0 and ok == 5
    assert served + failed == 150
    assert served >= 100

    # -- phase 2a: process-pool worker death ---------------------------- #
    pool_query = _multi_block("max-product", 2)
    pool_serial = inside_out(pool_query, backend="sparse")
    plan_pool = FaultPlan(schedule={SITE_WORKER_KILL: {1: ACTION_KILL}})
    with injected_faults(plan_pool):
        executor = DagExecutor(workers=3, workers_mode="process")
        pool_result = executor.run(pool_query, backend="sparse")
    assert pool_result.factor.table == pool_serial.factor.table
    covered.update(plan_pool.injected)
    total_requests += 1

    # -- phase 2b: shared-memory attach failure ------------------------- #
    plan_shm = FaultPlan(schedule={SITE_SHM_ATTACH: {1: ACTION_ERROR}})
    shm_store = SharedCacheStore.publish({"queries": {}})
    try:
        with injected_faults(plan_shm):
            assert SharedCacheStore.adopt(shm_store.name) == {}
    finally:
        shm_store.close()
    covered.update(plan_shm.injected)

    # -- phase 2c: serving under kernel + snapshot I/O chaos ------------ #
    plan_serve = FaultPlan(
        seed=7919,
        rates={SITE_STEP_KERNEL: 0.12, SITE_SNAPSHOT_IO: 0.3},
        schedule={
            SITE_STEP_KERNEL: {2: ACTION_ERROR},
            SITE_SNAPSHOT_IO: {1: ACTION_ERROR},
        },
    )
    server = PlanServer(snapshot_store=SnapshotStore(tmp_path / "soak"))
    with injected_faults(plan_serve):
        for i in range(60):
            idx = i % len(queries)
            try:
                result = server.execute_request(
                    ServeRequest(query=queries[idx], coalesce=bool(i % 2))
                )
                assert expected[idx].equals(result.factor, COUNTING), (
                    f"soak serve {i}: WRONG answer"
                )
            except PlanFailure:
                pass  # typed, and the server stays serviceable
            total_requests += 1
        # Incremental updates under the same chaos: on failure the view
        # stays at its pre-update content (consistent — cold, never wrong).
        current = queries[0]
        for round_no in range(6):
            delta = FactorDelta(("v0", "v1"), {(0, 0): round_no + 2})
            try:
                result = server.update_factor(
                    ServeRequest(query=current), 0, delta
                )
            except PlanFailure:
                continue
            current = _updated_query(current, [(0, delta)])
            assert _expected(current).equals(result.factor, COUNTING), (
                f"soak update {round_no}: WRONG post-update answer"
            )
    covered.update(plan_serve.injected)
    assert plan_serve.injected.get(SITE_STEP_KERNEL, 0) >= 1
    assert plan_serve.injected.get(SITE_SNAPSHOT_IO, 0) >= 1

    # Fault-free recovery: the same server answers everything correctly.
    for idx, query in enumerate(queries):
        result = server.execute_request(ServeRequest(query=query, coalesce=False))
        assert expected[idx].equals(result.factor, COUNTING)
    server.shutdown()

    assert total_requests >= 200, total_requests
    assert covered == set(SITES), (
        f"soak did not cover every fault site: missing {set(SITES) - covered}"
    )

"""Content digests: cross-process stability, value equality, injectivity.

These are the keys the serving tier coalesces and routes on, so the tests
pin the two properties everything else relies on:

* **stability** — the same query content digests identically in other
  interpreter processes (builtin ``hash`` is ``PYTHONHASHSEED``-salted and
  would not);
* **value discrimination** — value-equal queries built as distinct objects
  share a key, while any change to a factor cell, a domain, or a variable
  *name* (renamed isomorphic queries produce differently-named outputs)
  produces a different key.
"""

import os
import subprocess
import sys

import pytest

from repro.core.query import FAQQuery, Variable
from repro.factors.dense import DenseFactor
from repro.factors.factor import Factor
from repro.planner import PlanCache, factor_digest, query_content_key, signature_digest
from repro.planner.cache import DigestPlan
from repro.planner.signature import canonical_bytes, query_signature
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import STANDARD_SEMIRINGS

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _fixed_query(value=1.5, domain=(0, 1, 2), rename=None, name="digest-fixture"):
    """A deterministic query; tweakable knobs for the discrimination tests."""
    a, b, c = ("A", "B", "C") if rename is None else rename
    variables = [Variable(a, domain), Variable(b, domain), Variable(c, (0, 1))]
    f1 = Factor((a, b), {(i, j): value + i * len(domain) + j
                         for i in range(len(domain)) for j in range(len(domain))})
    f2 = Factor((b, c), {(i, j): 0.25 + i + j for i in range(len(domain)) for j in range(2)})
    return FAQQuery(
        variables=variables,
        free=[a],
        aggregates={b: SemiringAggregate.sum(), c: SemiringAggregate.sum()},
        factors=[f1, f2],
        semiring=STANDARD_SEMIRINGS["sum-product"],
        name=name,
    )


# ---------------------------------------------------------------------- #
# cross-process stability
# ---------------------------------------------------------------------- #
def _key_in_subprocess(hash_seed):
    """Compute the fixture's content key in a fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(_REPO, "src"), os.path.join(_REPO, "tests")]
    )
    env["PYTHONHASHSEED"] = str(hash_seed)
    script = (
        "from test_signature_digest import _fixed_query\n"
        "from repro.planner import query_content_key, factor_digest\n"
        "q = _fixed_query()\n"
        "print(query_content_key(q))\n"
        "for f in q.factors:\n"
        "    print(factor_digest(f))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, cwd=_REPO, check=True,
    )
    return out.stdout.split()


@pytest.mark.slow
def test_digests_stable_across_processes():
    """The coalescing keys agree between this process and fresh interpreters
    started under *different* hash seeds — the property builtin ``hash``
    lacks and the cross-process serving tier requires."""
    query = _fixed_query()
    here = [query_content_key(query)] + [factor_digest(f) for f in query.factors]
    assert _key_in_subprocess(0) == here
    assert _key_in_subprocess(12345) == here


# ---------------------------------------------------------------------- #
# value equality and discrimination
# ---------------------------------------------------------------------- #
def test_value_equal_distinct_objects_share_key():
    q1, q2 = _fixed_query(), _fixed_query()
    assert q1 is not q2
    assert all(x is not y for x, y in zip(q1.factors, q2.factors))
    assert query_content_key(q1) == query_content_key(q2)


def test_query_name_does_not_enter_the_key():
    # The query name is presentation, not content: results are identical.
    assert query_content_key(_fixed_query(name="a")) == query_content_key(_fixed_query(name="b"))


def test_changed_factor_cell_changes_key():
    assert query_content_key(_fixed_query(value=1.5)) != query_content_key(_fixed_query(value=1.5000001))


def test_changed_domain_changes_key():
    assert query_content_key(_fixed_query(domain=(0, 1, 2))) != query_content_key(
        _fixed_query(domain=(0, 1, 3))
    )


def test_renamed_isomorphic_query_gets_a_different_key():
    """Isomorphic renames share a *signature* (the plan cache wants that)
    but must not share a *content key* (their outputs name different
    variables, so one execution cannot answer both)."""
    original, renamed = _fixed_query(), _fixed_query(rename=("X", "Y", "Z"))
    assert query_signature(original)[0] == query_signature(renamed)[0]
    assert query_content_key(original) != query_content_key(renamed)


def test_semiring_choice_enters_the_key():
    q_sum = _fixed_query()
    q_max = FAQQuery(
        variables=[q_sum.variables[v] for v in q_sum.order],
        free=q_sum.free,
        aggregates={v: SemiringAggregate.max() for v in q_sum.bound},
        factors=q_sum.factors,
        semiring=STANDARD_SEMIRINGS["max-product"],
        name=q_sum.name,
    )
    assert query_content_key(q_sum) != query_content_key(q_max)


# ---------------------------------------------------------------------- #
# factor digests
# ---------------------------------------------------------------------- #
def test_factor_digest_ignores_name_but_not_values():
    f1 = Factor(("A", "B"), {(0, 1): 2.0, (1, 0): 3.0}, name="one")
    f2 = Factor(("A", "B"), {(1, 0): 3.0, (0, 1): 2.0}, name="two")
    assert factor_digest(f1) == factor_digest(f2)
    f3 = Factor(("A", "B"), {(0, 1): 2.0, (1, 0): 3.5})
    assert factor_digest(f1) != factor_digest(f3)


def test_dense_factor_digest_tracks_cells():
    np = pytest.importorskip("numpy")
    domains = {"A": (0, 1), "B": (0, 1)}
    arr = np.array([[1.0, 2.0], [3.0, 4.0]])
    d1 = DenseFactor(("A", "B"), domains, arr.copy())
    d2 = DenseFactor(("A", "B"), domains, arr.copy(), name="other")
    assert factor_digest(d1) == factor_digest(d2)
    arr2 = arr.copy()
    arr2[1, 1] = 4.5
    assert factor_digest(d1) != factor_digest(DenseFactor(("A", "B"), domains, arr2))


# ---------------------------------------------------------------------- #
# canonical_bytes + the digest-addressed cache
# ---------------------------------------------------------------------- #
def test_canonical_bytes_discriminates_types_and_shapes():
    pairs = [
        (1, "1"), (1, 1.0), (True, 1), (False, 0), (None, 0), (b"x", "x"),
        ((1, 2), (12,)), ((1, (2,)), ((1, 2),)), ("ab", ("a", "b")),
    ]
    for left, right in pairs:
        assert canonical_bytes(left) != canonical_bytes(right), (left, right)
    assert canonical_bytes({3, 1, 2}) == canonical_bytes(frozenset((1, 2, 3)))
    assert canonical_bytes([1, 2]) == canonical_bytes((1, 2))  # sequences unify


def test_canonical_bytes_rejects_opaque_objects():
    with pytest.raises(TypeError):
        canonical_bytes(object())
    with pytest.raises(TypeError):
        canonical_bytes({"a": 1})  # mappings have no canonical order defined


def test_unencodable_query_raises_and_request_degrades():
    from repro.serve import ServeRequest

    class Opaque:
        """Orderable so Variable/table construction works, but unencodable."""

        def __init__(self, n):
            self.n = n

        def __lt__(self, other):
            return self.n < other.n

        def __eq__(self, other):
            return isinstance(other, Opaque) and self.n == other.n

        def __hash__(self):
            return hash(("opaque", self.n))

    domain = (Opaque(0), Opaque(1))
    query = FAQQuery(
        variables=[Variable("A", domain), Variable("B", (0, 1))],
        free=["A"],
        aggregates={"B": SemiringAggregate.sum()},
        factors=[Factor(("A", "B"), {(domain[0], 0): 1.0, (domain[1], 1): 2.0})],
        semiring=STANDARD_SEMIRINGS["sum-product"],
    )
    with pytest.raises(TypeError):
        query_content_key(query)
    # The serving request degrades to "never coalesced" instead of failing.
    assert ServeRequest(query=query).content_key is None


def test_signature_digest_is_deterministic_hex():
    signature, _ = query_signature(_fixed_query())
    digest = signature_digest(signature)
    assert digest == signature_digest(signature)
    assert len(digest) == 64 and set(digest) <= set("0123456789abcdef")


def test_plan_cache_digest_entries_are_isolated_and_counted():
    cache = PlanCache(maxsize=8)
    stored = DigestPlan(
        strategy="insideout", backend="sparse", ordering=("A", "B"),
        estimated_cost=1.0, faq_width=1.0,
    )
    assert cache.lookup_digest("k1") is None  # miss
    cache.store_digest("k1", stored)
    assert cache.lookup_digest("k1") == stored  # hit
    assert cache.hits == 1 and cache.misses == 1
    assert len(cache) == 0  # digest entries do not occupy signature slots
    cache.clear()
    assert cache.lookup_digest("k1") is None

"""Unit tests for elimination hypergraph sequences (:mod:`repro.hypergraph.elimination`)."""

import pytest

from repro.hypergraph.covers import fractional_edge_cover_number
from repro.hypergraph.elimination import elimination_sequence, induced_sets, induced_width
from repro.hypergraph.hypergraph import Hypergraph, HypergraphError


TRIANGLE = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("A", "C")])
PATH = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("C", "D")])


class TestEliminationSequence:
    def test_steps_align_with_ordering(self):
        steps = elimination_sequence(PATH, ["A", "B", "C", "D"])
        assert [step.vertex for step in steps] == ["A", "B", "C", "D"]
        assert [step.position for step in steps] == [1, 2, 3, 4]

    def test_last_vertex_sees_original_hypergraph(self):
        steps = elimination_sequence(PATH, ["A", "B", "C", "D"])
        assert steps[-1].hypergraph == PATH
        assert steps[-1].union == frozenset({"C", "D"})

    def test_residual_edge_is_added(self):
        # Eliminating D from the path adds nothing new; eliminating C next
        # sees the residual edge {C} ∪ ... — its union is {B, C}.
        steps = elimination_sequence(PATH, ["A", "B", "C", "D"])
        by_vertex = {step.vertex: step for step in steps}
        assert by_vertex["C"].union == frozenset({"B", "C"})
        assert by_vertex["B"].union == frozenset({"A", "B"})

    def test_triangle_union_grows(self):
        steps = elimination_sequence(TRIANGLE, ["A", "B", "C"])
        by_vertex = {step.vertex: step for step in steps}
        assert by_vertex["C"].union == frozenset({"A", "B", "C"})
        # After eliminating C, the residual edge {A, B} joins the two others.
        assert by_vertex["B"].union == frozenset({"A", "B"})

    def test_isolated_vertex_union_is_singleton(self):
        h = Hypergraph(vertices=["A", "Z"], edges=[("A",)])
        steps = elimination_sequence(h, ["A", "Z"])
        assert steps[1].union == frozenset({"Z"})

    def test_ordering_must_cover_all_vertices(self):
        with pytest.raises(HypergraphError):
            elimination_sequence(PATH, ["A", "B", "C"])

    def test_ordering_must_not_repeat(self):
        with pytest.raises(HypergraphError):
            elimination_sequence(PATH, ["A", "B", "C", "C"])

    def test_extra_vertices_rejected(self):
        with pytest.raises(HypergraphError):
            elimination_sequence(PATH, ["A", "B", "C", "D", "E"])


class TestProductVertices:
    def test_product_vertex_drops_from_edges(self):
        # With C as a product vertex, eliminating it must NOT connect B and D.
        steps = elimination_sequence(PATH, ["A", "B", "D", "C"], product_vertices={"C"})
        by_vertex = {step.vertex: step for step in steps}
        assert by_vertex["C"].is_product
        assert by_vertex["D"].union == frozenset({"D"})
        assert by_vertex["B"].union == frozenset({"A", "B"})

    def test_semiring_vertex_connects_neighbours(self):
        steps = elimination_sequence(PATH, ["A", "B", "D", "C"])
        by_vertex = {step.vertex: step for step in steps}
        # Without the product rule, eliminating C links B and D.
        assert by_vertex["D"].union == frozenset({"B", "D"})


class TestInducedWidths:
    def test_induced_sets_maps_every_vertex(self):
        sets = induced_sets(PATH, ["A", "B", "C", "D"])
        assert set(sets) == {"A", "B", "C", "D"}

    def test_induced_treewidth_of_path_is_one(self):
        width = induced_width(PATH, ["A", "B", "C", "D"], lambda bag: len(bag) - 1)
        assert width == 1

    def test_induced_treewidth_of_triangle_is_two(self):
        width = induced_width(TRIANGLE, ["A", "B", "C"], lambda bag: len(bag) - 1)
        assert width == 2

    def test_bad_ordering_gives_larger_width(self):
        # Eliminating B first on the path connects A and C.
        width = induced_width(PATH, ["A", "C", "D", "B"], lambda bag: len(bag) - 1)
        assert width == 2

    def test_restrict_to_skips_vertices(self):
        # Only the step for B counts: U_B = {A, B}, so the width drops to 1
        # even though eliminating C earlier had |U_C| - 1 = 2.
        width = induced_width(
            TRIANGLE,
            ["A", "B", "C"],
            lambda bag: len(bag) - 1,
            restrict_to={"B"},
        )
        assert width == 1

    def test_fractional_width_of_triangle(self):
        width = induced_width(
            TRIANGLE,
            ["A", "B", "C"],
            lambda bag: fractional_edge_cover_number(TRIANGLE, bag),
        )
        assert width == pytest.approx(1.5)

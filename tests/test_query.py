"""Unit tests for :class:`repro.core.query.FAQQuery` and its brute-force evaluator."""

import pytest

from repro.core.query import FAQQuery, QueryError, Variable
from repro.semiring.aggregates import ProductAggregate, SemiringAggregate
from repro.semiring.standard import COUNTING

from _helpers import make_factor


def two_var_query(free=("A",)):
    psi = make_factor(("A", "B"), {(0, 0): 1, (0, 1): 2, (1, 1): 3})
    return FAQQuery(
        variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
        free=list(free),
        aggregates={v: SemiringAggregate.sum() for v in ("A", "B") if v not in free},
        factors=[psi],
        semiring=COUNTING,
    )


class TestVariable:
    def test_empty_domain_rejected(self):
        with pytest.raises(QueryError):
            Variable("X", ())

    def test_duplicate_domain_values_rejected(self):
        with pytest.raises(QueryError):
            Variable("X", (1, 1))

    def test_size(self):
        assert Variable("X", (1, 2, 3)).size == 3


class TestConstruction:
    def test_basic_accessors(self):
        query = two_var_query()
        assert query.num_variables == 2
        assert query.num_free == 1
        assert query.bound == ("B",)
        assert query.domain_size("B") == 2
        assert query.input_size == 3

    def test_free_must_be_prefix(self):
        psi = make_factor(("A", "B"), {(0, 0): 1})
        with pytest.raises(QueryError):
            FAQQuery(
                variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
                free=["B"],
                aggregates={"A": SemiringAggregate.sum()},
                factors=[psi],
                semiring=COUNTING,
            )

    def test_missing_aggregate_rejected(self):
        psi = make_factor(("A", "B"), {(0, 0): 1})
        with pytest.raises(QueryError):
            FAQQuery(
                variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
                free=[],
                aggregates={"A": SemiringAggregate.sum()},
                factors=[psi],
                semiring=COUNTING,
            )

    def test_extra_aggregate_rejected(self):
        psi = make_factor(("A",), {(0,): 1})
        with pytest.raises(QueryError):
            FAQQuery(
                variables=[Variable("A", (0, 1))],
                free=["A"],
                aggregates={"A": SemiringAggregate.sum()},
                factors=[psi],
                semiring=COUNTING,
            )

    def test_unknown_factor_variable_rejected(self):
        psi = make_factor(("Z",), {(0,): 1})
        with pytest.raises(QueryError):
            FAQQuery(
                variables=[Variable("A", (0, 1))],
                free=["A"],
                aggregates={},
                factors=[psi],
                semiring=COUNTING,
            )

    def test_duplicate_variable_rejected(self):
        with pytest.raises(QueryError):
            FAQQuery(
                variables=[Variable("A", (0, 1)), Variable("A", (0, 1))],
                free=[],
                aggregates={"A": SemiringAggregate.sum()},
                factors=[],
                semiring=COUNTING,
            )

    def test_zero_entries_are_pruned(self):
        psi = make_factor(("A",), {(0,): 0, (1,): 2})
        query = FAQQuery(
            variables=[Variable("A", (0, 1))],
            free=["A"],
            aggregates={},
            factors=[psi],
            semiring=COUNTING,
        )
        assert len(query.factors[0]) == 1


class TestDerivedSets:
    def test_k_set_contains_free_and_semiring_vars(self):
        psi = make_factor(("A", "B", "C"), {(0, 0, 0): 1})
        query = FAQQuery(
            variables=[Variable(v, (0, 1)) for v in "ABC"],
            free=["A"],
            aggregates={"B": SemiringAggregate.sum(), "C": ProductAggregate.product()},
            factors=[psi],
            semiring=COUNTING,
        )
        assert query.k_set == frozenset({"A", "B"})
        assert query.product_variables == ("C",)
        assert query.semiring_variables == ("B",)

    def test_tags(self):
        query = two_var_query()
        assert query.tag("A") == "free"
        assert query.tag("B") == "sum"

    def test_hypergraph_includes_isolated_variables(self):
        psi = make_factor(("A",), {(0,): 1})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
            free=[],
            aggregates={"A": SemiringAggregate.sum(), "B": SemiringAggregate.sum()},
            factors=[psi],
            semiring=COUNTING,
        )
        assert "B" in query.hypergraph().vertices

    def test_factor_sizes(self):
        query = two_var_query()
        assert query.factor_sizes() == {frozenset({"A", "B"}): 3}


class TestWithOrdering:
    def test_reordering_preserves_free_prefix(self):
        psi = make_factor(("A", "B", "C"), {(0, 0, 0): 1})
        query = FAQQuery(
            variables=[Variable(v, (0, 1)) for v in "ABC"],
            free=["A"],
            aggregates={"B": SemiringAggregate.sum(), "C": SemiringAggregate.max()},
            factors=[psi],
            semiring=COUNTING,
        )
        reordered = query.with_ordering(["A", "C", "B"])
        assert reordered.order == ("A", "C", "B")
        assert reordered.aggregates["C"].tag == "max"

    def test_reordering_must_keep_free_first(self):
        query = two_var_query()
        with pytest.raises(QueryError):
            query.with_ordering(["B", "A"])

    def test_reordering_must_be_permutation(self):
        query = two_var_query()
        with pytest.raises(QueryError):
            query.with_ordering(["A"])


class TestBruteForce:
    def test_sum_over_bound_variable(self):
        query = two_var_query(free=("A",))
        result = query.evaluate_brute_force()
        assert result.table == {(0,): 3, (1,): 3}

    def test_scalar_query(self):
        query = two_var_query(free=())
        assert query.evaluate_scalar_brute_force() == 6

    def test_scalar_accessor_requires_no_free_variables(self):
        query = two_var_query(free=("A",))
        with pytest.raises(QueryError):
            query.evaluate_scalar_brute_force()

    def test_max_aggregate(self):
        psi = make_factor(("A", "B"), {(0, 0): 1, (0, 1): 5, (1, 0): 2})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
            free=["A"],
            aggregates={"B": SemiringAggregate.max()},
            factors=[psi],
            semiring=COUNTING,
        )
        assert query.evaluate_brute_force().table == {(0,): 5, (1,): 2}

    def test_product_aggregate_requires_full_row(self):
        psi = make_factor(("A", "B"), {(0, 0): 2, (0, 1): 3, (1, 0): 5})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
            free=["A"],
            aggregates={"B": ProductAggregate.product()},
            factors=[psi],
            semiring=COUNTING,
        )
        # A=0 lists both B values (product 6); A=1 misses B=1 (annihilated).
        assert query.evaluate_brute_force().table == {(0,): 6}

    def test_mixed_aggregates_match_manual_computation(self):
        psi_ab = make_factor(("A", "B"), {(0, 0): 1, (0, 1): 2, (1, 0): 3, (1, 1): 4})
        psi_bc = make_factor(("B", "C"), {(0, 0): 1, (0, 1): 1, (1, 0): 2, (1, 1): 2})
        query = FAQQuery(
            variables=[Variable(v, (0, 1)) for v in "ABC"],
            free=[],
            aggregates={
                "A": SemiringAggregate.sum(),
                "B": SemiringAggregate.max(),
                "C": SemiringAggregate.sum(),
            },
            factors=[psi_ab, psi_bc],
            semiring=COUNTING,
        )
        # phi = sum_A max_B sum_C psi_ab * psi_bc
        #     = sum_A max_B psi_ab * (sum_C psi_bc)
        # sum_C psi_bc: B=0 -> 2, B=1 -> 4
        # A=0: max(1*2, 2*4) = 8 ; A=1: max(3*2, 4*4) = 16 ; total 24.
        assert query.evaluate_scalar_brute_force() == 24

"""Unit tests for the standard semirings (:mod:`repro.semiring.standard`)."""

import math

import pytest

from repro.semiring.standard import (
    BOOLEAN,
    COUNTING,
    MAX_PRODUCT,
    MAX_SUM,
    MIN_PLUS,
    MIN_PRODUCT,
    STANDARD_SEMIRINGS,
    SUM_PRODUCT,
    set_semiring,
)


class TestRegistry:
    def test_registry_contains_all_named_semirings(self):
        assert set(STANDARD_SEMIRINGS) == {
            "boolean",
            "counting",
            "sum-product",
            "max-product",
            "min-plus",
            "max-sum",
            "min-product",
        }

    def test_registry_values_match_module_constants(self):
        assert STANDARD_SEMIRINGS["boolean"] is BOOLEAN
        assert STANDARD_SEMIRINGS["counting"] is COUNTING
        assert STANDARD_SEMIRINGS["sum-product"] is SUM_PRODUCT


class TestBoolean:
    def test_or_and_semantics(self):
        assert BOOLEAN.add(False, True) is True
        assert BOOLEAN.add(False, False) is False
        assert BOOLEAN.mul(True, True) is True
        assert BOOLEAN.mul(True, False) is False

    def test_identities(self):
        assert BOOLEAN.zero is False
        assert BOOLEAN.one is True


class TestNumericSemirings:
    def test_counting(self):
        assert COUNTING.add(2, 3) == 5
        assert COUNTING.mul(2, 3) == 6

    def test_max_product(self):
        assert MAX_PRODUCT.add(0.2, 0.7) == 0.7
        assert MAX_PRODUCT.mul(0.5, 0.5) == 0.25
        assert MAX_PRODUCT.zero == 0.0

    def test_min_plus_identities(self):
        assert MIN_PLUS.zero == math.inf
        assert MIN_PLUS.one == 0.0
        assert MIN_PLUS.add(3.0, 5.0) == 3.0
        assert MIN_PLUS.mul(3.0, 5.0) == 8.0

    def test_max_sum_identities(self):
        assert MAX_SUM.zero == -math.inf
        assert MAX_SUM.one == 0.0
        assert MAX_SUM.add(-1.0, 2.0) == 2.0
        assert MAX_SUM.mul(-1.0, 2.0) == 1.0

    def test_min_product(self):
        assert MIN_PRODUCT.add(2.0, 3.0) == 2.0
        assert MIN_PRODUCT.mul(2.0, 3.0) == 6.0

    @pytest.mark.parametrize(
        "semiring,sample",
        [
            (COUNTING, [0, 1, 2, 3]),
            (SUM_PRODUCT, [0.0, 0.5, 1.0, 2.0]),
            (MAX_PRODUCT, [0.0, 0.25, 1.0, 3.0]),
            (MIN_PLUS, [math.inf, 0.0, 1.5, 4.0]),
            (MAX_SUM, [-math.inf, 0.0, 1.0, -2.0]),
        ],
    )
    def test_axioms_hold_on_samples(self, semiring, sample):
        semiring.check_axioms(sample)


class TestSetSemiring:
    def test_union_intersection(self):
        ring = set_semiring({1, 2, 3})
        a = frozenset({1})
        b = frozenset({2, 3})
        assert ring.add(a, b) == frozenset({1, 2, 3})
        assert ring.mul(a, b) == frozenset()

    def test_identities(self):
        ring = set_semiring({1, 2})
        assert ring.zero == frozenset()
        assert ring.one == frozenset({1, 2})

    def test_axioms(self):
        ring = set_semiring({1, 2})
        sample = [frozenset(), frozenset({1}), frozenset({2}), frozenset({1, 2})]
        ring.check_axioms(sample)

"""Unit tests for the cost-based query planner (:mod:`repro.planner`)."""

import math

import pytest

from repro.core.evo import is_equivalent_ordering
from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, QueryError, Variable
from repro.core.variable_elimination import variable_elimination
from repro.db import generic_join, join
from repro.db.relation import Relation
from repro.factors.factor import Factor
from repro.planner import (
    CostModel,
    PlanCache,
    STRATEGIES,
    STRATEGY_GENERIC_JOIN,
    STRATEGY_INSIDEOUT,
    STRATEGY_VARIABLE_ELIMINATION,
    STRATEGY_YANNAKAKIS,
    applicable_strategies,
    candidate_orderings,
    execute,
    plan,
    query_signature,
)
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import BOOLEAN, COUNTING

from _helpers import small_random_query


def _rename(query: FAQQuery, mapping):
    """A structurally identical query with renamed variables."""
    variables = [
        Variable(mapping[v], query.domain(v)) for v in query.order
    ]
    factors = [
        Factor(tuple(mapping[v] for v in f.scope), dict(f.table), name=f.name)
        for f in query.factors
    ]
    aggregates = {mapping[v]: agg for v, agg in query.aggregates.items()}
    return FAQQuery(
        variables=variables,
        free=[mapping[v] for v in query.free],
        aggregates=aggregates,
        factors=factors,
        semiring=query.semiring,
        name=query.name + "-renamed",
    )


def _indicator_join_query(cyclic: bool) -> FAQQuery:
    names = ["A", "B", "C"]
    dom = tuple(range(4))
    edge = {(a, b): True for a in dom for b in dom if (a + b) % 2 == 0}
    scopes = [("A", "B"), ("B", "C")] + ([("A", "C")] if cyclic else [])
    return FAQQuery(
        variables=[Variable(v, dom) for v in names],
        free=names,
        aggregates={},
        factors=[Factor(s, dict(edge)) for s in scopes],
        semiring=BOOLEAN,
        name="ind-join",
    )


class TestPlanning:
    def test_plan_matches_brute_force(self, triangle_query):
        result = plan(triangle_query, use_cache=False).execute()
        assert triangle_query.evaluate_brute_force().equals(
            result.factor, triangle_query.semiring
        )

    def test_chosen_ordering_is_equivalent(self):
        for seed in range(12):
            query = small_random_query(seed)
            chosen = plan(query, use_cache=False)
            assert is_equivalent_ordering(query, chosen.ordering), (
                f"seed={seed} ordering={chosen.ordering}"
            )

    def test_candidate_orderings_are_equivalent(self):
        for seed in range(12):
            query = small_random_query(seed)
            for candidate in candidate_orderings(query):
                assert is_equivalent_ordering(query, candidate), (
                    f"seed={seed} candidate={candidate}"
                )

    def test_explicit_ordering_override(self, triangle_query):
        order = ["C", "B", "A"]
        chosen = plan(triangle_query, ordering=order, use_cache=False)
        assert chosen.ordering == tuple(order)
        result = chosen.execute()
        assert triangle_query.evaluate_brute_force().equals(
            result.factor, triangle_query.semiring
        )

    def test_backend_and_strategy_overrides(self, triangle_query):
        chosen = plan(
            triangle_query,
            backend="sparse",
            strategy=STRATEGY_INSIDEOUT,
            use_cache=False,
        )
        assert chosen.backend == "sparse"
        assert chosen.strategy == STRATEGY_INSIDEOUT

    def test_invalid_overrides_raise(self, triangle_query):
        with pytest.raises(QueryError):
            plan(triangle_query, strategy="nonsense", use_cache=False)
        with pytest.raises(ValueError):
            plan(triangle_query, backend="nonsense", use_cache=False)
        with pytest.raises(QueryError):
            plan(triangle_query, ordering=["A", "B"], use_cache=False)

    def test_fully_pinned_plan_skips_scoring(self, triangle_query):
        model = CostModel()
        chosen = plan(
            triangle_query,
            ordering=list(triangle_query.order),
            strategy=STRATEGY_INSIDEOUT,
            backend="sparse",
            cost_model=model,
            use_cache=False,
        )
        assert model.invocations == 0
        assert math.isnan(chosen.estimated_cost)
        result = chosen.execute()
        assert triangle_query.evaluate_brute_force().equals(
            result.factor, triangle_query.semiring
        )

    def test_pinned_ordering_and_strategy_defers_backend_to_runtime(self, triangle_query):
        """Ordering+strategy pinned, backend open: no LP scoring pass; the
        engines' cheap per-step "auto" heuristic decides the representation."""
        model = CostModel()
        chosen = plan(
            triangle_query,
            ordering=list(triangle_query.order),
            strategy=STRATEGY_INSIDEOUT,
            cost_model=model,
            use_cache=False,
        )
        assert model.invocations == 0
        assert chosen.backend == "auto"
        result = chosen.execute()
        assert triangle_query.evaluate_brute_force().equals(
            result.factor, triangle_query.semiring
        )

    def test_caller_supplied_stats_bypass_the_cache(self, triangle_query):
        """Bespoke statistics must neither read nor populate cached plans
        (the cache key does not encode them)."""
        from repro.planner import QueryStatistics

        cache = PlanCache()
        default_plan = plan(triangle_query, cache=cache)
        assert len(cache) == 1
        custom = QueryStatistics.from_query(triangle_query)
        bespoke = plan(triangle_query, custom, cache=cache)
        assert not bespoke.cache_hit
        assert cache.hits == 0 and len(cache) == 1  # neither read nor stored
        again = plan(triangle_query, cache=cache)
        assert again.cache_hit
        assert again.strategy == default_plan.strategy

    def test_execute_helper(self, triangle_query):
        result = execute(triangle_query, use_cache=False)
        assert result.scalar_or_zero(COUNTING) == triangle_query.evaluate_brute_force().table.get(
            (), 0
        )


class TestStrategySpace:
    def test_insideout_always_applicable(self, triangle_query):
        assert STRATEGY_INSIDEOUT in applicable_strategies(triangle_query)

    def test_single_tag_allows_variable_elimination(self, triangle_query):
        assert STRATEGY_VARIABLE_ELIMINATION in applicable_strategies(triangle_query)

    def test_mixed_tags_exclude_variable_elimination(self):
        names = ["A", "B", "C"]
        query = FAQQuery(
            variables=[Variable(v, (0, 1)) for v in names],
            free=["A"],
            aggregates={"B": SemiringAggregate.sum(), "C": SemiringAggregate.max()},
            factors=[Factor(("A", "B", "C"), {(0, 0, 0): 1})],
            semiring=COUNTING,
        )
        strategies = applicable_strategies(query)
        assert STRATEGY_VARIABLE_ELIMINATION not in strategies
        with pytest.raises(QueryError):
            plan(query, strategy=STRATEGY_VARIABLE_ELIMINATION, use_cache=False)

    def test_acyclic_indicator_join_allows_yannakakis(self):
        strategies = applicable_strategies(_indicator_join_query(cyclic=False))
        assert STRATEGY_YANNAKAKIS in strategies
        assert STRATEGY_GENERIC_JOIN in strategies

    def test_cyclic_indicator_join_excludes_yannakakis(self):
        strategies = applicable_strategies(_indicator_join_query(cyclic=True))
        assert STRATEGY_YANNAKAKIS not in strategies
        assert STRATEGY_GENERIC_JOIN in strategies

    def test_bound_variables_exclude_join_strategies(self, triangle_query):
        strategies = applicable_strategies(triangle_query)
        assert STRATEGY_YANNAKAKIS not in strategies
        assert STRATEGY_GENERIC_JOIN not in strategies

    @pytest.mark.parametrize("cyclic", [False, True])
    def test_every_join_strategy_agrees(self, cyclic):
        query = _indicator_join_query(cyclic)
        brute = query.evaluate_brute_force()
        for strategy in applicable_strategies(query):
            result = plan(query, strategy=strategy, use_cache=False).execute()
            assert brute.equals(result.factor, BOOLEAN), strategy


class TestPlanCache:
    def test_repeated_query_skips_ordering_search(self, triangle_query):
        """The acceptance criterion: a cache hit costs zero cost-model calls.

        Cached plans are always scored by the process-wide model (bespoke
        models bypass the cache), so its counter is the one to watch.
        """
        from repro.planner import DEFAULT_COST_MODEL

        cache = PlanCache()
        before = DEFAULT_COST_MODEL.invocations
        first = plan(triangle_query, cache=cache)
        assert not first.cache_hit
        searched = DEFAULT_COST_MODEL.invocations
        assert searched > before
        second = plan(triangle_query, cache=cache)
        assert second.cache_hit
        assert DEFAULT_COST_MODEL.invocations == searched  # no new cost-model work
        assert cache.hits == 1
        assert second.strategy == first.strategy
        assert second.ordering == first.ordering
        assert second.backend == first.backend

    def test_isomorphic_query_hits_cache(self, triangle_query):
        from repro.planner import DEFAULT_COST_MODEL

        cache = PlanCache()
        plan(triangle_query, cache=cache)
        searched = DEFAULT_COST_MODEL.invocations
        renamed = _rename(triangle_query, {"A": "X", "B": "Y", "C": "Z"})
        transferred = plan(renamed, cache=cache)
        assert transferred.cache_hit
        assert DEFAULT_COST_MODEL.invocations == searched
        assert set(transferred.ordering) == {"X", "Y", "Z"}
        assert is_equivalent_ordering(renamed, transferred.ordering)
        result = transferred.execute()
        assert renamed.evaluate_brute_force().equals(result.factor, COUNTING)

    def test_different_structure_misses_cache(self, triangle_query):
        cache = PlanCache()
        plan(triangle_query, cache=cache)
        # Different free set: a genuinely different query structure.
        other = FAQQuery(
            variables=[Variable(v, triangle_query.domain(v)) for v in triangle_query.order],
            free=["A"],
            aggregates={v: SemiringAggregate.sum() for v in ["B", "C"]},
            factors=triangle_query.factors,
            semiring=COUNTING,
        )
        chosen = plan(other, cache=cache)
        assert not chosen.cache_hit

    def test_signature_is_isomorphism_invariant(self, triangle_query):
        sig, _ = query_signature(triangle_query)
        renamed = _rename(triangle_query, {"A": "P", "B": "Q", "C": "R"})
        sig2, _ = query_signature(renamed)
        assert sig == sig2

    def test_indicator_and_weighted_variants_do_not_share_plans(self):
        """Regression: a cached Yannakakis plan must never transfer to a
        same-shaped query with non-indicator values (it would silently
        output semiring ones instead of the real products)."""
        names = ["A", "B", "C"]
        dom = tuple(range(3))

        def query_with(value):
            table = {(a, b): value for a in dom for b in dom if (a + b) % 2 == 0}
            return FAQQuery(
                variables=[Variable(v, dom) for v in names],
                free=names,
                aggregates={},
                factors=[Factor(("A", "B"), dict(table)), Factor(("B", "C"), dict(table))],
                semiring=COUNTING,
            )

        cache = PlanCache()
        indicator = query_with(1)
        first = plan(indicator, cache=cache)
        assert first.execute().factor.equals(
            indicator.evaluate_brute_force(), COUNTING
        )
        weighted = query_with(2)
        second = plan(weighted, cache=cache)
        assert not second.cache_hit  # different signature (indicator bit)
        assert second.strategy not in (STRATEGY_YANNAKAKIS, STRATEGY_GENERIC_JOIN)
        assert second.execute().factor.equals(
            weighted.evaluate_brute_force(), COUNTING
        )

    def test_cache_hit_costs_no_stats_collection(self, triangle_query, monkeypatch):
        """A hit must not re-collect query statistics (hot-path guarantee)."""
        from repro.planner.cost import QueryStatistics

        cache = PlanCache()
        plan(triangle_query, cache=cache)
        calls = []
        original = QueryStatistics.from_query.__func__

        def counting_from_query(cls, query):
            calls.append(query)
            return original(cls, query)

        monkeypatch.setattr(
            QueryStatistics, "from_query", classmethod(counting_from_query)
        )
        hit = plan(triangle_query, cache=cache)
        assert hit.cache_hit
        assert calls == []

    def test_custom_cost_model_bypasses_the_cache(self, triangle_query):
        """Plans scored under a caller-supplied model / backend policy are
        bespoke: they neither read nor populate cached default plans."""
        from repro.factors.backend import BackendPolicy

        cache = PlanCache()
        default_plan = plan(triangle_query, cache=cache)
        assert len(cache) == 1
        sparse_only = CostModel(policy=BackendPolicy(cell_cap=1))
        other = plan(triangle_query, cache=cache, cost_model=sparse_only)
        assert not other.cache_hit
        assert other.backend == "sparse"  # its own policy was honoured
        assert cache.hits == 0 and len(cache) == 1  # neither read nor stored
        assert plan(triangle_query, cache=cache).cache_hit
        assert plan(triangle_query, cache=cache).backend == default_plan.backend

    def test_cost_model_agm_memo_is_stats_aware(self, triangle_query):
        """The same model scoring the same hypergraph under different factor
        statistics must not serve stale AGM bounds from the memo."""
        from repro.factors.backend import BackendPolicy
        from repro.planner import QueryStatistics

        # Sparse-only policy so the stats-dependent AGM term drives the cost.
        model = CostModel(policy=BackendPolicy(cell_cap=1))
        base = QueryStatistics.from_query(triangle_query)
        small = model.estimate(
            triangle_query, base, tuple(triangle_query.order)
        ).total_cost
        inflated = QueryStatistics(
            factor_sizes={k: v * 50 for k, v in base.factor_sizes.items()},
            domain_sizes=base.domain_sizes,
            num_factors=base.num_factors,
            total_input=base.total_input * 50,
            max_factor_size=base.max_factor_size * 50,
        )
        large = model.estimate(
            triangle_query, inflated, tuple(triangle_query.order)
        ).total_cost
        assert large > small

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        for seed in range(4):
            plan(small_random_query(seed), cache=cache)
        assert len(cache) <= 2

    def test_cache_counters_reset(self, triangle_query):
        cache = PlanCache()
        plan(triangle_query, cache=cache)
        plan(triangle_query, cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        cache.clear()
        assert cache.hits == 0 and cache.misses == 0 and len(cache) == 0


class TestExplain:
    def test_explain_reports_choice(self, triangle_query):
        chosen = plan(triangle_query, use_cache=False)
        report = chosen.explain()
        assert chosen.strategy in report
        assert "ordering" in report and "backend" in report
        assert "candidates considered" in report

    def test_explain_reports_cache_hit(self, triangle_query):
        cache = PlanCache()
        plan(triangle_query, cache=cache)
        hit = plan(triangle_query, cache=cache)
        assert "plan cache hit" in hit.explain()


class TestEngineIntegration:
    def test_insideout_plan_ordering(self, triangle_query):
        result = inside_out(triangle_query, ordering="plan")
        assert triangle_query.evaluate_brute_force().equals(result.factor, COUNTING)

    def test_variable_elimination_plan_ordering(self, triangle_query):
        result = variable_elimination(triangle_query, ordering="plan")
        assert triangle_query.evaluate_brute_force().equals(result.factor, COUNTING)

    def test_db_join_routes_through_planner(self):
        r = Relation("R", ("A", "B"), [(1, 2), (2, 3), (3, 4)])
        s = Relation("S", ("B", "C"), [(2, 5), (3, 6)])
        routed = join([r, s])
        reference = generic_join([r, s])
        assert routed.attributes == reference.attributes
        assert routed.project(sorted(routed.schema)).tuples == reference.project(
            sorted(reference.schema)
        ).tuples

    def test_db_join_pushes_projection_into_the_query(self):
        """output_attributes becomes existential aggregation, not a
        post-projection of the materialised full join."""
        r = Relation("R", ("A", "B"), [(i, i % 3) for i in range(30)])
        s = Relation("S", ("B", "C"), [(i % 3, i) for i in range(30)])
        projected = join([r, s], output_attributes=["A"])
        assert projected.schema == ("A",)
        reference = generic_join([r, s]).project(["A"])
        assert projected.tuples == reference.tuples
        with pytest.raises(Exception):
            join([r, s], output_attributes=["missing"])

    def test_count_models_neo_path_is_fully_pinned(self):
        """Beta-acyclic #SAT pins ordering AND strategy: zero scoring."""
        from repro.factors.compact import Clause, Literal
        from repro.planner import DEFAULT_COST_MODEL
        from repro.solvers.sat import CNFFormula, count_models

        formula = CNFFormula(
            [
                Clause([Literal("a", True), Literal("b", False)]),
                Clause([Literal("b", True), Literal("c", False)]),
            ]
        )
        assert formula.is_beta_acyclic()
        before = DEFAULT_COST_MODEL.invocations
        count = count_models(formula)
        assert count == formula.count_models_brute_force()
        assert DEFAULT_COST_MODEL.invocations == before

    def test_planner_strategies_constant(self):
        assert set(STRATEGIES) == {
            STRATEGY_INSIDEOUT,
            STRATEGY_VARIABLE_ELIMINATION,
            STRATEGY_YANNAKAKIS,
            STRATEGY_GENERIC_JOIN,
        }

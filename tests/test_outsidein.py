"""Unit tests for the OutsideIn worst-case-optimal join (:mod:`repro.core.outsidein`)."""

import itertools
import random

import pytest

from repro.core.outsidein import OutsideInStats, enumerate_join, join_factors
from repro.factors.factor import Factor
from repro.semiring.standard import BOOLEAN, COUNTING

from _helpers import make_factor, random_factor


class TestEnumerateJoin:
    def test_single_factor_enumerates_its_tuples(self):
        psi = make_factor(("A", "B"), {(0, 1): 2, (1, 0): 3})
        results = dict(
            (tuple(sorted(a.items())), v) for a, v in enumerate_join([psi], COUNTING)
        )
        assert results[(("A", 0), ("B", 1))] == 2
        assert len(results) == 2

    def test_empty_factor_list_yields_unit(self):
        results = list(enumerate_join([], COUNTING))
        assert results == [({}, 1)]

    def test_identically_zero_factor_yields_nothing(self):
        zero = Factor(("A",), {})
        other = make_factor(("A",), {(0,): 1})
        assert list(enumerate_join([zero, other], COUNTING)) == []

    def test_two_factor_join_values_multiply(self):
        left = make_factor(("A", "B"), {(0, 0): 2, (1, 1): 3})
        right = make_factor(("B", "C"), {(0, 7): 5, (1, 8): 11})
        results = {
            (a["A"], a["B"], a["C"]): v for a, v in enumerate_join([left, right], COUNTING)
        }
        assert results == {(0, 0, 7): 10, (1, 1, 8): 33}

    def test_join_respects_variable_order(self):
        left = make_factor(("A", "B"), {(0, 0): 1})
        right = make_factor(("B", "C"), {(0, 1): 1})
        for order in (["A", "B", "C"], ["C", "B", "A"], ["B", "A", "C"]):
            results = list(enumerate_join([left, right], COUNTING, order))
            assert len(results) == 1

    def test_stats_are_populated(self):
        left = make_factor(("A", "B"), {(0, 0): 1, (1, 1): 1})
        right = make_factor(("B", "C"), {(0, 0): 1, (1, 1): 1})
        stats = OutsideInStats()
        list(enumerate_join([left, right], COUNTING, stats=stats))
        assert stats.emitted_tuples == 2
        assert stats.search_steps > 0
        assert stats.intersections > 0

    def test_stats_merge(self):
        a = OutsideInStats(search_steps=1, emitted_tuples=2, intersections=3)
        b = OutsideInStats(search_steps=10, emitted_tuples=20, intersections=30)
        a.merge(b)
        assert (a.search_steps, a.emitted_tuples, a.intersections) == (11, 22, 33)

    def test_matches_nested_loop_join_on_random_inputs(self):
        rng = random.Random(3)
        domains = {v: tuple(range(3)) for v in "ABCD"}
        for _ in range(20):
            factors = [
                random_factor(("A", "B"), domains, rng),
                random_factor(("B", "C"), domains, rng),
                random_factor(("C", "D"), domains, rng),
            ]
            expected = {}
            for values in itertools.product(*(domains[v] for v in "ABCD")):
                assignment = dict(zip("ABCD", values))
                product = 1
                for factor in factors:
                    product *= factor.value(assignment, COUNTING)
                if product:
                    expected[values] = product
            got = {
                (a["A"], a["B"], a["C"], a["D"]): v
                for a, v in enumerate_join(factors, COUNTING, list("ABCD"))
            }
            assert got == expected


class TestJoinFactors:
    def test_full_output_scope(self):
        left = make_factor(("A", "B"), {(0, 0): 2})
        right = make_factor(("B", "C"), {(0, 1): 3})
        joined = join_factors([left, right], COUNTING)
        assert set(joined.scope) == {"A", "B", "C"}
        assert len(joined) == 1
        assert joined.value({"A": 0, "B": 0, "C": 1}, COUNTING) == 6

    def test_projection_requires_combine(self):
        psi = make_factor(("A", "B"), {(0, 0): 1})
        with pytest.raises(ValueError):
            join_factors([psi], COUNTING, output_scope=("A",))

    def test_projection_aggregates_collisions(self):
        psi = make_factor(("A", "B"), {(0, 0): 1, (0, 1): 2, (1, 0): 4})
        projected = join_factors(
            [psi], COUNTING, output_scope=("A",), combine=lambda a, b: a + b
        )
        assert projected.table == {(0,): 3, (1,): 4}

    def test_projection_with_max(self):
        psi = make_factor(("A", "B"), {(0, 0): 1, (0, 1): 5})
        projected = join_factors([psi], COUNTING, output_scope=("A",), combine=max)
        assert projected.table == {(0,): 5}

    def test_boolean_join_acts_as_intersection(self):
        left = make_factor(("A",), {(0,): True, (1,): True})
        right = make_factor(("A",), {(1,): True, (2,): True})
        joined = join_factors([left, right], BOOLEAN)
        assert set(joined.table) == {(1,)}

    def test_empty_output_scope_collapses_to_scalar(self):
        psi = make_factor(("A",), {(0,): 2, (1,): 3})
        collapsed = join_factors(
            [psi], COUNTING, output_scope=(), combine=lambda a, b: a + b
        )
        assert collapsed.table == {(): 5}

    def test_constant_factor_scales_join(self):
        constant = Factor((), {(): 10})
        psi = make_factor(("A",), {(0,): 2})
        joined = join_factors([constant, psi], COUNTING)
        assert joined.value({"A": 0}, COUNTING) == 20

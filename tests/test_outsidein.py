"""Unit tests for the OutsideIn worst-case-optimal join (:mod:`repro.core.outsidein`)."""

import itertools
import random

import pytest

from repro.core.outsidein import OutsideInStats, enumerate_join, join_factors
from repro.factors.factor import Factor
from repro.semiring.standard import BOOLEAN, COUNTING

from _helpers import make_factor, random_factor


class TestEnumerateJoin:
    def test_single_factor_enumerates_its_tuples(self):
        psi = make_factor(("A", "B"), {(0, 1): 2, (1, 0): 3})
        results = dict(
            (tuple(sorted(a.items())), v) for a, v in enumerate_join([psi], COUNTING)
        )
        assert results[(("A", 0), ("B", 1))] == 2
        assert len(results) == 2

    def test_empty_factor_list_yields_unit(self):
        results = list(enumerate_join([], COUNTING))
        assert results == [({}, 1)]

    def test_identically_zero_factor_yields_nothing(self):
        zero = Factor(("A",), {})
        other = make_factor(("A",), {(0,): 1})
        assert list(enumerate_join([zero, other], COUNTING)) == []

    def test_two_factor_join_values_multiply(self):
        left = make_factor(("A", "B"), {(0, 0): 2, (1, 1): 3})
        right = make_factor(("B", "C"), {(0, 7): 5, (1, 8): 11})
        results = {
            (a["A"], a["B"], a["C"]): v for a, v in enumerate_join([left, right], COUNTING)
        }
        assert results == {(0, 0, 7): 10, (1, 1, 8): 33}

    def test_join_respects_variable_order(self):
        left = make_factor(("A", "B"), {(0, 0): 1})
        right = make_factor(("B", "C"), {(0, 1): 1})
        for order in (["A", "B", "C"], ["C", "B", "A"], ["B", "A", "C"]):
            results = list(enumerate_join([left, right], COUNTING, order))
            assert len(results) == 1

    def test_stats_are_populated(self):
        left = make_factor(("A", "B"), {(0, 0): 1, (1, 1): 1})
        right = make_factor(("B", "C"), {(0, 0): 1, (1, 1): 1})
        stats = OutsideInStats()
        list(enumerate_join([left, right], COUNTING, stats=stats))
        assert stats.emitted_tuples == 2
        assert stats.search_steps > 0
        assert stats.intersections > 0

    def test_stats_merge(self):
        a = OutsideInStats(search_steps=1, emitted_tuples=2, intersections=3)
        b = OutsideInStats(search_steps=10, emitted_tuples=20, intersections=30)
        a.merge(b)
        assert (a.search_steps, a.emitted_tuples, a.intersections) == (11, 22, 33)

    def test_matches_nested_loop_join_on_random_inputs(self):
        rng = random.Random(3)
        domains = {v: tuple(range(3)) for v in "ABCD"}
        for _ in range(20):
            factors = [
                random_factor(("A", "B"), domains, rng),
                random_factor(("B", "C"), domains, rng),
                random_factor(("C", "D"), domains, rng),
            ]
            expected = {}
            for values in itertools.product(*(domains[v] for v in "ABCD")):
                assignment = dict(zip("ABCD", values))
                product = 1
                for factor in factors:
                    product *= factor.value(assignment, COUNTING)
                if product:
                    expected[values] = product
            got = {
                (a["A"], a["B"], a["C"], a["D"]): v
                for a, v in enumerate_join(factors, COUNTING, list("ABCD"))
            }
            assert got == expected


class TestJoinFactors:
    def test_full_output_scope(self):
        left = make_factor(("A", "B"), {(0, 0): 2})
        right = make_factor(("B", "C"), {(0, 1): 3})
        joined = join_factors([left, right], COUNTING)
        assert set(joined.scope) == {"A", "B", "C"}
        assert len(joined) == 1
        assert joined.value({"A": 0, "B": 0, "C": 1}, COUNTING) == 6

    def test_projection_requires_combine(self):
        psi = make_factor(("A", "B"), {(0, 0): 1})
        with pytest.raises(ValueError):
            join_factors([psi], COUNTING, output_scope=("A",))

    def test_projection_aggregates_collisions(self):
        psi = make_factor(("A", "B"), {(0, 0): 1, (0, 1): 2, (1, 0): 4})
        projected = join_factors(
            [psi], COUNTING, output_scope=("A",), combine=lambda a, b: a + b
        )
        assert projected.table == {(0,): 3, (1,): 4}

    def test_projection_with_max(self):
        psi = make_factor(("A", "B"), {(0, 0): 1, (0, 1): 5})
        projected = join_factors([psi], COUNTING, output_scope=("A",), combine=max)
        assert projected.table == {(0,): 5}

    def test_boolean_join_acts_as_intersection(self):
        left = make_factor(("A",), {(0,): True, (1,): True})
        right = make_factor(("A",), {(1,): True, (2,): True})
        joined = join_factors([left, right], BOOLEAN)
        assert set(joined.table) == {(1,)}

    def test_empty_output_scope_collapses_to_scalar(self):
        psi = make_factor(("A",), {(0,): 2, (1,): 3})
        collapsed = join_factors(
            [psi], COUNTING, output_scope=(), combine=lambda a, b: a + b
        )
        assert collapsed.table == {(): 5}

    def test_constant_factor_scales_join(self):
        constant = Factor((), {(): 10})
        psi = make_factor(("A",), {(0,): 2})
        joined = join_factors([constant, psi], COUNTING)
        assert joined.value({"A": 0}, COUNTING) == 20


class TestEliminateJoin:
    """The fused hash-join-and-aggregate kernel used by InsideOut's hot loop."""

    def _tries(self, factors, order):
        from repro.factors.index import TrieCache

        cache = TrieCache(order, COUNTING)
        return [cache.trie(f) for f in factors], cache

    def _fused_vs_reference(self, factors, variable, order, combine=lambda a, b: a + b):
        from repro.core.outsidein import eliminate_join

        present = set()
        for f in factors:
            present |= set(f.scope)
        output_scope = tuple(v for v in order if v in present and v != variable)
        tries, _ = self._tries(factors, order)
        fused = eliminate_join(
            tries, COUNTING, variable, output_scope, combine, variable_order=order
        )
        reference = join_factors(
            factors, COUNTING, output_scope=output_scope, combine=combine,
            variable_order=list(order),
        )
        assert fused.equals(reference, COUNTING), (fused.table, reference.table)
        return fused

    def test_matches_join_factors_on_randoms(self):
        rng = random.Random(11)
        order = ("A", "B", "C", "D")
        for _ in range(25):
            domains = {v: (0, 1, 2) for v in order}
            factors = []
            for _ in range(rng.randint(1, 4)):
                arity = rng.randint(0, 3)
                scope = tuple(rng.sample(order, arity))
                factors.append(random_factor(scope, domains, rng, density=0.7))
            present = set()
            for f in factors:
                present |= set(f.scope)
            if not present:
                continue
            variable = max(present, key=order.index)
            self._fused_vs_reference(factors, variable, order)

    def test_empty_participant_short_circuits(self):
        psi = make_factor(("A", "B"), {})
        other = make_factor(("B",), {(0,): 1})
        fused = self._fused_vs_reference([psi, other], "B", ("A", "B"))
        assert len(fused) == 0

    def test_constant_factor_participates(self):
        constant = Factor((), {(): 10})
        psi = make_factor(("A", "B"), {(0, 0): 2, (0, 1): 3})
        fused = self._fused_vs_reference([constant, psi], "B", ("A", "B"))
        assert fused.table == {(0,): 50}

    def test_no_survivors_collapses_to_scalar(self):
        psi = make_factor(("A",), {(0,): 2, (1,): 3})
        fused = self._fused_vs_reference([psi], "A", ("A",))
        assert fused.table == {(): 5}

    def test_falls_back_when_variable_not_last(self):
        from repro.core.outsidein import eliminate_join

        left = make_factor(("A", "B"), {(0, 0): 1, (1, 0): 2})
        right = make_factor(("B", "C"), {(0, 1): 3})
        order = ("A", "B", "C")
        tries, _ = self._tries([left, right], order)
        fused = eliminate_join(
            tries, COUNTING, "B", ("A", "C"), lambda a, b: a + b, variable_order=order
        )
        reference = join_factors(
            [left, right], COUNTING, output_scope=("A", "C"),
            combine=lambda a, b: a + b, variable_order=list(order),
        )
        assert fused.equals(reference, COUNTING)

    def test_counters_track_work(self):
        from repro.core.outsidein import eliminate_join

        stats = OutsideInStats()
        left = make_factor(("A", "B"), {(0, 0): 1, (0, 1): 2, (1, 0): 4})
        right = make_factor(("B",), {(0,): 1, (1,): 1})
        tries, _ = self._tries([left, right], ("A", "B"))
        fused = eliminate_join(
            tries, COUNTING, "B", ("A",), lambda a, b: a + b,
            variable_order=("A", "B"), stats=stats,
        )
        assert fused.table == {(0,): 3, (1,): 4}
        assert stats.emitted_tuples == 3
        assert stats.search_steps > 0
        assert stats.intersections > 0


class TestTrieCache:
    def test_trie_reused_for_same_factor(self):
        from repro.factors.index import TrieCache

        cache = TrieCache(("A", "B"), COUNTING)
        psi = make_factor(("A", "B"), {(0, 0): 1})
        assert cache.trie(psi) is cache.trie(psi)

    def test_projection_reused_and_discarded(self):
        from repro.factors.index import TrieCache

        cache = TrieCache(("A", "B", "C"), COUNTING)
        psi = make_factor(("A", "B"), {(0, 0): 1, (0, 1): 2})
        projected, trie = cache.projection(psi, {"A"})
        assert projected.table == {(0,): 1}
        assert cache.projection(psi, {"A"})[1] is trie
        cache.discard(psi)
        assert cache.projection(psi, {"A"})[1] is not trie

    def test_dense_factor_indexed_via_listing(self):
        from repro.factors.dense import DenseFactor
        from repro.factors.index import TrieCache

        dense = DenseFactor.from_factor(
            make_factor(("A",), {(0,): 2, (1,): 0}), {"A": (0, 1)}, COUNTING
        )
        cache = TrieCache(("A",), COUNTING)
        trie = cache.trie(dense)
        assert trie.value((0,)) == 2

"""Unit tests for vertex-ordering heuristics (:mod:`repro.hypergraph.orderings`)."""

import pytest

from repro.hypergraph.covers import fractional_edge_cover_number
from repro.hypergraph.elimination import induced_width
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.orderings import (
    best_ordering_exhaustive,
    greedy_fractional_cover_ordering,
    min_degree_ordering,
    min_fill_ordering,
)


PATH = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("C", "D"), ("D", "E")])
TRIANGLE = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("A", "C")])
STAR = Hypergraph.from_scopes([("H", "L1"), ("H", "L2"), ("H", "L3"), ("H", "L4")])


def _treewidth_of(hypergraph, ordering):
    return induced_width(hypergraph, ordering, lambda bag: len(bag) - 1)


class TestMinFill:
    def test_covers_all_vertices(self):
        ordering = min_fill_ordering(PATH)
        assert sorted(ordering) == sorted(PATH.vertices)

    def test_path_width_is_one(self):
        assert _treewidth_of(PATH, min_fill_ordering(PATH)) == 1

    def test_star_width_is_one(self):
        assert _treewidth_of(STAR, min_fill_ordering(STAR)) == 1

    def test_triangle_width_is_two(self):
        assert _treewidth_of(TRIANGLE, min_fill_ordering(TRIANGLE)) == 2

    def test_deterministic(self):
        assert min_fill_ordering(PATH) == min_fill_ordering(PATH)


class TestMinDegree:
    def test_covers_all_vertices(self):
        ordering = min_degree_ordering(STAR)
        assert sorted(ordering) == sorted(STAR.vertices)

    def test_path_width_is_one(self):
        assert _treewidth_of(PATH, min_degree_ordering(PATH)) == 1

    def test_grid_width_is_two(self):
        grid = Hypergraph.from_scopes(
            [("00", "01"), ("10", "11"), ("00", "10"), ("01", "11"),
             ("01", "02"), ("11", "12"), ("02", "12")]
        )
        assert _treewidth_of(grid, min_degree_ordering(grid)) == 2


class TestGreedyFractionalCover:
    def test_covers_all_vertices(self):
        ordering = greedy_fractional_cover_ordering(TRIANGLE)
        assert sorted(ordering) == sorted(TRIANGLE.vertices)

    def test_acyclic_width_is_one(self):
        ordering = greedy_fractional_cover_ordering(PATH)
        width = induced_width(
            PATH, ordering, lambda bag: fractional_edge_cover_number(PATH, bag)
        )
        assert width == pytest.approx(1.0)


class TestExhaustive:
    def test_matches_known_optimum_for_triangle(self):
        ordering = best_ordering_exhaustive(
            TRIANGLE, lambda bag: fractional_edge_cover_number(TRIANGLE, bag)
        )
        width = induced_width(
            TRIANGLE, ordering, lambda bag: fractional_edge_cover_number(TRIANGLE, bag)
        )
        assert width == pytest.approx(1.5)

    def test_candidate_restriction(self):
        candidates = [["A", "B", "C", "D", "E"], ["E", "D", "C", "B", "A"]]
        ordering = best_ordering_exhaustive(
            PATH, lambda bag: len(bag) - 1, candidates=candidates
        )
        assert ordering in [list(c) for c in candidates]

    def test_empty_hypergraph(self):
        empty = Hypergraph()
        assert best_ordering_exhaustive(empty, lambda bag: len(bag)) == []

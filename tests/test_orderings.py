"""Unit tests for vertex-ordering heuristics (:mod:`repro.hypergraph.orderings`)."""

import pytest

from repro.hypergraph.covers import fractional_edge_cover_number
from repro.hypergraph.elimination import induced_width
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.orderings import (
    best_ordering_exhaustive,
    greedy_fractional_cover_ordering,
    min_degree_ordering,
    min_fill_ordering,
)


PATH = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("C", "D"), ("D", "E")])
TRIANGLE = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("A", "C")])
STAR = Hypergraph.from_scopes([("H", "L1"), ("H", "L2"), ("H", "L3"), ("H", "L4")])


def _treewidth_of(hypergraph, ordering):
    return induced_width(hypergraph, ordering, lambda bag: len(bag) - 1)


class TestMinFill:
    def test_covers_all_vertices(self):
        ordering = min_fill_ordering(PATH)
        assert sorted(ordering) == sorted(PATH.vertices)

    def test_path_width_is_one(self):
        assert _treewidth_of(PATH, min_fill_ordering(PATH)) == 1

    def test_star_width_is_one(self):
        assert _treewidth_of(STAR, min_fill_ordering(STAR)) == 1

    def test_triangle_width_is_two(self):
        assert _treewidth_of(TRIANGLE, min_fill_ordering(TRIANGLE)) == 2

    def test_deterministic(self):
        assert min_fill_ordering(PATH) == min_fill_ordering(PATH)


class TestMinDegree:
    def test_covers_all_vertices(self):
        ordering = min_degree_ordering(STAR)
        assert sorted(ordering) == sorted(STAR.vertices)

    def test_path_width_is_one(self):
        assert _treewidth_of(PATH, min_degree_ordering(PATH)) == 1

    def test_grid_width_is_two(self):
        grid = Hypergraph.from_scopes(
            [("00", "01"), ("10", "11"), ("00", "10"), ("01", "11"),
             ("01", "02"), ("11", "12"), ("02", "12")]
        )
        assert _treewidth_of(grid, min_degree_ordering(grid)) == 2


class TestGreedyFractionalCover:
    def test_covers_all_vertices(self):
        ordering = greedy_fractional_cover_ordering(TRIANGLE)
        assert sorted(ordering) == sorted(TRIANGLE.vertices)

    def test_acyclic_width_is_one(self):
        ordering = greedy_fractional_cover_ordering(PATH)
        width = induced_width(
            PATH, ordering, lambda bag: fractional_edge_cover_number(PATH, bag)
        )
        assert width == pytest.approx(1.0)


class TestDeterministicTieBreaks:
    """Regression pins: orderings on the paper's worked example hypergraphs.

    Every heuristic breaks cost ties on the vertex repr (LP-derived costs
    are quantised first), so these exact orderings must be reproduced on
    every run and platform and for every edge insertion order.
    """

    # Example 5.6 / Figure 1 flavour: a chorded 4-cycle with a pendant edge.
    FIGURE = Hypergraph.from_scopes(
        [("X1", "X2"), ("X2", "X3"), ("X3", "X4"), ("X1", "X4"), ("X2", "X4"), ("X4", "X5")]
    )

    def test_min_fill_pins(self):
        assert min_fill_ordering(PATH) == ["E", "D", "C", "B", "A"]
        assert min_fill_ordering(TRIANGLE) == ["C", "B", "A"]
        assert min_fill_ordering(STAR) == ["L4", "H", "L3", "L2", "L1"]
        assert min_fill_ordering(self.FIGURE) == ["X5", "X4", "X3", "X2", "X1"]

    def test_min_degree_pins(self):
        assert min_degree_ordering(PATH) == ["E", "D", "C", "B", "A"]
        assert min_degree_ordering(STAR) == ["L4", "H", "L3", "L2", "L1"]
        assert min_degree_ordering(self.FIGURE) == ["X4", "X3", "X2", "X1", "X5"]

    def test_greedy_fractional_cover_pins(self):
        assert greedy_fractional_cover_ordering(PATH) == ["E", "D", "C", "B", "A"]
        assert greedy_fractional_cover_ordering(TRIANGLE) == ["C", "B", "A"]
        assert greedy_fractional_cover_ordering(self.FIGURE) == ["X4", "X3", "X2", "X1", "X5"]

    def test_exhaustive_pins(self):
        assert best_ordering_exhaustive(
            TRIANGLE, lambda bag: fractional_edge_cover_number(TRIANGLE, bag)
        ) == ["A", "B", "C"]
        assert best_ordering_exhaustive(PATH, lambda bag: len(bag) - 1) == [
            "A", "B", "C", "D", "E",
        ]

    def test_stable_under_edge_insertion_order(self):
        import random

        edges = [("A", "B"), ("B", "C"), ("C", "D"), ("D", "E")]
        for seed in range(5):
            shuffled = list(edges)
            random.Random(seed).shuffle(shuffled)
            hypergraph = Hypergraph.from_scopes(shuffled)
            assert min_fill_ordering(hypergraph) == ["E", "D", "C", "B", "A"]
            assert min_degree_ordering(hypergraph) == ["E", "D", "C", "B", "A"]
            assert greedy_fractional_cover_ordering(hypergraph) == ["E", "D", "C", "B", "A"]

    def test_repeated_runs_identical(self):
        for heuristic in (min_fill_ordering, min_degree_ordering, greedy_fractional_cover_ordering):
            assert heuristic(self.FIGURE) == heuristic(self.FIGURE)


class TestExhaustive:
    def test_matches_known_optimum_for_triangle(self):
        ordering = best_ordering_exhaustive(
            TRIANGLE, lambda bag: fractional_edge_cover_number(TRIANGLE, bag)
        )
        width = induced_width(
            TRIANGLE, ordering, lambda bag: fractional_edge_cover_number(TRIANGLE, bag)
        )
        assert width == pytest.approx(1.5)

    def test_candidate_restriction(self):
        candidates = [["A", "B", "C", "D", "E"], ["E", "D", "C", "B", "A"]]
        ordering = best_ordering_exhaustive(
            PATH, lambda bag: len(bag) - 1, candidates=candidates
        )
        assert ordering in [list(c) for c in candidates]

    def test_empty_hypergraph(self):
        empty = Hypergraph()
        assert best_ordering_exhaustive(empty, lambda bag: len(bag)) == []

"""The replicated serving tier: correctness, coalescing, shedding, restarts.

Replica processes make these tests inherently multi-process; they stay
small (tiny queries, fleets of 1–2) so the suite remains fast on 1-CPU
hosts.  Determinism notes inline: admission and coalescing decisions all
happen *before* the first ``await`` inside ``Frontend.submit``, so a
single ``gather`` over a batch observes them in submission order.
"""

import asyncio

import pytest

from repro.planner import PlanCache, plan
from repro.serve import (
    Frontend,
    Overloaded,
    PlanFailure,
    ServeRequest,
    ServeResult,
)

from test_planner_differential import _random_query

pytestmark = pytest.mark.slow


def _reference(query):
    return plan(query, cache=PlanCache()).execute().factor


@pytest.fixture
def frontend():
    fe = Frontend(replicas=2, health_interval=None)
    yield fe
    fe.close()


def test_replicas_match_in_process_reference(frontend):
    queries = [_random_query("counting", seed) for seed in range(4)]
    expected = [_reference(q) for q in queries]
    results = frontend.serve_batch(queries)
    for result, want in zip(results, expected):
        assert isinstance(result, ServeResult)
        assert result.replica in (0, 1)
        assert result.factor.scope == want.scope
        assert result.factor.table == want.table


def test_value_equal_requests_coalesce_across_clients(frontend):
    # Five *distinct* objects with identical content — different clients
    # issuing the same query.  All submissions register their content key
    # before the first await, so every duplicate deterministically joins
    # the primary's in-flight execution.
    clients = [_random_query("counting", 7) for _ in range(5)]
    assert len({id(q) for q in clients}) == 5
    results = frontend.serve_batch(clients)
    assert [r.coalesced for r in results] == [False, True, True, True, True]
    assert len({tuple(sorted(r.factor.table.items())) for r in results}) == 1
    stats = frontend.stats()
    assert stats["submitted"] == 5
    assert stats["coalesced"] == 4
    # One execution tier-wide: exactly one replica served exactly one request.
    served = [p["served"] for p in frontend.ping() if p is not None]
    assert sum(served) == 1


def test_coalescing_opt_out_executes_every_request(frontend):
    clients = [
        ServeRequest(query=_random_query("counting", 3), coalesce=False)
        for _ in range(3)
    ]
    results = frontend.serve_batch(clients)
    assert all(not r.coalesced for r in results)
    assert sum(p["served"] for p in frontend.ping() if p is not None) == 3


def test_factor_tables_ship_once_per_replica(frontend):
    # Value-equal traffic re-sent in a second batch must not re-ship factor
    # payloads: the replicas' known-digest sets are already warm.
    frontend.serve_batch([ServeRequest(query=_random_query("counting", 9), coalesce=False)
                          for _ in range(2)])
    known_after_first = [len(r.known) for r in frontend._set.replicas]
    assert sum(known_after_first) >= 1
    frontend.serve_batch([ServeRequest(query=_random_query("counting", 9), coalesce=False)
                          for _ in range(2)])
    assert [len(r.known) for r in frontend._set.replicas] == known_after_first


def test_tenant_quota_sheds_excess_in_flight():
    with Frontend(replicas=1, health_interval=None, tenant_limit=1) as fe:
        requests = [
            ServeRequest(query=_random_query("counting", seed), tenant="acme", coalesce=False)
            for seed in range(3)
        ]
        outcomes = fe.serve_batch(requests, return_exceptions=True)
        shed = [o for o in outcomes if isinstance(o, Overloaded)]
        ok = [o for o in outcomes if isinstance(o, ServeResult)]
        # The first submission occupies the quota before any await; the
        # other two are shed at admission.
        assert len(ok) == 1 and len(shed) == 2
        assert all(e.tenant == "acme" for e in shed)
        assert fe.stats()["shed_tenant"] == 2


def test_tenant_quota_is_per_tenant():
    with Frontend(replicas=1, health_interval=None, tenant_limit=1) as fe:
        requests = [
            ServeRequest(query=_random_query("counting", seed), tenant=f"t{seed}", coalesce=False)
            for seed in range(3)
        ]
        outcomes = fe.serve_batch(requests, return_exceptions=True)
        assert all(isinstance(o, ServeResult) for o in outcomes)
        assert fe.stats()["shed_tenant"] == 0


def test_global_queue_bound_sheds():
    with Frontend(replicas=1, health_interval=None, max_pending=1) as fe:
        requests = [
            ServeRequest(query=_random_query("counting", seed), coalesce=False)
            for seed in range(4)
        ]
        outcomes = fe.serve_batch(requests, return_exceptions=True)
        shed = [o for o in outcomes if isinstance(o, Overloaded)]
        assert len(shed) == 3
        assert fe.stats()["shed_queue"] == 3


def test_deadline_aware_rejection():
    with Frontend(replicas=1, health_interval=None) as fe:
        # Prime the latency estimate as if the tier were very slow; the
        # admission check then sheds any deadline a backlogged tier cannot
        # meet, while a no-deadline request sails through.
        fe._latency_ewma = 5.0
        requests = [
            ServeRequest(query=_random_query("counting", 1), coalesce=False),
            ServeRequest(query=_random_query("counting", 2), deadline=0.001, coalesce=False),
            ServeRequest(query=_random_query("counting", 3), coalesce=False),
        ]
        outcomes = fe.serve_batch(requests, return_exceptions=True)
        assert isinstance(outcomes[0], ServeResult)
        assert isinstance(outcomes[1], Overloaded)
        assert "deadline" in str(outcomes[1])
        assert isinstance(outcomes[2], ServeResult)
        assert fe.stats()["shed_deadline"] == 1


def test_generous_deadline_is_served(frontend):
    [result] = frontend.serve_batch([
        ServeRequest(query=_random_query("counting", 4), deadline=60.0)
    ])
    assert isinstance(result, ServeResult)


def test_replica_crash_is_restarted_and_request_retried():
    with Frontend(replicas=1, health_interval=None) as fe:
        query = _random_query("counting", 5)
        want = _reference(query)
        [first] = fe.serve_batch([query])
        assert first.factor.table == want.table
        # Kill the whole fleet out from under the tier.
        for handle in fe._set.replicas:
            handle.process.terminate()
            handle.process.join(5.0)
        [again] = fe.serve_batch([_random_query("counting", 5)])
        assert again.factor.table == want.table
        stats = fe.stats()
        assert stats["replica_crashes"] >= 1
        assert stats["fleet"][0]["restarts"] >= 1
        assert stats["fleet"][0]["alive"]


def test_health_loop_restarts_dead_replicas():
    with Frontend(replicas=1, health_interval=0.05) as fe:
        async def scenario():
            await fe.submit(ServeRequest(query=_random_query("counting", 6)))
            fe._set.replicas[0].process.terminate()
            fe._set.replicas[0].process.join(5.0)
            for _ in range(100):
                await asyncio.sleep(0.05)
                if fe._set.replicas[0].alive():
                    break
            assert fe._set.replicas[0].alive()
            await fe._cancel_health_task()

        asyncio.run(scenario())


def test_plan_failure_is_typed_and_crosses_the_pipe(frontend):
    bad = ServeRequest(
        query=_random_query("counting", 8),
        options={"strategy": "no-such-strategy"},
    )
    outcomes = frontend.serve_batch([bad], return_exceptions=True)
    assert isinstance(outcomes[0], PlanFailure)
    assert "no-such-strategy" in str(outcomes[0])
    # The replica survived the bad request.
    assert all(p is not None for p in frontend.ping())


def test_factorized_output_rejected_at_the_frontend(frontend):
    request = ServeRequest(query=_random_query("counting", 2), output_mode="factorized")
    outcomes = frontend.serve_batch([request], return_exceptions=True)
    assert isinstance(outcomes[0], PlanFailure)
    assert "process boundary" in str(outcomes[0])


def test_ping_reports_replica_counters(frontend):
    frontend.serve_batch([_random_query("counting", 0), _random_query("counting", 1)])
    pongs = frontend.ping()
    assert len(pongs) == 2
    assert all(p is not None and "served" in p and "factor_store" in p for p in pongs)
    assert sum(p["served"] for p in pongs) == 2


def test_shed_decays_latency_ewma():
    """A failure/slow burst pins the latency EWMA high; sheds produce no
    latency sample, so without decay the estimate could never recover and
    every deadline-carrying request would be rejected forever.  Each shed
    now decays the EWMA by one step, so the tier probes its way back to
    admitting real work."""
    with Frontend(replicas=1, health_interval=None) as fe:
        fe._latency_ewma = 100.0
        fe._pending = 1  # a standing backlog: estimated wait == the EWMA

        async def drive():
            request = ServeRequest(
                query=_random_query("counting", 5), deadline=1.0, coalesce=False
            )
            for attempt in range(60):
                try:
                    return attempt, await fe.submit(request)
                except Overloaded:
                    continue
            raise AssertionError("EWMA never decayed enough to admit a request")

        sheds, result = asyncio.run(drive())
        assert isinstance(result, ServeResult)
        assert sheds > 0  # the first attempts were shed...
        assert fe.stats()["shed_deadline"] == sheds
        # ...and the estimate ended up low enough to admit, then was
        # refreshed by the admitted request's real latency sample.
        assert fe._latency_ewma < 100.0
        fe._pending = 0


def test_decay_latency_steps_the_ewma_down():
    fe = Frontend(replicas=1, health_interval=None)
    try:
        assert fe._latency_ewma is None
        fe._decay_latency()  # no observation yet: stays unset
        assert fe._latency_ewma is None
        fe._latency_ewma = 10.0
        fe._decay_latency()
        assert fe._latency_ewma == pytest.approx(8.0)
    finally:
        fe.close()


def test_closed_frontend_refuses_work():
    fe = Frontend(replicas=1, health_interval=None)
    fe.close()
    with pytest.raises(RuntimeError):
        fe.serve_batch([_random_query("counting", 0)])

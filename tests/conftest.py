"""Shared fixtures for the faq-engine test-suite.

Plain helper *functions* live in :mod:`_helpers` (a uniquely-named module)
so that test files can import them without relying on ``conftest`` being
importable — pytest may have already bound the ``conftest`` module name to
``benchmarks/conftest.py`` when both directories are collected together.
The names are re-exported here for backwards compatibility.
"""

from __future__ import annotations

import random

import pytest

from repro.core.query import FAQQuery, Variable
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import BOOLEAN, COUNTING, MAX_PRODUCT, SUM_PRODUCT

from _helpers import make_factor, random_factor, small_random_query

__all__ = ["make_factor", "random_factor", "small_random_query"]


@pytest.fixture
def counting():
    return COUNTING


@pytest.fixture
def boolean():
    return BOOLEAN


@pytest.fixture
def sum_product():
    return SUM_PRODUCT


@pytest.fixture
def max_product():
    return MAX_PRODUCT


@pytest.fixture
def triangle_query():
    """A fixed 3-variable triangle query over the counting semiring."""
    rng = random.Random(7)
    names = ["A", "B", "C"]
    domains = {v: tuple(range(4)) for v in names}
    factors = [
        random_factor(("A", "B"), domains, rng, zero_one=True),
        random_factor(("B", "C"), domains, rng, zero_one=True),
        random_factor(("A", "C"), domains, rng, zero_one=True),
    ]
    aggregates = {v: SemiringAggregate.sum() for v in names}
    return FAQQuery(
        variables=[Variable(v, domains[v]) for v in names],
        free=[],
        aggregates=aggregates,
        factors=factors,
        semiring=COUNTING,
        name="triangle",
    )

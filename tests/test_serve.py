"""The in-process serving loop: typed API, content coalescing, trie reuse.

The serving surface is :class:`~repro.serve.ServeRequest` in /
:class:`~repro.serve.ServeResult` out; the deprecated PR 5 forms (bare
queries, ``dag_workers=``) are exercised at the bottom of the file and
must keep working — behind ``DeprecationWarning``.
"""

import threading
import warnings

import pytest

from repro.core.query import QueryError
from repro.planner import PlanCache, STRATEGY_INSIDEOUT, plan
from repro.serve import PlanServer, ServeRequest, ServeResult, execute_batch

from test_planner_differential import _random_query


def _reference(query):
    return plan(query, cache=PlanCache()).execute().factor


def _traffic(num_unique=4, repeats=6, name="counting"):
    unique = [_random_query(name, seed) for seed in range(num_unique)]
    return unique, [unique[i % num_unique] for i in range(num_unique * repeats)]


def _requests(queries, **kwargs):
    return [ServeRequest(query=q, **kwargs) for q in queries]


def test_execute_batch_preserves_input_order():
    unique, traffic = _traffic()
    expected = {id(q): _reference(q) for q in unique}
    results = execute_batch(_requests(traffic), pool_size=3)
    assert len(results) == len(traffic)
    for query, result in zip(traffic, results):
        assert isinstance(result, ServeResult)
        want = expected[id(query)]
        assert result.factor.scope == want.scope
        assert result.factor.table == want.table


def test_content_coalescing_across_distinct_objects():
    """Value-equal queries built as *distinct objects* (different clients)
    coalesce onto in-flight executions — the content-hash upgrade over the
    PR 5 id()-based coalescing, which treated them as unrelated."""
    traffic = [_random_query("counting", seed % 3) for seed in range(15)]
    assert len({id(q) for q in traffic}) == 15
    with PlanServer(pool_size=2) as server:
        results = server.execute_batch(_requests(traffic))
        stats = server.stats()
    assert stats["submitted"] == 15
    # Every request past the first of each of the 3 content classes finds a
    # value-equal execution in flight (enqueueing is far faster than
    # executing; allow a few primaries to complete mid-enqueue).
    assert stats["coalesced"] >= 15 - 2 * 3
    by_key = {}
    for query, result in zip(traffic, results):
        key = result.content_key
        assert key is not None
        by_key.setdefault(key, result.factor.table)
        assert result.factor.table == by_key[key]
    assert len(by_key) == 3


def test_coalesced_futures_resolve_with_flag():
    """White-box determinism: a request whose content key is already in
    flight chains onto the primary and resolves flagged ``coalesced``."""
    query = _random_query("counting", 2)
    duplicate = _random_query("counting", 2)
    request = ServeRequest(query=query)
    with PlanServer(pool_size=1) as server:
        primary = server.submit(request)
        primary.result()  # settle
        # Re-insert an unresolved primary under the duplicate's key.
        from concurrent.futures import Future

        pinned: Future = Future()
        dup_request = ServeRequest(query=duplicate)
        server._inflight[dup_request.content_key] = pinned
        chained = server.submit(dup_request)
        assert not chained.done()
        pinned.set_result(primary.result())
        final = chained.result(timeout=5)
        assert final.coalesced is True
        assert final.factor.table == primary.result().factor.table
    assert primary.result().coalesced is False


def test_no_coalescing_still_correct_and_reuses_plans():
    unique, traffic = _traffic(num_unique=3, repeats=4)
    expected = {id(q): _reference(q) for q in unique}
    with PlanServer(pool_size=2) as server:
        results = server.execute_batch(_requests(traffic), coalesce=False)
        stats = server.stats()
    assert stats["submitted"] == len(traffic)
    assert stats["coalesced"] == 0
    # Each execution consults the digest-addressed cache; only a class's
    # first occurrence falls through to a signature lookup + search.  Two
    # pool workers can race a class's first two occurrences into concurrent
    # cold paths, hence the slack.
    total = stats["plan_cache_hits"] + stats["plan_cache_misses"]
    assert total >= len(traffic)
    assert stats["plan_cache_hits"] >= len(traffic) - 2 * len(unique)
    for query, result in zip(traffic, results):
        assert result.factor.table == expected[id(query)].table


def test_digest_plans_skip_signature_recomputation():
    """A value-equal repeat plans from the digest entry: the signature-keyed
    LRU sees no second lookup."""
    cache = PlanCache()
    with PlanServer(cache=cache) as server:
        server.execute_request(ServeRequest(query=_random_query("counting", 1)))
        sig_lookups_after_first = cache._entries.hits + cache._entries.misses
        server.execute_request(ServeRequest(query=_random_query("counting", 1)))
        assert cache._entries.hits + cache._entries.misses == sig_lookups_after_first
        assert cache._digests.hits == 1


def test_shared_tries_reused_across_value_equal_objects():
    """Trie stores are content-keyed: a *fresh* value-equal query object in
    a later batch reuses the tries built for the canonical instance."""
    def fresh_batch():
        return _requests(
            [_random_query("counting", seed % 2) for seed in range(6)],
            options={"strategy": STRATEGY_INSIDEOUT, "backend": "sparse"},
        )

    with PlanServer(pool_size=2) as server:
        server.execute_batch(fresh_batch(), coalesce=False)
        first = server.stats()
        server.execute_batch(fresh_batch(), coalesce=False)
        second = server.stats()
    assert first["shared_trie_stores"] >= 1
    assert second["shared_trie_hits"] > first["shared_trie_hits"]
    assert second["shared_trie_misses"] == first["shared_trie_misses"]


def test_submit_returns_typed_futures():
    unique, traffic = _traffic(num_unique=2, repeats=2)
    expected = {id(q): _reference(q) for q in unique}
    with PlanServer(pool_size=2) as server:
        futures = [server.submit(request) for request in _requests(traffic)]
        for query, future in zip(traffic, futures):
            result = future.result()
            assert isinstance(result, ServeResult)
            assert result.factor.table == expected[id(query)].table
    with pytest.raises(RuntimeError):
        server.submit(_requests(traffic[:1])[0])


def test_request_validation_is_typed():
    query = _random_query("counting", 0)
    with pytest.raises(QueryError):
        ServeRequest(query="not a query")
    with pytest.raises(QueryError):
        ServeRequest(query=query, output_mode="nope")
    with pytest.raises(QueryError):
        ServeRequest(query=query, deadline=0.0)
    with pytest.raises(QueryError):
        ServeRequest(query=query, options={"dag_workers": 2})
    normalized = ServeRequest(query=query, options={"backend": "sparse"})
    assert normalized.options == (("backend", "sparse"),)
    assert normalized.plan_kwargs() == {"backend": "sparse"}


def test_server_workers_validation_matches_engines():
    for bad in (0, -1, True):
        with pytest.raises(QueryError):
            PlanServer(workers=bad)
        with pytest.raises(QueryError):
            PlanServer(pool_size=bad)


def test_trie_counters_survive_lru_eviction():
    """stats() trie counters are cumulative — eviction must not shrink them."""
    def fresh_batch():
        return _requests(
            [_random_query("counting", seed % 3) for seed in range(6)],
            options={"strategy": STRATEGY_INSIDEOUT, "backend": "sparse"},
        )

    with PlanServer(pool_size=1, max_shared_queries=1) as server:
        server.execute_batch(fresh_batch(), coalesce=False)
        first = server.stats()
        server.execute_batch(fresh_batch(), coalesce=False)
        second = server.stats()
    assert first["shared_trie_stores"] == 1  # the LRU kept only one store
    total_first = first["shared_trie_hits"] + first["shared_trie_misses"]
    total_second = second["shared_trie_hits"] + second["shared_trie_misses"]
    assert second["shared_trie_hits"] >= first["shared_trie_hits"]
    assert total_second >= total_first


def test_per_query_workers_compose_with_the_pool():
    unique, traffic = _traffic(num_unique=2, repeats=2)
    expected = {id(q): _reference(q) for q in unique}
    results = execute_batch(_requests(traffic), workers=2, pool_size=2)
    for query, result in zip(traffic, results):
        assert result.factor.table == expected[id(query)].table


def test_batch_with_factorized_output_mode():
    unique, _ = _traffic(num_unique=3, repeats=1)
    requests = _requests(
        unique, output_mode="factorized", options={"strategy": STRATEGY_INSIDEOUT}
    )
    results = execute_batch(requests, pool_size=2)
    for result in results:
        assert result.factor is None
        assert result.factorized is not None


def test_cost_model_invocations_exact_under_concurrency():
    """``CostModel.invocations`` lands exactly on the true call count.

    Plain ``+= 1`` increments tear under a pool (read-modify-write races
    lose updates); the model's lock keeps the counter exact, which is what
    lets plan-cache tests keep proving "a hit skips the search" even with
    serving-layer concurrency.
    """
    from repro.planner import CostModel, QueryStatistics

    model = CostModel()
    query = _random_query("counting", 1)
    stats = QueryStatistics.from_query(query)
    hypergraph = query.hypergraph()
    ordering = tuple(query.order)
    threads_n, per_thread = 4, 50
    barrier = threading.Barrier(threads_n)
    errors = []

    def worker():
        try:
            barrier.wait(timeout=10)
            for _ in range(per_thread):
                model.estimate(query, stats, ordering, hypergraph=hypergraph)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert model.invocations == threads_n * per_thread


def test_trie_cache_counters_exact_under_concurrency():
    """The per-run ``TrieCache`` hit/miss counters stay exact under the pool."""
    from repro.factors.index import TrieCache

    query = _random_query("counting", 2)
    tries = TrieCache(tuple(query.order), query.semiring, thread_safe=True)
    factors = list(query.factors)
    threads_n, per_thread = 4, 40
    barrier = threading.Barrier(threads_n)
    errors = []

    def worker():
        try:
            barrier.wait(timeout=10)
            for _ in range(per_thread):
                for factor in factors:
                    tries.trie(factor)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    counters = tries.counters()
    assert counters["hits"] + counters["misses"] == threads_n * per_thread * len(factors)
    # Each factor misses at least once (first build) but the store-once
    # discipline keeps the miss count tiny relative to the traffic.
    assert counters["misses"] >= len(factors)
    assert counters["hits"] >= (threads_n * per_thread - threads_n) * len(factors)


# ---------------------------------------------------------------------- #
# the deprecated PR 5 surface (must keep working, behind warnings)
# ---------------------------------------------------------------------- #
def test_legacy_bare_query_submit_warns_and_returns_plan_result():
    from repro.planner import PlanResult

    query = _random_query("counting", 0)
    with PlanServer() as server:
        with pytest.warns(DeprecationWarning, match="ServeRequest"):
            future = server.submit(query)
        result = future.result()
    assert isinstance(result, PlanResult)
    assert result.factor.table == _reference(query).table


def test_legacy_bare_query_batch_warns_and_coalesces_by_identity():
    from repro.planner import PlanResult

    unique, traffic = _traffic(num_unique=3, repeats=5)
    with PlanServer(pool_size=2) as server:
        with pytest.warns(DeprecationWarning):
            results = server.execute_batch(traffic)
        stats = server.stats()
    # The legacy contract is exact: 15 requests over 3 objects -> 3 submits.
    assert stats["submitted"] == 3
    assert stats["coalesced"] == len(traffic) - 3
    by_query = {}
    for query, result in zip(traffic, results):
        assert isinstance(result, PlanResult)
        by_query.setdefault(id(query), result)
        assert result is by_query[id(query)]


def test_legacy_dag_workers_alias_warns_everywhere():
    query = _random_query("counting", 1)
    with pytest.warns(DeprecationWarning, match="dag_workers"):
        server = PlanServer(dag_workers=2)
    assert server.workers == 2
    server.shutdown()
    with pytest.warns(DeprecationWarning, match="dag_workers"):
        results = execute_batch([ServeRequest(query=query)], dag_workers=2)
    assert results[0].factor.table == _reference(query).table
    with pytest.raises(QueryError):
        with pytest.warns(DeprecationWarning, match="dag_workers"):
            PlanServer(workers=2, dag_workers=3)  # conflicting values


def test_legacy_plan_kwargs_still_flow_through_batch():
    unique, _ = _traffic(num_unique=2, repeats=1)
    with pytest.warns(DeprecationWarning):
        results = execute_batch(
            list(unique), strategy=STRATEGY_INSIDEOUT, output_mode="factorized"
        )
    for result in results:
        assert result.factor is None
        assert result.factorized is not None

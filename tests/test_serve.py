"""The batched serving layer: ordering, coalescing, trie reuse, exact stats."""

import threading

import pytest

from repro.planner import PlanCache, STRATEGY_INSIDEOUT, plan
from repro.serve import PlanServer, execute_batch

from test_planner_differential import _random_query


def _reference(query):
    return plan(query, cache=PlanCache()).execute().factor


def _traffic(num_unique=4, repeats=6, name="counting"):
    unique = [_random_query(name, seed) for seed in range(num_unique)]
    return unique, [unique[i % num_unique] for i in range(num_unique * repeats)]


def test_execute_batch_preserves_input_order():
    unique, traffic = _traffic()
    expected = {id(q): _reference(q) for q in unique}
    results = execute_batch(traffic, workers=3)
    assert len(results) == len(traffic)
    for query, result in zip(traffic, results):
        want = expected[id(query)]
        assert result.factor.scope == want.scope
        assert result.factor.table == want.table


def test_coalescing_executes_each_object_once():
    unique, traffic = _traffic(num_unique=3, repeats=5)
    with PlanServer(workers=2) as server:
        results = server.execute_batch(traffic)
        stats = server.stats()
    # 15 requests, 3 unique objects -> 12 coalesced away.
    assert stats["submitted"] == 3
    assert stats["coalesced"] == len(traffic) - 3
    # Coalesced requests share the result object.
    by_query = {}
    for query, result in zip(traffic, results):
        by_query.setdefault(id(query), result)
        assert result is by_query[id(query)]


def test_no_coalescing_still_correct_and_reuses_plans():
    unique, traffic = _traffic(num_unique=3, repeats=4)
    expected = {id(q): _reference(q) for q in unique}
    with PlanServer(workers=2) as server:
        results = server.execute_batch(traffic, coalesce=False)
        stats = server.stats()
    assert stats["submitted"] == len(traffic)
    assert stats["coalesced"] == 0
    # Counters are exact (no torn updates), and repeats overwhelmingly plan
    # from the cache.  Two workers can race a query's *first* two
    # occurrences into concurrent cold searches, so allow up to two misses
    # per unique signature.
    assert stats["plan_cache_hits"] + stats["plan_cache_misses"] == len(traffic)
    assert stats["plan_cache_hits"] >= len(traffic) - 2 * len(unique)
    for query, result in zip(traffic, results):
        assert result.factor.table == expected[id(query)].table


def test_shared_tries_survive_across_batches():
    unique, traffic = _traffic(num_unique=2, repeats=3)
    with PlanServer(workers=2) as server:
        server.execute_batch(traffic, coalesce=False, strategy=STRATEGY_INSIDEOUT,
                             backend="sparse")
        first = server.stats()
        server.execute_batch(traffic, coalesce=False, strategy=STRATEGY_INSIDEOUT,
                             backend="sparse")
        second = server.stats()
    assert first["shared_trie_stores"] >= 1
    # The second batch reuses tries built by the first.
    assert second["shared_trie_hits"] > first["shared_trie_hits"]
    # Sharing never rebuilds what it already holds.
    assert second["shared_trie_misses"] == first["shared_trie_misses"]


def test_submit_returns_futures():
    unique, traffic = _traffic(num_unique=2, repeats=2)
    expected = {id(q): _reference(q) for q in unique}
    with PlanServer(workers=2) as server:
        futures = [server.submit(query) for query in traffic]
        for query, future in zip(traffic, futures):
            assert future.result().factor.table == expected[id(query)].table
    with pytest.raises(RuntimeError):
        server.submit(traffic[0])


def test_server_workers_validation_matches_engines():
    from repro.core.query import QueryError

    for bad in (0, -1, True):
        with pytest.raises(QueryError):
            PlanServer(workers=bad)


def test_trie_counters_survive_lru_eviction():
    """stats() trie counters are cumulative — eviction must not shrink them."""
    unique, traffic = _traffic(num_unique=3, repeats=2)
    with PlanServer(workers=1, max_shared_queries=1) as server:
        server.execute_batch(traffic, coalesce=False, strategy=STRATEGY_INSIDEOUT,
                             backend="sparse")
        first = server.stats()
        server.execute_batch(traffic, coalesce=False, strategy=STRATEGY_INSIDEOUT,
                             backend="sparse")
        second = server.stats()
    assert first["shared_trie_stores"] == 1  # the LRU kept only one store
    total_first = first["shared_trie_hits"] + first["shared_trie_misses"]
    total_second = second["shared_trie_hits"] + second["shared_trie_misses"]
    assert second["shared_trie_hits"] >= first["shared_trie_hits"]
    assert total_second >= total_first


def test_per_query_dag_workers_compose():
    unique, traffic = _traffic(num_unique=2, repeats=2)
    expected = {id(q): _reference(q) for q in unique}
    results = execute_batch(traffic, workers=2, dag_workers=2)
    for query, result in zip(traffic, results):
        assert result.factor.table == expected[id(query)].table


def test_cost_model_invocations_exact_under_concurrency():
    """``CostModel.invocations`` lands exactly on the true call count.

    Plain ``+= 1`` increments tear under a pool (read-modify-write races
    lose updates); the model's lock keeps the counter exact, which is what
    lets plan-cache tests keep proving "a hit skips the search" even with
    serving-layer concurrency.
    """
    from repro.planner import CostModel, QueryStatistics

    model = CostModel()
    query = _random_query("counting", 1)
    stats = QueryStatistics.from_query(query)
    hypergraph = query.hypergraph()
    ordering = tuple(query.order)
    threads_n, per_thread = 4, 50
    barrier = threading.Barrier(threads_n)
    errors = []

    def worker():
        try:
            barrier.wait(timeout=10)
            for _ in range(per_thread):
                model.estimate(query, stats, ordering, hypergraph=hypergraph)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert model.invocations == threads_n * per_thread


def test_trie_cache_counters_exact_under_concurrency():
    """The per-run ``TrieCache`` hit/miss counters stay exact under the pool."""
    from repro.factors.index import TrieCache

    query = _random_query("counting", 2)
    tries = TrieCache(tuple(query.order), query.semiring, thread_safe=True)
    factors = list(query.factors)
    threads_n, per_thread = 4, 40
    barrier = threading.Barrier(threads_n)
    errors = []

    def worker():
        try:
            barrier.wait(timeout=10)
            for _ in range(per_thread):
                for factor in factors:
                    tries.trie(factor)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    counters = tries.counters()
    assert counters["hits"] + counters["misses"] == threads_n * per_thread * len(factors)
    # Each factor misses at least once (first build) but the store-once
    # discipline keeps the miss count tiny relative to the traffic.
    assert counters["misses"] >= len(factors)
    assert counters["hits"] >= (threads_n * per_thread - threads_n) * len(factors)


def test_batch_with_mixed_strategies_and_output_modes():
    unique, _ = _traffic(num_unique=3, repeats=1)
    results = execute_batch(unique, workers=2, strategy=STRATEGY_INSIDEOUT,
                            output_mode="factorized")
    for query, result in zip(unique, results):
        assert result.factor is None
        assert result.factorized is not None

"""Shared test helpers (factor and query generators).

This module deliberately has a unique basename: test modules import it with
``from _helpers import ...``.  Importing helpers from ``conftest`` is
unreliable when several directories (``tests/``, ``benchmarks/``) each carry
a ``conftest.py`` — whichever is imported first wins the ``conftest`` slot in
``sys.modules`` and shadows the other.
"""

from __future__ import annotations

import itertools
import random

from repro.core.query import FAQQuery, Variable
from repro.factors.factor import Factor
from repro.semiring.aggregates import ProductAggregate, SemiringAggregate
from repro.semiring.standard import COUNTING


def make_factor(scope, entries):
    """Shorthand factor constructor used across the tests."""
    return Factor(tuple(scope), dict(entries))


def random_factor(scope, domains, rng, density=0.7, integer=True, zero_one=False):
    """A random sparse factor over the given scope and domains."""
    table = {}
    for values in itertools.product(*(domains[v] for v in scope)):
        if rng.random() < density:
            if zero_one:
                table[values] = 1
            elif integer:
                table[values] = rng.randint(1, 4)
            else:
                table[values] = round(rng.uniform(0.1, 2.0), 3)
    return Factor(tuple(scope), table)


def small_random_query(
    seed,
    *,
    allow_products=True,
    allow_free=True,
    semiring=COUNTING,
    zero_one=False,
    max_variables=5,
):
    """A small random FAQ query for brute-force cross-checking."""
    rng = random.Random(seed)
    n = rng.randint(2, max_variables)
    names = [f"x{i}" for i in range(n)]
    domains = {v: tuple(range(rng.randint(2, 3))) for v in names}
    num_free = min(rng.randint(0, 2) if allow_free else 0, n - 1)
    free = names[:num_free]
    aggregates = {}
    for name in names[num_free:]:
        roll = rng.random()
        if allow_products and roll < 0.3:
            aggregates[name] = ProductAggregate.product()
        elif roll < 0.65:
            aggregates[name] = SemiringAggregate.sum()
        else:
            aggregates[name] = SemiringAggregate.max()
    factors = []
    for _ in range(rng.randint(1, 4)):
        arity = rng.randint(1, min(3, n))
        scope = tuple(rng.sample(names, arity))
        factors.append(
            random_factor(scope, domains, rng, density=0.7, zero_one=zero_one)
        )
    return FAQQuery(
        variables=[Variable(v, domains[v]) for v in names],
        free=free,
        aggregates=aggregates,
        factors=factors,
        semiring=semiring,
        name=f"rand{seed}",
    )

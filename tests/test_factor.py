"""Unit tests for :class:`repro.factors.factor.Factor`."""

import pytest

from repro.factors.factor import Factor, FactorError
from repro.semiring.standard import COUNTING


@pytest.fixture
def psi_ab():
    return Factor(("A", "B"), {(0, 0): 2, (0, 1): 3, (1, 1): 5})


class TestConstruction:
    def test_basic_properties(self, psi_ab):
        assert psi_ab.scope == ("A", "B")
        assert len(psi_ab) == 3
        assert psi_ab.variables == frozenset({"A", "B"})

    def test_duplicate_scope_variable_rejected(self):
        with pytest.raises(FactorError):
            Factor(("A", "A"), {})

    def test_arity_mismatch_rejected(self):
        with pytest.raises(FactorError):
            Factor(("A", "B"), {(1,): 1})

    def test_table_from_iterable_of_pairs(self):
        factor = Factor(("A",), [((0,), 1), ((1,), 2)])
        assert len(factor) == 2

    def test_default_name(self):
        factor = Factor(("A", "B"), {})
        assert "A" in factor.name and "B" in factor.name

    def test_copy_is_independent(self, psi_ab):
        clone = psi_ab.copy()
        clone.table[(9, 9)] = 1
        assert (9, 9) not in psi_ab.table

    def test_contains_and_iter(self, psi_ab):
        assert (0, 1) in psi_ab
        assert (7, 7) not in psi_ab
        assert dict(iter(psi_ab)) == psi_ab.table


class TestLookups:
    def test_value_reads_assignment_dict(self, psi_ab):
        assert psi_ab.value({"A": 0, "B": 1}, COUNTING) == 3
        assert psi_ab.value({"A": 1, "B": 0}, COUNTING) == 0

    def test_value_ignores_extra_variables(self, psi_ab):
        assert psi_ab.value({"A": 0, "B": 0, "C": 42}, COUNTING) == 2

    def test_value_missing_variable_raises(self, psi_ab):
        with pytest.raises(FactorError):
            psi_ab.value({"A": 0}, COUNTING)

    def test_value_of_tuple(self, psi_ab):
        assert psi_ab.value_of_tuple((1, 1), COUNTING) == 5
        assert psi_ab.value_of_tuple((1, 0), COUNTING) == 0

    def test_assignments_iterates_dicts(self, psi_ab):
        rows = list(psi_ab.assignments())
        assert {"A": 0, "B": 1} in rows
        assert len(rows) == 3


class TestZeroHandling:
    def test_pruned_drops_explicit_zeros(self):
        factor = Factor(("A",), {(0,): 0, (1,): 2})
        assert len(factor.pruned(COUNTING)) == 1

    def test_is_identically_zero(self):
        assert Factor(("A",), {}).is_identically_zero(COUNTING)
        assert Factor(("A",), {(0,): 0}).is_identically_zero(COUNTING)
        assert not Factor(("A",), {(0,): 1}).is_identically_zero(COUNTING)


class TestConditioning:
    def test_condition_keeps_scope(self, psi_ab):
        conditioned = psi_ab.condition({"A": 0}, COUNTING)
        assert conditioned.scope == ("A", "B")
        assert set(conditioned.table) == {(0, 0), (0, 1)}

    def test_condition_on_unrelated_variable_is_noop(self, psi_ab):
        conditioned = psi_ab.condition({"Z": 1}, COUNTING)
        assert conditioned.table == psi_ab.table

    def test_restrict_drops_variables(self, psi_ab):
        restricted = psi_ab.restrict({"A": 0}, COUNTING)
        assert restricted.scope == ("B",)
        assert restricted.table == {(0,): 2, (1,): 3}

    def test_restrict_everything_gives_constant(self, psi_ab):
        restricted = psi_ab.restrict({"A": 1, "B": 1}, COUNTING)
        assert restricted.scope == ()
        assert restricted.table == {(): 5}


class TestProjections:
    def test_indicator_projection_values_are_one(self, psi_ab):
        projection = psi_ab.indicator_projection(["B"], COUNTING)
        assert projection.scope == ("B",)
        assert projection.table == {(0,): 1, (1,): 1}

    def test_indicator_projection_disjoint_raises(self, psi_ab):
        with pytest.raises(FactorError):
            psi_ab.indicator_projection(["Z"], COUNTING)

    def test_support_projection(self, psi_ab):
        assert psi_ab.support_projection(["A"]) == {(0,), (1,)}


class TestMarginalisation:
    def test_aggregate_marginalize_sum(self, psi_ab):
        reduced = psi_ab.aggregate_marginalize("B", lambda a, b: a + b, COUNTING)
        assert reduced.scope == ("A",)
        assert reduced.table == {(0,): 5, (1,): 5}

    def test_aggregate_marginalize_max(self, psi_ab):
        reduced = psi_ab.aggregate_marginalize("B", max, COUNTING)
        assert reduced.table == {(0,): 3, (1,): 5}

    def test_aggregate_marginalize_missing_variable_raises(self, psi_ab):
        with pytest.raises(FactorError):
            psi_ab.aggregate_marginalize("Z", max, COUNTING)

    def test_product_marginalize_requires_full_domain(self):
        # psi(A, B) with Dom(B) of size 2: group A=0 lists both B values,
        # group A=1 lists only one and must be annihilated by the implicit 0.
        factor = Factor(("A", "B"), {(0, 0): 2, (0, 1): 3, (1, 1): 5})
        reduced = factor.product_marginalize("B", 2, COUNTING)
        assert reduced.table == {(0,): 6}

    def test_product_marginalize_domain_size_one(self):
        factor = Factor(("A", "B"), {(0, 0): 2, (1, 0): 5})
        reduced = factor.product_marginalize("B", 1, COUNTING)
        assert reduced.table == {(0,): 2, (1,): 5}

    def test_product_marginalize_invalid_domain_raises(self, psi_ab):
        with pytest.raises(FactorError):
            psi_ab.product_marginalize("B", 0, COUNTING)


class TestPointwise:
    def test_power(self):
        factor = Factor(("A",), {(0,): 2, (1,): 3})
        powered = factor.power(3, COUNTING)
        assert powered.table == {(0,): 8, (1,): 27}

    def test_power_zero_gives_ones(self):
        factor = Factor(("A",), {(0,): 2})
        assert factor.power(0, COUNTING).table == {(0,): 1}

    def test_map_values(self):
        factor = Factor(("A",), {(0,): 2, (1,): 3})
        doubled = factor.map_values(lambda v: 2 * v)
        assert doubled.table == {(0,): 4, (1,): 6}

    def test_has_idempotent_range(self):
        zero_one = Factor(("A",), {(0,): 1, (1,): 0})
        assert zero_one.has_idempotent_range(COUNTING)
        assert not Factor(("A",), {(0,): 2}).has_idempotent_range(COUNTING)


class TestMultiply:
    def test_multiply_on_shared_variable(self):
        left = Factor(("A", "B"), {(0, 0): 2, (1, 1): 3})
        right = Factor(("B", "C"), {(0, 5): 7, (1, 6): 1})
        product = left.multiply(right, COUNTING)
        assert set(product.scope) == {"A", "B", "C"}
        assert product.value({"A": 0, "B": 0, "C": 5}, COUNTING) == 14
        assert product.value({"A": 1, "B": 1, "C": 6}, COUNTING) == 3
        assert len(product) == 2

    def test_multiply_disjoint_scopes_is_cross_product(self):
        left = Factor(("A",), {(0,): 2, (1,): 3})
        right = Factor(("B",), {(5,): 10})
        product = left.multiply(right, COUNTING)
        assert len(product) == 2
        assert product.value({"A": 1, "B": 5}, COUNTING) == 30

    def test_multiply_annihilates_on_zero(self):
        left = Factor(("A",), {(0,): 0, (1,): 3})
        right = Factor(("A",), {(0,): 5, (1,): 2})
        product = left.multiply(right, COUNTING)
        assert product.table == {(1,): 6}


class TestScopeAndEquality:
    def test_normalize_scope_reorders_tuples(self):
        factor = Factor(("B", "A"), {(1, 0): 7})
        reordered = factor.normalize_scope(("A", "B"))
        assert reordered.scope == ("A", "B")
        assert reordered.table == {(0, 1): 7}

    def test_equals_is_scope_order_insensitive(self):
        left = Factor(("A", "B"), {(0, 1): 7})
        right = Factor(("B", "A"), {(1, 0): 7})
        assert left.equals(right, COUNTING)

    def test_equals_treats_missing_as_zero(self):
        left = Factor(("A",), {(0,): 0})
        right = Factor(("A",), {})
        assert left.equals(right, COUNTING)

    def test_equals_detects_differences(self):
        left = Factor(("A",), {(0,): 1})
        right = Factor(("A",), {(0,): 2})
        assert not left.equals(right, COUNTING)

    def test_equals_requires_same_variable_set(self):
        left = Factor(("A",), {(0,): 1})
        right = Factor(("B",), {(0,): 1})
        assert not left.equals(right, COUNTING)

"""Tests for output representations (Section 8.4): listing vs factorized."""

import pytest

from repro.core.insideout import inside_out
from repro.core.output import FactorizedOutput
from repro.core.query import FAQQuery, Variable
from repro.factors.factor import Factor
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import COUNTING

from _helpers import make_factor, small_random_query


def free_variable_query():
    psi_ab = make_factor(("A", "B"), {(0, 0): 1, (0, 1): 2, (1, 1): 3})
    psi_bc = make_factor(("B", "C"), {(0, 0): 1, (1, 0): 4, (1, 1): 5})
    return FAQQuery(
        variables=[Variable(v, (0, 1)) for v in "ABC"],
        free=["A", "B"],
        aggregates={"C": SemiringAggregate.sum()},
        factors=[psi_ab, psi_bc],
        semiring=COUNTING,
    )


class TestFactorizedOutput:
    def test_factorized_mode_returns_no_listing_factor(self):
        result = inside_out(free_variable_query(), output_mode="factorized")
        assert result.factor is None
        assert isinstance(result.factorized, FactorizedOutput)

    def test_value_queries_match_listing_output(self):
        query = free_variable_query()
        listing = inside_out(query).factor
        factorized = inside_out(query, output_mode="factorized").factorized
        for a in (0, 1):
            for b in (0, 1):
                assert factorized.value({"A": a, "B": b}) == listing.value(
                    {"A": a, "B": b}, COUNTING
                )

    def test_enumeration_matches_listing_output(self):
        query = free_variable_query()
        listing = inside_out(query).factor
        factorized = inside_out(query, output_mode="factorized").factorized
        enumerated = {
            (assignment["A"], assignment["B"]): value
            for assignment, value in factorized.enumerate()
        }
        assert enumerated == dict(listing.table)

    def test_to_factor_roundtrip(self):
        query = free_variable_query()
        listing = inside_out(query).factor
        factorized = inside_out(query, output_mode="factorized").factorized
        assert factorized.to_factor().equals(listing, COUNTING)

    def test_len_counts_residual_factors(self):
        factorized = inside_out(free_variable_query(), output_mode="factorized").factorized
        assert len(factorized) >= 1

    def test_isolated_free_variables_enumerated_from_domains(self):
        psi = make_factor(("A",), {(0,): 3})
        query = FAQQuery(
            variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
            free=["A", "B"],
            aggregates={},
            factors=[psi],
            semiring=COUNTING,
        )
        factorized = inside_out(query, output_mode="factorized").factorized
        values = {(a["A"], a["B"]): v for a, v in factorized.enumerate()}
        assert values == {(0, 0): 3, (0, 1): 3}

    def test_empty_residual_factor_list(self):
        query = FAQQuery(
            variables=[Variable("A", (0, 1))],
            free=["A"],
            aggregates={},
            factors=[],
            semiring=COUNTING,
        )
        factorized = inside_out(query, output_mode="factorized").factorized
        values = {a["A"]: v for a, v in factorized.enumerate()}
        assert values == {0: 1, 1: 1}

    @pytest.mark.parametrize("seed", range(20))
    def test_random_queries_roundtrip(self, seed):
        query = small_random_query(seed + 1300, allow_products=True)
        listing = inside_out(query).factor
        factorized = inside_out(query, output_mode="factorized").factorized
        assert factorized.to_factor().equals(listing, query.semiring)

    def test_zero_value_short_circuit(self):
        psi = Factor(("A",), {})
        query = FAQQuery(
            variables=[Variable("A", (0, 1))],
            free=["A"],
            aggregates={},
            factors=[psi],
            semiring=COUNTING,
        )
        factorized = inside_out(query, output_mode="factorized").factorized
        assert factorized.value({"A": 0}) == 0
        assert list(factorized.enumerate()) == []

"""Tests for FAQ-width computation and the Section 7 approximation algorithm."""


import pytest

from repro.core.evo import is_equivalent_ordering
from repro.core.expression_tree import build_expression_tree
from repro.core.faqw import (
    approximate_faqw_ordering,
    faq_width_of_ordering,
    faq_width_of_query,
    node_hypergraph,
)
from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, Variable
from repro.datasets.queries import (
    example_5_6_query,
    example_6_13_query,
    example_6_19_query,
    example_6_2_query,
)
from repro.factors.factor import Factor
from repro.hypergraph.treedecomp import fractional_hypertree_width
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import COUNTING

from _helpers import small_random_query


class TestFaqWidthOfOrdering:
    def test_triangle_width_is_three_halves(self, triangle_query):
        width = faq_width_of_ordering(triangle_query, triangle_query.order)
        assert width == pytest.approx(1.5)

    def test_acyclic_chain_width_is_one(self):
        factors = [
            Factor(("a", "b"), {(0, 0): 1}),
            Factor(("b", "c"), {(0, 0): 1}),
        ]
        query = FAQQuery(
            variables=[Variable(v, (0, 1)) for v in "abc"],
            free=[],
            aggregates={v: SemiringAggregate.sum() for v in "abc"},
            factors=factors,
            semiring=COUNTING,
        )
        assert faq_width_of_ordering(query, ("a", "b", "c")) == pytest.approx(1.0)

    def test_bad_ordering_has_larger_width(self):
        factors = [
            Factor(("a", "b"), {(0, 0): 1}),
            Factor(("b", "c"), {(0, 0): 1}),
            Factor(("c", "d"), {(0, 0): 1}),
        ]
        query = FAQQuery(
            variables=[Variable(v, (0, 1)) for v in "abcd"],
            free=[],
            aggregates={v: SemiringAggregate.sum() for v in "abcd"},
            factors=factors,
            semiring=COUNTING,
        )
        good = faq_width_of_ordering(query, ("a", "b", "c", "d"))
        bad = faq_width_of_ordering(query, ("a", "c", "d", "b"))
        assert good == pytest.approx(1.0)
        assert bad > good

    def test_product_variables_do_not_count(self):
        """Example 5.6 with 0/1 factors: faqw of (5,1,2,3,4,6) ordering is 1."""
        query = example_5_6_query()
        width = faq_width_of_ordering(query, ("x5", "x1", "x2", "x3", "x4", "x6"))
        assert width == pytest.approx(1.0)

    def test_example_5_6_written_order_is_two(self):
        """The written ordering of Example 5.6 forces an O(N²) step."""
        query = example_5_6_query()
        width = faq_width_of_ordering(query, query.order)
        assert width == pytest.approx(2.0)


class TestFaqWidthOfQuery:
    def test_example_5_6_faqw_is_one(self):
        query = example_5_6_query()
        width, ordering = faq_width_of_query(query, return_ordering=True)
        assert width == pytest.approx(1.0)
        assert set(ordering) == set(query.order)

    def test_example_6_13_faqw_is_one(self):
        assert faq_width_of_query(example_6_13_query()) == pytest.approx(1.0)

    def test_triangle_equals_fhtw(self, triangle_query):
        """For FAQ-SS with all permutations allowed faqw = fhtw (Prop 5.12)."""
        width = faq_width_of_query(triangle_query)
        fhtw = fractional_hypertree_width(triangle_query.hypergraph())
        assert width == pytest.approx(fhtw)

    def test_faqw_never_below_fhtw_restricted_case(self):
        for seed in range(10):
            query = small_random_query(seed + 5000, allow_products=False, allow_free=False)
            tags = {query.aggregates[v].tag for v in query.bound}
            if len(tags) != 1:
                continue
            width = faq_width_of_query(query)
            fhtw = fractional_hypertree_width(query.hypergraph(), exact_limit=6)
            assert width == pytest.approx(fhtw, abs=1e-6)

    def test_extension_limit_still_returns_valid_ordering(self):
        query = example_6_2_query()
        width, ordering = faq_width_of_query(query, extension_limit=3, return_ordering=True)
        assert is_equivalent_ordering(query, ordering)
        assert width >= faq_width_of_query(query) - 1e-9


class TestApproximation:
    def test_approx_ordering_is_equivalent(self):
        for maker in (example_6_13_query, example_6_2_query, example_5_6_query):
            query = maker()
            ordering = approximate_faqw_ordering(query)
            assert sorted(ordering) == sorted(query.order)
            assert is_equivalent_ordering(query, ordering)

    def test_approx_ordering_for_example_6_19_is_sound(self):
        query = example_6_19_query()
        ordering = approximate_faqw_ordering(query)
        assert sorted(ordering) == sorted(query.order)
        expected = query.evaluate_scalar_brute_force()
        assert inside_out(query, ordering=list(ordering)).scalar_or_zero(COUNTING) == expected

    def test_approx_width_close_to_optimal_on_small_queries(self):
        for maker in (example_6_13_query, example_6_2_query, example_5_6_query):
            query = maker()
            optimal = faq_width_of_query(query)
            approx = faq_width_of_ordering(query, approximate_faqw_ordering(query))
            # Theorem 7.2 guarantee: approx <= opt + g(opt); with the exact
            # inner solver used for small nodes, g(opt) <= opt.
            assert approx <= 2 * optimal + 1e-9

    def test_approx_ordering_keeps_free_variables_first(self):
        for seed in range(15):
            query = small_random_query(seed + 6000, allow_free=True)
            ordering = approximate_faqw_ordering(query)
            assert set(ordering[: query.num_free]) == set(query.free)

    def test_approx_ordering_results_match_brute_force(self):
        for seed in range(20):
            query = small_random_query(seed + 7000, allow_products=True, zero_one=True)
            ordering = approximate_faqw_ordering(query)
            expected = query.evaluate_brute_force()
            got = inside_out(query, ordering=list(ordering)).factor
            assert expected.equals(got, query.semiring), seed


class TestNodeHypergraph:
    def test_leaf_node_hypergraph_is_induced(self):
        query = example_6_13_query()
        tree = build_expression_tree(query)
        leaf = tree.root.children[0].children[0]  # the {x2} node
        graph = node_hypergraph(query, tree, leaf)
        assert graph.vertices == frozenset({"x2"})

    def test_internal_node_gets_child_contributions(self):
        query = example_6_2_query()
        tree = build_expression_tree(query)
        top = tree.root.children[0]  # {x1, x2, x4}
        graph = node_hypergraph(query, tree, top)
        assert graph.vertices == frozenset({"x1", "x2", "x4"})
        # The child subtree {x3, x7, x5} touches edges {1,3,5},{2,7},{3,7}
        # whose projection onto the node is {x1, x2}.
        assert frozenset({"x1", "x2"}) in graph.edges

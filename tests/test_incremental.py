"""Incremental delta evaluation and the stale-cache hazards it closes.

Covers, in order:

* :class:`~repro.factors.FactorDelta` validation and alignment;
* ``apply_delta`` on sparse and dense factors (new object, old untouched);
* **freeze-on-digest** — a factor that has been content-digested (and so
  may sit behind digest-keyed caches) rejects in-place mutation, on both
  representations (the satellite-1 stale-cache regression);
* the :class:`~repro.incremental.IncrementalView` regimes: delta
  propagation, monotone append, dirty-subgraph replay, and the selection
  logic between them;
* :meth:`~repro.exec.DagExecutor.run_incremental` node-reuse accounting;
* the :class:`~repro.exec.StepResultCache` claim lifecycle under a dying
  claimant (the satellite-2 wedge regression);
* :meth:`~repro.serve.PlanServer.update_factor` — warm-view hits, stale
  result-cache eviction, canonical re-pinning.
"""

import threading

import pytest

from repro.core.insideout import apply_output_delta, inside_out
from repro.core.query import FAQQuery, QueryError, Variable
from repro.exec import DagExecutor, IncrementalRunInfo, StepResultCache
from repro.factors import Factor, FactorDelta, FactorError, as_dense, as_sparse
from repro.incremental import (
    REGIME_APPEND,
    REGIME_DELTA,
    REGIME_DIRTY,
    IncrementalView,
    additive_tag,
    is_flat_query,
)
from repro.planner.signature import factor_digest
from repro.semiring.aggregates import ProductAggregate, SemiringAggregate
from repro.semiring.standard import BOOLEAN, COUNTING, MAX_PRODUCT, MIN_PLUS, SUM_PRODUCT


def _chain_query(semiring, aggregate_factory, free=("a",)):
    """a–b–c chain with two factors (integer-valued, exact everywhere)."""
    variables = [Variable(v, (0, 1, 2)) for v in ("a", "b", "c")]
    f1 = Factor(("a", "b"), {(i, j): i + j + 1 for i in range(3) for j in range(3)})
    f2 = Factor(("b", "c"), {(i, j): 2 * i + j + 1 for i in range(3) for j in range(3)})
    bound = [v for v in ("a", "b", "c") if v not in free]
    return FAQQuery(
        variables=variables,
        free=list(free),
        aggregates={v: aggregate_factory() for v in bound},
        factors=[f1, f2],
        semiring=semiring,
    )


def _expected(query):
    return as_sparse(query.evaluate_brute_force(), query.semiring).normalize_scope(
        query.free
    )


# --------------------------------------------------------------------- #
# FactorDelta + apply_delta
# --------------------------------------------------------------------- #
def test_factor_delta_validates_scope_and_arity():
    with pytest.raises(FactorError):
        FactorDelta(("a", "a"), {})
    with pytest.raises(FactorError):
        FactorDelta(("a", "b"), {(0,): 1})
    delta = FactorDelta(("a", "b"), {(0, 1): 5})
    with pytest.raises(FactorError):
        delta.aligned_changes(("a", "c"))


def test_factor_delta_aligns_permuted_scopes():
    delta = FactorDelta(("b", "a"), {(0, 1): 7, (2, 0): 3})
    assert delta.aligned_changes(("a", "b")) == {(1, 0): 7, (0, 2): 3}


def test_apply_delta_sparse_builds_new_factor():
    factor = Factor(("a", "b"), {(0, 0): 1, (0, 1): 2})
    delta = FactorDelta(("a", "b"), {(0, 0): 9, (1, 1): 4, (0, 1): 0})
    updated = factor.apply_delta(delta, COUNTING)
    assert updated is not factor
    assert updated.table == {(0, 0): 9, (1, 1): 4}
    assert factor.table == {(0, 0): 1, (0, 1): 2}  # old factor untouched


def test_apply_delta_dense_builds_new_factor():
    factor = Factor(("a", "b"), {(0, 0): 1.0, (0, 1): 2.0})
    domains = {"a": (0, 1), "b": (0, 1)}
    dense = as_dense(factor, domains, SUM_PRODUCT)
    delta = FactorDelta(("b", "a"), {(0, 1): 9.0})  # permuted scope
    updated = dense.apply_delta(delta, SUM_PRODUCT)
    assert updated is not dense
    assert updated.value_of_tuple((1, 0), SUM_PRODUCT) == 9.0
    assert dense.value_of_tuple((1, 0), SUM_PRODUCT) == 0.0
    with pytest.raises(FactorError):
        dense.apply_delta(FactorDelta(("a", "b"), {(7, 0): 1.0}), SUM_PRODUCT)


def test_effective_changes_drops_noop_cells():
    factor = Factor(("a",), {(0,): 2, (1,): 3})
    delta = FactorDelta(("a",), {(0,): 2, (1,): 5})
    assert delta.effective_changes(factor, COUNTING) == {(1,): 5}


# --------------------------------------------------------------------- #
# freeze-on-digest: the satellite-1 stale-cache regression
# --------------------------------------------------------------------- #
def test_digested_sparse_factor_rejects_mutation():
    factor = Factor(("a",), {(0,): 1})
    assert not factor.frozen
    factor.table[(1,)] = 2  # mutable before any digest
    factor_digest(factor)
    assert factor.frozen
    with pytest.raises(FactorError):
        factor.table[(2,)] = 3
    with pytest.raises(FactorError):
        del factor.table[(0,)]
    with pytest.raises(FactorError):
        factor.table.update({(2,): 3})
    with pytest.raises(FactorError):
        factor.table.clear()
    # reads and copies still work; the copy is mutable again
    assert factor.table[(0,)] == 1
    clone = factor.copy()
    clone.table[(2,)] = 3
    assert clone.table[(2,)] == 3


def test_digested_dense_factor_rejects_mutation():
    import numpy as np

    factor = Factor(("a",), {(0,): 1.0})
    dense = as_dense(factor, {"a": (0, 1)}, SUM_PRODUCT)
    assert not dense.frozen
    factor_digest(dense)
    assert dense.frozen
    with pytest.raises((ValueError, RuntimeError)):
        dense.array[0] = 5.0
    assert isinstance(dense.array, np.ndarray)


def test_served_factor_mutation_raises_and_update_path_is_fresh():
    """The stale-answer hazard, end to end: once a factor has been served
    (digested into the plan/result caches), mutating it in place raises —
    and the supported path, ``apply_delta`` + ``update_factor``, yields a
    fresh answer instead of a stale cached one."""
    from repro.serve import PlanServer, ServeRequest

    query = _chain_query(COUNTING, SemiringAggregate.sum)
    with PlanServer(cache_results=True) as server:
        request = ServeRequest(query=query)
        first = server.submit(request).result()
        served = query.factors[0]
        with pytest.raises(FactorError):
            served.table[(0, 0)] = 999  # in-place mutation is rejected
        updated = server.update_factor(
            request, 0, FactorDelta(("a", "b"), {(0, 0): 999})
        )
        assert updated.factor.table != first.factor.table
        assert updated.factor.table == _expected(
            FAQQuery(
                variables=[Variable(v, (0, 1, 2)) for v in ("a", "b", "c")],
                free=["a"],
                aggregates={
                    "b": SemiringAggregate.sum(),
                    "c": SemiringAggregate.sum(),
                },
                factors=[
                    query.factors[0].apply_delta(
                        FactorDelta(("a", "b"), {(0, 0): 999}), COUNTING
                    ),
                    query.factors[1],
                ],
                semiring=COUNTING,
            )
        ).table


def test_frozen_table_pickles_as_plain_dict():
    import pickle

    factor = Factor(("a",), {(0,): 1})
    factor_digest(factor)
    revived = pickle.loads(pickle.dumps(factor.table))
    assert type(revived) is dict
    assert revived == {(0,): 1}


# --------------------------------------------------------------------- #
# regime selection + equivalence
# --------------------------------------------------------------------- #
def test_additive_tag_and_flatness():
    q = _chain_query(COUNTING, SemiringAggregate.sum)
    assert additive_tag(COUNTING) == "sum"
    assert is_flat_query(q, "sum")
    q_prod = FAQQuery(
        variables=[Variable(v, (0, 1)) for v in ("a", "b")],
        free=["a"],
        aggregates={"b": ProductAggregate.product()},
        factors=[Factor(("a", "b"), {(0, 0): 1})],
        semiring=COUNTING,
    )
    assert not is_flat_query(q_prod, "sum")


def test_delta_regime_for_subtractable_semirings():
    view = IncrementalView(_chain_query(COUNTING, SemiringAggregate.sum))
    view.result()
    out = view.update_factor(0, FactorDelta(("a", "b"), {(0, 0): 42, (2, 2): 0}))
    assert view.stats.regimes == {REGIME_DELTA: 1}
    assert out.table == _expected(view.query).table


def test_append_regime_for_improving_idempotent_updates():
    view = IncrementalView(_chain_query(MAX_PRODUCT, SemiringAggregate.max))
    view.result()
    # (0,0) currently 1; 50 absorbs it under max — monotone append applies.
    out = view.update_factor(0, FactorDelta(("a", "b"), {(0, 0): 50}))
    assert view.stats.regimes == {REGIME_APPEND: 1}
    assert out.table == _expected(view.query).table


def test_dirty_regime_for_worsening_and_product_queries():
    # A "worsening" max-product update (old value not absorbed) goes dirty.
    view = IncrementalView(_chain_query(MAX_PRODUCT, SemiringAggregate.max))
    view.result()
    out = view.update_factor(0, FactorDelta(("a", "b"), {(2, 2): 1}))
    assert view.stats.regimes == {REGIME_DIRTY: 1}
    assert out.table == _expected(view.query).table
    # A product-aggregate query is never flat: always dirty.
    q = FAQQuery(
        variables=[Variable(v, (0, 1, 2)) for v in ("a", "b", "c")],
        free=["a"],
        aggregates={"b": SemiringAggregate.sum(), "c": ProductAggregate.product()},
        factors=[
            Factor(("a", "b"), {(i, j): i + j + 1 for i in range(3) for j in range(3)}),
            Factor(("b", "c"), {(i, j): i + 2 for i in range(3) for j in range(3)}),
        ],
        semiring=COUNTING,
    )
    view2 = IncrementalView(q)
    view2.result()
    out2 = view2.update_factor(0, FactorDelta(("a", "b"), {(0, 0): 9}))
    assert view2.stats.regimes == {REGIME_DIRTY: 1}
    assert out2.table == _expected(view2.query).table


def test_deletions_are_exact_in_every_regime():
    for semiring, factory in (
        (COUNTING, SemiringAggregate.sum),
        (MAX_PRODUCT, SemiringAggregate.max),
        (MIN_PLUS, SemiringAggregate.min),
        (BOOLEAN, SemiringAggregate.logical_or),
    ):
        view = IncrementalView(_chain_query(semiring, factory))
        view.result()
        out = view.update_factor(
            0, FactorDelta(("a", "b"), {(1, 1): semiring.zero})
        )
        assert out.table == _expected(view.query).table, semiring.name


def test_noop_update_keeps_answer_and_skips_regimes():
    view = IncrementalView(_chain_query(COUNTING, SemiringAggregate.sum))
    base = view.result()
    out = view.update_factor(0, FactorDelta(("a", "b"), {(0, 0): 1}))  # same value
    assert out.table == base.table
    assert view.stats.regimes == {}


def test_update_factor_index_out_of_range():
    view = IncrementalView(_chain_query(COUNTING, SemiringAggregate.sum))
    with pytest.raises(QueryError):
        view.update_factor(5, FactorDelta(("a", "b"), {(0, 0): 1}))


def test_view_matches_inside_out_after_update_stream():
    view = IncrementalView(_chain_query(COUNTING, SemiringAggregate.sum))
    view.result()
    for cell, value in (((0, 0), 10), ((1, 2), 0), ((2, 2), 3)):
        out = view.update_factor(0, FactorDelta(("a", "b"), {cell: value}))
    reference = inside_out(view.query)
    assert out.table == as_sparse(reference.factor, COUNTING).normalize_scope(
        view.query.free
    ).table


# --------------------------------------------------------------------- #
# apply_output_delta
# --------------------------------------------------------------------- #
def test_apply_output_delta_combines_and_prunes():
    base = Factor(("a",), {(0,): 2, (1,): 3})
    delta = Factor(("a",), {(0,): -2, (2,): 7})
    combined = apply_output_delta(base, delta, COUNTING)
    assert combined.table == {(1,): 3, (2,): 7}
    with pytest.raises(QueryError):
        apply_output_delta(base, Factor(("b",), {(0,): 1}), COUNTING)


# --------------------------------------------------------------------- #
# run_incremental: dirty-subgraph reuse accounting
# --------------------------------------------------------------------- #
def test_run_incremental_reuses_clean_nodes():
    # Two disjoint chains a-b and c-d joined only at the output: updating
    # the a-b factor must not re-execute the c-d elimination.
    variables = [Variable(v, (0, 1, 2)) for v in ("a", "c", "b", "d")]
    f_ab = Factor(("a", "b"), {(i, j): i + j + 1 for i in range(3) for j in range(3)})
    f_cd = Factor(("c", "d"), {(i, j): 2 * i + j + 1 for i in range(3) for j in range(3)})
    query = FAQQuery(
        variables=variables,
        free=["a", "c"],
        aggregates={"b": SemiringAggregate.sum(), "d": SemiringAggregate.sum()},
        factors=[f_ab, f_cd],
        semiring=COUNTING,
    )
    executor = DagExecutor(workers=1)
    result, snapshot = executor.run_incremental(query)
    assert len(snapshot) > 0

    updated = FAQQuery(
        variables=variables,
        free=["a", "c"],
        aggregates={"b": SemiringAggregate.sum(), "d": SemiringAggregate.sum()},
        factors=[f_ab.apply_delta(FactorDelta(("a", "b"), {(0, 0): 50}), COUNTING), f_cd],
        semiring=COUNTING,
    )
    info = IncrementalRunInfo()
    result2, snapshot2 = executor.run_incremental(updated, prior=snapshot, info=info)
    assert info.reused_nodes > 0  # the untouched c-d subgraph replayed
    assert info.executed_nodes > 0  # the dirty a-b subgraph re-ran
    assert 0.0 < info.reuse_ratio < 1.0
    expected = updated.evaluate_brute_force()
    assert expected.equals(result2.factor, COUNTING)

    # identical query + prior snapshot: everything replays
    info3 = IncrementalRunInfo()
    result3, _ = executor.run_incremental(updated, prior=snapshot2, info=info3)
    assert info3.executed_nodes == 0
    assert info3.reused_nodes == info3.total_nodes
    assert result3.factor.table == result2.factor.table


# --------------------------------------------------------------------- #
# StepResultCache claim lifecycle: the satellite-2 wedge regression
# --------------------------------------------------------------------- #
def test_step_cache_recovers_after_claimant_dies(monkeypatch):
    """A step kernel raising between claim and fulfil must abandon the
    claim; the next run over the same digests recomputes instead of
    blocking forever on the dead claimant's in-flight event."""
    import repro.exec.executor as executor_module

    query = _chain_query(COUNTING, SemiringAggregate.sum)
    cache = StepResultCache(maxsize=64)
    executor = DagExecutor(workers=1)

    real_kernel = executor_module.eliminate_semiring_step
    calls = {"n": 0}

    def flaky_kernel(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("injected kernel fault")
        return real_kernel(*args, **kwargs)

    monkeypatch.setattr(executor_module, "eliminate_semiring_step", flaky_kernel)
    with pytest.raises(RuntimeError, match="injected kernel fault"):
        executor.run(query, step_cache=cache)
    assert not cache._inflight  # no wedged claims left behind

    # The same cache serves the retry (nothing blocks, answer is right).
    done = threading.Event()
    outcome = {}

    def retry():
        outcome["result"] = executor.run(query, step_cache=cache)
        done.set()

    thread = threading.Thread(target=retry, daemon=True)
    thread.start()
    assert done.wait(timeout=30.0), "retry wedged on an unreleased claim"
    thread.join()
    expected = query.evaluate_brute_force()
    assert expected.equals(outcome["result"].factor, COUNTING)


def test_step_cache_capture_failure_releases_claim(monkeypatch):
    """Same lifecycle hazard one step later: the kernel succeeds but the
    post-execution capture fails.  The claim must still be released."""
    import repro.exec.executor as executor_module

    query = _chain_query(COUNTING, SemiringAggregate.sum)
    cache = StepResultCache(maxsize=64)
    executor = DagExecutor(workers=1)

    real_capture = executor_module._RunState.capture
    calls = {"n": 0}

    def flaky_capture(self, index):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("injected capture fault")
        return real_capture(self, index)

    monkeypatch.setattr(executor_module._RunState, "capture", flaky_capture)
    with pytest.raises(RuntimeError, match="injected capture fault"):
        executor.run(query, step_cache=cache)
    assert not cache._inflight

    result = executor.run(query, step_cache=cache)
    expected = query.evaluate_brute_force()
    assert expected.equals(result.factor, COUNTING)


# --------------------------------------------------------------------- #
# PlanServer.update_factor
# --------------------------------------------------------------------- #
def test_server_update_factor_warm_view_and_stats():
    from repro.serve import PlanServer, ServeRequest

    query = _chain_query(COUNTING, SemiringAggregate.sum)
    with PlanServer() as server:
        request = ServeRequest(query=query)
        first = server.update_factor(
            request, 0, FactorDelta(("a", "b"), {(0, 0): 9})
        )
        assert first.factor.table == _expected(
            _updated_chain(query, {(0, 0): 9})
        ).table
        # The follow-up update against the updated query hits the warm view.
        updated_query = _updated_chain(query, {(0, 0): 9})
        second = server.update_factor(
            ServeRequest(query=updated_query), 0, FactorDelta(("a", "b"), {(1, 1): 7})
        )
        stats = server.stats()
        assert stats["incremental_hits"] == 1
        assert stats["incremental_misses"] == 1
        assert stats["incremental_views"] == 1
        assert second.factor.table == _expected(
            _updated_chain(query, {(0, 0): 9, (1, 1): 7})
        ).table


def test_server_update_factor_evicts_stale_results():
    from repro.serve import PlanServer, ServeRequest

    query = _chain_query(COUNTING, SemiringAggregate.sum)
    with PlanServer(cache_results=True) as server:
        request = ServeRequest(query=query)
        before = server.submit(request).result()
        # Prime the completed-result cache (second submit is a cache hit).
        server.submit(request).result()
        assert server.stats()["result_cache_hits"] == 1
        updated = server.update_factor(
            request, 0, FactorDelta(("a", "b"), {(0, 0): 123})
        )
        assert updated.factor.table != before.factor.table
        # The old key was evicted: value-equal traffic for the *old* query
        # re-executes (correct, since that value still exists as a query)
        # rather than serving a cache entry the update invalidated.
        again = server.submit(ServeRequest(query=query)).result()
        assert server.stats()["result_cache_hits"] == 1  # no further hits
        assert again.factor.table == before.factor.table


def test_server_update_factor_rejects_factorized_mode():
    from repro.serve import PlanFailure, PlanServer, ServeRequest

    query = _chain_query(COUNTING, SemiringAggregate.sum)
    with PlanServer() as server:
        with pytest.raises(PlanFailure):
            server.update_factor(
                ServeRequest(query=query, output_mode="factorized"),
                0,
                FactorDelta(("a", "b"), {(0, 0): 9}),
            )


def _updated_chain(query, changes):
    new_factor = query.factors[0].apply_delta(
        FactorDelta(("a", "b"), changes), query.semiring
    )
    return FAQQuery(
        variables=[query.variables[v] for v in query.order],
        free=query.free,
        aggregates=query.aggregates,
        factors=[new_factor, query.factors[1]],
        semiring=query.semiring,
    )

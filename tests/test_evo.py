"""Tests for equivalent variable orderings (Section 6): soundness, completeness
on the paper's examples, CW-equivalence and linear extensions."""

import itertools

import pytest

from repro.core.evo import (
    cw_equivalent,
    is_equivalent_ordering,
    linear_extensions,
    one_linear_extension,
    precedence_poset,
)
from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, Variable
from repro.datasets.queries import (
    example_6_13_query,
    example_6_19_query,
    example_6_2_query,
)
from repro.factors.factor import Factor
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import SUM_PRODUCT

from _helpers import small_random_query


class TestLinearExtensions:
    def test_example_6_13_extensions(self):
        query = example_6_13_query()
        extensions = set(linear_extensions(query))
        assert extensions == {("x1", "x3", "x2"), ("x3", "x1", "x2")}

    def test_limit_caps_generation(self):
        query = example_6_2_query()
        limited = list(linear_extensions(query, limit=5))
        assert len(limited) == 5

    def test_one_linear_extension_is_an_extension(self):
        query = example_6_2_query()
        extension = one_linear_extension(query)
        assert set(extension) == set(query.order)

    def test_extensions_respect_the_poset(self):
        query = example_6_2_query()
        pairs = precedence_poset(query)
        for extension in itertools.islice(linear_extensions(query), 50):
            position = {v: i for i, v in enumerate(extension)}
            for before, after in pairs:
                assert position[before] < position[after]

    def test_free_variables_always_first(self):
        query = small_random_query(7, allow_free=True)
        for extension in itertools.islice(linear_extensions(query), 20):
            assert set(extension[: query.num_free]) == set(query.free)


class TestEVOMembershipPaperExamples:
    def test_example_6_13_exact_evo_set(self):
        """The paper states EVO = {(1,2,3), (1,3,2), (3,1,2)}."""
        query = example_6_13_query()
        expected = {("x1", "x2", "x3"), ("x1", "x3", "x2"), ("x3", "x1", "x2")}
        actual = {
            perm
            for perm in itertools.permutations(query.order)
            if is_equivalent_ordering(query, perm)
        }
        assert actual == expected

    def test_section_6_1_interleaving_example(self):
        """phi = Σ_1 Σ_2 max_3 max_4 Σ_5 ψ15 ψ25 ψ13 ψ24 (Section 6.1 text).

        The orderings (5,1,3,2,4) and (5,2,4,1,3) are equivalent even though
        they are not linear extensions of the precedence poset.
        """
        factors = [
            Factor(("x1", "x5"), {(0, 0): 1.0, (1, 1): 2.0}),
            Factor(("x2", "x5"), {(0, 0): 1.0, (1, 0): 3.0}),
            Factor(("x1", "x3"), {(0, 1): 1.0, (1, 0): 2.0}),
            Factor(("x2", "x4"), {(0, 0): 1.5, (1, 1): 2.0}),
        ]
        query = FAQQuery(
            variables=[Variable(f"x{i}", (0, 1)) for i in range(1, 6)],
            free=[],
            aggregates={
                "x1": SemiringAggregate.sum(),
                "x2": SemiringAggregate.sum(),
                "x3": SemiringAggregate.max(),
                "x4": SemiringAggregate.max(),
                "x5": SemiringAggregate.sum(),
            },
            factors=factors,
            semiring=SUM_PRODUCT,
        )
        assert is_equivalent_ordering(query, ("x5", "x1", "x3", "x2", "x4"))
        assert is_equivalent_ordering(query, ("x5", "x2", "x4", "x1", "x3"))
        # Swapping a max ahead of the sums it depends on is not equivalent.
        assert not is_equivalent_ordering(query, ("x3", "x1", "x2", "x4", "x5"))

    def test_written_order_is_always_equivalent(self):
        for maker in (example_6_13_query, example_6_2_query, example_6_19_query):
            query = maker()
            assert is_equivalent_ordering(query, query.order)

    def test_non_permutations_rejected(self):
        query = example_6_13_query()
        assert not is_equivalent_ordering(query, ("x1", "x2"))
        assert not is_equivalent_ordering(query, ("x1", "x2", "x2"))


class TestEVOSoundness:
    """Every linear extension must produce the same answer as the query."""

    @pytest.mark.parametrize("seed", range(20))
    def test_linear_extensions_are_sound_random_queries(self, seed):
        query = small_random_query(seed + 3000, allow_products=False)
        expected = query.evaluate_brute_force()
        for extension in itertools.islice(linear_extensions(query), 4):
            assert is_equivalent_ordering(query, extension)
            result = inside_out(query, ordering=list(extension)).factor
            assert expected.equals(result, query.semiring), (seed, extension)

    @pytest.mark.parametrize("seed", range(10))
    def test_linear_extensions_are_sound_with_products(self, seed):
        query = small_random_query(seed + 4000, allow_products=True, zero_one=True)
        expected = query.evaluate_brute_force()
        for extension in itertools.islice(linear_extensions(query), 4):
            result = inside_out(query, ordering=list(extension)).factor
            assert expected.equals(result, query.semiring), (seed, extension)

    def test_memberships_are_sound_on_paper_example(self):
        """Every ordering accepted by is_equivalent_ordering evaluates identically."""
        query = example_6_13_query(domain_size=3, seed=5)
        expected = query.evaluate_scalar_brute_force()
        for perm in itertools.permutations(query.order):
            if is_equivalent_ordering(query, perm):
                got = inside_out(query, ordering=list(perm)).scalar
                assert abs(got - expected) < 1e-9


class TestCWEquivalence:
    def test_original_order_cw_equivalent_to_extension(self):
        query = example_6_13_query()
        assert cw_equivalent(query, ("x1", "x3", "x2"), ("x1", "x2", "x3"))

    def test_cw_equivalence_is_reflexive_on_extensions(self):
        query = example_6_2_query()
        extension = one_linear_extension(query)
        assert cw_equivalent(query, extension, extension)

    def test_cw_equivalence_rejects_wrong_first_variable(self):
        query = example_6_13_query()
        assert not cw_equivalent(query, ("x1", "x3", "x2"), ("x2", "x1", "x3"))

    def test_cw_equivalence_rejects_non_permutations(self):
        query = example_6_13_query()
        assert not cw_equivalent(query, ("x1", "x3", "x2"), ("x1", "x3"))

    def test_cw_equivalent_orderings_have_equal_results(self):
        query = example_6_13_query(domain_size=3, seed=11)
        sigma = ("x1", "x3", "x2")
        pi = ("x1", "x2", "x3")
        assert cw_equivalent(query, sigma, pi)
        a = inside_out(query, ordering=list(sigma)).scalar
        b = inside_out(query, ordering=list(pi)).scalar
        assert abs(a - b) < 1e-9

"""Branch-and-bound ordering search vs the historical permutation scan.

``best_ordering_search`` replaced the factorial permutation scan inside
:func:`repro.hypergraph.orderings.best_ordering_exhaustive`.  These tests pin
its contract: on every hypergraph it must return the *same quantised width*
— and, because the tie-break is reproduced, the same ordering — as the seed
scan (the first width-minimising permutation of the repr-sorted vertex set
in ``itertools.permutations`` order), while planning the 7-variable
single-block #SAT query in a tiny fraction of the seed's ~1 minute.
"""

import itertools
import random
import time

import pytest

from repro.hypergraph.covers import (
    clear_rho_star_cache,
    fractional_edge_cover_number,
    rho_star_cache_info,
)
from repro.hypergraph.elimination import elimination_sequence
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.orderings import (
    _quantized,
    best_ordering_exhaustive,
    best_ordering_search,
)


def _reference_scan(hypergraph, width_fn):
    """The seed implementation: scan all permutations, quantise, keep first."""
    vertices = sorted(hypergraph.vertices, key=repr)
    best_order, best_width = None, float("inf")
    for perm in itertools.permutations(vertices):
        steps = elimination_sequence(hypergraph, perm)
        width = max((_quantized(width_fn(step.union)) for step in steps), default=0.0)
        if width < best_width:
            best_width, best_order = width, list(perm)
    if best_order is None:
        return list(vertices), 0.0
    return best_order, best_width


def _random_hypergraph(seed):
    rng = random.Random(seed)
    n = rng.randint(1, 6)
    vertices = [f"v{i}" for i in range(n)]
    edges = [
        rng.sample(vertices, rng.randint(1, min(3, n)))
        for _ in range(rng.randint(0, 7))
    ]
    return Hypergraph(vertices, edges)


class TestBranchAndBoundMatchesScan:
    @pytest.mark.parametrize("seed", range(40))
    def test_same_width_and_ordering_rho_star(self, seed):
        hypergraph = _random_hypergraph(seed)

        def width_fn(bag):
            return fractional_edge_cover_number(hypergraph, bag, ignore_uncovered=True)

        ref_order, ref_width = _reference_scan(hypergraph, width_fn)
        order, width = best_ordering_search(hypergraph, width_fn)
        assert width == ref_width
        assert order == ref_order

    @pytest.mark.parametrize("seed", range(40, 60))
    def test_same_width_and_ordering_treewidth(self, seed):
        hypergraph = _random_hypergraph(seed)
        width_fn = lambda bag: len(bag) - 1  # noqa: E731
        ref_order, ref_width = _reference_scan(hypergraph, width_fn)
        order, width = best_ordering_search(hypergraph, width_fn)
        assert width == ref_width
        assert order == ref_order

    def test_exhaustive_wrapper_delegates(self):
        triangle = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("A", "C")])
        assert best_ordering_exhaustive(
            triangle, lambda b: fractional_edge_cover_number(triangle, b)
        ) == ["A", "B", "C"]

    @pytest.mark.parametrize("seed", (3, 7, 13, 29))
    def test_returned_width_matches_returned_ordering(self, seed):
        """Consistency: the reported width is the induced width of the
        returned ordering (recomputed independently via the elimination
        sequence, not the search's own memoised step costs)."""
        hypergraph = _random_hypergraph(seed)

        def width_fn(bag):
            return fractional_edge_cover_number(hypergraph, bag, ignore_uncovered=True)

        ordering, width = best_ordering_search(hypergraph, width_fn)
        steps = elimination_sequence(hypergraph, ordering)
        recomputed = max((_quantized(width_fn(s.union)) for s in steps), default=0.0)
        assert recomputed == width


class TestRhoStarMemo:
    def test_cache_hits_across_hypergraphs(self):
        """Identical restricted structures share one LP across hypergraphs."""
        clear_rho_star_cache()
        a = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("A", "C")])
        b = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("A", "C"), ("C", "D")])
        first = fractional_edge_cover_number(a, {"A", "B", "C"})
        misses = rho_star_cache_info()["misses"]
        second = fractional_edge_cover_number(b, {"A", "B", "C"})
        info = rho_star_cache_info()
        assert first == second == pytest.approx(1.5)
        assert info["misses"] == misses
        assert info["hits"] >= 1

    def test_uncovered_still_raises(self):
        h = Hypergraph(["A", "B", "X"], [("A", "B")])
        from repro.hypergraph.hypergraph import HypergraphError

        with pytest.raises(HypergraphError):
            fractional_edge_cover_number(h, {"A", "X"})
        assert fractional_edge_cover_number(h, {"A", "X"}, ignore_uncovered=True) == 1.0

    def test_isolated_subset_ignored(self):
        h = Hypergraph(["A", "X"], [("A",)])
        assert fractional_edge_cover_number(h, {"X"}, ignore_uncovered=True) == 0.0


@pytest.mark.slow
def test_sat_single_block_planning_budget():
    """Regression: the 7-variable single-block #SAT ordering search finishes
    in seconds (the seed permutation scan needed ~1 minute) and returns an
    ordering of the seed's quantised FAQ-width."""
    from repro.core.faqw import approximate_faqw_ordering, faq_width_of_ordering
    from repro.datasets.cnf import random_k_cnf
    from repro.solvers.sat import sharp_sat_query

    clear_rho_star_cache()
    query = sharp_sat_query(random_k_cnf(7, 16, 3, seed=57))
    start = time.perf_counter()
    ordering = approximate_faqw_ordering(query)
    elapsed = time.perf_counter() - start
    assert elapsed < 10.0, f"planning took {elapsed:.1f}s, budget is 10s (seed: ~64s)"
    # The seed scan returned ('x1', ..., 'x7') with quantised width 2.333333333.
    assert ordering == tuple(f"x{i}" for i in range(1, 8))
    assert round(faq_width_of_ordering(query, ordering), 9) == pytest.approx(2.333333333)

"""Unit tests for :mod:`repro.semiring.base`."""

import math

import pytest

from repro.semiring.base import Semiring, SemiringError
from repro.semiring.standard import BOOLEAN, COUNTING, MAX_PRODUCT, MIN_PLUS, SUM_PRODUCT


class TestSemiringBasics:
    def test_is_zero_and_is_one(self):
        assert COUNTING.is_zero(0)
        assert not COUNTING.is_zero(1)
        assert COUNTING.is_one(1)
        assert not COUNTING.is_one(2)

    def test_float_tolerance_in_equality(self):
        assert SUM_PRODUCT.values_equal(0.1 + 0.2, 0.3)
        assert not SUM_PRODUCT.values_equal(0.1, 0.2)

    def test_custom_equality_predicate(self):
        ring = Semiring(
            name="mod5",
            add=lambda a, b: (a + b) % 5,
            mul=lambda a, b: (a * b) % 5,
            zero=0,
            one=1,
            eq=lambda a, b: a % 5 == b % 5,
        )
        assert ring.values_equal(7, 2)
        assert ring.is_zero(10)

    def test_sum_folds_from_zero(self):
        assert COUNTING.sum([1, 2, 3]) == 6
        assert COUNTING.sum([]) == 0
        assert BOOLEAN.sum([False, True, False]) is True

    def test_product_folds_from_one(self):
        assert COUNTING.product([2, 3, 4]) == 24
        assert COUNTING.product([]) == 1
        assert BOOLEAN.product([True, True]) is True
        assert BOOLEAN.product([True, False]) is False

    def test_repr_contains_name(self):
        assert "counting" in repr(COUNTING)


class TestPower:
    def test_power_matches_builtin_for_counting(self):
        for base in range(4):
            for exponent in range(6):
                assert COUNTING.power(base, exponent) == base ** exponent

    def test_power_zero_exponent_is_one(self):
        assert COUNTING.power(7, 0) == 1
        assert MAX_PRODUCT.power(0.5, 0) == 1.0

    def test_power_on_min_plus_is_scaling(self):
        # In (min, +), "multiplication" is +, so powering scales the value.
        assert MIN_PLUS.power(3.0, 4) == pytest.approx(12.0)

    def test_power_negative_exponent_raises(self):
        with pytest.raises(SemiringError):
            COUNTING.power(2, -1)


class TestIdempotence:
    def test_boolean_values_are_idempotent(self):
        assert BOOLEAN.is_mul_idempotent(True)
        assert BOOLEAN.is_mul_idempotent(False)

    def test_counting_idempotent_elements_are_zero_and_one(self):
        assert COUNTING.is_mul_idempotent(0)
        assert COUNTING.is_mul_idempotent(1)
        assert not COUNTING.is_mul_idempotent(2)

    def test_max_product_idempotents(self):
        assert MAX_PRODUCT.is_mul_idempotent(1.0)
        assert not MAX_PRODUCT.is_mul_idempotent(0.5)


class TestAxiomChecker:
    def test_standard_semirings_pass(self):
        COUNTING.check_axioms(range(4))
        BOOLEAN.check_axioms([False, True])
        MAX_PRODUCT.check_axioms([0.0, 0.5, 1.0, 2.0])
        MIN_PLUS.check_axioms([math.inf, 0.0, 1.0, 2.5])

    def test_broken_distributivity_is_detected(self):
        broken = Semiring(
            name="broken",
            add=lambda a, b: max(a, b),
            mul=lambda a, b: a + b + 1,  # does not distribute, no annihilator
            zero=0,
            one=-1,
        )
        with pytest.raises(SemiringError):
            broken.check_axioms([0, 1, 2])

    def test_missing_annihilator_is_detected(self):
        broken = Semiring(
            name="no-annihilator",
            add=lambda a, b: a + b,
            mul=lambda a, b: a + b,
            zero=0,
            one=0,
        )
        # 1 ⊗ 0 = 1 != 0 → annihilation fails for value 1.
        with pytest.raises(SemiringError):
            broken.check_axioms([0, 1])

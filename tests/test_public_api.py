"""Snapshot of the public API surface.

The exported names of ``repro`` and ``repro.serve`` are a compatibility
contract: removing or renaming one is a breaking change that must be made
deliberately (deprecate first, then update this snapshot in the same
change).  Adding names is fine — add them here too.
"""

import repro
import repro.serve

REPRO_EXPORTS = {
    # core model
    "FAQQuery",
    "QueryError",
    "Variable",
    "Factor",
    "FactorDelta",
    "Hypergraph",
    "Semiring",
    "Aggregate",
    "SemiringAggregate",
    "ProductAggregate",
    # engines
    "inside_out",
    "InsideOutResult",
    "InsideOutStats",
    "variable_elimination",
    # incremental maintenance
    "IncrementalView",
    "IncrementalStats",
    # planner
    "plan_query",
    "execute_query",
    "Plan",
    "PlanResult",
    "PlanCache",
    # FAQ-width theory
    "ExpressionTree",
    "build_expression_tree",
    "is_equivalent_ordering",
    "linear_extensions",
    "approximate_faqw_ordering",
    "faq_width_of_ordering",
    "faq_width_of_query",
    # the stable facade + serving contract
    "Engine",
    "EngineConfig",
    "ServeRequest",
    "ServeResult",
    "ServeError",
    "Overloaded",
    "PlanFailure",
    "__version__",
}

SERVE_EXPORTS = {
    "ServeRequest",
    "ServeResult",
    "ServeError",
    "Overloaded",
    "PlanFailure",
    "ReplicaCrashed",
    "ReplicaTimeout",
    "RetryPolicy",
    "SnapshotStore",
    "PlanServer",
    "execute_batch",
    "Frontend",
    "ReplicaSet",
    "ReplicaHandle",
}


def test_repro_all_matches_snapshot():
    assert set(repro.__all__) == REPRO_EXPORTS


def test_repro_serve_all_matches_snapshot():
    assert set(repro.serve.__all__) == SERVE_EXPORTS


def test_every_exported_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
    for name in repro.serve.__all__:
        assert getattr(repro.serve, name, None) is not None, name


def test_error_hierarchy_contract():
    assert issubclass(repro.Overloaded, repro.ServeError)
    assert issubclass(repro.PlanFailure, repro.ServeError)
    assert issubclass(repro.serve.ReplicaCrashed, repro.ServeError)
    assert issubclass(repro.ServeError, Exception)
    # Overloaded is the retryable signal; it must stay distinguishable.
    assert not issubclass(repro.Overloaded, repro.PlanFailure)


def test_serve_value_types_are_frozen():
    import dataclasses

    assert dataclasses.is_dataclass(repro.ServeRequest)
    assert dataclasses.is_dataclass(repro.ServeResult)
    assert repro.ServeRequest.__dataclass_params__.frozen
    assert repro.ServeResult.__dataclass_params__.frozen

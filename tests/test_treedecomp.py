"""Unit tests for tree decompositions and width parameters."""

import pytest

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.treedecomp import (
    TreeDecomposition,
    decomposition_from_ordering,
    fractional_hypertree_width,
    hypertree_width,
    ordering_from_decomposition,
    treewidth,
)


TRIANGLE = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("A", "C")])
PATH = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("C", "D")])
FOUR_CYCLE = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("C", "D"), ("D", "A")])
GRID_2x3 = Hypergraph.from_scopes(
    [
        ("00", "01"), ("01", "02"),
        ("10", "11"), ("11", "12"),
        ("00", "10"), ("01", "11"), ("02", "12"),
    ]
)


class TestDecompositionFromOrdering:
    @pytest.mark.parametrize("hypergraph", [TRIANGLE, PATH, FOUR_CYCLE, GRID_2x3])
    def test_is_valid_for_any_ordering(self, hypergraph):
        ordering = sorted(hypergraph.vertices, key=repr)
        decomposition = decomposition_from_ordering(hypergraph, ordering)
        assert decomposition.is_valid()

    def test_bags_are_induced_sets(self):
        decomposition = decomposition_from_ordering(PATH, ["A", "B", "C", "D"])
        bags = set(decomposition.bags.values())
        assert frozenset({"C", "D"}) in bags
        assert frozenset({"A", "B"}) in bags

    def test_path_decomposition_has_small_bags(self):
        decomposition = decomposition_from_ordering(PATH, ["A", "B", "C", "D"])
        assert decomposition.tree_width() == 1

    def test_triangle_decomposition_width(self):
        decomposition = decomposition_from_ordering(TRIANGLE, ["A", "B", "C"])
        assert decomposition.tree_width() == 2
        assert decomposition.fractional_width() == pytest.approx(1.5)

    def test_disconnected_hypergraph_yields_connected_tree(self):
        h = Hypergraph.from_scopes([("A", "B"), ("C", "D")])
        decomposition = decomposition_from_ordering(h, ["A", "B", "C", "D"])
        assert decomposition.is_valid()
        import networkx as nx

        assert nx.is_connected(decomposition.tree)


class TestWidthEvaluation:
    def test_integral_width_of_triangle_decomposition(self):
        decomposition = decomposition_from_ordering(TRIANGLE, ["A", "B", "C"])
        assert decomposition.integral_width() == 2

    def test_width_requires_hypergraph(self):
        decomposition = decomposition_from_ordering(PATH, ["A", "B", "C", "D"])
        decomposition.hypergraph = None
        with pytest.raises(Exception):
            decomposition.fractional_width()

    def test_invalid_decomposition_detected(self):
        import networkx as nx

        tree = nx.Graph()
        tree.add_node("only")
        bad = TreeDecomposition(tree=tree, bags={"only": frozenset({"A"})}, hypergraph=PATH)
        assert not bad.is_valid()


class TestOrderingFromDecomposition:
    @pytest.mark.parametrize("hypergraph", [PATH, TRIANGLE, FOUR_CYCLE])
    def test_roundtrip_preserves_vertices(self, hypergraph):
        ordering = sorted(hypergraph.vertices, key=repr)
        decomposition = decomposition_from_ordering(hypergraph, ordering)
        recovered = ordering_from_decomposition(decomposition)
        assert sorted(recovered) == sorted(hypergraph.vertices)

    def test_roundtrip_does_not_increase_width(self):
        ordering = ["A", "B", "C", "D"]
        decomposition = decomposition_from_ordering(PATH, ordering)
        recovered = ordering_from_decomposition(decomposition)
        from repro.hypergraph.elimination import induced_width

        width = induced_width(PATH, recovered, lambda bag: len(bag) - 1)
        assert width <= 1


class TestHypergraphWidths:
    def test_treewidth_of_path_is_one(self):
        assert treewidth(PATH) == 1

    def test_treewidth_of_triangle_is_two(self):
        assert treewidth(TRIANGLE) == 2

    def test_treewidth_of_four_cycle_is_two(self):
        assert treewidth(FOUR_CYCLE) == 2

    def test_fhtw_of_triangle_is_three_halves(self):
        assert fractional_hypertree_width(TRIANGLE) == pytest.approx(1.5)

    def test_fhtw_of_acyclic_queries_is_one(self):
        assert fractional_hypertree_width(PATH) == pytest.approx(1.0)
        star = Hypergraph.from_scopes([("H", "L1"), ("H", "L2"), ("H", "L3")])
        assert fractional_hypertree_width(star) == pytest.approx(1.0)

    def test_fhtw_never_exceeds_htw(self):
        for hypergraph in (TRIANGLE, PATH, FOUR_CYCLE, GRID_2x3):
            assert fractional_hypertree_width(hypergraph) <= hypertree_width(hypergraph) + 1e-9

    def test_fhtw_returns_witnessing_ordering(self):
        width, ordering = fractional_hypertree_width(TRIANGLE, return_ordering=True)
        assert width == pytest.approx(1.5)
        assert sorted(ordering) == ["A", "B", "C"]

    def test_heuristic_path_for_large_hypergraphs(self):
        big_path = Hypergraph.from_scopes(
            [(f"v{i}", f"v{i + 1}") for i in range(15)]
        )
        # 16 vertices exceeds the exact limit → heuristic; still optimal here.
        assert fractional_hypertree_width(big_path, exact_limit=6) == pytest.approx(1.0)

    def test_empty_hypergraph_widths(self):
        empty = Hypergraph()
        assert treewidth(empty) == 0
        assert fractional_hypertree_width(empty) == 0.0

"""Differential tests for the vectorized flat-table elimination kernel.

The contract of :mod:`repro.factors.flat` is that a sparse elimination step
executed by the flat kernel produces a table ``==``-equal to the trie
kernel's (:func:`repro.core.outsidein.eliminate_join`), with every unsafe
input — non-ufunc algebras, NaN values, lossy dtype conversions, custom
equality — falling back to the trie path instead of risking divergence.
The tests force the kernel on (``flat_min_rows=0``) and off
(``flat_enabled=False``) and diff entire InsideOut runs, plus brute force
as the independent ground truth on the small random family.
"""

import dataclasses
import itertools
import math
import random

import pytest

from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, Variable
from repro.factors.backend import BACKEND_FLAT, BackendPolicy
from repro.factors.factor import Factor
from repro.factors.flat import flat_step_eligible
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import BOOLEAN, MAX_PRODUCT, MAX_SUM, MIN_PLUS

from test_planner_differential import _random_query

FORCE_FLAT = BackendPolicy(flat_min_rows=0)
NO_FLAT = BackendPolicy(flat_enabled=False)

# name -> (semiring, value generator, aggregate factory)
ELIGIBLE = {
    "max-product": (
        MAX_PRODUCT, lambda rng: round(rng.uniform(0.1, 2.0), 3), SemiringAggregate.max
    ),
    "min-plus": (
        MIN_PLUS, lambda rng: round(rng.uniform(-1.0, 3.0), 3), SemiringAggregate.min
    ),
    "max-sum": (
        MAX_SUM, lambda rng: round(rng.uniform(-2.0, 2.0), 3), SemiringAggregate.max
    ),
    "boolean": (BOOLEAN, lambda rng: True, SemiringAggregate.logical_or),
}


def _sparse_query(name, seed, n=6, domain=6, num_factors=5, density=0.45):
    """A moderately sized sparse chain-ish query over an eligible semiring."""
    semiring, value_of, aggregate_factory = ELIGIBLE[name]
    rng = random.Random(7_919 * seed + sum(ord(c) for c in name))
    names = [f"v{i}" for i in range(n)]
    domains = {v: tuple(range(domain)) for v in names}
    free = names[: rng.randint(0, 2)]
    aggregates = {v: aggregate_factory() for v in names[len(free):]}
    factors = []
    for index in range(num_factors):
        arity = rng.randint(1, 3)
        scope = tuple(rng.sample(names, arity))
        table = {}
        for values in itertools.product(*(domains[v] for v in scope)):
            if rng.random() < density:
                table[values] = value_of(rng)
        factors.append(Factor(scope, table, name=f"psi{index}"))
    return FAQQuery(
        variables=[Variable(v, domains[v]) for v in names],
        free=free,
        aggregates=aggregates,
        factors=factors,
        semiring=semiring,
    )


def _diff_runs(query, context, expect_flat=None):
    """Run flat-forced vs trie-only and require ``==``-equal outputs."""
    flat = inside_out(query, backend="sparse", backend_policy=FORCE_FLAT)
    trie = inside_out(query, backend="sparse", backend_policy=NO_FLAT)
    assert flat.factor.scope == trie.factor.scope, context
    assert flat.factor.table == trie.factor.table, (
        f"{context}: flat kernel diverged from the trie kernel\n"
        f"  trie: {sorted(trie.factor.table.items(), key=repr)}\n"
        f"  flat: {sorted(flat.factor.table.items(), key=repr)}"
    )
    assert flat.stats.output_size == trie.stats.output_size, context
    # Step structure (everything except the kernel label and timings) match.
    for a, b in zip(flat.stats.steps, trie.stats.steps):
        assert (
            a.variable, a.kind, a.induced_set, a.incident_count,
            a.projection_count, a.result_size,
        ) == (
            b.variable, b.kind, b.induced_set, b.incident_count,
            b.projection_count, b.result_size,
        ), f"{context}: step diverged at {a.variable}"
    flat_steps = [s for s in flat.stats.steps if s.backend == BACKEND_FLAT]
    if expect_flat is True:
        assert flat_steps, f"{context}: expected at least one flat-kernel step"
    elif expect_flat is False:
        assert not flat_steps, f"{context}: expected full fallback to the trie kernel"
    return flat


@pytest.mark.parametrize("name", sorted(ELIGIBLE))
@pytest.mark.parametrize("seed", range(6))
def test_flat_matches_trie_on_sparse_queries(name, seed):
    query = _sparse_query(name, seed)
    run = _diff_runs(query, f"{name}/seed={seed}")
    if any(not a.is_product for a in query.aggregates.values()):
        assert any(s.backend == BACKEND_FLAT for s in run.stats.steps), (
            f"{name}/seed={seed}: flat kernel never engaged under flat_min_rows=0"
        )


@pytest.mark.parametrize("name", ["max-product", "min-plus", "boolean"])
@pytest.mark.parametrize("seed", range(8))
def test_flat_matches_trie_on_random_family(name, seed):
    # The planner differential harness's own query family (includes product
    # aggregates, isolated variables, empty tables, all-free queries).
    query = _random_query(name, seed)
    _diff_runs(query, f"random/{name}/seed={seed}")


@pytest.mark.parametrize("name", sorted(ELIGIBLE))
def test_flat_matches_brute_force(name):
    query = _sparse_query(name, 3, n=4, domain=3, num_factors=4, density=0.6)
    result = inside_out(query, backend="sparse", backend_policy=FORCE_FLAT)
    expected = query.evaluate_brute_force()
    assert result.factor.equals(expected, query.semiring), name


def test_flat_engages_under_default_auto_policy():
    """Large sparse steps pick the flat kernel without any policy override."""
    query = _sparse_query("max-product", 1, n=6, domain=12, num_factors=5, density=0.5)
    run = inside_out(query, backend="sparse")
    assert any(s.backend == BACKEND_FLAT for s in run.stats.steps)
    trie = inside_out(query, backend="sparse", backend_policy=NO_FLAT)
    assert run.factor.table == trie.factor.table


def test_boolean_nonbool_values_fall_back():
    # `True and 2` is 2 on the trie path but would collapse to True in a
    # bool value column; the encoder must refuse the conversion.
    v = Variable("x", (0, 1, 2))
    w = Variable("y", (0, 1))
    query = FAQQuery(
        variables=[w, v],
        free=["y"],
        aggregates={"x": SemiringAggregate.logical_or()},
        factors=[
            Factor(("x", "y"), {(a, b): 2 for a in range(3) for b in range(2)}),
        ],
        semiring=BOOLEAN,
    )
    _diff_runs(query, "boolean-nonbool", expect_flat=False)


def test_nan_values_fall_back():
    # NaN makes max/min folds depend on candidate enumeration order.
    table = {(a, b): 1.5 for a in range(4) for b in range(4)}
    table[(0, 0)] = math.nan
    query = FAQQuery(
        variables=[Variable("y", tuple(range(4))), Variable("x", tuple(range(4)))],
        free=["y"],
        aggregates={"x": SemiringAggregate.max()},
        factors=[Factor(("x", "y"), table)],
        semiring=MAX_PRODUCT,
    )
    _diff_runs(query, "nan", expect_flat=False)


def test_unsafe_int_values_fall_back():
    # Integers beyond 2**53 do not round-trip through float64.
    big = (1 << 53) + 1
    table = {(a, b): big for a in range(3) for b in range(3)}
    query = FAQQuery(
        variables=[Variable("y", tuple(range(3))), Variable("x", tuple(range(3)))],
        free=["y"],
        aggregates={"x": SemiringAggregate.max()},
        factors=[Factor(("x", "y"), table)],
        semiring=MAX_PRODUCT,
    )
    _diff_runs(query, "big-int", expect_flat=False)


def test_safe_int_values_use_flat():
    table = {(a, b): a + b + 1 for a in range(4) for b in range(4)}
    query = FAQQuery(
        variables=[Variable("y", tuple(range(4))), Variable("x", tuple(range(4)))],
        free=["y"],
        aggregates={"x": SemiringAggregate.max()},
        factors=[Factor(("x", "y"), table)],
        semiring=MAX_PRODUCT,
    )
    _diff_runs(query, "small-int", expect_flat=True)


def test_custom_equality_is_never_flat():
    custom = dataclasses.replace(MAX_PRODUCT, eq=lambda a, b: abs(a - b) < 0.5)
    factor = Factor(("x",), {(0,): 1.0, (1,): 2.0})
    assert not flat_step_eligible(
        custom, "max", {"x": (0, 1)}, {"x"}, [factor], 0
    )
    assert flat_step_eligible(
        MAX_PRODUCT, "max", {"x": (0, 1)}, {"x"}, [factor], 0
    )


def test_sum_aggregates_are_never_flat():
    # Grouped reduceat re-associates float sums; the tag is ineligible.
    factor = Factor(("x",), {(0,): 1.0, (1,): 2.0})
    assert not flat_step_eligible(
        MAX_PRODUCT, "sum", {"x": (0, 1)}, {"x"}, [factor], 0
    )


def test_scalar_and_empty_outputs():
    # Scalar query (no free variables) and an annihilated (empty) output.
    semiring, value_of, aggregate_factory = ELIGIBLE["min-plus"]
    rng = random.Random(11)
    table = {
        (a, b): value_of(rng) for a in range(5) for b in range(5) if (a + b) % 2
    }
    scalar = FAQQuery(
        variables=[Variable("x", tuple(range(5))), Variable("y", tuple(range(5)))],
        free=[],
        aggregates={"x": aggregate_factory(), "y": aggregate_factory()},
        factors=[Factor(("x", "y"), table)],
        semiring=semiring,
    )
    _diff_runs(scalar, "scalar", expect_flat=True)

    disjoint = FAQQuery(
        variables=[Variable("y", (0, 1)), Variable("x", (0, 1))],
        free=["y"],
        aggregates={"x": SemiringAggregate.max()},
        factors=[
            Factor(("x", "y"), {(0, 0): 1.0}),
            Factor(("x",), {(1,): 1.0}),  # joint support is empty
        ],
        semiring=MAX_PRODUCT,
    )
    _diff_runs(disjoint, "empty-join")


@pytest.mark.parametrize("name", sorted(ELIGIBLE))
def test_flat_runs_are_worker_invariant(name):
    """DAG runs with the flat kernel match the serial run at any workers."""
    query = _sparse_query(name, 2)
    serial = inside_out(query, backend="sparse", backend_policy=FORCE_FLAT)
    for workers in (2, 4):
        parallel = inside_out(
            query, backend="sparse", backend_policy=FORCE_FLAT, workers=workers
        )
        assert parallel.factor.table == serial.factor.table, (name, workers)
        assert [s.backend for s in parallel.stats.steps] == [
            s.backend for s in serial.stats.steps
        ], (name, workers)

"""Tests for the matrix application layer: MCM and the DFT."""

import numpy as np
import pytest

from repro.core.faqw import faq_width_of_query
from repro.core.query import QueryError
from repro.solvers.matrix import (
    COMPLEX_SUM_PRODUCT,
    dft_insideout,
    dft_naive,
    dft_query,
    matrix_chain_insideout,
    matrix_chain_query,
    mcm_dp_cost,
    mcm_dp_ordering,
    mcm_naive_cost,
)


class TestMatrixChainQuery:
    def test_query_structure(self):
        rng = np.random.default_rng(0)
        mats = [rng.random((2, 3)), rng.random((3, 4))]
        query = matrix_chain_query(mats)
        assert query.free == ("x1", "x3")
        assert len(query.factors) == 2
        assert query.domain_size("x2") == 3

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(QueryError):
            matrix_chain_query([np.zeros((2, 3)), np.zeros((4, 2))])

    def test_empty_chain_rejected(self):
        with pytest.raises(QueryError):
            matrix_chain_query([])

    def test_mcm_faqw_is_two(self):
        # Both endpoints of the chain are free, so every elimination of an
        # inner index keeps the two free ends around: the induced sets need
        # two of the chain edges to be covered, i.e. faqw = 2.  (The MCM row
        # of Table 1 is governed by the DP cost, not by N^faqw.)
        rng = np.random.default_rng(1)
        mats = [rng.random((2, 3)), rng.random((3, 2)), rng.random((2, 4))]
        assert faq_width_of_query(matrix_chain_query(mats)) == pytest.approx(2.0)


class TestMatrixChainEvaluation:
    @pytest.mark.parametrize("dims", [
        (3, 4, 2), (2, 5, 3, 4), (4, 1, 6, 2, 3), (3, 3),
    ])
    def test_matches_numpy(self, dims):
        rng = np.random.default_rng(sum(dims))
        mats = [rng.random((dims[i], dims[i + 1])) for i in range(len(dims) - 1)]
        expected = mats[0]
        for m in mats[1:]:
            expected = expected @ m
        got = matrix_chain_insideout(mats)
        assert np.allclose(got, expected)

    def test_single_matrix(self):
        mat = np.arange(6.0).reshape(2, 3)
        assert np.allclose(matrix_chain_insideout([mat]), mat)

    def test_sparse_matrices(self):
        left = np.zeros((4, 4))
        right = np.zeros((4, 4))
        left[0, 1] = 2.0
        right[1, 2] = 3.0
        assert np.allclose(matrix_chain_insideout([left, right]), left @ right)

    def test_explicit_ordering(self):
        rng = np.random.default_rng(9)
        mats = [rng.random((2, 3)), rng.random((3, 2))]
        got = matrix_chain_insideout(mats, ordering=["x1", "x3", "x2"])
        assert np.allclose(got, mats[0] @ mats[1])


class TestMCMDynamicProgram:
    def test_textbook_example(self):
        # CLRS example: dims (30, 35, 15, 5, 10, 20, 25) has optimal cost 15125.
        cost, _ = mcm_dp_cost([30, 35, 15, 5, 10, 20, 25])
        assert cost == 15125

    def test_two_matrices(self):
        cost, _ = mcm_dp_cost([2, 3, 4])
        assert cost == 24

    def test_optimal_no_worse_than_naive(self):
        for dims in [(5, 2, 9, 3, 7), (10, 1, 10, 1, 10)]:
            optimal, _ = mcm_dp_cost(list(dims))
            assert optimal <= mcm_naive_cost(list(dims))

    def test_dp_ordering_is_valid_permutation(self):
        dims = [5, 2, 9, 3, 7]
        ordering = mcm_dp_ordering(dims)
        assert sorted(ordering) == [f"x{i}" for i in range(1, 6)]
        assert ordering[:2] == ["x1", "x5"]

    def test_dp_ordering_reproduces_product(self):
        rng = np.random.default_rng(4)
        dims = [4, 2, 6, 3]
        mats = [rng.random((dims[i], dims[i + 1])) for i in range(len(dims) - 1)]
        got = matrix_chain_insideout(mats, ordering=mcm_dp_ordering(dims))
        assert np.allclose(got, mats[0] @ mats[1] @ mats[2])


class TestDFT:
    @pytest.mark.parametrize("size,base", [(4, 2), (8, 2), (16, 2), (9, 3), (27, 3)])
    def test_matches_naive_dft(self, size, base):
        rng = np.random.default_rng(size + base)
        vector = rng.random(size) + 1j * rng.random(size)
        assert np.allclose(dft_insideout(vector, base), dft_naive(vector))

    def test_matches_numpy_ifft_convention(self):
        rng = np.random.default_rng(3)
        vector = rng.random(8)
        # The paper (and our encoding) uses the positive-exponent convention,
        # which equals numpy's unnormalised inverse FFT.
        assert np.allclose(dft_insideout(vector, 2), np.fft.ifft(vector) * 8)

    def test_impulse_has_flat_spectrum(self):
        vector = np.zeros(8)
        vector[0] = 1.0
        assert np.allclose(dft_insideout(vector, 2), np.ones(8))

    def test_non_power_length_rejected(self):
        with pytest.raises(QueryError):
            dft_query(np.ones(6), 2)

    def test_empty_vector_rejected(self):
        with pytest.raises(QueryError):
            dft_query([], 2)

    def test_query_structure(self):
        query = dft_query(np.ones(8), 2)
        assert query.num_free == 3
        # One input factor plus one twiddle per (j, k) with j + k < m.
        assert len(query.factors) == 1 + 6
        assert query.semiring is COMPLEX_SUM_PRODUCT

    def test_dft_faqw_is_bounded_by_digit_count(self):
        # The DFT query's efficiency comes from the per-step intermediate
        # sizes staying at N (the FFT), not from a constant faqw: the width
        # grows like the number of digits m because the input-vector factor
        # spans all m bound digits while the free digits accumulate.
        query = dft_query(np.ones(8), 2)
        width = faq_width_of_query(query, extension_limit=200)
        assert 1.0 <= width <= 3.0 + 1e-9

"""Unit tests for compact factor representations (:mod:`repro.factors.compact`)."""

import pytest

from repro.factors.compact import BoxFactor, Clause, Literal, clause_from_ints
from repro.factors.factor import FactorError
from repro.semiring.standard import COUNTING


class TestLiteral:
    def test_negate(self):
        literal = Literal("x", True)
        assert literal.negate() == Literal("x", False)
        assert literal.negate().negate() == literal

    def test_satisfied_by(self):
        assert Literal("x", True).satisfied_by(True)
        assert not Literal("x", True).satisfied_by(False)
        assert Literal("x", False).satisfied_by(False)

    def test_str(self):
        assert str(Literal("x", True)) == "x"
        assert str(Literal("x", False)) == "~x"


class TestClause:
    def test_variables_and_len(self):
        clause = Clause([Literal("a", True), Literal("b", False)])
        assert clause.variables == frozenset({"a", "b"})
        assert len(clause) == 2

    def test_tautology_detection(self):
        clause = Clause([Literal("a", True), Literal("a", False)])
        assert clause.is_tautology
        assert clause.satisfied_by({"a": False})

    def test_empty_clause(self):
        clause = Clause([])
        assert clause.is_empty
        assert not clause.is_tautology

    def test_satisfied_by(self):
        clause = Clause([Literal("a", True), Literal("b", False)])
        assert clause.satisfied_by({"a": True, "b": True})
        assert clause.satisfied_by({"a": False, "b": False})
        assert not clause.satisfied_by({"a": False, "b": True})

    def test_value_uses_weight_when_falsified(self):
        clause = Clause([Literal("a", True)], weight=7)
        assert clause.value({"a": True}) == 1
        assert clause.value({"a": False}) == 7

    def test_drop_removes_literal(self):
        clause = Clause([Literal("a", True), Literal("b", False)])
        assert clause.drop("a").variables == frozenset({"b"})

    def test_resolution(self):
        left = Clause([Literal("x", True), Literal("a", True)])
        right = Clause([Literal("x", False), Literal("b", False)])
        resolvent = left.resolve(right, "x")
        assert resolvent.variables == frozenset({"a", "b"})

    def test_resolution_producing_tautology(self):
        left = Clause([Literal("x", True), Literal("a", True)])
        right = Clause([Literal("x", False), Literal("a", False)])
        assert left.resolve(right, "x").is_tautology

    def test_resolution_same_polarity_raises(self):
        left = Clause([Literal("x", True)])
        right = Clause([Literal("x", True)])
        with pytest.raises(FactorError):
            left.resolve(right, "x")

    def test_to_factor_counts_satisfying_assignments(self):
        clause = Clause([Literal("a", True), Literal("b", True)])
        factor = clause.to_factor(COUNTING)
        # A width-2 clause has 3 satisfying assignments.
        assert len(factor) == 3
        assert factor.value({"a": False, "b": False}, COUNTING) == 0

    def test_clause_from_ints(self):
        clause = clause_from_ints([1, -3])
        assert clause.variables == frozenset({"x1", "x3"})
        assert clause.literal_for("x3") == Literal("x3", False)

    def test_clause_from_ints_rejects_zero(self):
        with pytest.raises(FactorError):
            clause_from_ints([0])


class TestBoxFactor:
    def test_value_inside_and_outside(self):
        box = BoxFactor(box={"a": frozenset({1, 2}), "b": frozenset({0})}, inside_value=0)
        assert box.value({"a": 1, "b": 0}) == 0
        assert box.value({"a": 3, "b": 0}) == 1
        assert box.value({"a": 1, "b": 5}) == 1

    def test_scope(self):
        box = BoxFactor(box={"a": frozenset({1})}, inside_value=0)
        assert box.scope == ("a",)

    def test_to_listing_matches_pointwise_values(self):
        box = BoxFactor(box={"a": frozenset({0}), "b": frozenset({1})}, inside_value=0)
        domains = {"a": (0, 1), "b": (0, 1)}
        listing = box.to_listing(domains, COUNTING)
        for a in (0, 1):
            for b in (0, 1):
                assert listing.value({"a": a, "b": b}, COUNTING) == box.value({"a": a, "b": b})

    def test_clause_is_a_box_factor(self):
        # (a ∨ ~b) is falsified only inside the box a=False, b=True.
        clause = Clause([Literal("a", True), Literal("b", False)])
        box = BoxFactor(box={"a": frozenset({False}), "b": frozenset({True})}, inside_value=0)
        for a in (False, True):
            for b in (False, True):
                assert clause.value({"a": a, "b": b}) == box.value({"a": a, "b": b})

"""The content-addressed step IR: merged batches and the feedback loop.

The contracts under test:

* **exactly-once** — a merged multi-query batch executes every distinct
  step digest once (asserted on the executor's own counters), and not at
  all when a :class:`~repro.exec.StepResultCache` already holds it;
* **bit-identical** — merged execution returns the same factor tables
  *and* the same :class:`~repro.core.insideout.InsideOutStats` (wall-clock
  seconds aside) as independent runs, across semirings and worker counts;
* **closed loop** — :func:`~repro.planner.record_plan_feedback` turns
  observed-vs-estimated step sizes into cost-model calibration and, past
  the error threshold, plan-cache invalidation;
* **free-prefix search** — the branch-and-bound ordering search honours a
  free-variable prefix constraint and still finds the constrained optimum.
"""

import itertools
import random
from dataclasses import replace

import pytest

from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, Variable
from repro.exec import DagExecutor, MergedRunInfo, RunSpec, StepResultCache
from repro.factors.factor import Factor
from repro.hypergraph.covers import fractional_edge_cover_number
from repro.hypergraph.elimination import elimination_sequence
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.orderings import best_ordering_exhaustive, best_ordering_search
from repro.planner import (
    CostModel,
    PlanCache,
    observed_step_errors,
    plan,
    record_plan_feedback,
)
from repro.planner.cache import REPLAN_ERROR_THRESHOLD
from repro.serve import PlanServer, ServeRequest

from test_planner_differential import SEMIRINGS

MERGED_SEMIRINGS = ("counting", "max-product", "boolean")
WORKER_COUNTS = (1, 4)
_CHAIN_VARS = 6
_ORDER = tuple(f"x{i}" for i in range(1, _CHAIN_VARS + 1))


# ---------------------------------------------------------------------- #
# an overlapping query family: shared chain, per-variant unary head
# ---------------------------------------------------------------------- #
def _chain_family(semiring_name, variants=3):
    """Queries sharing every pair factor, differing in a unary on ``x1``.

    ``x1`` is first in the ordering, so it is eliminated *last* — the whole
    shared chain suffix collides in the step IR and only the head steps
    differ per variant.  The returned list ends with an exact duplicate of
    the first variant (same content, distinct object).
    """
    semiring, value_of, aggregate_factory, offset = SEMIRINGS[semiring_name]
    rng = random.Random(9_117 + offset)
    domain = (0, 1, 2)
    pair_tables = []
    for _ in range(_CHAIN_VARS - 1):
        table = {
            (a, b): value_of(rng)
            for a in domain
            for b in domain
            if rng.random() < 0.8
        }
        pair_tables.append(table or {(0, 0): value_of(rng)})

    def build(name, head_table):
        factors = [
            Factor((f"x{i}", f"x{i+1}"), dict(table), name=f"R{i}")
            for i, table in zip(range(1, _CHAIN_VARS), pair_tables)
        ]
        factors.append(Factor(("x1",), dict(head_table), name="head"))
        return FAQQuery(
            variables=[Variable(v, domain) for v in _ORDER],
            free=[],
            aggregates={v: aggregate_factory() for v in _ORDER},
            factors=factors,
            semiring=semiring,
            name=name,
        )

    heads = []
    for _ in range(variants):
        head = {(a,): value_of(rng) for a in domain if rng.random() < 0.8}
        heads.append(head or {(0,): value_of(rng)})
    queries = [build(f"q{j}", head) for j, head in enumerate(heads)]
    queries.append(build("q0-dup", heads[0]))
    return queries


def _assert_identical(serial, merged, context):
    """Output and stats must match the independent run exactly (not seconds)."""
    assert merged.ordering == serial.ordering, context
    assert merged.factor.scope == serial.factor.scope, context
    assert merged.factor.table == serial.factor.table, context
    s, m = serial.stats, merged.stats
    assert len(m.steps) == len(s.steps), context
    for a, b in zip(s.steps, m.steps):
        assert (
            a.variable, a.kind, a.induced_set, a.incident_count,
            a.projection_count, a.result_size, a.backend,
        ) == (
            b.variable, b.kind, b.induced_set, b.incident_count,
            b.projection_count, b.result_size, b.backend,
        ), f"{context}: step record diverged for {a.variable}"
    assert (
        m.join_stats.search_steps,
        m.join_stats.emitted_tuples,
        m.join_stats.intersections,
    ) == (
        s.join_stats.search_steps,
        s.join_stats.emitted_tuples,
        s.join_stats.intersections,
    ), context
    assert m.max_intermediate_size == s.max_intermediate_size, context
    assert m.output_size == s.output_size, context


# ---------------------------------------------------------------------- #
# merged batches: bit-identical and exactly-once
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("name", MERGED_SEMIRINGS)
def test_merged_batch_matches_independent_runs(name, workers):
    queries = _chain_family(name)
    independent = [inside_out(q, ordering=list(_ORDER)) for q in queries]

    cache = StepResultCache()
    info = MergedRunInfo()
    merged = DagExecutor(workers=workers).run_many(
        [RunSpec(query=q, ordering=list(_ORDER)) for q in queries],
        step_cache=cache,
        info=info,
    )
    for serial, shared, query in zip(independent, merged, queries):
        _assert_identical(serial, shared, f"{name}/workers={workers}/{query.name}")

    # Exactly once: every distinct digest executed a single time, and the
    # overlap (shared chain + the duplicate query) actually deduplicated.
    assert info.executed_nodes == info.merged_nodes
    assert info.replayed_nodes == 0
    assert info.merged_nodes < info.total_nodes
    assert cache.stats()["computed"] == info.executed_nodes


@pytest.mark.parametrize("name", MERGED_SEMIRINGS)
def test_warm_step_cache_replays_the_whole_batch(name):
    queries = _chain_family(name)
    cache = StepResultCache()
    executor = DagExecutor(workers=1)
    specs = [RunSpec(query=q, ordering=list(_ORDER)) for q in queries]

    first = MergedRunInfo()
    cold = executor.run_many(specs, step_cache=cache, info=first)
    second = MergedRunInfo()
    warm = executor.run_many(specs, step_cache=cache, info=second)

    for a, b in zip(cold, warm):
        _assert_identical(a, b, f"{name}: warm replay diverged")
    assert second.executed_nodes == 0
    assert second.replayed_nodes == second.merged_nodes
    assert cache.stats()["replayed"] >= second.merged_nodes


def test_sequential_traffic_replays_shared_prefixes():
    """``inside_out(step_cache=...)`` shares steps across sequential calls."""
    queries = _chain_family("counting")
    cache = StepResultCache()
    baseline = [inside_out(q, ordering=list(_ORDER)) for q in queries]
    results = [
        inside_out(q, ordering=list(_ORDER), step_cache=cache) for q in queries
    ]
    for want, got in zip(baseline, results):
        _assert_identical(want, got, "sequential step-cache run diverged")
    stats = cache.stats()
    assert stats["replayed"] > 0
    # The duplicate tail query replays entirely: no new computations for it.
    before = cache.stats()["computed"]
    again = inside_out(queries[0], ordering=list(_ORDER), step_cache=cache)
    _assert_identical(baseline[0], again, "fully-cached rerun diverged")
    assert cache.stats()["computed"] == before


# ---------------------------------------------------------------------- #
# PlanServer: cross-query common sub-elimination in serving
# ---------------------------------------------------------------------- #
def _serve_options():
    return {"strategy": "insideout", "ordering": list(_ORDER)}


def test_plan_server_merges_batch_and_replays_repeats():
    queries = _chain_family("counting")
    expected = [inside_out(q, ordering=list(_ORDER)) for q in queries]
    with PlanServer() as server:
        results = server.execute_batch(
            [ServeRequest(query=q, options=_serve_options()) for q in queries]
        )
        stats = server.stats()
        for want, got in zip(expected, results):
            assert got.factor.table == want.factor.table
        # The duplicate coalesces by content; the rest merge by digest.
        assert stats["merged_queries"] == len(queries) - 1
        assert stats["merged_executed_steps"] == stats["merged_unique_steps"]
        assert stats["merged_unique_steps"] < stats["merged_total_steps"]

        # A repeated batch is answered from the warm step cache entirely.
        executed_before = server.stats()["merged_executed_steps"]
        repeat = server.execute_batch(
            [ServeRequest(query=q, options=_serve_options()) for q in _chain_family("counting")]
        )
        for want, got in zip(expected, repeat):
            assert got.factor.table == want.factor.table
        assert server.stats()["merged_executed_steps"] == executed_before


def test_plan_server_coalesce_opt_out_skips_sharing():
    queries = _chain_family("counting")[:2]
    expected = [inside_out(q, ordering=list(_ORDER)) for q in queries]
    with PlanServer() as server:
        results = server.execute_batch(
            [
                ServeRequest(query=q, coalesce=False, options=_serve_options())
                for q in queries
            ]
        )
        stats = server.stats()
    for want, got in zip(expected, results):
        assert got.factor.table == want.factor.table
    assert stats["merged_queries"] == 0
    assert stats["step_cache_computed"] == 0


def test_plan_server_result_cache_answers_repeat_traffic():
    query = _chain_family("counting")[0]
    want = inside_out(query, ordering=list(_ORDER))
    with PlanServer(cache_results=True) as server:
        first = server.execute_request(ServeRequest(query=query, options=_serve_options()))
        again = server.execute_request(
            ServeRequest(query=_chain_family("counting")[0], options=_serve_options())
        )
        stats = server.stats()
    assert first.factor.table == want.factor.table
    assert again.factor.table == want.factor.table
    assert not first.coalesced and again.coalesced
    assert stats["result_cache_hits"] == 1


# ---------------------------------------------------------------------- #
# the closed planner feedback loop
# ---------------------------------------------------------------------- #
def _insideout_only_query():
    """Mixed aggregate tags force the insideout strategy (no VE, no joins)."""
    rng = random.Random(4242)
    domain = (0, 1, 2)
    names = [f"x{i}" for i in range(4)]
    factors = [
        Factor(
            (names[i], names[i + 1]),
            {
                (a, b): rng.randint(1, 4)
                for a in domain
                for b in domain
                if rng.random() < 0.8
            },
        )
        for i in range(3)
    ]
    from repro.semiring.aggregates import SemiringAggregate
    from repro.semiring.standard import COUNTING

    aggregates = {names[0]: SemiringAggregate.max()}
    aggregates.update({v: SemiringAggregate.sum() for v in names[1:]})
    return FAQQuery(
        variables=[Variable(v, domain) for v in names],
        free=[],
        aggregates=aggregates,
        factors=factors,
        semiring=COUNTING,
        name="feedback",
    )


def test_accurate_estimates_produce_zero_error_and_no_replan():
    query = _insideout_only_query()
    cache = PlanCache(cost_model=CostModel())
    chosen = plan(query, cache=cache)
    assert chosen.strategy == "insideout"
    assert chosen.cache_key is not None
    assert chosen.step_sizes
    executed = chosen.execute()

    sizes = [float(rec.result_size) for rec in executed.stats.steps]
    if len(chosen.step_sizes) == len(executed.stats.steps) + 1:
        sizes.append(float(executed.stats.output_size))
    perfect = replace(chosen, step_sizes=tuple(sizes))
    feedback = record_plan_feedback(perfect, executed.stats, cache=cache)
    assert feedback.errors
    assert feedback.worst == 0.0
    assert not feedback.replanned
    assert cache.replans == 0


def test_wild_estimates_trigger_replanning():
    query = _insideout_only_query()
    cache = PlanCache(cost_model=CostModel())
    chosen = plan(query, cache=cache)
    executed = chosen.execute()
    hits_before = cache.hits

    wrong = replace(chosen, step_sizes=tuple(1e9 for _ in chosen.step_sizes))
    feedback = record_plan_feedback(wrong, executed.stats, cache=cache)
    assert feedback.worst > REPLAN_ERROR_THRESHOLD
    assert feedback.replanned
    assert cache.replans == 1
    # The entry is gone: replanning the same query misses the cache.
    replanned = plan(query, cache=cache)
    assert cache.hits == hits_before
    assert replanned.cache_key is not None


def test_observed_errors_are_signed_logs():
    query = _insideout_only_query()
    chosen = plan(query, cache=PlanCache())
    executed = chosen.execute()
    errors = observed_step_errors(chosen.step_sizes, executed.stats)
    assert errors
    assert all(abs(e) < 50 for e in errors)
    # Shape mismatches are refused rather than misattributed.
    assert observed_step_errors(chosen.step_sizes[:-2], executed.stats) in ([],)


def test_feedback_calibrates_the_cost_model():
    model = CostModel()
    assert model.calibration("insideout") == 1.0
    multiplier = model.observe("insideout", [1.0, 1.0, 1.0])
    assert multiplier > 1.0
    assert model.calibration("insideout") == multiplier
    # Consistent overestimates pull the multiplier below one.
    shrink = CostModel()
    shrink.observe("insideout", [-1.0, -1.0])
    assert shrink.calibration("insideout") < 1.0
    # Calibration is per strategy.
    assert model.calibration("variable-elimination") == 1.0


def test_plan_server_feeds_execution_back_into_its_cache():
    queries = _chain_family("counting")[:2]
    with PlanServer() as server:
        for query in queries:
            server.execute_request(ServeRequest(query=query, options={"strategy": "insideout"}))
        stats = server.stats()
    # The server's paired cost model saw at least one observation.
    assert server.cache.cost_model is not None
    assert server.cache.cost_model.observations >= 1
    assert "plan_replans" in stats


# ---------------------------------------------------------------------- #
# free-prefix-constrained ordering search
# ---------------------------------------------------------------------- #
def _random_hypergraph(rng):
    n = rng.randint(2, 5)
    vertices = [f"v{i}" for i in range(n)]
    edges = []
    for _ in range(rng.randint(1, n + 2)):
        k = rng.randint(1, min(3, n))
        edges.append(frozenset(rng.sample(vertices, k)))
    return Hypergraph(vertices, edges)


def _width_of(hypergraph, order, width_fn):
    steps = elimination_sequence(hypergraph, order)
    return max((round(width_fn(step.union), 9) for step in steps), default=0.0)


@pytest.mark.parametrize("seed", range(8))
def test_constrained_search_matches_brute_force(seed):
    rng = random.Random(31_000 + seed)
    hypergraph = _random_hypergraph(rng)
    vertices = sorted(hypergraph.vertices, key=repr)

    def width_fn(bag):
        return fractional_edge_cover_number(hypergraph, bag, ignore_uncovered=True)

    free = set(rng.sample(vertices, rng.randint(0, len(vertices))))
    ordering, width = best_ordering_search(hypergraph, width_fn, free=free)
    assert set(ordering) == set(vertices)
    assert set(ordering[: len(free)]) == free

    brute = min(
        _width_of(hypergraph, perm, width_fn)
        for perm in itertools.permutations(vertices)
        if set(perm[: len(free)]) == free
    )
    assert abs(width - brute) < 1e-9
    assert abs(_width_of(hypergraph, ordering, width_fn) - width) < 1e-9


def test_empty_free_set_is_the_unconstrained_search():
    rng = random.Random(77)
    hypergraph = _random_hypergraph(rng)

    def width_fn(bag):
        return fractional_edge_cover_number(hypergraph, bag, ignore_uncovered=True)

    assert best_ordering_search(hypergraph, width_fn, free=()) == best_ordering_search(
        hypergraph, width_fn
    )


def test_exhaustive_candidates_respect_the_free_prefix():
    hypergraph = Hypergraph(["a", "b", "c"], [frozenset(["a", "b"]), frozenset(["b", "c"])])

    def width_fn(bag):
        return float(len(bag))

    chosen = best_ordering_exhaustive(
        hypergraph,
        width_fn,
        candidates=[("a", "b", "c"), ("b", "a", "c"), ("c", "b", "a")],
        free=("b",),
    )
    assert chosen[0] == "b"


def test_planner_prefers_free_prefix_orderings_for_free_queries():
    """A free-variable query still plans, and its ordering keeps the prefix."""
    rng = random.Random(5)
    domain = (0, 1)
    names = ["x0", "x1", "x2", "x3"]
    from repro.semiring.aggregates import SemiringAggregate
    from repro.semiring.standard import COUNTING

    factors = [
        Factor(
            (names[i], names[i + 1]),
            {(a, b): rng.randint(1, 3) for a in domain for b in domain},
        )
        for i in range(3)
    ]
    query = FAQQuery(
        variables=[Variable(v, domain) for v in names],
        free=["x0", "x1"],
        aggregates={v: SemiringAggregate.sum() for v in names[2:]},
        factors=factors,
        semiring=COUNTING,
        name="free-prefix",
    )
    chosen = plan(query, cache=PlanCache())
    assert set(chosen.ordering[:2]) == {"x0", "x1"}

"""Integration tests: one end-to-end check per Table 1 row of the paper.

These are correctness counterparts of the benchmark harness in
``benchmarks/``: each Table 1 problem is solved both through the FAQ/InsideOut
pipeline and through an independent reference, on inputs small enough for the
reference to be exact.
"""

import networkx as nx
import numpy as np
import pytest

from repro.datasets.graphs import random_graph
from repro.datasets.pgm_models import random_sparse_model
from repro.datasets.relations import cycle_query_relations, random_relation
from repro.db.generic_join import generic_join
from repro.db.hash_join import left_deep_join_plan
from repro.pgm.brute import brute_force_map, brute_force_marginal
from repro.solvers.joins import count_triangles, natural_join_insideout
from repro.solvers.logic import EXISTS, FORALL, Atom, QuantifiedConjunctiveQuery
from repro.solvers.matrix import dft_insideout, dft_naive, matrix_chain_insideout
from repro.solvers.pgm import map_insideout, marginal_insideout


def _random_qcq(seed, with_free=True):
    r = random_relation("R", ("a", "b"), 3, 7, seed=seed)
    s = random_relation("S", ("b", "c"), 3, 7, seed=seed + 1)
    t = random_relation("T", ("c", "d"), 3, 7, seed=seed + 2)
    free = ("u",) if with_free else ()
    quantifiers = (("v", EXISTS), ("w", FORALL), ("z", EXISTS))
    return QuantifiedConjunctiveQuery(
        free=free,
        quantifiers=quantifiers,
        atoms=(Atom(r, free + ("v",)) if free else Atom(r, ("v", "v")),
               Atom(s, ("v", "w")),
               Atom(t, ("w", "z"))),
        domains={"w": (0, 1, 2), "z": (0, 1, 2)},
    )


class TestTable1Rows:
    def test_row1_sharp_qcq(self):
        """#QCQ: InsideOut count equals direct quantifier-semantics count."""
        for seed in (1, 5, 9):
            query = _random_qcq(seed)
            assert query.count() == query.count_brute_force()

    def test_row2_qcq(self):
        """QCQ: the answer relation matches brute force."""
        for seed in (2, 6):
            query = _random_qcq(seed)
            assert query.solve().tuples == query.solve_brute_force().tuples

    def test_row3_sharp_cq(self):
        """#CQ: counting answers of a CQ with existential variables."""
        r = random_relation("R", ("a", "b"), 4, 10, seed=3)
        s = random_relation("S", ("b", "c"), 4, 10, seed=4)
        query = QuantifiedConjunctiveQuery(
            free=("x",),
            quantifiers=(("y", EXISTS), ("z", EXISTS)),
            atoms=(Atom(r, ("x", "y")), Atom(s, ("y", "z"))),
        )
        assert query.count() == query.count_brute_force()

    def test_row4_joins(self):
        """Joins: InsideOut equals worst-case-optimal generic join and the
        pairwise plan on the triangle query."""
        rels = cycle_query_relations(3, 8, 30, seed=5)
        expected = generic_join(rels)
        insideout_result = natural_join_insideout(rels)
        pairwise, _ = left_deep_join_plan(rels)
        assert insideout_result.project(expected.schema).tuples == expected.tuples
        assert pairwise.project(expected.schema).tuples == expected.tuples

    def test_row4_triangle_counting(self):
        graph = random_graph(20, 50, seed=6)
        assert count_triangles(graph) == sum(nx.triangles(graph).values()) // 3

    def test_row5_marginal(self):
        model = random_sparse_model(6, 6, max_arity=3, domain_size=2, density=0.8, seed=7)
        target = model.variables[0]
        expected = brute_force_marginal(model, [target])
        got = marginal_insideout(model, [target])
        keys = set(expected) | set(got)
        for key in keys:
            assert got.get(key, 0.0) == pytest.approx(expected.get(key, 0.0))

    def test_row6_map(self):
        model = random_sparse_model(6, 6, max_arity=3, domain_size=2, density=0.8, seed=8)
        target = model.variables[1]
        expected = brute_force_map(model, [target])
        got = map_insideout(model, [target])
        keys = set(expected) | set(got)
        for key in keys:
            assert got.get(key, 0.0) == pytest.approx(expected.get(key, 0.0))

    def test_row7_mcm(self):
        rng = np.random.default_rng(9)
        dims = [6, 2, 7, 3, 5]
        mats = [rng.random((dims[i], dims[i + 1])) for i in range(len(dims) - 1)]
        expected = mats[0] @ mats[1] @ mats[2] @ mats[3]
        assert np.allclose(matrix_chain_insideout(mats), expected)

    def test_row8_dft(self):
        rng = np.random.default_rng(10)
        vector = rng.random(16) + 1j * rng.random(16)
        assert np.allclose(dft_insideout(vector, 2), dft_naive(vector))
        assert np.allclose(dft_insideout(vector, 2), np.fft.ifft(vector) * 16)

"""Unit tests for aggregate descriptors (:mod:`repro.semiring.aggregates`)."""

import pytest

from repro.semiring.aggregates import (
    Aggregate,
    FREE_TAG,
    PRODUCT_TAG,
    ProductAggregate,
    SemiringAggregate,
    product_aggregate,
    semiring_aggregate,
)


class TestConstruction:
    def test_semiring_aggregate_requires_op(self):
        with pytest.raises(ValueError):
            Aggregate(kind="semiring", name="sum", op=None)

    def test_product_aggregate_rejects_op(self):
        with pytest.raises(ValueError):
            Aggregate(kind="product", name="product", op=lambda a, b: a * b)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Aggregate(kind="weird", name="weird")

    def test_factory_functions(self):
        agg = semiring_aggregate("sum", lambda a, b: a + b, 0)
        assert agg.is_semiring and not agg.is_product
        prod = product_aggregate()
        assert prod.is_product and not prod.is_semiring


class TestTags:
    def test_semiring_tag_is_name(self):
        assert SemiringAggregate.sum().tag == "sum"
        assert SemiringAggregate.max().tag == "max"
        assert SemiringAggregate.min().tag == "min"
        assert SemiringAggregate.logical_or().tag == "or"

    def test_product_tag(self):
        assert ProductAggregate.product().tag == PRODUCT_TAG

    def test_same_tag(self):
        assert SemiringAggregate.sum().same_tag(SemiringAggregate.sum())
        assert not SemiringAggregate.sum().same_tag(SemiringAggregate.max())
        assert ProductAggregate.product().same_tag(ProductAggregate.product())

    def test_free_tag_constant_distinct(self):
        assert FREE_TAG not in (PRODUCT_TAG, "sum", "max")


class TestCombine:
    def test_sum_combine(self):
        agg = SemiringAggregate.sum()
        assert agg.combine(2, 5) == 7

    def test_max_combine(self):
        agg = SemiringAggregate.max()
        assert agg.combine(2, 5) == 5
        assert agg.combine(5, 2) == 5

    def test_or_combine(self):
        agg = SemiringAggregate.logical_or()
        assert agg.combine(False, True) is True
        assert agg.combine(False, False) is False

    def test_reduce_folds_from_start(self):
        agg = SemiringAggregate.sum()
        assert agg.reduce([1, 2, 3], 0) == 6
        assert agg.reduce([], 10) == 10

    def test_product_combine_raises(self):
        with pytest.raises(ValueError):
            ProductAggregate.product().combine(1, 2)

    def test_repr_mentions_tag(self):
        assert "sum" in repr(SemiringAggregate.sum())

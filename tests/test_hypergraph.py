"""Unit tests for :class:`repro.hypergraph.hypergraph.Hypergraph`."""

import networkx as nx
import pytest

from repro.hypergraph.hypergraph import Hypergraph


@pytest.fixture
def triangle():
    return Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("A", "C")])


@pytest.fixture
def path():
    return Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("C", "D")])


class TestBasics:
    def test_vertices_and_edges(self, triangle):
        assert triangle.vertices == frozenset({"A", "B", "C"})
        assert triangle.num_edges == 3
        assert frozenset({"A", "B"}) in triangle.edges

    def test_isolated_vertices_are_kept(self):
        h = Hypergraph(vertices=["A", "B", "Z"], edges=[("A", "B")])
        assert "Z" in h
        assert h.num_vertices == 3

    def test_multi_edges_preserved(self):
        h = Hypergraph.from_scopes([("A", "B"), ("A", "B")])
        assert h.num_edges == 2

    def test_equality_ignores_edge_order(self):
        h1 = Hypergraph.from_scopes([("A", "B"), ("B", "C")])
        h2 = Hypergraph.from_scopes([("B", "C"), ("A", "B")])
        assert h1 == h2

    def test_contains_and_iteration(self, triangle):
        assert "A" in triangle
        assert set(iter(triangle)) == {"A", "B", "C"}

    def test_add_vertex_and_edge_are_pure(self, triangle):
        bigger = triangle.add_vertex("Z").add_edge(("Z", "A"))
        assert "Z" not in triangle
        assert bigger.num_edges == 4


class TestNeighbourhoods:
    def test_incident_edges(self, triangle):
        incident = triangle.incident_edges("A")
        assert len(incident) == 2
        assert all("A" in edge for edge in incident)

    def test_neighborhood_is_union_of_incident_edges(self, path):
        assert path.neighborhood("B") == frozenset({"A", "B", "C"})
        assert path.neighborhood("A") == frozenset({"A", "B"})

    def test_neighborhood_of_isolated_vertex_is_empty(self):
        h = Hypergraph(vertices=["A"], edges=[])
        assert h.neighborhood("A") == frozenset()


class TestDerivedHypergraphs:
    def test_induced_restricts_edges(self, triangle):
        induced = triangle.induced({"A", "B"})
        assert induced.vertices == frozenset({"A", "B"})
        assert all(edge <= frozenset({"A", "B"}) for edge in induced.edges)

    def test_remove_vertices(self, path):
        reduced = path.remove_vertices({"B"})
        assert reduced.vertices == frozenset({"A", "C", "D"})
        assert frozenset({"C", "D"}) in reduced.edges
        assert frozenset({"A"}) in reduced.edges  # shrunken edge survives

    def test_restrict_edges(self, triangle):
        only_ab = triangle.restrict_edges(lambda e: "A" in e)
        assert only_ab.num_edges == 2

    def test_deduplicated_drops_contained_edges(self):
        h = Hypergraph.from_scopes([("A", "B", "C"), ("A", "B"), ("A", "B", "C")])
        dedup = h.deduplicated()
        assert dedup.num_edges == 1
        assert dedup.edges[0] == frozenset({"A", "B", "C"})


class TestGraphViews:
    def test_gaifman_graph_of_triangle(self, triangle):
        graph = triangle.gaifman_graph()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3

    def test_gaifman_graph_of_big_hyperedge_is_clique(self):
        h = Hypergraph.from_scopes([("A", "B", "C", "D")])
        graph = h.gaifman_graph()
        assert graph.number_of_edges() == 6

    def test_connected_components(self):
        h = Hypergraph(vertices=["E"], edges=[("A", "B"), ("C", "D")])
        components = h.connected_components()
        assert len(components) == 3
        assert frozenset({"E"}) in components

    def test_is_connected(self, path, triangle):
        assert path.is_connected()
        assert triangle.is_connected()
        assert not Hypergraph.from_scopes([("A", "B"), ("C", "D")]).is_connected()

    def test_from_graph(self):
        h = Hypergraph.from_graph(nx.path_graph(4))
        assert h.num_edges == 3
        assert all(len(edge) == 2 for edge in h.edges)

    def test_edge_vertex_incidence_tracks_duplicates(self):
        h = Hypergraph.from_scopes([("A", "B"), ("A", "B"), ("B", "C")])
        incidence = h.edge_vertex_incidence()
        assert incidence[frozenset({"A", "B"})] == [0, 1]

"""Unit tests for α/β-acyclicity and nested elimination orders."""


from repro.hypergraph.acyclicity import (
    gyo_reduction,
    is_alpha_acyclic,
    is_beta_acyclic,
    join_tree,
    nested_elimination_order,
)
from repro.hypergraph.hypergraph import Hypergraph


TRIANGLE = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("A", "C")])
PATH = Hypergraph.from_scopes([("A", "B"), ("B", "C"), ("C", "D")])
STAR = Hypergraph.from_scopes([("Hub", "L1"), ("Hub", "L2"), ("Hub", "L3")])
# α-acyclic but not β-acyclic: the triangle plus a covering hyperedge.
COVERED_TRIANGLE = Hypergraph.from_scopes(
    [("A", "B"), ("B", "C"), ("A", "C"), ("A", "B", "C")]
)


class TestAlphaAcyclicity:
    def test_path_and_star_are_acyclic(self):
        assert is_alpha_acyclic(PATH)
        assert is_alpha_acyclic(STAR)

    def test_triangle_is_cyclic(self):
        assert not is_alpha_acyclic(TRIANGLE)

    def test_covering_edge_makes_triangle_acyclic(self):
        assert is_alpha_acyclic(COVERED_TRIANGLE)

    def test_single_edge_is_acyclic(self):
        assert is_alpha_acyclic(Hypergraph.from_scopes([("A", "B", "C")]))

    def test_empty_hypergraph_is_acyclic(self):
        assert is_alpha_acyclic(Hypergraph())

    def test_gyo_reduction_residual_of_triangle_is_nonempty(self):
        residual, removed = gyo_reduction(TRIANGLE)
        assert residual.num_edges > 0

    def test_gyo_reduction_removes_all_of_path(self):
        residual, removed = gyo_reduction(PATH)
        assert residual.num_vertices == 0
        assert set(removed) == {"A", "B", "C", "D"}


class TestJoinTree:
    def test_join_tree_of_cyclic_query_is_none(self):
        assert join_tree(TRIANGLE) is None

    def test_join_tree_of_path(self):
        tree = join_tree(PATH)
        assert tree is not None
        assert tree.number_of_nodes() == 3
        assert tree.number_of_edges() == 2

    def test_join_tree_running_intersection(self):
        tree = join_tree(STAR)
        # Every pair of bags sharing the hub must be connected through bags
        # containing the hub; with a star this is automatic, just sanity-check
        # the node set.
        assert set(tree.nodes) == set(STAR.edges)

    def test_join_tree_of_covered_triangle_contains_big_edge(self):
        tree = join_tree(COVERED_TRIANGLE)
        assert frozenset({"A", "B", "C"}) in tree.nodes


class TestBetaAcyclicity:
    def test_path_is_beta_acyclic(self):
        assert is_beta_acyclic(PATH)

    def test_star_is_beta_acyclic(self):
        assert is_beta_acyclic(STAR)

    def test_covered_triangle_is_not_beta_acyclic(self):
        # α-acyclic but removing the covering edge leaves a cycle.
        assert is_alpha_acyclic(COVERED_TRIANGLE)
        assert not is_beta_acyclic(COVERED_TRIANGLE)

    def test_triangle_is_not_beta_acyclic(self):
        assert not is_beta_acyclic(TRIANGLE)

    def test_nested_chain_is_beta_acyclic(self):
        nested = Hypergraph.from_scopes([("A",), ("A", "B"), ("A", "B", "C")])
        assert is_beta_acyclic(nested)

    def test_neo_of_cyclic_hypergraph_is_none(self):
        assert nested_elimination_order(TRIANGLE) is None

    def test_neo_property_holds(self):
        """Eliminating along the NEO, every vertex's incident edges form a chain."""
        nested = Hypergraph.from_scopes(
            [("A", "B"), ("A", "B", "C"), ("C", "D"), ("C", "D", "E")]
        )
        order = nested_elimination_order(nested)
        assert order is not None
        edges = [set(e) for e in nested.edges]
        for vertex in reversed(order):
            incident = [frozenset(e) for e in edges if vertex in e]
            ordered = sorted(set(incident), key=len)
            for smaller, larger in zip(ordered, ordered[1:]):
                assert smaller <= larger
            for e in edges:
                e.discard(vertex)
            edges = [e for e in edges if e]

    def test_neo_lists_every_vertex_once(self):
        order = nested_elimination_order(PATH)
        assert sorted(order) == ["A", "B", "C", "D"]

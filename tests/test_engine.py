"""The top-level :class:`repro.Engine` facade."""

import pytest

from repro import Engine, EngineConfig, PlanFailure, ServeRequest, ServeResult
from repro.core.query import QueryError
from repro.planner import PlanCache, plan

from test_planner_differential import _random_query


def _reference(query):
    return plan(query, cache=PlanCache()).execute().factor


def test_engine_query_returns_typed_result():
    query = _random_query("counting", 0)
    with Engine() as engine:
        result = engine.query(query)
    assert isinstance(result, ServeResult)
    assert result.factor.table == _reference(query).table
    assert result.replica is None  # in-process path


def test_engine_config_and_overrides():
    config = EngineConfig(workers=2, plan_cache_size=16)
    engine = Engine(config, plan_cache_size=32)
    assert engine.config.workers == 2
    assert engine.config.plan_cache_size == 32  # override wins
    assert engine.cache.maxsize == 32
    engine.close()
    with pytest.raises(TypeError):
        Engine(no_such_option=1)


def test_engine_batch_coalesces_value_equal_queries():
    clients = [_random_query("counting", 3) for _ in range(4)]
    with Engine() as engine:
        results = engine.batch(clients)
        stats = engine.stats()
    assert stats["submitted"] == 4
    assert len({tuple(sorted(r.factor.table.items())) for r in results}) == 1


def test_engine_accepts_requests_and_options():
    query = _random_query("counting", 1)
    with Engine() as engine:
        via_option = engine.query(query, backend="sparse")
        via_request = engine.query(ServeRequest(query=query, options={"backend": "sparse"}))
        assert via_option.backend == via_request.backend == "sparse"
        with pytest.raises(PlanFailure):
            engine.query(query, strategy="no-such-strategy")
        with pytest.raises(QueryError):
            engine.query(query, frobnicate=1)  # unknown option name


def test_engine_plan_cache_is_shared_across_calls():
    with Engine() as engine:
        engine.query(_random_query("counting", 2))
        first = engine.cache.hits + engine.cache.misses
        assert first > 0
        engine.query(_random_query("counting", 2))  # value-equal repeat
        assert engine.cache.hits > 0


def test_engine_explain_and_plan():
    query = _random_query("counting", 0)
    with Engine() as engine:
        chosen = engine.plan(query)
        assert chosen.strategy
        assert chosen.ordering
        assert "strategy" in engine.explain(query)


def test_engine_close_is_idempotent_and_final():
    engine = Engine()
    engine.query(_random_query("counting", 0))
    engine.close()
    engine.close()
    with pytest.raises(RuntimeError):
        engine.query(_random_query("counting", 0))


@pytest.mark.slow
def test_engine_serve_starts_a_replicated_tier():
    query = _random_query("counting", 4)
    want = _reference(query)
    engine = Engine(replicas=2, health_interval=None)
    with engine.serve() as tier:
        [result] = tier.serve_batch([query])
    assert result.replica in (0, 1)
    assert result.factor.table == want.table
    engine.close()


@pytest.mark.slow
def test_engine_serve_overrides_replace_config():
    engine = Engine(tenant_limit=1)
    with engine.serve(replicas=1, tenant_limit=None) as tier:
        assert tier.tenant_limit is None
        assert len(tier._set) == 1
    engine.close()

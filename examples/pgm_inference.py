"""Probabilistic graphical model inference through the FAQ framework.

Builds a random sparse Markov random field, then computes

* the partition function,
* a single-variable marginal,
* the MAP (max-marginal) values,

three ways each: with InsideOut (fractional-hypertree-width guarantees), with
the dense junction-tree baseline (treewidth guarantees) and by brute force —
and reports how large the intermediate objects of each engine were, which is
exactly the gap Table 1 (Marginal / MAP rows) describes.

Run with:  python examples/pgm_inference.py
"""

from repro.datasets.pgm_models import random_sparse_model
from repro.pgm.brute import brute_force_marginal, brute_force_partition
from repro.pgm.junction_tree import JunctionTree
from repro.solvers.pgm import (
    compare_marginal_inference,
    map_insideout,
    marginal_insideout,
    partition_function_insideout,
)


def main() -> None:
    model = random_sparse_model(
        num_variables=10, num_factors=12, max_arity=3, domain_size=3, density=0.35, seed=23
    )
    target = model.variables[0]
    print(f"Model: {len(model.variables)} variables, {len(model.factors)} sparse factors")

    # Partition function.
    z_insideout = partition_function_insideout(model)
    z_brute = brute_force_partition(model)
    print(f"\nPartition function  InsideOut = {z_insideout:.6f}   brute force = {z_brute:.6f}")

    # Marginal of one variable.
    marginal = marginal_insideout(model, [target])
    reference = brute_force_marginal(model, [target])
    tree = JunctionTree(model, mode="sum")
    jt_marginal = tree.marginal(target)
    print(f"\nUnnormalised marginal of {target}:")
    print(f"  {'value':>6s} {'InsideOut':>12s} {'JunctionTree':>12s} {'BruteForce':>12s}")
    for value in model.domain(target):
        print(
            f"  {value!r:>6} {marginal.get((value,), 0.0):12.6f} "
            f"{jt_marginal.get(value, 0.0):12.6f} {reference.get((value,), 0.0):12.6f}"
        )

    # MAP (max-marginals).
    map_values = map_insideout(model, [target])
    print(f"\nMax-marginals of {target} (InsideOut, max-product semiring):")
    for (value,), weight in sorted(map_values.items()):
        print(f"  {value!r:>6} -> {weight:.6f}")

    # The cost story of Table 1.
    report = compare_marginal_inference(model, [target])
    print("\nCost comparison (Table 1, Marginal row):")
    print(f"  InsideOut largest intermediate factor : {report.insideout_max_intermediate} tuples")
    print(f"  Junction-tree largest bag             : {report.junction_tree_max_bag} variables")
    print(f"  Junction-tree dense potential cells   : {report.junction_tree_dense_cells}")
    print(f"  dense-cells / sparse-intermediate     : {report.speedup_proxy:.1f}x")


if __name__ == "__main__":
    main()

"""Graph pattern counting and worst-case optimal joins (Table 1, Joins row).

Counts triangles and 4-cycles in a random graph through the FAQ reduction of
Example A.8, evaluates the triangle *join* with three engines (InsideOut,
worst-case-optimal generic join, pairwise hash joins) and shows the pairwise
plan's intermediate-result blow-up on cyclic queries.

Run with:  python examples/graph_patterns.py
"""

import networkx as nx

from repro.core.faqw import faq_width_of_query
from repro.core.insideout import inside_out
from repro.datasets.graphs import cycle_pattern, random_graph
from repro.db.generic_join import generic_join
from repro.db.hash_join import left_deep_join_plan
from repro.solvers.joins import (
    count_homomorphisms,
    count_triangles,
    homomorphism_count_query,
    natural_join_query,
    triangle_join_relations,
)


def main() -> None:
    graph = random_graph(num_vertices=60, num_edges=220, seed=3)
    print(f"Data graph: {graph.number_of_nodes()} vertices, {graph.number_of_edges()} edges")

    # --- pattern counting ------------------------------------------------ #
    triangles = count_triangles(graph)
    print(f"\nTriangles (InsideOut)        : {triangles}")
    print(f"Triangles (networkx check)   : {sum(nx.triangles(graph).values()) // 3}")

    four_cycle_homs = count_homomorphisms(cycle_pattern(4), graph)
    print(f"4-cycle homomorphisms        : {four_cycle_homs}")

    triangle_query = homomorphism_count_query(nx.complete_graph(3), graph)
    print(f"FAQ-width of the triangle query: {faq_width_of_query(triangle_query)}  (= fhtw = 3/2)")

    # --- the triangle join, three ways ----------------------------------- #
    relations = triangle_join_relations(graph)
    join_query = natural_join_query(relations)
    insideout_run = inside_out(join_query, ordering=None)
    wcoj = generic_join(relations)
    pairwise, intermediate_sizes = left_deep_join_plan(relations)

    print("\nTriangle join R(A,B) ⋈ S(B,C) ⋈ T(A,C):")
    print(f"  input size per relation          : {len(relations[0])}")
    print(f"  output size                      : {len(wcoj)}")
    print(f"  InsideOut backtracking steps     : {insideout_run.stats.join_stats.search_steps}")
    print(f"  pairwise plan largest intermediate: {max(intermediate_sizes)}")
    print(
        "  -> the pairwise plan materialises "
        f"{max(intermediate_sizes) / max(len(wcoj), 1):.1f}x the output size, "
        "the worst-case optimal engines never exceed the AGM bound"
    )
    assert len(pairwise.project(wcoj.schema)) == len(wcoj)
    assert insideout_run.stats.output_size == len(wcoj)


if __name__ == "__main__":
    main()

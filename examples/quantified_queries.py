"""Quantified conjunctive queries: QCQ and #QCQ (Table 1, rows 1-2).

Models a tiny course-enrolment database and answers the query

    "which students are enrolled in some course for which they have
     completed *every* prerequisite?"

— an ∃/∀ quantified conjunctive query — plus its counting version, through
the FAQ reduction of Examples 1.3 / A.20.  Also prints the Chen–Dalmau
prefix width next to the FAQ-width to illustrate why the paper's notion is
never worse.

Run with:  python examples/quantified_queries.py
"""

from repro.core.faqw import faq_width_of_query
from repro.db.relation import Relation
from repro.solvers.logic import EXISTS, FORALL, Atom, QuantifiedConjunctiveQuery


def main() -> None:
    # Relations: Enrolled(student, course), Prereq(course, required_course),
    # Completed(student, required_course).
    enrolled = Relation(
        "Enrolled",
        ("student", "course"),
        [
            ("ann", "databases"),
            ("ann", "compilers"),
            ("bob", "databases"),
            ("cat", "logic"),
            ("dan", "compilers"),
        ],
    )
    prereq = Relation(
        "Prereq",
        ("course", "required"),
        [
            ("databases", "intro"),
            ("databases", "discrete"),
            ("compilers", "intro"),
            ("compilers", "automata"),
            ("logic", "discrete"),
        ],
    )
    completed = Relation(
        "Completed",
        ("student", "required"),
        [
            ("ann", "intro"),
            ("ann", "discrete"),
            ("ann", "automata"),
            ("bob", "intro"),
            ("cat", "discrete"),
            ("dan", "intro"),
        ],
    )

    # phi(student) = ∃ course ∀ required :
    #   Enrolled(student, course) ∧ (Prereq(course, required) → Completed(student, required))
    # The implication is materialised as a single "requirement met" relation
    # so that the quantified body is a plain conjunction of atoms.
    students = sorted({row[0] for row in enrolled.tuples})
    courses = sorted({row[0] for row in prereq.tuples})
    requireds = sorted({row[1] for row in prereq.tuples})
    requirement_met = Relation(
        "RequirementMet",
        ("student", "course", "required"),
        [
            (student, course, required)
            for student in students
            for course in courses
            for required in requireds
            if (course, required) not in prereq.tuples
            or (student, required) in completed.tuples
        ],
    )

    query = QuantifiedConjunctiveQuery(
        free=("student",),
        quantifiers=(("course", EXISTS), ("required", FORALL)),
        atoms=(
            Atom(enrolled, ("student", "course")),
            Atom(requirement_met, ("student", "course", "required")),
        ),
        domains={"required": tuple(requireds)},
    )

    answers = query.solve()
    reference = query.solve_brute_force()
    print("Students enrolled in a course with all prerequisites completed:")
    for (student,) in sorted(answers.tuples):
        print(f"  - {student}")
    assert answers.tuples == reference.tuples

    print(f"\n#QCQ (how many such students)      : {query.count()}")
    print(f"Brute-force check                   : {query.count_brute_force()}")
    print(f"Chen–Dalmau prefix width            : {query.prefix_width()}")
    print(f"FAQ-width of the decision query     : {faq_width_of_query(query.decision_query())}")


if __name__ == "__main__":
    main()

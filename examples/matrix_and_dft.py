"""Matrix chain multiplication and the DFT as FAQ queries (Table 1, rows 7-8).

* The matrix-chain product is the FAQ-SS query of Example 1.1; variable
  orderings correspond to parenthesisations and the textbook dynamic program
  is exactly an ordering-selection algorithm.
* The DFT of a length-``p^m`` vector is the FAQ-SS query of the Aji–McEliece
  factorisation; InsideOut along the natural digit ordering performs the FFT.

Run with:  python examples/matrix_and_dft.py
"""

import time

import numpy as np

from repro.solvers.matrix import (
    dft_insideout,
    dft_naive,
    matrix_chain_insideout,
    matrix_chain_query,
    mcm_dp_cost,
    mcm_dp_ordering,
    mcm_naive_cost,
)
from repro.core.insideout import inside_out


def matrix_chain_demo() -> None:
    dims = [30, 2, 35, 3, 25]
    rng = np.random.default_rng(7)
    matrices = [rng.random((dims[i], dims[i + 1])) for i in range(len(dims) - 1)]

    optimal_cost, _ = mcm_dp_cost(dims)
    ordering = mcm_dp_ordering(dims)
    print("Matrix chain multiplication")
    print(f"  dimension vector          : {dims}")
    print(f"  left-to-right cost        : {mcm_naive_cost(dims)} scalar multiplications")
    print(f"  DP-optimal cost           : {optimal_cost} scalar multiplications")
    print(f"  DP-derived FAQ ordering   : {ordering}")

    query = matrix_chain_query(matrices)
    good = inside_out(query, ordering=ordering)
    naive_order = ["x1", f"x{len(dims)}"] + [f"x{i}" for i in range(2, len(dims))]
    naive = inside_out(query, ordering=naive_order)
    print(f"  largest intermediate (DP ordering)    : {good.stats.max_intermediate_size}")
    print(f"  largest intermediate (naive ordering)  : {naive.stats.max_intermediate_size}")

    expected = matrices[0]
    for matrix in matrices[1:]:
        expected = expected @ matrix
    assert np.allclose(matrix_chain_insideout(matrices), expected)
    print("  result matches numpy               : yes")


def dft_demo() -> None:
    size = 1024
    rng = np.random.default_rng(8)
    vector = rng.random(size)

    start = time.perf_counter()
    fast = dft_insideout(vector, base=2)
    fast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    slow = dft_naive(vector)
    slow_seconds = time.perf_counter() - start

    print("\nDiscrete Fourier transform (positive-exponent convention)")
    print(f"  vector length                  : {size}")
    print(f"  FAQ / InsideOut (FFT) time     : {fast_seconds:.4f}s")
    print(f"  naive O(N^2) summation time    : {slow_seconds:.4f}s")
    print(f"  speed-up                       : {slow_seconds / max(fast_seconds, 1e-9):.1f}x")
    assert np.allclose(fast, slow)
    assert np.allclose(fast, np.fft.ifft(vector) * size)
    print("  matches numpy.fft.ifft * N     : yes")


if __name__ == "__main__":
    matrix_chain_demo()
    dft_demo()

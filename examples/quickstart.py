"""Quickstart: define an FAQ query and evaluate it with InsideOut.

The running example is a tiny "marginal MAP"-flavoured query

    phi(location) = Σ_weather  max_activity  psi(location, weather) ⊗ psi(weather, activity)

over the counting semiring: for every location, sum over the weather values
of the best activity score.  It exercises the three core objects of the
library — factors, queries and the InsideOut result — plus the FAQ-width
machinery that picks a good variable ordering automatically.

Run with:  python examples/quickstart.py
"""

from repro import FAQQuery, Factor, SemiringAggregate, Variable, inside_out
from repro.core.evo import is_equivalent_ordering
from repro.core.faqw import approximate_faqw_ordering, faq_width_of_query
from repro.semiring import COUNTING


def main() -> None:
    locations = ("beach", "city", "forest")
    weathers = ("sun", "rain")
    activities = ("swim", "museum", "hike")

    # Factors in the listing representation: only non-zero entries are stored.
    appeal = Factor(
        ("location", "weather"),
        {
            ("beach", "sun"): 5,
            ("beach", "rain"): 1,
            ("city", "sun"): 2,
            ("city", "rain"): 3,
            ("forest", "sun"): 3,
        },
        name="appeal",
    )
    suitability = Factor(
        ("weather", "activity"),
        {
            ("sun", "swim"): 4,
            ("sun", "hike"): 3,
            ("rain", "museum"): 5,
            ("rain", "hike"): 1,
        },
        name="suitability",
    )

    query = FAQQuery(
        variables=[
            Variable("location", locations),
            Variable("weather", weathers),
            Variable("activity", activities),
        ],
        free=["location"],
        aggregates={
            "weather": SemiringAggregate.sum(),
            "activity": SemiringAggregate.max(),
        },
        factors=[appeal, suitability],
        semiring=COUNTING,
        name="trip-planner",
    )

    print("Query:", query)
    print("FAQ-width of the query:", faq_width_of_query(query))
    ordering = approximate_faqw_ordering(query)
    print("Equivalent ordering chosen by the Section 7 approximation:", ordering)
    print("Is it semantically equivalent?", is_equivalent_ordering(query, ordering))

    result = inside_out(query, ordering="auto")
    print("\nOutput factor phi(location):")
    for (location,), value in sorted(result.factor.table.items()):
        print(f"  {location:8s} -> {value}")

    # Cross-check against the exponential reference evaluator.
    reference = query.evaluate_brute_force()
    assert reference.equals(result.factor, COUNTING)
    print("\nBrute-force cross-check passed.")
    print(
        "InsideOut statistics: "
        f"{len(result.stats.steps)} eliminations, "
        f"largest intermediate = {result.stats.max_intermediate_size} tuples"
    )


if __name__ == "__main__":
    main()

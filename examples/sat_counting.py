"""SAT and #SAT over compact clause representations (Section 8 of the paper).

Generates a β-acyclic CNF family, decides satisfiability with the
Davis–Putnam flavour of InsideOut (resolution on box factors along a nested
elimination order — Theorem 8.3) and counts models exactly (Theorem 8.4),
comparing against brute-force enumeration and showing that along the nested
elimination order the clause set never grows.

Run with:  python examples/sat_counting.py
"""

from repro.datasets.cnf import beta_acyclic_cnf, random_k_cnf
from repro.hypergraph.acyclicity import nested_elimination_order
from repro.solvers.csp import count_proper_colorings
from repro.solvers.sat import count_models, davis_putnam_sat

import networkx as nx


def beta_acyclic_demo() -> None:
    formula = beta_acyclic_cnf(num_blocks=5, block_width=3, seed=13)
    print("β-acyclic CNF family (Section 8.3)")
    print(f"  variables                   : {len(formula.variables)}")
    print(f"  clauses                     : {len(formula.clauses)}")
    print(f"  β-acyclic?                  : {formula.is_beta_acyclic()}")

    neo = nested_elimination_order(formula.hypergraph())
    print(f"  nested elimination order    : {neo}")

    satisfiable, stats = davis_putnam_sat(formula)
    print(f"  satisfiable (Davis–Putnam)  : {satisfiable}")
    print(f"  max clauses during elim.    : {stats.max_clauses} (never above the input size)")

    models = count_models(formula)
    print(f"  exact model count (#SAT)    : {models}")
    print(f"  brute-force check           : {formula.count_models_brute_force()}")


def random_cnf_demo() -> None:
    formula = random_k_cnf(num_variables=12, num_clauses=40, clause_width=3, seed=14)
    satisfiable, stats = davis_putnam_sat(formula)
    print("\nRandom 3-CNF (no acyclicity guarantees)")
    print(f"  variables / clauses         : {len(formula.variables)} / {len(formula.clauses)}")
    print(f"  satisfiable                 : {satisfiable}")
    print(f"  max clauses during elim.    : {stats.max_clauses} (resolution can blow up here)")
    print(f"  exact model count           : {count_models(formula)}")


def coloring_demo() -> None:
    graph = nx.petersen_graph()
    print("\nGraph colouring as #CSP (Example A.2)")
    print(f"  proper 3-colourings of the Petersen graph : {count_proper_colorings(graph, 3)}")
    print("  (the known value is 120)")


if __name__ == "__main__":
    beta_acyclic_demo()
    random_cnf_demo()
    coloring_demo()

"""Setuptools shim so that ``pip install -e .`` works without the ``wheel``
package (the environment is offline; legacy ``setup.py develop`` editable
installs do not need to build a PEP 660 wheel)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "faq-engine: a reproduction of 'FAQ: Questions Asked Frequently' "
        "(PODS 2016) - InsideOut, FAQ-width, and applications"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)

#!/usr/bin/env python
"""Trend the checked-in benchmark JSON across PRs (CI regression gate).

Compares a fresh ``--json`` run of the benchmark harness against the
checked-in baseline (``BENCH_planner.json``) and **fails** (exit code 1)
when a ratio metric regresses by more than ``--max-regression`` (default
30%).

Only *ratio* metrics are gated — speedups, hit rates, throughput
multipliers.  They are measured within one run on one machine, so they are
comparable across hosts (the checked-in numbers come from the author's
machine, CI runs on whatever runner it gets); raw second timings are
printed for context but never gate.  Metrics marked CPU-sensitive (thread
speedups, batch throughput) additionally require the fresh host to have at
least as many cores as the baseline host before a regression can fail the
run — fewer cores legitimately produce smaller multipliers.

Usage::

    python -m pytest benchmarks/bench_planner.py benchmarks/bench_serve.py \
        -q -m shape --json fresh.json
    python benchmarks/compare_bench.py fresh.json \
        [--baseline BENCH_planner.json] [--max-regression 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# metric field -> cpu_sensitive.  Higher is better for these.
RATIO_FIELDS = {
    "end_to_end_speedup": False,
    "cache_hit_rate": False,
    "speedup_w4": True,
    "throughput_x": True,
    "throughput_nocoalesce_x": True,
    # serve:* — fleet wall-clock over a single replica on identical
    # open-loop traffic; process parallelism, so cpu-sensitive.  The
    # coalescing dedup ratio is deliberately NOT gated: it *shrinks* as
    # hosts gain cores (the no-coalesce denominator parallelises), so
    # trending it across machines would gate on hardware, not code.
    "replica_speedup_x": True,
    # planner:batch-shared-subplans — cross-query step dedup.  The dedup
    # ratio is an executor counter and the speedup an algorithmic win on a
    # single-threaded server, so neither needs cores to reproduce.
    "shared_step_dedup_x": False,
    "shared_batch_speedup_x": False,
    # incr:delta-vs-full — single-cell delta maintenance vs a full
    # recompute.  Replay-vs-execute is an algorithmic win (no cores
    # required), so the ratio is gated on every host.
    "incremental_speedup_x": False,
    # exec:sparse-parallel — the vectorized flat kernel over the
    # pure-Python trie kernel is a single-thread vectorization win (gated
    # everywhere); the process-pool speedup at workers=4 needs cores.
    "flat_vs_trie_x": False,
    "sparse_speedup_w4": True,
    # serve:warm-restart — time-to-first-incremental-answer of a server
    # restarted over its snapshot spill vs a cold restart.  Replaying the
    # restored view vs a full baseline run is an algorithmic win (no cores
    # required), so the ratio is gated on every host.
    "warm_restart_speedup_x": False,
}

# metric field -> cpu_sensitive.  LOWER is better for these (overhead
# ratios): a fresh value above baseline * (1 + tolerance) regresses.  They
# are same-machine ratios, so they stay comparable across hosts.
OVERHEAD_FIELDS = {
    "dag_overhead_w1": False,
}

# informational raw timings (seconds; printed, never gating)
TIMING_FIELDS = (
    "planning_cold_s",
    "planning_warm_s",
    "plan_execute_s",
    "written_order_insideout_s",
    "seconds",
    "workers1_s",
    "workers4_s",
    "trie_w1_s",
    "flat_w1_s",
    "flat_process_w4_s",
    "serial_loop_s",
    "batch_s",
    "merged_s",
    "independent_s",
    "single_wall_s",
    "fleet_nocoalesce_wall_s",
    "fleet_wall_s",
    "cold_restart_s",
    "warm_restart_s",
    "p50_s",
    "p95_s",
    "p99_s",
)


def _load(path: Path):
    """Returns ``(quick_flag, rows_by_name)`` for a benchmark JSON file."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"compare_bench: cannot read {path}: {exc}")
    rows = {
        row["name"]: row
        for row in payload.get("results", [])
        if isinstance(row, dict) and "name" in row
    }
    return bool(payload.get("quick")), rows


def compare(fresh: dict, baseline: dict, max_regression: float):
    """Yield (severity, message) comparison lines; severity in {ok, info, fail}."""
    shared = sorted(set(fresh) & set(baseline))
    if not shared:
        yield "info", "no shared benchmark rows between fresh run and baseline"
        return
    # A gated baseline row with no fresh counterpart means a benchmark was
    # renamed or dropped without regenerating the baseline — its regression
    # gate would otherwise just silently disappear.
    gated_fields = set(RATIO_FIELDS) | set(OVERHEAD_FIELDS)
    for name in sorted(set(baseline) - set(fresh)):
        if gated_fields & set(baseline[name]):
            yield "fail", (
                f"{name}: gated baseline row missing from the fresh run — "
                "rename/removal requires regenerating the checked-in baseline"
            )
        else:
            yield "info", f"{name}: baseline-only row (not gated)"
    for name in shared:
        fresh_row, base_row = fresh[name], baseline[name]
        fresh_cpus = fresh_row.get("cpu_count")
        base_cpus = base_row.get("cpu_count")
        gated = [(field, cpu, False) for field, cpu in RATIO_FIELDS.items()]
        gated += [(field, cpu, True) for field, cpu in OVERHEAD_FIELDS.items()]
        for field, cpu_sensitive, lower_is_better in gated:
            if field not in fresh_row or field not in base_row:
                continue
            fresh_value, base_value = fresh_row[field], base_row[field]
            if not isinstance(fresh_value, (int, float)) or not isinstance(
                base_value, (int, float)
            ):
                continue
            if lower_is_better:
                bound = base_value * (1.0 + max_regression)
                within = fresh_value <= bound
                bound_label = "ceiling"
            else:
                bound = base_value * (1.0 - max_regression)
                within = fresh_value >= bound
                bound_label = "floor"
            line = (
                f"{name} {field}: baseline={base_value:.3f} fresh={fresh_value:.3f} "
                f"({bound_label} {bound:.3f})"
            )
            if within:
                yield "ok", line
            elif (
                cpu_sensitive
                and fresh_cpus is not None
                and base_cpus is not None
                and fresh_cpus < base_cpus
            ):
                yield "info", line + f" [not gated: {fresh_cpus} < {base_cpus} cores]"
            else:
                yield "fail", line
        for field in TIMING_FIELDS:
            if field in fresh_row and field in base_row:
                yield "info", (
                    f"{name} {field}: baseline={base_row[field] * 1e3:.2f}ms "
                    f"fresh={fresh_row[field] * 1e3:.2f}ms [timing, not gated]"
                )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="--json output of a fresh benchmark run")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_planner.json",
        help="checked-in baseline (default: BENCH_planner.json at the repo root)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="maximum tolerated relative drop of a ratio metric (default 0.30)",
    )
    args = parser.parse_args(argv)

    fresh_quick, fresh = _load(args.fresh)
    baseline_quick, baseline = _load(args.baseline)
    if fresh_quick or baseline_quick:
        print("compare_bench: quick-mode results are not comparable; skipping")
        return 0

    failures = 0
    for severity, message in compare(fresh, baseline, args.max_regression):
        marker = {"ok": " ok ", "info": "info", "fail": "FAIL"}[severity]
        print(f"[{marker}] {message}")
        if severity == "fail":
            failures += 1
    if failures:
        print(
            f"compare_bench: {failures} ratio metric(s) regressed more than "
            f"{args.max_regression:.0%} vs {args.baseline}"
        )
        return 1
    print("compare_bench: no gated regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 1: the FAQ-width pipeline (expression tree → poset → ordering).

Figure 1 summarises the technical contribution: from the input expression,
build the expression tree and precedence poset (poly-time), then either
search the linear extensions for the optimal faqw or run the Section 7
approximation.  The benchmark times the three stages on the paper's worked
examples and on random multi-aggregate queries, and asserts that the
approximation never does worse than ``opt + g(opt)`` on the small instances
where the optimum can be computed exactly.
"""

from __future__ import annotations

import pytest

from _sizes import pick

from repro.core.expression_tree import build_expression_tree
from repro.core.faqw import (
    approximate_faqw_ordering,
    faq_width_of_ordering,
    faq_width_of_query,
)
from repro.datasets.queries import (
    example_5_6_query,
    example_6_19_query,
    example_6_2_query,
    random_faq_query,
)

EXAMPLES = {
    "example-5.6": example_5_6_query(),
    "example-6.2": example_6_2_query(),
    "example-6.19": example_6_19_query(),
}
RANDOM_QUERIES = [
    random_faq_query(seed=s, max_variables=pick(7, 5), zero_one=True)
    for s in range(pick(20, 5))
]


@pytest.mark.benchmark(group="fig1-expression-tree")
def test_build_expression_trees(benchmark):
    benchmark(lambda: [build_expression_tree(q) for q in EXAMPLES.values()])


@pytest.mark.benchmark(group="fig1-approximation")
def test_approximate_orderings(benchmark):
    benchmark(lambda: [approximate_faqw_ordering(q) for q in EXAMPLES.values()])


@pytest.mark.benchmark(group="fig1-exact-faqw")
def test_exact_faqw_by_linear_extension_search(benchmark):
    benchmark(lambda: [faq_width_of_query(q, extension_limit=2000) for q in EXAMPLES.values()])


@pytest.mark.benchmark(group="fig1-random-queries")
def test_pipeline_on_random_queries(benchmark):
    def pipeline():
        widths = []
        for query in RANDOM_QUERIES:
            ordering = approximate_faqw_ordering(query)
            widths.append(faq_width_of_ordering(query, ordering))
        return widths

    widths = benchmark(pipeline)
    assert len(widths) == len(RANDOM_QUERIES)


@pytest.mark.shape
def test_shape_approximation_guarantee():
    rows = []
    for name, query in EXAMPLES.items():
        optimum = faq_width_of_query(query)
        approx = faq_width_of_ordering(query, approximate_faqw_ordering(query))
        rows.append((name, optimum, approx))
        assert approx <= 2 * optimum + 1e-9  # Theorem 7.2 with an exact inner solver
    print("\n[Fig1] query, faqw(optimal), faqw(approx ordering):")
    for name, optimum, approx in rows:
        print(f"  {name:14s} {optimum:.2f} {approx:.2f}")

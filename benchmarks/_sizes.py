"""Problem-size selection for the benchmark harness.

Every benchmark module sizes its inputs through :func:`pick` so that the CI
smoke job can run the whole harness at minimal sizes.  Quick mode is enabled
either by the ``--quick`` pytest option (see ``benchmarks/conftest.py``) or
by setting the environment variable ``FAQ_BENCH_QUICK=1`` — the option is
translated into the environment variable before collection so module-level
constants see it at import time.
"""

from __future__ import annotations

import os

QUICK_ENV = "FAQ_BENCH_QUICK"


def quick_mode() -> bool:
    """Whether the harness runs in quick (smoke) mode."""
    return os.environ.get(QUICK_ENV, "") not in ("", "0")


def pick(default, quick):
    """``quick`` in smoke mode, ``default`` otherwise."""
    return quick if quick_mode() else default

"""Problem-size selection and shared JSON results for the benchmark harness.

Every benchmark module sizes its inputs through :func:`pick` so that the CI
smoke job can run the whole harness at minimal sizes.  Quick mode is enabled
either by the ``--quick`` pytest option (see ``benchmarks/conftest.py``) or
by setting the environment variable ``FAQ_BENCH_QUICK=1`` — the option is
translated into the environment variable before collection so module-level
constants see it at import time.

The module also hosts the shared machine-readable results channel: any
benchmark can call :func:`record_result` with a name and arbitrary numeric
fields, and ``conftest.py`` additionally records every test's call-phase
duration.  When pytest runs with ``--json PATH`` the collected records are
written to ``PATH`` at session end as::

    {"quick": bool, "results": [{"name": ..., ...}, ...]}

so successive PRs can diff one stable format across every ``bench_*``
module (see ``BENCH_planner.json`` for a checked-in example).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List

QUICK_ENV = "FAQ_BENCH_QUICK"

# The checked-in perf trajectory at the repository root.
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_planner.json"

# Shared mutable state for the --json channel (owned by conftest.py).
RESULTS: List[Dict[str, Any]] = []


def quick_mode() -> bool:
    """Whether the harness runs in quick (smoke) mode."""
    return os.environ.get(QUICK_ENV, "") not in ("", "0")


def pick(default, quick):
    """``quick`` in smoke mode, ``default`` otherwise."""
    return quick if quick_mode() else default


def record_result(name: str, **fields) -> Dict[str, Any]:
    """Append one named record to the shared JSON results.

    Benchmarks call this with whatever numeric payload they want tracked
    across PRs (timings, intermediate sizes, cache hit rates); the record
    is emitted verbatim under ``results`` when ``--json`` is active.
    """
    record: Dict[str, Any] = {"name": name}
    record.update(fields)
    RESULTS.append(record)
    return record


def publish(records: Iterable[Dict[str, Any]]) -> None:
    """Merge records (by name) into the checked-in trajectory file.

    Quick-mode numbers are meaningless for trending, so smoke runs never
    touch the file.  Records from different ``bench_*`` modules coexist:
    the merge is by row name, rows a run does not produce stay untouched.
    """
    if quick_mode():
        return
    existing: Dict[str, Dict[str, Any]] = {}
    if BENCH_JSON.exists():
        try:
            for row in json.loads(BENCH_JSON.read_text()).get("results", []):
                existing[row.get("name")] = row
        except (ValueError, AttributeError):
            existing = {}
    for record in records:
        existing[record["name"]] = record
    payload = {
        "quick": False,
        "results": [existing[name] for name in sorted(existing)],
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

"""Table 1, #CQ row: counting the answers of a conjunctive query.

The prior bound (Durand–Mengel) depends on the quantified star size of the
query; InsideOut depends only on faqw.  The benchmark counts the answers of
a star-shaped CQ with existential leaves — the case where the star size is
large but faqw stays 1 — against full materialisation + distinct counting
and against brute-force enumeration.
"""

from __future__ import annotations

import pytest

from _sizes import pick

from repro.core.insideout import inside_out
from repro.datasets.relations import star_query_relations
from repro.db.generic_join import generic_join
from repro.solvers.logic import EXISTS, Atom, QuantifiedConjunctiveQuery

RELATIONS = star_query_relations(arms=4, domain_size=pick(25, 6), num_tuples=pick(180, 24), seed=31)

QUERY = QuantifiedConjunctiveQuery(
    free=("Hub",),
    quantifiers=tuple((f"A{i}", EXISTS) for i in range(1, 5)),
    atoms=tuple(Atom(rel, ("Hub", f"A{i}")) for i, rel in enumerate(RELATIONS, start=1)),
)


@pytest.mark.benchmark(group="table1-sharp-cq")
def test_sharp_cq_insideout(benchmark):
    faq = QUERY.counting_query()
    benchmark(lambda: inside_out(faq, ordering="auto"))


@pytest.mark.benchmark(group="table1-sharp-cq")
def test_sharp_cq_materialise_then_count(benchmark):
    def baseline():
        joined = generic_join(RELATIONS)
        return len(joined.project(["Hub"]))

    benchmark(baseline)


@pytest.mark.benchmark(group="table1-sharp-cq")
def test_sharp_cq_brute_force(benchmark):
    benchmark(QUERY.count_brute_force)


@pytest.mark.shape
def test_shape_counts_agree():
    count = QUERY.count()
    joined = generic_join(RELATIONS)
    materialised = len(joined.project(["Hub"]))
    print(f"\n[#CQ] insideout_count={count} materialised_count={materialised}")
    assert count == materialised

"""Planner benchmark (ROADMAP item): overhead, savings, caching, serving.

Five questions, answered with numbers a future PR can diff:

1. **Planning cost** — how long does ``plan(query)`` take cold (cost-based
   search over candidate orderings, one LP per distinct induced set) vs warm
   (a :class:`~repro.planner.cache.PlanCache` hit on repeated traffic), and
   how expensive is the branch-and-bound exact ordering search on the
   7-variable single-block #SAT query that used to take ~1 minute under the
   seed permutation scan?
2. **Execution savings** — is ``plan(query).execute()`` (planning included,
   warm cache) faster end-to-end than the unplanned written-order InsideOut
   baseline on Table-1 workloads?
3. **Cache behaviour** — what hit rate does repeated query traffic see?
4. **Step-DAG parallelism** — on a multi-block dense workload, what does
   the parallel executor (``workers=4``) buy over its own serial fallback
   (``workers=1``), and what does the DAG machinery itself cost over the
   plain sequential loop?  (Thread speedup requires multiple cores — the
   row records ``cpu_count`` so the number is interpretable.)  On the
   *sparse* side (``exec:sparse-parallel``), what does the vectorized
   flat-table kernel buy over the pure-Python trie kernel on one thread,
   and what does the shared-memory process pool
   (``workers_mode="process"``) add on top at ``workers=4``?
5. **Batched serving throughput** — on repeated Table-1 traffic, what do
   request coalescing + shared base-factor tries + pooled execution
   (:mod:`repro.serve`) buy over a serial ``plan().execute()`` loop?

Results are recorded through the shared ``--json`` channel
(``_sizes.record_result``) and, on a full-size run, also merged into
``BENCH_planner.json`` at the repository root so the perf trajectory is
checked in.  ``benchmarks/compare_bench.py`` diffs a fresh run against the
checked-in file and fails CI on large regressions of the ratio metrics.
"""

from __future__ import annotations

import itertools
import os
import random
import time

import numpy as np
import pytest

from _sizes import pick, publish, quick_mode, record_result

from repro.core.faqw import approximate_faqw_ordering
from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, Variable
from repro.datasets.cnf import random_k_cnf
from repro.datasets.pgm_models import grid_model
from repro.datasets.queries import example_5_6_query
from repro.exec import DagExecutor, lower_insideout
from repro.factors.backend import BackendPolicy
from repro.factors.delta import FactorDelta
from repro.factors.dense import DenseFactor
from repro.factors.factor import Factor
from repro.incremental import IncrementalView
from repro.planner import PlanCache, plan
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import MAX_PRODUCT, SUM_PRODUCT
from repro.serve import PlanServer, ServeRequest
from repro.solvers.sat import sharp_sat_query

REPEAT_TRAFFIC = pick(50, 5)
BATCH_TRAFFIC = pick(60, 9)
DAG_BLOCKS = pick(4, 2)
DAG_CHAIN = pick(5, 3)
DAG_DOMAIN = pick(64, 4)
SPARSE_BLOCKS = pick(4, 2)
SPARSE_CHAIN = pick(4, 3)
SPARSE_DOMAIN = pick(64, 6)
SHARED_QUERIES = pick(8, 3)
SHARED_CHAIN = pick(12, 5)
SHARED_DOMAIN = pick(12, 4)

GRID = grid_model(pick(3, 2), pick(4, 2), domain_size=pick(3, 2), seed=8)
SAT_FORMULA = random_k_cnf(
    num_variables=pick(7, 5), num_clauses=pick(16, 8), clause_width=3, seed=57
)


def _workloads():
    """Name → FAQ query for the end-to-end comparisons (Table-1 rows)."""
    return {
        "table1-marginal-grid": GRID.marginal_query([GRID.variables[0]]),
        "table1-map-grid": GRID.map_query([GRID.variables[0]]),
        "fig1-example-5.6": example_5_6_query(domain_size=pick(12, 3), seed=5),
    }


def _multiblock_query(blocks=DAG_BLOCKS, chain=DAG_CHAIN, domain=DAG_DOMAIN, seed=19):
    """``blocks`` disjoint dense chains — the canonical DAG-parallel workload.

    Each block is a chain of ``chain`` variables with overlapping ternary
    dense factors, so every elimination step is one big ufunc reduction
    (``domain**3`` cells) that releases the GIL; blocks share no variables,
    so their step chains carry no DAG edges between them.
    """
    rng = np.random.default_rng(seed)
    domain_values = tuple(range(domain))
    variables, aggregates, factors = [], {}, []
    for block in range(blocks):
        names = [f"b{block}x{i}" for i in range(chain)]
        domains = {name: domain_values for name in names}
        for name in names:
            variables.append(Variable(name, domain_values))
            aggregates[name] = SemiringAggregate.sum()
        for i in range(chain - 2):
            scope = (names[i], names[i + 1], names[i + 2])
            array = rng.uniform(0.1, 1.0, size=(domain,) * 3)
            factors.append(DenseFactor(scope, domains, array, name=f"b{block}f{i}"))
    return FAQQuery(
        variables, [], aggregates, factors, SUM_PRODUCT, name="dag-multiblock"
    )


def _best_of(fn, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _cold_sat_ordering_seconds() -> float:
    """Time the #SAT ordering search with a cold process-wide ρ* memo."""
    from repro.hypergraph.covers import clear_rho_star_cache

    clear_rho_star_cache()
    start = time.perf_counter()
    approximate_faqw_ordering(sharp_sat_query(SAT_FORMULA))
    return time.perf_counter() - start


def _measure(name, query):
    """One workload's planning/execution/caching numbers (shared by tests)."""
    cache = PlanCache()
    cold_plan = plan(query, cache=cache)
    planning_cold = cold_plan.planning_seconds

    planning_warm = float("inf")
    for _ in range(REPEAT_TRAFFIC):
        warm_plan = plan(query, cache=cache)
        planning_warm = min(planning_warm, warm_plan.planning_seconds)
    hit_rate = cache.hits / max(cache.hits + cache.misses, 1)
    assert warm_plan.cache_hit, "repeated traffic must hit the plan cache"

    e2e_seconds, _ = _best_of(lambda: plan(query, cache=cache).execute())
    baseline_seconds, _ = _best_of(
        lambda: inside_out(query, ordering=None, backend="sparse")
    )
    return record_result(
        f"planner:{name}",
        planning_cold_s=planning_cold,
        planning_warm_s=planning_warm,
        cache_hit_rate=hit_rate,
        plan_execute_s=e2e_seconds,
        written_order_insideout_s=baseline_seconds,
        end_to_end_speedup=baseline_seconds / e2e_seconds if e2e_seconds else float("inf"),
        strategy=cold_plan.strategy,
        backend=cold_plan.backend,
    )


# ---------------------------------------------------------------------- #
# micro benchmarks (pytest-benchmark groups)
# ---------------------------------------------------------------------- #
@pytest.mark.benchmark(group="planner-planning")
def test_plan_cold(benchmark):
    query = GRID.marginal_query([GRID.variables[0]])
    benchmark(lambda: plan(query, cache=PlanCache()))


@pytest.mark.benchmark(group="planner-planning")
def test_plan_warm_cache_hit(benchmark):
    query = GRID.marginal_query([GRID.variables[0]])
    cache = PlanCache()
    plan(query, cache=cache)
    benchmark(lambda: plan(query, cache=cache))


@pytest.mark.benchmark(group="planner-ordering-search")
def test_branch_and_bound_sat_ordering(benchmark):
    """The 7-variable single-block #SAT ordering search (seed: ~1 minute)."""
    query = sharp_sat_query(SAT_FORMULA)
    benchmark(lambda: approximate_faqw_ordering(query))


# ---------------------------------------------------------------------- #
# shape assertions + the machine-readable trajectory
# ---------------------------------------------------------------------- #
@pytest.mark.shape
def test_shape_planning_vs_execution():
    """Warm planning is negligible and repeated traffic hits the cache."""
    records = [_measure(name, query) for name, query in _workloads().items()]
    for record in records:
        print(
            f"\n[planner] {record['name']}: cold={record['planning_cold_s'] * 1e3:.1f}ms "
            f"warm={record['planning_warm_s'] * 1e6:.0f}us "
            f"hit_rate={record['cache_hit_rate']:.2f} "
            f"plan+execute={record['plan_execute_s'] * 1e3:.2f}ms "
            f"baseline={record['written_order_insideout_s'] * 1e3:.2f}ms "
            f"speedup={record['end_to_end_speedup']:.2f}x "
            f"[{record['strategy']}/{record['backend']}]"
        )
        # A cache hit must be orders of magnitude cheaper than the search.
        assert record["planning_warm_s"] < record["planning_cold_s"]
        # All but the first plan() of the repeated traffic hit the cache.
        assert record["cache_hit_rate"] >= REPEAT_TRAFFIC / (REPEAT_TRAFFIC + 1) - 1e-9

    if not quick_mode():
        # The planned end-to-end run beats written-order InsideOut on the
        # Table-1 workloads (the planner picks better orderings/backends).
        speedups = sorted(
            (r["end_to_end_speedup"] for r in records), reverse=True
        )
        assert speedups[1] > 1.0, f"expected ≥2 workloads to speed up, got {speedups}"
        records.append(
            record_result(
                "planner:sat7-ordering-search",
                seconds=_cold_sat_ordering_seconds(),
                seed_seconds=64.0,  # measured pre-branch-and-bound
            )
        )
        publish(records)


@pytest.mark.shape
def test_shape_sat_planning_budget():
    """Planning the single-block #SAT query is far below the seed's ~1 min."""
    query = sharp_sat_query(SAT_FORMULA)
    start = time.perf_counter()
    ordering = approximate_faqw_ordering(query)
    elapsed = time.perf_counter() - start
    print(f"\n[planner] #SAT ordering search: {elapsed * 1e3:.1f}ms (seed ~64000ms)")
    assert sorted(ordering) == sorted(query.order)
    assert elapsed < 10.0


@pytest.mark.shape
def test_shape_dag_parallel_multiblock():
    """The step-DAG executor on disjoint dense blocks (exec:dag-parallel-*).

    Asserts correctness (bit-identical results for every worker count) and
    bounded DAG overhead unconditionally; the ≥2× wall-clock speedup
    assertion only applies where it is physically possible (≥4 cores —
    threads cannot beat one core), with the measured numbers and the host's
    ``cpu_count`` recorded either way.
    """
    query = _multiblock_query()
    dag = lower_insideout(query, list(query.order))
    assert dag.max_parallelism >= DAG_BLOCKS

    loop_s, loop_result = _best_of(lambda: inside_out(query, backend="dense"))
    w1_s, w1_result = _best_of(
        lambda: DagExecutor(workers=1).run(query, backend="dense")
    )
    w4_s, w4_result = _best_of(
        lambda: DagExecutor(workers=4).run(query, backend="dense")
    )
    assert w1_result.factor.table == loop_result.factor.table
    assert w4_result.factor.table == loop_result.factor.table

    cpus = os.cpu_count() or 1
    speedup = w1_s / w4_s if w4_s else float("inf")
    dag_overhead = w1_s / loop_s if loop_s else float("inf")
    record = record_result(
        "exec:dag-parallel-multiblock",
        sequential_loop_s=loop_s,
        workers1_s=w1_s,
        workers4_s=w4_s,
        speedup_w4=speedup,
        dag_overhead_w1=dag_overhead,
        cpu_count=cpus,
        blocks=DAG_BLOCKS,
        max_parallelism=dag.max_parallelism,
    )
    print(
        f"\n[exec] dag-parallel multiblock: loop={loop_s * 1e3:.1f}ms "
        f"w1={w1_s * 1e3:.1f}ms w4={w4_s * 1e3:.1f}ms "
        f"speedup(w4/w1)={speedup:.2f}x dag_overhead={dag_overhead:.2f}x "
        f"(cpus={cpus})"
    )
    if not quick_mode():
        # Wall-clock ratios of *this* workload are hardware- and
        # noise-sensitive (shared CI runners, neighbour load), so the hard
        # thresholds only gate when FAQ_BENCH_STRICT=1 — set it on
        # dedicated hardware when validating a perf change.  The recorded
        # rows always land in BENCH_planner.json, and the CI trend gate is
        # benchmarks/compare_bench.py (ratio drift vs the checked-in
        # baseline, with CPU-sensitive metrics skipped on smaller hosts).
        if os.environ.get("FAQ_BENCH_STRICT", "") not in ("", "0"):
            # The DAG machinery itself must stay cheap relative to the work.
            assert dag_overhead < 1.25, f"DAG overhead too high: {dag_overhead:.2f}x"
            if cpus >= 4:
                assert speedup >= 2.0, (
                    f"expected ≥2x at workers=4 on {cpus} cores, got {speedup:.2f}x"
                )
        publish([record])


def _sparse_multiblock_query(
    blocks=SPARSE_BLOCKS, chain=SPARSE_CHAIN, domain=SPARSE_DOMAIN, seed=331
):
    """Disjoint *sparse* max-product chains — the flat-kernel workload.

    Pair factors at 50% density keep every elimination in the sparse
    regime (dict tables, no dense arrays), where the per-row Python trie
    walk is the bottleneck the vectorized flat kernel replaces; disjoint
    blocks give the step DAG real parallelism for the process pool.
    """
    rng = random.Random(seed)
    values = tuple(range(domain))
    variables, aggregates, factors = [], {}, []
    for block in range(blocks):
        names = [f"b{block}x{i}" for i in range(chain)]
        for name in names:
            variables.append(Variable(name, values))
            aggregates[name] = SemiringAggregate.max()
        for left, right in zip(names, names[1:]):
            table = {
                pair: round(rng.uniform(0.1, 2.0), 6)
                for pair in itertools.product(values, values)
                if rng.random() < 0.5
            }
            factors.append(Factor((left, right), table, name=f"{left}{right}"))
    return FAQQuery(
        variables, [], aggregates, factors, MAX_PRODUCT, name="sparse-multiblock"
    )


@pytest.mark.shape
def test_shape_sparse_parallel_flat_process():
    """Vectorized sparse kernels + the process pool (exec:sparse-parallel).

    Two stacked escapes from the interpreter on the same sparse workload:

    * ``flat_vs_trie_x`` — the flat-table kernel (NumPy code columns,
      fused multiply-then-marginalize) vs the pure-Python trie kernel,
      both on one thread.  An algorithmic/vectorization win: no cores
      required, so it is gated on every host.
    * ``sparse_speedup_w4`` — ``workers_mode="process"`` at ``workers=4``
      vs ``workers=1``, flat kernel on both sides.  Real parallelism via
      shared-memory worker processes; needs ≥4 cores to show up, so the
      metric is CPU-sensitive (recorded everywhere, gated on big hosts).

    Bit-identity of all variants against the serial trie run is asserted
    unconditionally — the kernels and the pool must never change answers.
    """
    query = _sparse_multiblock_query()
    trie_only = BackendPolicy(flat_enabled=False)
    flat_forced = BackendPolicy(flat_min_rows=0)

    trie_s, trie_result = _best_of(
        lambda: inside_out(query, backend="sparse", backend_policy=trie_only)
    )
    flat_s, flat_result = _best_of(
        lambda: inside_out(query, backend="sparse", backend_policy=flat_forced)
    )
    assert flat_result.factor.table == trie_result.factor.table
    assert any(step.backend == "flat" for step in flat_result.stats.steps)

    process_executor = DagExecutor(workers=4, workers_mode="process")
    w4_s, w4_result = _best_of(
        lambda: process_executor.run(
            query, backend="sparse", backend_policy=flat_forced
        )
    )
    assert w4_result.factor.table == trie_result.factor.table
    process_info = process_executor.last_process_info
    assert process_info is not None and process_info["remote_steps"] > 0

    cpus = os.cpu_count() or 1
    flat_vs_trie = trie_s / flat_s if flat_s else float("inf")
    sparse_speedup = flat_s / w4_s if w4_s else float("inf")
    record = record_result(
        "exec:sparse-parallel",
        trie_w1_s=trie_s,
        flat_w1_s=flat_s,
        flat_process_w4_s=w4_s,
        flat_vs_trie_x=flat_vs_trie,
        sparse_speedup_w4=sparse_speedup,
        remote_steps=process_info["remote_steps"],
        shipped_blobs=process_info["shipped_blobs"],
        cpu_count=cpus,
        blocks=SPARSE_BLOCKS,
    )
    print(
        f"\n[exec] sparse-parallel multiblock: trie={trie_s * 1e3:.1f}ms "
        f"flat={flat_s * 1e3:.1f}ms ({flat_vs_trie:.2f}x) "
        f"process-w4={w4_s * 1e3:.1f}ms (speedup {sparse_speedup:.2f}x) "
        f"(cpus={cpus})"
    )
    if not quick_mode():
        if os.environ.get("FAQ_BENCH_STRICT", "") not in ("", "0"):
            # Vectorization wins on any host; process scaling needs cores.
            assert flat_vs_trie >= 2.0, (
                f"expected flat kernel ≥2x over trie, got {flat_vs_trie:.2f}x"
            )
            if cpus >= 4:
                assert sparse_speedup >= 2.0, (
                    f"expected ≥2x at process workers=4 on {cpus} cores, "
                    f"got {sparse_speedup:.2f}x"
                )
        publish([record])


def _shared_subplan_batch(
    queries=SHARED_QUERIES, chain=SHARED_CHAIN, domain=SHARED_DOMAIN, seed=23
):
    """Overlapping chain queries: shared pair factors, per-query unary head.

    The head unary sits on the *first* ordering variable — eliminated last —
    so every query's elimination suffix over the shared chain collides in
    the content-addressed step IR; only the head steps are query-specific.
    The factor objects are shared across the queries, as real multi-query
    traffic over one database would share them.
    """
    rng = np.random.default_rng(seed)
    values = tuple(range(domain))
    names = [f"x{i}" for i in range(1, chain + 1)]
    pair_factors = [
        Factor(
            (names[i], names[i + 1]),
            {
                (int(a), int(b)): float(rng.uniform(0.1, 1.0))
                for a in values
                for b in values
                if rng.random() < 0.6
            },
            name=f"R{i}",
        )
        for i in range(chain - 1)
    ]
    batch = []
    for j in range(queries):
        head = Factor(
            (names[0],),
            {(int(a),): float(rng.uniform(0.1, 1.0)) for a in values},
            name=f"U{j}",
        )
        batch.append(
            FAQQuery(
                variables=[Variable(v, values) for v in names],
                free=[],
                aggregates={v: SemiringAggregate.sum() for v in names},
                factors=list(pair_factors) + [head],
                semiring=SUM_PRODUCT,
                name=f"shared-{j}",
            )
        )
    return batch, names


@pytest.mark.shape
def test_shape_batch_shared_subplans():
    """Cross-query common sub-elimination (planner:batch-shared-subplans).

    Measures what the merged multi-sink step DAG buys on a batch of
    overlapping queries: each distinct step digest executes once, so the
    shared chain suffix is paid for once instead of once per query.  The
    dedup ratio is the executor's own counter (total/executed steps); the
    speedup compares the merged batch against independent execution of the
    same requests on an identically-configured server.
    """
    batch, names = _shared_subplan_batch()
    # Backend pinned to the reference's default so the bit-identity check
    # compares like with like (dense reductions sum in a different order).
    options = {"strategy": "insideout", "ordering": names, "backend": "sparse"}
    requests = [ServeRequest(query=q, options=options) for q in batch]
    cache = PlanCache()

    expected = [inside_out(q, ordering=names) for q in batch]

    def merged_run():
        with PlanServer(pool_size=1, cache=cache) as server:
            results = server.execute_batch(requests)
            return results, server.stats()

    def independent_run():
        with PlanServer(pool_size=1, cache=cache, share_steps=False) as server:
            return server.execute_batch(requests, merge=False)

    merged_s, (merged_results, stats) = _best_of(merged_run)
    independent_s, independent_results = _best_of(independent_run)

    for want, shared, solo in zip(expected, merged_results, independent_results):
        assert shared.factor.table == want.factor.table
        assert solo.factor.table == want.factor.table
    assert stats["merged_queries"] == len(batch)
    assert stats["merged_executed_steps"] == stats["merged_unique_steps"]

    dedup = (
        stats["merged_total_steps"] / stats["merged_executed_steps"]
        if stats["merged_executed_steps"]
        else float("inf")
    )
    speedup = independent_s / merged_s if merged_s else float("inf")
    record = record_result(
        "planner:batch-shared-subplans",
        queries=len(batch),
        chain_variables=len(names),
        merged_s=merged_s,
        independent_s=independent_s,
        total_steps=stats["merged_total_steps"],
        executed_steps=stats["merged_executed_steps"],
        shared_step_dedup_x=dedup,
        shared_batch_speedup_x=speedup,
    )
    print(
        f"\n[serve] shared subplans ({len(batch)} queries, {len(names)}-var chain): "
        f"independent={independent_s * 1e3:.1f}ms merged={merged_s * 1e3:.1f}ms "
        f"speedup={speedup:.2f}x dedup={dedup:.2f}x "
        f"({stats['merged_executed_steps']}/{stats['merged_total_steps']} steps executed)"
    )
    if not quick_mode():
        # Dedup is an algorithmic win (a counter ratio, not wall-clock), and
        # the speedup follows from it on any host — no cores required.
        assert dedup >= 1.5, f"expected ≥1.5x step dedup, got {dedup:.2f}x"
        assert speedup >= 1.5, f"expected ≥1.5x merged speedup, got {speedup:.2f}x"
        publish([record])


@pytest.mark.shape
def test_shape_incremental_delta_vs_full():
    """Single-cell delta maintenance vs full recomputation (incr:delta-vs-full).

    The Table-1 grid marginal under a stream of single-cell factor updates:
    the :class:`IncrementalView` answers each update by delta propagation
    (sum-product is ⊕-invertible) with every untouched elimination step
    replayed from the content-addressed snapshot, while the baseline
    re-runs the whole InsideOut elimination.  The answers are checked
    against brute force; the speedup is the row compare_bench.py gates.
    """
    query = GRID.marginal_query([GRID.variables[0]])
    view = IncrementalView(query)
    view.result()
    cell = sorted(view.query.factors[0].table)[0]
    fresh_values = itertools.count(2)

    def one_update():
        delta = FactorDelta(
            view.query.factors[0].scope, {cell: float(next(fresh_values))}
        )
        return view.update_factor(0, delta)

    incr_s, updated = _best_of(one_update)
    full_s, reference = _best_of(
        lambda: inside_out(view.query, ordering=list(view.ordering), backend="sparse")
    )
    assert reference.factor.normalize_scope(view.query.free).equals(
        updated, query.semiring
    )
    assert view.stats.delta_updates > 0  # the ⊕-invertible regime engaged
    assert view.stats.nodes_reused > 0  # untouched steps replayed

    speedup = full_s / incr_s if incr_s else float("inf")
    record = record_result(
        "incr:delta-vs-full",
        incremental_update_s=incr_s,
        full_recompute_s=full_s,
        incremental_speedup_x=speedup,
        nodes_reused=view.stats.nodes_reused,
        nodes_executed=view.stats.nodes_executed,
        regimes=dict(view.stats.regimes),
    )
    print(
        f"\n[incr] delta-vs-full (Table-1 grid marginal): "
        f"incr={incr_s * 1e3:.2f}ms full={full_s * 1e3:.2f}ms "
        f"speedup={speedup:.2f}x "
        f"(reused={view.stats.nodes_reused}, executed={view.stats.nodes_executed})"
    )
    if not quick_mode():
        # Replay-vs-execute is an algorithmic win (no cores required): a
        # single-cell delta must beat the full recompute by ≥3x.
        assert speedup >= 3.0, f"expected ≥3x incremental speedup, got {speedup:.2f}x"
        publish([record])


@pytest.mark.shape
def test_shape_batched_serving_throughput():
    """Batched serving vs a serial plan().execute() loop (planner:batch-*)."""
    queries = list(_workloads().values())
    traffic = [queries[i % len(queries)] for i in range(BATCH_TRAFFIC)]
    cache = PlanCache()
    for query in queries:  # both sides start with warm plans
        plan(query, cache=cache)

    serial_s, serial_results = _best_of(
        lambda: [plan(q, cache=cache).execute() for q in traffic]
    )
    # pool_size=4 is what PlanServer(workers=4) meant before the serving
    # API redesign (workers= is now per-query step-DAG parallelism).
    requests = [ServeRequest(query=q) for q in traffic]
    with PlanServer(pool_size=4, cache=cache) as server:
        server.execute_batch(requests)  # warm the shared tries
        batch_s, batch_results = _best_of(lambda: server.execute_batch(requests))
        nocoalesce_s, nocoalesce_results = _best_of(
            lambda: server.execute_batch(requests, coalesce=False)
        )
        stats = server.stats()

    semiring_of = {id(q): q.semiring for q in queries}
    for query, serial_result, batched, uncoalesced in zip(
        traffic, serial_results, batch_results, nocoalesce_results
    ):
        semiring = semiring_of[id(query)]
        assert serial_result.factor.equals(batched.factor, semiring)
        assert serial_result.factor.equals(uncoalesced.factor, semiring)

    cpus = os.cpu_count() or 1
    throughput = serial_s / batch_s if batch_s else float("inf")
    throughput_nocoalesce = serial_s / nocoalesce_s if nocoalesce_s else float("inf")
    record = record_result(
        "planner:batch-table1-traffic",
        queries=len(traffic),
        unique_queries=len(queries),
        serial_loop_s=serial_s,
        batch_s=batch_s,
        batch_nocoalesce_s=nocoalesce_s,
        throughput_x=throughput,
        throughput_nocoalesce_x=throughput_nocoalesce,
        shared_trie_hits=stats["shared_trie_hits"],
        cpu_count=cpus,
    )
    print(
        f"\n[serve] batch traffic ({len(traffic)} queries, {len(queries)} unique): "
        f"serial={serial_s * 1e3:.1f}ms batch={batch_s * 1e3:.1f}ms "
        f"({throughput:.1f}x) no-coalesce={nocoalesce_s * 1e3:.1f}ms "
        f"({throughput_nocoalesce:.1f}x) trie_hits={stats['shared_trie_hits']} "
        f"(cpus={cpus})"
    )
    if not quick_mode():
        # Coalescing repeated traffic is an algorithmic win — it does not
        # need cores, so this holds even on a single-CPU host.
        assert throughput >= 3.0, f"expected ≥3x batched throughput, got {throughput:.2f}x"
        publish([record])

"""Planner benchmark (ROADMAP item): overhead, savings and cache hit rates.

Three questions, answered with numbers a future PR can diff:

1. **Planning cost** — how long does ``plan(query)`` take cold (cost-based
   search over candidate orderings, one LP per distinct induced set) vs warm
   (a :class:`~repro.planner.cache.PlanCache` hit on repeated traffic), and
   how expensive is the branch-and-bound exact ordering search on the
   7-variable single-block #SAT query that used to take ~1 minute under the
   seed permutation scan?
2. **Execution savings** — is ``plan(query).execute()`` (planning included,
   warm cache) faster end-to-end than the unplanned written-order InsideOut
   baseline on Table-1 workloads?
3. **Cache behaviour** — what hit rate does repeated query traffic see?

Results are recorded through the shared ``--json`` channel
(``_sizes.record_result``) and, on a full-size run, also written to
``BENCH_planner.json`` at the repository root so the perf trajectory is
checked in.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from _sizes import pick, quick_mode, record_result

from repro.core.faqw import approximate_faqw_ordering
from repro.core.insideout import inside_out
from repro.datasets.cnf import random_k_cnf
from repro.datasets.pgm_models import grid_model
from repro.datasets.queries import example_5_6_query
from repro.planner import PlanCache, plan
from repro.solvers.sat import sharp_sat_query

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_planner.json"

REPEAT_TRAFFIC = pick(50, 5)

GRID = grid_model(pick(3, 2), pick(4, 2), domain_size=pick(3, 2), seed=8)
SAT_FORMULA = random_k_cnf(
    num_variables=pick(7, 5), num_clauses=pick(16, 8), clause_width=3, seed=57
)


def _workloads():
    """Name → FAQ query for the end-to-end comparisons (Table-1 rows)."""
    return {
        "table1-marginal-grid": GRID.marginal_query([GRID.variables[0]]),
        "table1-map-grid": GRID.map_query([GRID.variables[0]]),
        "fig1-example-5.6": example_5_6_query(domain_size=pick(12, 3), seed=5),
    }


def _best_of(fn, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _cold_sat_ordering_seconds() -> float:
    """Time the #SAT ordering search with a cold process-wide ρ* memo."""
    from repro.hypergraph.covers import clear_rho_star_cache

    clear_rho_star_cache()
    start = time.perf_counter()
    approximate_faqw_ordering(sharp_sat_query(SAT_FORMULA))
    return time.perf_counter() - start


def _measure(name, query):
    """One workload's planning/execution/caching numbers (shared by tests)."""
    cache = PlanCache()
    cold_plan = plan(query, cache=cache)
    planning_cold = cold_plan.planning_seconds

    planning_warm = float("inf")
    for _ in range(REPEAT_TRAFFIC):
        warm_plan = plan(query, cache=cache)
        planning_warm = min(planning_warm, warm_plan.planning_seconds)
    hit_rate = cache.hits / max(cache.hits + cache.misses, 1)
    assert warm_plan.cache_hit, "repeated traffic must hit the plan cache"

    e2e_seconds, _ = _best_of(lambda: plan(query, cache=cache).execute())
    baseline_seconds, _ = _best_of(
        lambda: inside_out(query, ordering=None, backend="sparse")
    )
    return record_result(
        f"planner:{name}",
        planning_cold_s=planning_cold,
        planning_warm_s=planning_warm,
        cache_hit_rate=hit_rate,
        plan_execute_s=e2e_seconds,
        written_order_insideout_s=baseline_seconds,
        end_to_end_speedup=baseline_seconds / e2e_seconds if e2e_seconds else float("inf"),
        strategy=cold_plan.strategy,
        backend=cold_plan.backend,
    )


# ---------------------------------------------------------------------- #
# micro benchmarks (pytest-benchmark groups)
# ---------------------------------------------------------------------- #
@pytest.mark.benchmark(group="planner-planning")
def test_plan_cold(benchmark):
    query = GRID.marginal_query([GRID.variables[0]])
    benchmark(lambda: plan(query, cache=PlanCache()))


@pytest.mark.benchmark(group="planner-planning")
def test_plan_warm_cache_hit(benchmark):
    query = GRID.marginal_query([GRID.variables[0]])
    cache = PlanCache()
    plan(query, cache=cache)
    benchmark(lambda: plan(query, cache=cache))


@pytest.mark.benchmark(group="planner-ordering-search")
def test_branch_and_bound_sat_ordering(benchmark):
    """The 7-variable single-block #SAT ordering search (seed: ~1 minute)."""
    query = sharp_sat_query(SAT_FORMULA)
    benchmark(lambda: approximate_faqw_ordering(query))


# ---------------------------------------------------------------------- #
# shape assertions + the machine-readable trajectory
# ---------------------------------------------------------------------- #
@pytest.mark.shape
def test_shape_planning_vs_execution():
    """Warm planning is negligible and repeated traffic hits the cache."""
    records = [_measure(name, query) for name, query in _workloads().items()]
    for record in records:
        print(
            f"\n[planner] {record['name']}: cold={record['planning_cold_s'] * 1e3:.1f}ms "
            f"warm={record['planning_warm_s'] * 1e6:.0f}us "
            f"hit_rate={record['cache_hit_rate']:.2f} "
            f"plan+execute={record['plan_execute_s'] * 1e3:.2f}ms "
            f"baseline={record['written_order_insideout_s'] * 1e3:.2f}ms "
            f"speedup={record['end_to_end_speedup']:.2f}x "
            f"[{record['strategy']}/{record['backend']}]"
        )
        # A cache hit must be orders of magnitude cheaper than the search.
        assert record["planning_warm_s"] < record["planning_cold_s"]
        # All but the first plan() of the repeated traffic hit the cache.
        assert record["cache_hit_rate"] >= REPEAT_TRAFFIC / (REPEAT_TRAFFIC + 1) - 1e-9

    if not quick_mode():
        # The planned end-to-end run beats written-order InsideOut on the
        # Table-1 workloads (the planner picks better orderings/backends).
        speedups = sorted(
            (r["end_to_end_speedup"] for r in records), reverse=True
        )
        assert speedups[1] > 1.0, f"expected ≥2 workloads to speed up, got {speedups}"
        payload = {
            "quick": False,
            "results": records
            + [
                record_result(
                    "planner:sat7-ordering-search",
                    seconds=_cold_sat_ordering_seconds(),
                    seed_seconds=64.0,  # measured pre-branch-and-bound
                )
            ],
        }
        BENCH_JSON.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


@pytest.mark.shape
def test_shape_sat_planning_budget():
    """Planning the single-block #SAT query is far below the seed's ~1 min."""
    query = sharp_sat_query(SAT_FORMULA)
    start = time.perf_counter()
    ordering = approximate_faqw_ordering(query)
    elapsed = time.perf_counter() - start
    print(f"\n[planner] #SAT ordering search: {elapsed * 1e3:.1f}ms (seed ~64000ms)")
    assert sorted(ordering) == sorted(query.order)
    assert elapsed < 10.0

"""Table 1, Marginal row: InsideOut vs junction tree vs textbook VE.

The prior PGM algorithms are bounded by the (integral) treewidth-style width:
the junction tree materialises *dense* clique potentials of size
``domain^bag``.  InsideOut's intermediates are bounded by the AGM bound of
the sparse factors, which is much smaller on sparse models.
"""

from __future__ import annotations

import pytest

from repro.core.insideout import inside_out
from repro.core.variable_elimination import variable_elimination
from repro.datasets.pgm_models import grid_model, random_sparse_model
from repro.pgm.junction_tree import JunctionTree
from repro.solvers.pgm import compare_marginal_inference

SPARSE_MODEL = random_sparse_model(
    num_variables=12, num_factors=14, max_arity=3, domain_size=4, density=0.25, seed=7
)
GRID = grid_model(3, 4, domain_size=3, seed=8)
TARGET = SPARSE_MODEL.variables[0]
GRID_TARGET = GRID.variables[0]

# Table 1 assumes the (near-)optimal ordering is given; compute it once so the
# benchmark measures evaluation, not ordering optimisation.
from repro.core.faqw import approximate_faqw_ordering  # noqa: E402

SPARSE_ORDERING = list(approximate_faqw_ordering(SPARSE_MODEL.marginal_query([TARGET])))
GRID_ORDERING = list(approximate_faqw_ordering(GRID.marginal_query([GRID_TARGET])))


@pytest.mark.benchmark(group="table1-marginal-sparse")
def test_marginal_insideout(benchmark):
    query = SPARSE_MODEL.marginal_query([TARGET])
    benchmark(lambda: inside_out(query, ordering=SPARSE_ORDERING))


@pytest.mark.benchmark(group="table1-marginal-sparse")
def test_marginal_textbook_ve(benchmark):
    query = SPARSE_MODEL.marginal_query([TARGET])
    benchmark(lambda: variable_elimination(query))


@pytest.mark.benchmark(group="table1-marginal-sparse")
def test_marginal_junction_tree(benchmark):
    benchmark(lambda: JunctionTree(SPARSE_MODEL, mode="sum").marginal(TARGET))


@pytest.mark.benchmark(group="table1-marginal-grid")
def test_marginal_grid_insideout(benchmark):
    query = GRID.marginal_query([GRID_TARGET])
    benchmark(lambda: inside_out(query, ordering=GRID_ORDERING))


@pytest.mark.benchmark(group="table1-marginal-grid")
def test_marginal_grid_junction_tree(benchmark):
    benchmark(lambda: JunctionTree(GRID, mode="sum").marginal(GRID_TARGET))


@pytest.mark.shape
def test_shape_sparse_intermediates_beat_dense_cliques():
    """On sparse factors InsideOut's intermediates are far below the dense
    clique potentials of the treewidth-based baseline."""
    report = compare_marginal_inference(SPARSE_MODEL, [TARGET])
    print(
        f"\n[Marginal/sparse] insideout_max_intermediate="
        f"{report.insideout_max_intermediate} junction_tree_dense_cells="
        f"{report.junction_tree_dense_cells} speedup_proxy={report.speedup_proxy:.1f}x"
    )
    assert report.junction_tree_dense_cells > report.insideout_max_intermediate

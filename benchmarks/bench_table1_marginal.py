"""Table 1, Marginal row: InsideOut vs junction tree vs textbook VE.

The prior PGM algorithms are bounded by the (integral) treewidth-style width:
the junction tree materialises *dense* clique potentials of size
``domain^bag``.  InsideOut's intermediates are bounded by the AGM bound of
the sparse factors, which is much smaller on sparse models.  The grid rows
also compare the sparse listing backend with the dense ndarray backend —
grid potentials are fully dense, the natural territory of the latter.
"""

from __future__ import annotations

import pytest

from _sizes import pick, record_result

from repro.core.insideout import inside_out
from repro.core.variable_elimination import variable_elimination
from repro.datasets.pgm_models import grid_model, random_sparse_model
from repro.pgm.junction_tree import JunctionTree
from repro.solvers.pgm import compare_marginal_inference

SPARSE_MODEL = random_sparse_model(
    num_variables=pick(12, 5),
    num_factors=pick(14, 5),
    max_arity=3,
    domain_size=pick(4, 2),
    density=0.25,
    seed=7,
)
GRID = grid_model(pick(3, 2), pick(4, 2), domain_size=pick(3, 2), seed=8)
TARGET = SPARSE_MODEL.variables[0]
GRID_TARGET = GRID.variables[0]

# Table 1 assumes the (near-)optimal ordering is given; compute it once so the
# benchmark measures evaluation, not ordering optimisation.
from repro.core.faqw import approximate_faqw_ordering  # noqa: E402

SPARSE_ORDERING = list(approximate_faqw_ordering(SPARSE_MODEL.marginal_query([TARGET])))
GRID_ORDERING = list(approximate_faqw_ordering(GRID.marginal_query([GRID_TARGET])))


@pytest.mark.benchmark(group="table1-marginal-sparse")
def test_marginal_insideout(benchmark):
    query = SPARSE_MODEL.marginal_query([TARGET])
    benchmark(lambda: inside_out(query, ordering=SPARSE_ORDERING))


@pytest.mark.benchmark(group="table1-marginal-sparse")
def test_marginal_textbook_ve(benchmark):
    query = SPARSE_MODEL.marginal_query([TARGET])
    benchmark(lambda: variable_elimination(query))


@pytest.mark.benchmark(group="table1-marginal-sparse")
def test_marginal_junction_tree(benchmark):
    benchmark(lambda: JunctionTree(SPARSE_MODEL, mode="sum").marginal(TARGET))


@pytest.mark.benchmark(group="table1-marginal-grid")
def test_marginal_grid_insideout_sparse_backend(benchmark):
    query = GRID.marginal_query([GRID_TARGET])
    benchmark(lambda: inside_out(query, ordering=GRID_ORDERING, backend="sparse"))


@pytest.mark.benchmark(group="table1-marginal-grid")
def test_marginal_grid_insideout_dense_backend(benchmark):
    query = GRID.marginal_query([GRID_TARGET])
    benchmark(lambda: inside_out(query, ordering=GRID_ORDERING, backend="dense"))


@pytest.mark.benchmark(group="table1-marginal-grid")
def test_marginal_grid_insideout_auto_backend(benchmark):
    query = GRID.marginal_query([GRID_TARGET])
    benchmark(lambda: inside_out(query, ordering=GRID_ORDERING, backend="auto"))


@pytest.mark.benchmark(group="table1-marginal-grid")
def test_marginal_grid_junction_tree(benchmark):
    benchmark(lambda: JunctionTree(GRID, mode="sum").marginal(GRID_TARGET))


@pytest.mark.shape
def test_shape_sparse_intermediates_beat_dense_cliques():
    """On sparse factors InsideOut's intermediates are far below the dense
    clique potentials of the treewidth-based baseline."""
    report = compare_marginal_inference(SPARSE_MODEL, [TARGET])
    print(
        f"\n[Marginal/sparse] insideout_max_intermediate="
        f"{report.insideout_max_intermediate} junction_tree_dense_cells="
        f"{report.junction_tree_dense_cells} speedup_proxy={report.speedup_proxy:.1f}x"
    )
    record_result(
        "table1:marginal-sparse",
        insideout_max_intermediate=report.insideout_max_intermediate,
        junction_tree_dense_cells=report.junction_tree_dense_cells,
        speedup_proxy=report.speedup_proxy,
    )
    assert report.junction_tree_dense_cells > report.insideout_max_intermediate


@pytest.mark.shape
def test_shape_grid_backends_agree():
    """Sparse and dense backends return the same marginal on the dense grid."""
    query = GRID.marginal_query([GRID_TARGET])
    sparse = inside_out(query, ordering=GRID_ORDERING, backend="sparse")
    dense = inside_out(query, ordering=GRID_ORDERING, backend="dense")
    assert sparse.factor.equals(dense.factor, query.semiring)

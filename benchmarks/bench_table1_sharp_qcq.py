"""Table 1, #QCQ row: counting answers of quantified conjunctive queries.

The paper's #QCQ result is new — no non-trivial prior algorithm exists — so
the only baseline is direct quantifier-semantics enumeration, which is
exponential in the number of free+quantified variables.  InsideOut runs in
``O~(N^{faqw})``.
"""

from __future__ import annotations

import pytest

from _sizes import pick

from repro.core.insideout import inside_out
from repro.datasets.relations import random_relation
from repro.solvers.logic import EXISTS, FORALL, Atom, QuantifiedConjunctiveQuery

DOMAIN = pick(7, 3)
R = random_relation("R", ("a", "b"), DOMAIN, pick(30, 9), seed=21)
S = random_relation("S", ("b", "c"), DOMAIN, pick(30, 9), seed=22)
T = random_relation("T", ("c", "d"), DOMAIN, pick(30, 9), seed=23)

QUERY = QuantifiedConjunctiveQuery(
    free=("f1", "f2"),
    quantifiers=(("v", EXISTS), ("w", FORALL), ("z", EXISTS)),
    atoms=(
        Atom(R, ("f1", "v")),
        Atom(S, ("v", "w")),
        Atom(T, ("w", "z")),
        Atom(R, ("f2", "v")),
    ),
    domains={"w": tuple(range(DOMAIN)), "z": tuple(range(DOMAIN))},
)


@pytest.mark.benchmark(group="table1-sharp-qcq")
def test_sharp_qcq_insideout(benchmark):
    faq = QUERY.counting_query()
    benchmark(lambda: inside_out(faq, ordering="auto"))


@pytest.mark.benchmark(group="table1-sharp-qcq")
def test_sharp_qcq_brute_force(benchmark):
    benchmark(QUERY.count_brute_force)


@pytest.mark.shape
def test_shape_counts_agree_and_width_is_small():
    from repro.core.faqw import faq_width_of_query

    count = QUERY.count()
    reference = QUERY.count_brute_force()
    faqw = faq_width_of_query(QUERY.counting_query(), extension_limit=500)
    print(f"\n[#QCQ] count={count} reference={reference} faqw={faqw}")
    assert count == reference
    assert faqw <= 2.0

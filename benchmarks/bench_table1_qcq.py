"""Table 1, QCQ row: quantified conjunctive queries.

InsideOut evaluates a QCQ in ``O~(N^{faqw})``; the prior Chen–Dalmau bound is
``O~(N^{PW})`` where PW is the prefix-graph width, which can be unboundedly
larger (Section 7.2.1).  The benchmark evaluates the separating family
``∀x_1..x_k ∃y  S(x_1..x_k) ∧ ⋀_i R(x_i, y)`` with InsideOut (faqw = 2) and
with a prefix-respecting elimination order (width k+1), plus a brute-force
quantifier evaluation as the trivial baseline.
"""

from __future__ import annotations

import pytest

from _sizes import pick

from repro.core.insideout import inside_out
from repro.datasets.relations import random_relation
from repro.solvers.logic import EXISTS, FORALL, Atom, QuantifiedConjunctiveQuery

ARMS = 4
DOMAIN = pick(6, 3)
S_REL = random_relation("S", tuple(f"x{i}" for i in range(1, ARMS + 1)), DOMAIN, pick(250, 30), seed=3)
R_REL = random_relation("R", ("u", "y"), DOMAIN, pick(24, 8), seed=4)


def _build_query():
    atoms = [Atom(S_REL, tuple(f"x{i}" for i in range(1, ARMS + 1)))]
    for i in range(1, ARMS + 1):
        atoms.append(Atom(R_REL, (f"x{i}", "y")))
    return QuantifiedConjunctiveQuery(
        free=(),
        quantifiers=tuple((f"x{i}", FORALL) for i in range(1, ARMS + 1)) + (("y", EXISTS),),
        atoms=tuple(atoms),
    )


QUERY = _build_query()


@pytest.mark.benchmark(group="table1-qcq")
def test_qcq_insideout_faqw_ordering(benchmark):
    faq = QUERY.decision_query()
    benchmark(lambda: inside_out(faq, ordering="auto"))


@pytest.mark.benchmark(group="table1-qcq")
def test_qcq_insideout_written_prefix_ordering(benchmark):
    faq = QUERY.decision_query()
    benchmark(lambda: inside_out(faq, ordering=None))


@pytest.mark.benchmark(group="table1-qcq")
def test_qcq_brute_force_quantifiers(benchmark):
    benchmark(QUERY.solve_brute_force)


@pytest.mark.shape
def test_shape_faqw_beats_prefix_width():
    """faqw ≤ 2 while the Chen–Dalmau prefix width grows with the arity."""
    from repro.core.faqw import faq_width_of_query

    prefix_width = QUERY.prefix_width()
    faqw = faq_width_of_query(QUERY.decision_query(), extension_limit=500)
    print(f"\n[QCQ] arms={ARMS} prefix_width={prefix_width} faqw={faqw}")
    assert prefix_width == ARMS + 1
    assert faqw <= 2.0
    # And the answers agree with the reference semantics.
    assert QUERY.solve().tuples == QUERY.solve_brute_force().tuples

"""Shared configuration for the benchmark harness.

Every benchmark module reproduces one table row / figure / example of the
paper (see DESIGN.md for the experiment index).  Absolute timings depend on
the host; what the harness is expected to reproduce is the *shape* of
Table 1: which algorithm wins, and how costs scale with the input size N and
with the width parameters.  Each module therefore both benchmarks the
competing algorithms (via pytest-benchmark) and asserts the qualitative
relationship the paper predicts.

``--quick`` (or ``FAQ_BENCH_QUICK=1``) shrinks every benchmark to a minimal
problem size — the CI smoke job uses it to check that the harness still
*runs* without paying full benchmark timings.

Note: no test module may import from this file.  When ``tests/`` and
``benchmarks/`` are collected in one pytest run, both ``conftest.py`` files
compete for the ``conftest`` module name; importable helpers belong in
uniquely-named modules (``benchmarks/_sizes.py``, ``tests/_helpers.py``).
"""

from __future__ import annotations

import json
import os

import _sizes


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run every benchmark at minimal problem size (CI smoke mode)",
    )
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help="write the shared machine-readable benchmark results to PATH",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "shape: qualitative shape assertions for EXPERIMENTS.md")
    try:
        quick = config.getoption("--quick")
    except ValueError:  # option not registered (conftest loaded late)
        quick = False
    if quick:
        # Module-level size constants read the environment at import time,
        # which happens after configure.
        os.environ["FAQ_BENCH_QUICK"] = "1"


def pytest_runtest_makereport(item, call):
    """Record every benchmark test's call-phase duration in the shared JSON.

    This makes *all* ``bench_*`` modules emit a uniform machine-readable
    timing record with zero per-module wiring; modules with richer payloads
    (cache hit rates, intermediate sizes) add explicit
    :func:`_sizes.record_result` calls on top.
    """
    if call.when != "call" or item.config.getoption("--json", default=None) is None:
        return
    import pytest

    if call.excinfo is None:
        outcome = "passed"
    elif call.excinfo.errisinstance(pytest.skip.Exception):
        outcome = "skipped"
    else:
        outcome = "failed"
    _sizes.record_result(
        f"test:{item.nodeid.split('::')[-1]}",
        module=item.nodeid.split("::")[0].split("/")[-1],
        seconds=call.duration,
        outcome=outcome,
    )


def pytest_sessionfinish(session, exitstatus):
    """Write the shared results to the ``--json`` path, when given."""
    try:
        path = session.config.getoption("--json")
    except ValueError:  # pragma: no cover - option not registered
        path = None
    if not path:
        return
    payload = {"quick": _sizes.quick_mode(), "results": _sizes.RESULTS}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")

"""Shared configuration for the benchmark harness.

Every benchmark module reproduces one table row / figure / example of the
paper (see DESIGN.md for the experiment index).  Absolute timings depend on
the host; what the harness is expected to reproduce is the *shape* of
Table 1: which algorithm wins, and how costs scale with the input size N and
with the width parameters.  Each module therefore both benchmarks the
competing algorithms (via pytest-benchmark) and asserts the qualitative
relationship the paper predicts.

``--quick`` (or ``FAQ_BENCH_QUICK=1``) shrinks every benchmark to a minimal
problem size — the CI smoke job uses it to check that the harness still
*runs* without paying full benchmark timings.

Note: no test module may import from this file.  When ``tests/`` and
``benchmarks/`` are collected in one pytest run, both ``conftest.py`` files
compete for the ``conftest`` module name; importable helpers belong in
uniquely-named modules (``benchmarks/_sizes.py``, ``tests/_helpers.py``).
"""

from __future__ import annotations

import os


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run every benchmark at minimal problem size (CI smoke mode)",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "shape: qualitative shape assertions for EXPERIMENTS.md")
    try:
        quick = config.getoption("--quick")
    except ValueError:  # option not registered (conftest loaded late)
        quick = False
    if quick:
        # Module-level size constants read the environment at import time,
        # which happens after configure.
        os.environ["FAQ_BENCH_QUICK"] = "1"

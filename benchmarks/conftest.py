"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table row / figure / example of the
paper (see DESIGN.md for the experiment index).  Absolute timings depend on
the host; what the harness is expected to reproduce is the *shape* of
Table 1: which algorithm wins, and how costs scale with the input size N and
with the width parameters.  Each module therefore both benchmarks the
competing algorithms (via pytest-benchmark) and asserts the qualitative
relationship the paper predicts.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "shape: qualitative shape assertions for EXPERIMENTS.md")

"""Table 1, Joins row: worst-case optimal InsideOut vs pairwise hash joins.

The triangle join ``R(A,B) ⋈ S(B,C) ⋈ T(A,C)`` has fractional hypertree
width 3/2: InsideOut / generic join run within the AGM bound ``N^{3/2}``
while any pairwise plan can materialise an intermediate of size ``Θ(N²)``.
The benchmark measures both and asserts that the pairwise plan's largest
intermediate exceeds the worst-case-optimal engine's on a skewed instance.
"""

from __future__ import annotations

import pytest

from _sizes import pick, record_result

from repro.core.insideout import inside_out
from repro.datasets.relations import cycle_query_relations, path_query_relations
from repro.db.generic_join import generic_join
from repro.db.hash_join import left_deep_join_plan
from repro.db.yannakakis import yannakakis
from repro.solvers.joins import natural_join_query

TRIANGLE = cycle_query_relations(3, domain_size=pick(60, 10), num_tuples=pick(250, 30), seed=42)
PATH = path_query_relations(3, domain_size=pick(60, 10), num_tuples=pick(250, 30), seed=43)


@pytest.mark.benchmark(group="table1-joins-triangle")
def test_triangle_insideout(benchmark):
    query = natural_join_query(TRIANGLE)
    result = benchmark(lambda: inside_out(query, ordering=None))
    assert result.factor is not None


@pytest.mark.benchmark(group="table1-joins-triangle")
def test_triangle_generic_join(benchmark):
    result = benchmark(lambda: generic_join(TRIANGLE))
    assert len(result) >= 0


@pytest.mark.benchmark(group="table1-joins-triangle")
def test_triangle_pairwise_hash_join(benchmark):
    result, _ = benchmark(lambda: left_deep_join_plan(TRIANGLE))
    assert len(result) >= 0


@pytest.mark.benchmark(group="table1-joins-acyclic-path")
def test_path_insideout(benchmark):
    query = natural_join_query(PATH)
    benchmark(lambda: inside_out(query, ordering=None))


@pytest.mark.benchmark(group="table1-joins-acyclic-path")
def test_path_yannakakis(benchmark):
    benchmark(lambda: yannakakis(PATH))


@pytest.mark.shape
def test_shape_pairwise_intermediate_blowup():
    """The pairwise plan's largest intermediate exceeds the WCOJ engine's."""
    query = natural_join_query(TRIANGLE)
    io = inside_out(query, ordering=None)
    _, sizes = left_deep_join_plan(TRIANGLE)
    output_size = len(io.factor)
    print(
        f"\n[Joins/triangle] N={max(len(r) for r in TRIANGLE)} output={output_size} "
        f"insideout_max_intermediate={io.stats.max_intermediate_size} "
        f"pairwise_max_intermediate={max(sizes)}"
    )
    record_result(
        "table1:joins-triangle",
        n=max(len(r) for r in TRIANGLE),
        output_size=output_size,
        insideout_max_intermediate=io.stats.max_intermediate_size,
        pairwise_max_intermediate=max(sizes),
    )
    assert max(sizes) >= io.stats.max_intermediate_size
    assert max(sizes) > output_size

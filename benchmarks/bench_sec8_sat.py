"""Section 8.3: SAT and #SAT on β-acyclic CNF formulas.

Theorems 8.3 / 8.4: along a nested elimination order, Davis–Putnam style
variable elimination never grows the clause set, so β-acyclic SAT and #SAT
are polynomial.  The benchmark runs the compact-representation SAT solver
and the #SAT counter on β-acyclic families against brute-force enumeration,
and asserts the no-clause-growth invariant.
"""

from __future__ import annotations

import pytest

from _sizes import pick, record_result

from repro.datasets.cnf import beta_acyclic_cnf, random_k_cnf
from repro.solvers.sat import count_models, davis_putnam_sat

BETA_ACYCLIC = beta_acyclic_cnf(num_blocks=pick(6, 3), block_width=3, seed=9)
SMALL_BETA_ACYCLIC = beta_acyclic_cnf(num_blocks=pick(4, 2), block_width=3, seed=9)
RANDOM_CNF = random_k_cnf(num_variables=pick(14, 8), num_clauses=pick(45, 16), clause_width=3, seed=10)


@pytest.mark.benchmark(group="sec8-sat")
def test_sat_davis_putnam_beta_acyclic(benchmark):
    satisfiable, _ = benchmark(lambda: davis_putnam_sat(BETA_ACYCLIC))
    assert satisfiable in (True, False)


@pytest.mark.benchmark(group="sec8-sat")
def test_sat_brute_force_beta_acyclic(benchmark):
    benchmark(SMALL_BETA_ACYCLIC.is_satisfiable_brute_force)


@pytest.mark.benchmark(group="sec8-sharp-sat")
def test_sharp_sat_insideout_beta_acyclic(benchmark):
    benchmark(lambda: count_models(SMALL_BETA_ACYCLIC))


@pytest.mark.benchmark(group="sec8-sharp-sat")
def test_sharp_sat_brute_force_beta_acyclic(benchmark):
    benchmark(SMALL_BETA_ACYCLIC.count_models_brute_force)


@pytest.mark.benchmark(group="sec8-sat-random")
def test_sat_davis_putnam_random_cnf(benchmark):
    benchmark(lambda: davis_putnam_sat(RANDOM_CNF))


@pytest.mark.shape
def test_shape_beta_acyclic_elimination_never_grows():
    """Theorem 8.3's invariant: along the NEO the clause count never grows."""
    assert BETA_ACYCLIC.is_beta_acyclic()
    satisfiable, stats = davis_putnam_sat(BETA_ACYCLIC)
    print(
        f"\n[Sec8 SAT] clauses={len(BETA_ACYCLIC.clauses)} max_clauses_during_elim="
        f"{stats.max_clauses} satisfiable={satisfiable}"
    )
    record_result(
        "sec8:sat-beta-acyclic",
        clauses=len(BETA_ACYCLIC.clauses),
        max_clauses_during_elim=stats.max_clauses,
        satisfiable=satisfiable,
    )
    assert stats.max_clauses <= len(BETA_ACYCLIC.clauses)
    # And counting matches brute force on the smaller instance.
    assert count_models(SMALL_BETA_ACYCLIC) == SMALL_BETA_ACYCLIC.count_models_brute_force()

"""Figures 2-6: expression-tree construction on the paper's example queries.

The figures are constructions, not measurements; the benchmark times the
compartmentalisation + compression pipeline on Example 6.2 (Figures 2-3) and
Example 6.19 (Figures 4-6) and re-asserts the exact node structure the
figures depict (the full node-by-node checks live in
``tests/test_expression_tree_paper_examples.py``).
"""

from __future__ import annotations

import pytest

from repro.core.expression_tree import build_expression_tree
from repro.datasets.queries import example_6_19_query, example_6_2_query

EXAMPLE_62 = example_6_2_query()
EXAMPLE_619 = example_6_19_query()


@pytest.mark.benchmark(group="fig2-3-expression-tree")
def test_build_tree_example_6_2(benchmark):
    tree = benchmark(lambda: build_expression_tree(EXAMPLE_62))
    assert tree.root.children


@pytest.mark.benchmark(group="fig4-6-expression-tree")
def test_build_tree_example_6_19(benchmark):
    tree = benchmark(lambda: build_expression_tree(EXAMPLE_619))
    assert tree.root.children


@pytest.mark.shape
def test_shape_trees_match_the_figures():
    tree_62 = build_expression_tree(EXAMPLE_62)
    top = tree_62.root.children[0]
    assert frozenset(top.variables) == frozenset({"x1", "x2", "x4"})
    tree_619 = build_expression_tree(EXAMPLE_619)
    top19 = tree_619.root.children[0]
    assert frozenset(top19.variables) == frozenset({"x1", "x2", "x6"})
    print("\n[Fig2-3] expression tree of Example 6.2:")
    print(tree_62.pretty())
    print("[Fig4-6] expression tree of Example 6.19:")
    print(tree_619.pretty())

"""Table 1, DFT row: the FAQ factorisation of the DFT vs the naive O(N²) sum.

InsideOut over the Aji–McEliece factorisation performs ``O(N log N)`` work
(the FFT); the naive summation is ``Θ(N²)``.  Both use pure-python complex
arithmetic so the comparison isolates the algorithmic effect.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.matrix import dft_insideout, dft_naive

RNG = np.random.default_rng(11)
VECTOR = RNG.random(64) + 1j * RNG.random(64)


@pytest.mark.benchmark(group="table1-dft")
def test_dft_insideout_fft(benchmark):
    result = benchmark(lambda: dft_insideout(VECTOR, 2))
    assert len(result) == len(VECTOR)


@pytest.mark.benchmark(group="table1-dft")
def test_dft_naive_quadratic(benchmark):
    result = benchmark(lambda: dft_naive(VECTOR))
    assert len(result) == len(VECTOR)


@pytest.mark.shape
def test_shape_dft_correctness_and_scaling():
    """The FAQ evaluation matches the naive DFT and numpy, and its advantage
    grows with N (measured through elementary-operation proxies)."""
    import time

    sizes = [64, 256, 1024]
    ratios = []
    for size in sizes:
        vector = RNG.random(size)
        start = time.perf_counter()
        fast = dft_insideout(vector, 2)
        fast_time = time.perf_counter() - start
        start = time.perf_counter()
        slow = dft_naive(vector)
        slow_time = time.perf_counter() - start
        assert np.allclose(fast, slow)
        ratios.append(slow_time / max(fast_time, 1e-9))
    print(f"\n[DFT] sizes={sizes} naive/faq time ratios={[round(r, 2) for r in ratios]}")
    # The quadratic baseline falls behind as N grows: the ratio increases with
    # N and the FAQ evaluation wins outright at N = 1024 despite the generic
    # engine's per-tuple constant factor.
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1.0

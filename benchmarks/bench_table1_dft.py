"""Table 1, DFT row: the FAQ factorisation of the DFT vs the naive O(N²) sum.

InsideOut over the Aji–McEliece factorisation performs ``O(N log N)`` work
(the FFT); the naive summation is ``Θ(N²)``.  The sparse rows use pure-python
complex arithmetic so the comparison isolates the algorithmic effect; the
dense rows run the same elimination steps through the ndarray factor backend
and measure the representation effect on top.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _sizes import pick

from repro.core.insideout import inside_out
from repro.solvers.matrix import dft_insideout, dft_naive, dft_query

RNG = np.random.default_rng(11)
SIZE = pick(64, 8)
VECTOR = RNG.random(SIZE) + 1j * RNG.random(SIZE)


@pytest.mark.benchmark(group="table1-dft")
def test_dft_insideout_fft_sparse(benchmark):
    result = benchmark(lambda: dft_insideout(VECTOR, 2, backend="sparse"))
    assert len(result) == len(VECTOR)


@pytest.mark.benchmark(group="table1-dft")
def test_dft_insideout_fft_dense(benchmark):
    result = benchmark(lambda: dft_insideout(VECTOR, 2, backend="dense"))
    assert len(result) == len(VECTOR)


@pytest.mark.benchmark(group="table1-dft")
def test_dft_insideout_fft_auto(benchmark):
    result = benchmark(lambda: dft_insideout(VECTOR, 2))
    assert len(result) == len(VECTOR)


@pytest.mark.benchmark(group="table1-dft")
def test_dft_naive_quadratic(benchmark):
    result = benchmark(lambda: dft_naive(VECTOR))
    assert len(result) == len(VECTOR)


@pytest.mark.shape
def test_shape_dft_correctness_and_scaling():
    """The FAQ evaluation matches the naive DFT and numpy, and its advantage
    grows with N (measured through elementary-operation proxies)."""
    sizes = pick([64, 256, 1024], [8, 16, 32])
    ratios = []
    for size in sizes:
        vector = RNG.random(size)
        start = time.perf_counter()
        fast = dft_insideout(vector, 2)
        fast_time = time.perf_counter() - start
        start = time.perf_counter()
        slow = dft_naive(vector)
        slow_time = time.perf_counter() - start
        assert np.allclose(fast, slow)
        ratios.append(slow_time / max(fast_time, 1e-9))
    print(f"\n[DFT] sizes={sizes} naive/faq time ratios={[round(r, 2) for r in ratios]}")
    # The quadratic baseline falls behind as N grows: the ratio increases with
    # N and the FAQ evaluation wins outright at the largest size despite the
    # generic engine's per-tuple constant factor.  At smoke sizes fixed
    # overheads dominate, so quick mode only checks correctness above.
    if pick(True, False):
        assert ratios[-1] > ratios[0]
        assert ratios[-1] > 1.0


@pytest.mark.shape
def test_shape_dense_backend_speedup():
    """At the default problem size the dense (ndarray) factor backend beats
    the sparse listing path by >= 5x on the same InsideOut elimination steps
    (backends differ only in representation — results are identical)."""
    query = dft_query(VECTOR, 2)

    def best_of(runs, fn):
        best = float("inf")
        for _ in range(runs):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    sparse_result = inside_out(query, backend="sparse")
    dense_result = inside_out(query, backend="dense")
    assert sparse_result.factor.equals(dense_result.factor, query.semiring)
    assert all(step.backend == "dense" for step in dense_result.stats.steps)

    sparse_time = best_of(3, lambda: inside_out(query, backend="sparse"))
    dense_time = best_of(3, lambda: inside_out(query, backend="dense"))
    speedup = sparse_time / max(dense_time, 1e-9)
    print(f"\n[DFT dense] N={SIZE} sparse={sparse_time:.4f}s dense={dense_time:.4f}s speedup={speedup:.1f}x")
    if pick(True, False):
        # Only assert the hard ratio at the full problem size; at smoke sizes
        # the per-call overhead dominates both paths.
        assert speedup >= 5.0

"""Example 5.6: the effect of the variable ordering on InsideOut's runtime.

With 0/1 factors, the written ordering of Example 5.6 forces an O(N²)
elimination step (faqw 2) while the equivalent ordering
``(x5, x1, x2, x3, x4, x6)`` runs in O(N) (faqw 1).  The benchmark measures
both orderings on a skewed instance where the difference actually
materialises — ψ15 and ψ25 share a single heavy x5 value, so eliminating x5
early joins them into an N²-sized intermediate, whereas the good ordering
never forms that join.
"""

from __future__ import annotations

import pytest

from _sizes import pick

from repro.core.faqw import faq_width_of_ordering
from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, Variable
from repro.datasets.queries import example_5_6_query
from repro.factors.factor import Factor
from repro.semiring.aggregates import ProductAggregate, SemiringAggregate
from repro.semiring.standard import COUNTING

GOOD_ORDERING = ["x5", "x1", "x2", "x3", "x4", "x6"]


def skewed_example_5_6(n: int) -> FAQQuery:
    """Example 5.6 with 0/1 factors of size Θ(n) exhibiting the N² blow-up."""
    dom = tuple(range(n))
    x3_dom = (0, 1)
    psi15 = Factor(("x1", "x5"), {(a, 0): 1 for a in dom}, name="psi15")
    psi25 = Factor(("x2", "x5"), {(b, 0): 1 for b in dom}, name="psi25")
    psi134 = Factor(
        ("x1", "x3", "x4"),
        {(a, bit, (3 * a) % n): 1 for a in dom for bit in x3_dom},
        name="psi134",
    )
    psi236 = Factor(
        ("x2", "x3", "x6"),
        {(b, bit, (7 * b) % n): 1 for b in dom for bit in x3_dom},
        name="psi236",
    )
    aggregates = {
        "x1": SemiringAggregate.max(),
        "x2": SemiringAggregate.max(),
        "x3": ProductAggregate.product(),
        "x4": SemiringAggregate.sum(),
        "x5": SemiringAggregate.max(),
        "x6": SemiringAggregate.max(),
    }
    domains = {"x1": dom, "x2": dom, "x3": x3_dom, "x4": dom, "x5": dom, "x6": dom}
    return FAQQuery(
        variables=[Variable(v, domains[v]) for v in ("x1", "x2", "x3", "x4", "x5", "x6")],
        free=[],
        aggregates=aggregates,
        factors=[psi15, psi25, psi134, psi236],
        semiring=COUNTING,
        name="example-5.6-skewed",
    )


QUERY = skewed_example_5_6(pick(40, 8))


@pytest.mark.benchmark(group="example-5.6")
def test_insideout_written_ordering(benchmark):
    benchmark(lambda: inside_out(QUERY, ordering=None))


@pytest.mark.benchmark(group="example-5.6")
def test_insideout_good_ordering(benchmark):
    benchmark(lambda: inside_out(QUERY, ordering=GOOD_ORDERING))


@pytest.mark.benchmark(group="example-5.6")
def test_insideout_auto_ordering(benchmark):
    benchmark(lambda: inside_out(QUERY, ordering="auto"))


@pytest.mark.shape
def test_shape_widths_and_intermediate_scaling():
    # The width story is a property of the hypergraph + aggregates alone.
    reference_query = example_5_6_query()
    assert faq_width_of_ordering(reference_query, reference_query.order) == pytest.approx(2.0)
    assert faq_width_of_ordering(reference_query, GOOD_ORDERING) == pytest.approx(1.0)

    rows = []
    for n in (10, 20, 40):
        query = skewed_example_5_6(n)
        written = inside_out(query, ordering=None)
        good = inside_out(query, ordering=GOOD_ORDERING)
        assert written.scalar == good.scalar
        rows.append((n, written.stats.max_intermediate_size, good.stats.max_intermediate_size))
    print("\n[Example 5.6] n, max intermediate (written O(N^2) order), (good O(N) order):")
    for n, bad, good_size in rows:
        print(f"  {n:4d} {bad:8d} {good_size:8d}")
    # Written ordering: quadratic intermediates; good ordering: linear.
    assert rows[-1][1] >= rows[-1][0] ** 2
    assert rows[-1][2] <= 4 * rows[-1][0]

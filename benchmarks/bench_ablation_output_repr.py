"""Ablation (Section 8.4): listing output vs factorized output.

The factorized representation skips the final OutsideIn join, so producing
it is cheaper than materialising the listing output whenever the output is
large; value queries on it cost one lookup per residual factor.
"""

from __future__ import annotations

import pytest

from _sizes import pick

from repro.core.insideout import inside_out
from repro.datasets.relations import path_query_relations
from repro.solvers.joins import natural_join_query

RELATIONS = path_query_relations(4, domain_size=pick(20, 6), num_tuples=pick(140, 24), seed=13)
QUERY = natural_join_query(RELATIONS)


@pytest.mark.benchmark(group="ablation-output-representation")
def test_listing_output(benchmark):
    result = benchmark(lambda: inside_out(QUERY, ordering=None, output_mode="listing"))
    assert result.factor is not None


@pytest.mark.benchmark(group="ablation-output-representation")
def test_factorized_output(benchmark):
    result = benchmark(lambda: inside_out(QUERY, ordering=None, output_mode="factorized"))
    assert result.factorized is not None


@pytest.mark.benchmark(group="ablation-output-representation")
def test_factorized_value_queries(benchmark):
    factorized = inside_out(QUERY, ordering=None, output_mode="factorized").factorized
    listing = inside_out(QUERY, ordering=None).factor
    probes = list(listing.table.keys())[:200]
    scope = listing.scope

    def probe_all():
        total = 0
        for key in probes:
            total += factorized.value(dict(zip(scope, key)))
        return total

    benchmark(probe_all)


@pytest.mark.shape
def test_shape_factorized_equals_listing_and_is_cheaper_to_build():
    listing_run = inside_out(QUERY, ordering=None, output_mode="listing")
    factorized_run = inside_out(QUERY, ordering=None, output_mode="factorized")
    materialised = factorized_run.factorized.to_factor()
    assert materialised.equals(listing_run.factor, QUERY.semiring)
    print(
        f"\n[Ablation output] output_size={len(listing_run.factor)} "
        f"listing_seconds={listing_run.stats.total_seconds:.4f} "
        f"factorized_seconds={factorized_run.stats.total_seconds:.4f}"
    )
    assert factorized_run.stats.total_seconds <= listing_run.stats.total_seconds

"""Table 1, MCM row: matrix chain multiplication.

The FAQ view of MCM (Example 1.1 / Appendix E): variable orderings of the
FAQ query correspond to parenthesisations, and the classic dynamic program
is an ordering-selection algorithm.  The benchmark compares InsideOut along
the DP-optimal ordering with InsideOut along the naive left-to-right
ordering and with numpy's dense chain product, on a skewed dimension vector
where the parenthesisation matters.
"""

from __future__ import annotations

import numpy as np
import pytest

from _sizes import pick

from repro.solvers.matrix import (
    matrix_chain_insideout,
    matrix_chain_query,
    mcm_dp_cost,
    mcm_dp_ordering,
    mcm_naive_cost,
)
from repro.core.insideout import inside_out

RNG = np.random.default_rng(5)
DIMS = pick([40, 3, 45, 2, 30], [6, 2, 7, 2, 5])
MATRICES = [RNG.random((DIMS[i], DIMS[i + 1])) for i in range(len(DIMS) - 1)]
NAIVE_ORDERING = ["x1", f"x{len(DIMS)}"] + [f"x{i}" for i in range(2, len(DIMS))]


@pytest.mark.benchmark(group="table1-mcm")
def test_mcm_insideout_dp_ordering_sparse_backend(benchmark):
    result = benchmark(lambda: matrix_chain_insideout(MATRICES, backend="sparse"))
    assert result.shape == (DIMS[0], DIMS[-1])


@pytest.mark.benchmark(group="table1-mcm")
def test_mcm_insideout_dp_ordering_dense_backend(benchmark):
    result = benchmark(lambda: matrix_chain_insideout(MATRICES, backend="dense"))
    assert result.shape == (DIMS[0], DIMS[-1])


@pytest.mark.benchmark(group="table1-mcm")
def test_mcm_insideout_dp_ordering_auto_backend(benchmark):
    result = benchmark(lambda: matrix_chain_insideout(MATRICES))
    assert result.shape == (DIMS[0], DIMS[-1])


@pytest.mark.benchmark(group="table1-mcm")
def test_mcm_insideout_naive_ordering(benchmark):
    benchmark(lambda: matrix_chain_insideout(MATRICES, ordering=NAIVE_ORDERING))


@pytest.mark.benchmark(group="table1-mcm")
def test_mcm_numpy(benchmark):
    def chain():
        out = MATRICES[0]
        for matrix in MATRICES[1:]:
            out = out @ matrix
        return out

    benchmark(chain)


@pytest.mark.shape
def test_shape_dp_ordering_beats_naive():
    """The DP bound is met: the optimal ordering does strictly less work than
    the left-to-right one, and both reproduce the numpy product."""
    optimal_cost, _ = mcm_dp_cost(DIMS)
    naive_cost = mcm_naive_cost(DIMS)
    expected = MATRICES[0]
    for matrix in MATRICES[1:]:
        expected = expected @ matrix
    query = matrix_chain_query(MATRICES)
    dp_run = inside_out(query, ordering=mcm_dp_ordering(DIMS))
    naive_run = inside_out(query, ordering=NAIVE_ORDERING)
    print(
        f"\n[MCM] dims={DIMS} dp_cost={optimal_cost} naive_cost={naive_cost} "
        f"dp_max_intermediate={dp_run.stats.max_intermediate_size} "
        f"naive_max_intermediate={naive_run.stats.max_intermediate_size}"
    )
    assert optimal_cost < naive_cost
    assert dp_run.stats.max_intermediate_size <= naive_run.stats.max_intermediate_size
    got = matrix_chain_insideout(MATRICES)
    assert np.allclose(got, expected)

"""Replicated serving tier benchmark (ROADMAP item 2): open-loop Zipf traffic.

The horizontal tier (:class:`repro.serve.Frontend`) stacks two orthogonal
wins over a single in-process :class:`~repro.serve.PlanServer`, and this
module measures them separately so neither can hide behind the other:

1. **capacity** — N replica processes execute distinct queries in
   parallel.  Measured with coalescing *disabled* (every request
   executes), as ``replica_speedup_x`` = single-replica wall / N-replica
   wall on identical traffic.  Process parallelism needs cores, so the row
   records ``cpu_count`` and the hard ≥2× assertion only gates under
   ``FAQ_BENCH_STRICT=1`` on ≥4-core hosts.
2. **content-hash coalescing** — value-equal in-flight requests from
   *different clients* (distinct query objects rebuilt per request)
   execute once tier-wide.  Measured on the same fleet with coalescing
   enabled: the dedup count and the wall-clock ratio
   (``coalesce_dedup_x``) are recorded but not CI-gated — how many
   duplicates overlap in flight depends on host speed.

Traffic is open-loop (Poisson arrivals at a fixed offered rate,
independent of completions — arrivals do not wait for the server) with
Zipf-skewed popularity over a pool of query classes, the standard serving
shape: a few hot queries dominate, a long tail keeps the caches honest.
Per-request latency percentiles come from the coalesced fleet run.

Results land in the shared ``--json`` channel and, on full-size runs, are
merged into ``BENCH_planner.json`` (``serve:*`` rows) where
``benchmarks/compare_bench.py`` trends them across PRs.
"""

from __future__ import annotations

import asyncio
import os
import random
import time

import pytest

from _sizes import pick, publish, quick_mode, record_result

from repro.core.query import FAQQuery, Variable
from repro.factors.factor import Factor
from repro.planner import PlanCache, plan
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import SUM_PRODUCT
from repro.serve import Frontend, ServeRequest

REQUESTS = pick(150, 12)
CLASSES = pick(8, 3)
REPLICAS = pick(4, 2)
OFFERED_RPS = pick(2000.0, 500.0)  # offered load; open-loop, not paced by service
CHAIN = pick(5, 3)
DOMAIN = pick(8, 3)
ZIPF_S = 1.1
DRIVE_REPEAT = pick(2, 1)


def _query_class(class_id: int) -> FAQQuery:
    """A fresh query object of class ``class_id`` (deterministic content).

    Every call builds *new* objects — value-equal to earlier builds of the
    same class but distinct in identity, exactly like the same query
    arriving from different clients.  Coalescing therefore has to work on
    content digests; object identity never matches.
    """
    rng = random.Random(1000 + class_id)
    names = [f"q{class_id}v{i}" for i in range(CHAIN)]
    domain = tuple(range(DOMAIN))
    variables = [Variable(name, domain) for name in names]
    factors = []
    for i in range(CHAIN - 1):
        table = {
            (a, b): round(rng.uniform(0.1, 1.0), 6)
            for a in range(DOMAIN)
            for b in range(DOMAIN)
        }
        factors.append(Factor((names[i], names[i + 1]), table))
    return FAQQuery(
        variables=variables,
        free=[names[0]],
        aggregates={name: SemiringAggregate.sum() for name in names[1:]},
        factors=factors,
        semiring=SUM_PRODUCT,
        name=f"serve-class-{class_id}",
    )


def _zipf_weights(n: int, s: float = ZIPF_S):
    raw = [1.0 / (rank**s) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def _schedule(seed: int):
    """``[(arrival_offset_s, class_id), ...]`` — Poisson arrivals, Zipf classes."""
    rng = random.Random(seed)
    weights = _zipf_weights(CLASSES)
    arrivals, t = [], 0.0
    for _ in range(REQUESTS):
        t += rng.expovariate(OFFERED_RPS)
        cid = rng.choices(range(CLASSES), weights=weights)[0]
        arrivals.append((t, cid))
    return arrivals


def _drive(frontend: Frontend, arrivals, coalesce: bool):
    """Replay the arrival schedule; returns ``([(latency, cid, result)], wall)``.

    Open-loop: each request sleeps until its scheduled arrival, then
    submits regardless of how backed up the tier is.  Latency is measured
    from submission (post-arrival) to completion.
    """

    async def _run():
        base = time.perf_counter()

        async def one(offset, cid):
            delay = offset - (time.perf_counter() - base)
            if delay > 0:
                await asyncio.sleep(delay)
            request = ServeRequest(query=_query_class(cid), coalesce=coalesce)
            started = time.perf_counter()
            result = await frontend.submit(request)
            return time.perf_counter() - started, cid, result

        outs = await asyncio.gather(*(one(offset, cid) for offset, cid in arrivals))
        return list(outs), time.perf_counter() - base

    return asyncio.run(_run())


def _best_drive(frontend: Frontend, arrivals, coalesce: bool, repeat: int = DRIVE_REPEAT):
    best_outs, best_wall = None, float("inf")
    for _ in range(repeat):
        outs, wall = _drive(frontend, arrivals, coalesce)
        if wall < best_wall:
            best_outs, best_wall = outs, wall
    return best_outs, best_wall


def _percentile(sorted_values, fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _warm(frontend: Frontend) -> None:
    """Ship every class's factor tables and warm each replica's plans."""
    frontend.serve_batch(
        [ServeRequest(query=_query_class(cid), coalesce=False) for cid in range(CLASSES)]
    )


@pytest.mark.shape
def test_shape_serve_tier_openloop_zipf():
    """Open-loop Zipf traffic: replica capacity scaling + tier-wide dedup."""
    arrivals = _schedule(seed=7)
    expected = {
        cid: plan(_query_class(cid), cache=PlanCache()).execute().factor
        for cid in range(CLASSES)
    }

    # -- capacity: coalescing off, every request executes ---------------- #
    with Frontend(replicas=1, health_interval=None) as single:
        _warm(single)
        _, single_wall = _best_drive(single, arrivals, coalesce=False)
    with Frontend(replicas=REPLICAS, health_interval=None) as fleet:
        _warm(fleet)
        _, fleet_nocoalesce_wall = _best_drive(fleet, arrivals, coalesce=False)

        # -- dedup: same fleet, coalescing on --------------------------- #
        outs, fleet_wall = _best_drive(fleet, arrivals, coalesce=True)
        stats = fleet.stats()
        pongs = [p for p in fleet.ping() if p is not None]

    for latency, cid, result in outs:
        assert result.factor.table == expected[cid].table
        assert latency >= 0.0
    assert stats["shed_queue"] == stats["shed_tenant"] == stats["shed_deadline"] == 0
    assert len(pongs) == REPLICAS, "every replica alive after the run"

    latencies = sorted(latency for latency, _, _ in outs)
    coalesced = sum(1 for _, _, result in outs if result.coalesced)
    cpus = os.cpu_count() or 1
    replica_speedup = (
        single_wall / fleet_nocoalesce_wall if fleet_nocoalesce_wall else float("inf")
    )
    dedup_x = fleet_nocoalesce_wall / fleet_wall if fleet_wall else float("inf")
    record = record_result(
        "serve:openloop-zipf",
        requests=REQUESTS,
        classes=CLASSES,
        replicas=REPLICAS,
        offered_rps=OFFERED_RPS,
        single_wall_s=single_wall,
        fleet_nocoalesce_wall_s=fleet_nocoalesce_wall,
        fleet_wall_s=fleet_wall,
        replica_speedup_x=replica_speedup,
        coalesce_dedup_x=dedup_x,
        coalesced=coalesced,
        throughput_rps=REQUESTS / fleet_wall if fleet_wall else float("inf"),
        p50_s=_percentile(latencies, 0.50),
        p95_s=_percentile(latencies, 0.95),
        p99_s=_percentile(latencies, 0.99),
        cpu_count=cpus,
    )
    print(
        f"\n[serve] open-loop zipf ({REQUESTS} req, {CLASSES} classes, "
        f"{REPLICAS} replicas @ {OFFERED_RPS:.0f} rps offered): "
        f"single={single_wall * 1e3:.0f}ms fleet={fleet_nocoalesce_wall * 1e3:.0f}ms "
        f"(speedup {replica_speedup:.2f}x) coalesced fleet={fleet_wall * 1e3:.0f}ms "
        f"(dedup {dedup_x:.2f}x, {coalesced} coalesced) "
        f"p50={record['p50_s'] * 1e3:.1f}ms p95={record['p95_s'] * 1e3:.1f}ms "
        f"p99={record['p99_s'] * 1e3:.1f}ms (cpus={cpus})"
    )
    if not quick_mode():
        # Hot classes repeat tens of times at this offered rate; some of
        # those arrivals overlap in flight on any realistic host.
        assert coalesced > 0, "expected tier-wide dedup on Zipf traffic"
        # Wall-clock process-parallel speedup needs cores, so the ≥2×
        # acceptance threshold only hard-gates on dedicated ≥4-core hosts
        # (FAQ_BENCH_STRICT=1); elsewhere the recorded row + the
        # compare_bench.py trend gate (cpu-sensitive) carry the signal.
        if os.environ.get("FAQ_BENCH_STRICT", "") not in ("", "0") and cpus >= 4:
            assert replica_speedup >= 2.0, (
                f"expected ≥2x fleet speedup on {cpus} cores, got {replica_speedup:.2f}x"
            )
        publish([record])


RESTART_CHAIN = pick(6, 3)
RESTART_DOMAIN = pick(12, 3)


def _restart_query() -> FAQQuery:
    """A chain query big enough that a cold baseline run dominates a
    restored-view delta propagation (fresh objects per call, like a
    restarted process rebuilding its request)."""
    rng = random.Random(4242)
    names = [f"rv{i}" for i in range(RESTART_CHAIN)]
    domain = tuple(range(RESTART_DOMAIN))
    variables = [Variable(name, domain) for name in names]
    factors = []
    for i in range(RESTART_CHAIN - 1):
        table = {
            (a, b): round(rng.uniform(0.1, 1.0), 6)
            for a in range(RESTART_DOMAIN)
            for b in range(RESTART_DOMAIN)
        }
        factors.append(Factor((names[i], names[i + 1]), table))
    return FAQQuery(
        variables=variables,
        free=[names[0]],
        aggregates={n: SemiringAggregate.sum() for n in names[1:]},
        factors=factors,
        semiring=SUM_PRODUCT,
        name="warm-restart",
    )


@pytest.mark.shape
def test_shape_warm_restart_beats_cold(tmp_path):
    """ROADMAP item 4: a server restarted over its snapshot spill answers
    its first incremental request warm — measured as time-to-first-answer
    against a cold restart of the identical server.

    ``cold_restart_s`` = construct a fresh :class:`PlanServer` (no spill)
    and apply one factor delta: plan + full baseline run + propagation.
    ``warm_restart_s`` = construct a server over the previous incarnation's
    :class:`SnapshotStore` and apply the same delta: restore + propagation
    only (``incremental_full_runs == 0`` certifies no hidden recompute).
    The ratio is the acceptance gate: warm must be >=2x faster.
    """
    from repro.factors import FactorDelta
    from repro.serve import PlanServer, SnapshotStore

    spill_dir = tmp_path / "spill"
    query = _restart_query()
    scope = query.factors[0].scope
    delta1 = FactorDelta(scope, {(0, 0): 0.5})
    delta2 = FactorDelta(scope, {(1, 1): 0.25})
    updated = query.factors[0].apply_delta(delta1, query.semiring)
    after1 = FAQQuery(
        variables=[query.variables[v] for v in query.order],
        free=query.free,
        aggregates=query.aggregates,
        factors=[updated] + list(query.factors[1:]),
        semiring=query.semiring,
        name=query.name,
    )

    # The previous incarnation: serve + update once, spilling the warm view.
    seed_server = PlanServer(snapshot_store=SnapshotStore(spill_dir))
    seed_server.update_factor(ServeRequest(query=query), 0, delta1)
    assert seed_server.stats()["snapshot_saves"] >= 1
    seed_server.shutdown()

    # Cold restart: no spill — plan, full baseline, then the delta.
    started = time.perf_counter()
    cold_server = PlanServer()
    cold = cold_server.update_factor(ServeRequest(query=after1), 0, delta2)
    cold_restart_s = time.perf_counter() - started
    cold_server.shutdown()

    # Warm restart: restore the spilled view, then the delta.
    started = time.perf_counter()
    warm_server = PlanServer(snapshot_store=SnapshotStore(spill_dir))
    warm = warm_server.update_factor(ServeRequest(query=after1), 0, delta2)
    warm_restart_s = time.perf_counter() - started

    stats = warm_server.stats()
    warm_server.shutdown()
    assert warm.factor.table == cold.factor.table, "warm answer must be bit-identical"
    assert stats["snapshot_restores"] >= 1, "the warm server never restored"
    assert stats["incremental_full_runs"] == 0, "warm restart paid a full recompute"

    speedup = cold_restart_s / warm_restart_s if warm_restart_s else float("inf")
    record = record_result(
        "serve:warm-restart",
        chain=RESTART_CHAIN,
        domain=RESTART_DOMAIN,
        cold_restart_s=cold_restart_s,
        warm_restart_s=warm_restart_s,
        warm_restart_speedup_x=speedup,
    )
    print(
        f"\n[serve] warm restart (chain={RESTART_CHAIN}, domain={RESTART_DOMAIN}): "
        f"cold={cold_restart_s * 1e3:.1f}ms warm={warm_restart_s * 1e3:.1f}ms "
        f"({speedup:.2f}x faster to first incremental answer)"
    )
    if not quick_mode():
        assert speedup >= 2.0, (
            f"warm restart must be >=2x faster to first answer, got {speedup:.2f}x"
        )
        publish([record])


@pytest.mark.shape
def test_shape_admission_sheds_only_over_capacity():
    """A tiny pending bound sheds the overflow and serves the rest.

    The admission decision happens before the first ``await`` in
    ``Frontend.submit``, so with ``max_pending=2`` a burst of value-equal
    requests yields exactly: primaries/coalesced waiters admitted, the
    rest shed as :class:`Overloaded` — never a hang, never a lost request.
    """
    from repro.serve import Overloaded, ServeResult

    burst = pick(12, 6)
    with Frontend(replicas=1, health_interval=None, max_pending=2) as fe:
        outcomes = fe.serve_batch(
            [ServeRequest(query=_query_class(cid % CLASSES), coalesce=False)
             for cid in range(burst)],
            return_exceptions=True,
        )
    served = [o for o in outcomes if isinstance(o, ServeResult)]
    shed = [o for o in outcomes if isinstance(o, Overloaded)]
    assert len(served) + len(shed) == burst
    assert len(served) >= 2 and len(shed) >= 1
    assert fe.stats()["shed_queue"] == len(shed)

"""Table 1, MAP row: max-product inference, InsideOut vs the dense baseline."""

from __future__ import annotations

import pytest

from _sizes import pick

from repro.core.insideout import inside_out
from repro.core.variable_elimination import variable_elimination
from repro.datasets.pgm_models import random_sparse_model
from repro.pgm.junction_tree import JunctionTree

MODEL = random_sparse_model(
    num_variables=pick(11, 5),
    num_factors=pick(13, 5),
    max_arity=3,
    domain_size=pick(4, 2),
    density=0.25,
    seed=17,
)
TARGET = MODEL.variables[0]

# Table 1 assumes the ordering is given: compute it once outside the timing.
from repro.core.faqw import approximate_faqw_ordering  # noqa: E402

MAP_ORDERING = list(approximate_faqw_ordering(MODEL.map_query([TARGET])))


@pytest.mark.benchmark(group="table1-map")
def test_map_insideout(benchmark):
    query = MODEL.map_query([TARGET])
    benchmark(lambda: inside_out(query, ordering=MAP_ORDERING))


@pytest.mark.benchmark(group="table1-map")
def test_map_textbook_ve(benchmark):
    query = MODEL.map_query([TARGET])
    benchmark(lambda: variable_elimination(query))


@pytest.mark.benchmark(group="table1-map")
def test_map_junction_tree(benchmark):
    benchmark(lambda: JunctionTree(MODEL, mode="max").marginal(TARGET))


@pytest.mark.shape
def test_shape_map_agreement_and_cost():
    """All engines agree on the max-marginals; InsideOut touches fewer cells."""
    query = MODEL.map_query([TARGET])
    io = inside_out(query, ordering="auto")
    tree = JunctionTree(MODEL, mode="max")
    jt_marginal = tree.marginal(TARGET)
    for (value,), weight in io.factor.table.items():
        assert abs(jt_marginal[value] - weight) < 1e-6
    print(
        f"\n[MAP] insideout_max_intermediate={io.stats.max_intermediate_size} "
        f"junction_tree_dense_cells={tree.largest_potential_cells}"
    )
    assert tree.largest_potential_cells >= io.stats.max_intermediate_size

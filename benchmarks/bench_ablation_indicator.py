"""Ablation (Section 5.2.1): indicator projections on vs off.

Indicator projections are the twist that upgrades InsideOut from the
treewidth bound to the fractional-hypertree-width bound: factors outside
``∂(k)`` semijoin-reduce the intermediate result.  The ablation runs the
same selective triangle-style query with and without projections.
"""

from __future__ import annotations

import pytest

from _sizes import pick

from repro.core.insideout import inside_out
from repro.core.query import FAQQuery, Variable
from repro.factors.factor import Factor
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import COUNTING


def _selective_triangle(size: int) -> FAQQuery:
    dense = Factor(("A", "B"), {(i, j): 1 for i in range(size) for j in range(size)})
    diag_bc = Factor(("B", "C"), {(i, i): 1 for i in range(size)})
    diag_ac = Factor(("A", "C"), {(i, i): 1 for i in range(size)})
    return FAQQuery(
        variables=[Variable(v, tuple(range(size))) for v in "ABC"],
        free=[],
        aggregates={v: SemiringAggregate.sum() for v in "ABC"},
        factors=[dense, diag_bc, diag_ac],
        semiring=COUNTING,
    )


QUERY = _selective_triangle(pick(45, 8))
ORDERING = ["C", "B", "A"]


@pytest.mark.benchmark(group="ablation-indicator-projections")
def test_with_indicator_projections(benchmark):
    benchmark(lambda: inside_out(QUERY, ordering=ORDERING, use_indicator_projections=True))


@pytest.mark.benchmark(group="ablation-indicator-projections")
def test_without_indicator_projections(benchmark):
    benchmark(lambda: inside_out(QUERY, ordering=ORDERING, use_indicator_projections=False))


@pytest.mark.shape
def test_shape_projections_prune_intermediates():
    with_projections = inside_out(QUERY, ordering=ORDERING, use_indicator_projections=True)
    without_projections = inside_out(QUERY, ordering=ORDERING, use_indicator_projections=False)
    assert with_projections.scalar == without_projections.scalar
    print(
        f"\n[Ablation projections] max intermediate with={with_projections.stats.max_intermediate_size} "
        f"without={without_projections.stats.max_intermediate_size}"
    )
    assert (
        with_projections.stats.max_intermediate_size
        < without_projections.stats.max_intermediate_size
    )

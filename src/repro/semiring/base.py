"""The :class:`Semiring` value type.

A commutative semiring ``(D, ⊕, ⊗)`` consists of a domain ``D`` and two
commutative binary operators such that

1. ``(D, ⊕)`` is a commutative monoid with additive identity ``0``,
2. ``(D, ⊗)`` is a commutative monoid with multiplicative identity ``1``,
3. ``⊗`` distributes over ``⊕``,
4. ``0`` annihilates: ``e ⊗ 0 = 0 ⊗ e = 0`` for every ``e ∈ D``.

The FAQ paper (Section 1.2) requires all semiring aggregates of a query to
share the same ``⊗``, ``0`` and ``1``; only ``⊕`` may differ per variable.
Instances of this class are cheap, immutable descriptions of such algebraic
structures; they are used both by the core engine and by the test-suite's
axiom checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence


class SemiringError(ValueError):
    """Raised when a semiring is used inconsistently (e.g. axiom violation)."""


_INF = float("inf")


@dataclass(frozen=True)
class Semiring:
    """A commutative semiring ``(D, ⊕, ⊗)`` with identities ``0`` and ``1``.

    Parameters
    ----------
    name:
        Human-readable name, used in reprs and error messages.
    add:
        The ``⊕`` operator (binary, commutative, associative).
    mul:
        The ``⊗`` operator (binary, commutative, associative, distributes
        over ``⊕``).
    zero:
        The additive identity, which must annihilate under ``⊗``.
    one:
        The multiplicative identity.
    eq:
        Optional equality predicate for domain values.  Defaults to ``==``
        (with a small absolute tolerance for floats, see :meth:`values_equal`).
    """

    name: str
    add: Callable[[Any, Any], Any]
    mul: Callable[[Any, Any], Any]
    zero: Any
    one: Any
    eq: Callable[[Any, Any], bool] | None = field(default=None, compare=False)

    # ------------------------------------------------------------------ #
    # basic operations
    # ------------------------------------------------------------------ #
    def values_equal(self, a: Any, b: Any) -> bool:
        """Return ``True`` if ``a`` and ``b`` are equal as domain values."""
        if self.eq is not None:
            return self.eq(a, b)
        if a == b:
            return True
        if isinstance(a, float) or isinstance(b, float) or isinstance(a, complex) or isinstance(b, complex):
            try:
                difference = abs(a - b)
                if difference == _INF:
                    # One side is infinite (tropical 0 = ±inf) and the other is
                    # not: a relative tolerance of 1e-9 * inf would declare
                    # *every* value equal to the infinite identity.
                    return False
                return difference <= 1e-9 * max(1.0, abs(a), abs(b))
            except (OverflowError, ValueError):  # pragma: no cover - inf/nan corner
                return False
        return False

    def is_zero(self, a: Any) -> bool:
        """Return ``True`` if ``a`` equals the additive identity."""
        return self.values_equal(a, self.zero)

    def is_one(self, a: Any) -> bool:
        """Return ``True`` if ``a`` equals the multiplicative identity."""
        return self.values_equal(a, self.one)

    def sum(self, values: Iterable[Any]) -> Any:
        """Fold ``⊕`` over ``values`` starting from ``0``."""
        acc = self.zero
        for value in values:
            acc = self.add(acc, value)
        return acc

    def product(self, values: Iterable[Any]) -> Any:
        """Fold ``⊗`` over ``values`` starting from ``1``."""
        acc = self.one
        for value in values:
            acc = self.mul(acc, value)
        return acc

    def power(self, value: Any, exponent: int) -> Any:
        """Raise ``value`` to an integer power under ``⊗`` by repeated squaring.

        This implements the ``|Dom(X_k)|``-th power needed when InsideOut
        passes a non-idempotent factor through a product aggregate
        (Section 5.2.2, Case 2 of the paper).
        """
        if exponent < 0:
            raise SemiringError(f"negative exponent {exponent} in semiring power")
        result = self.one
        base = value
        e = exponent
        while e > 0:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    def is_mul_idempotent(self, value: Any) -> bool:
        """Return ``True`` if ``value ⊗ value == value``.

        Idempotent elements (``0`` and ``1`` always are) let InsideOut skip
        powering factors when eliminating a product aggregate
        (Definition 5.2 of the paper).
        """
        return self.values_equal(self.mul(value, value), value)

    # ------------------------------------------------------------------ #
    # axiom verification (used by the test-suite and by sanity checks)
    # ------------------------------------------------------------------ #
    def check_axioms(self, sample: Sequence[Any]) -> None:
        """Verify the semiring axioms over a finite ``sample`` of the domain.

        Raises :class:`SemiringError` with a descriptive message on the first
        violated axiom.  The check is exhaustive over ``sample`` (cubic in its
        size), so keep samples small.
        """
        values = list(sample)
        for a in values:
            if not self.values_equal(self.add(a, self.zero), a):
                raise SemiringError(f"{self.name}: {a!r} ⊕ 0 != {a!r}")
            if not self.values_equal(self.mul(a, self.one), a):
                raise SemiringError(f"{self.name}: {a!r} ⊗ 1 != {a!r}")
            if not self.values_equal(self.mul(a, self.zero), self.zero):
                raise SemiringError(f"{self.name}: {a!r} ⊗ 0 != 0")
        for a in values:
            for b in values:
                if not self.values_equal(self.add(a, b), self.add(b, a)):
                    raise SemiringError(f"{self.name}: ⊕ not commutative on ({a!r}, {b!r})")
                if not self.values_equal(self.mul(a, b), self.mul(b, a)):
                    raise SemiringError(f"{self.name}: ⊗ not commutative on ({a!r}, {b!r})")
        for a in values:
            for b in values:
                for c in values:
                    if not self.values_equal(
                        self.add(self.add(a, b), c), self.add(a, self.add(b, c))
                    ):
                        raise SemiringError(f"{self.name}: ⊕ not associative")
                    if not self.values_equal(
                        self.mul(self.mul(a, b), c), self.mul(a, self.mul(b, c))
                    ):
                        raise SemiringError(f"{self.name}: ⊗ not associative")
                    if not self.values_equal(
                        self.mul(a, self.add(b, c)),
                        self.add(self.mul(a, b), self.mul(a, c)),
                    ):
                        raise SemiringError(
                            f"{self.name}: ⊗ does not distribute over ⊕ on ({a!r},{b!r},{c!r})"
                        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Semiring({self.name})"

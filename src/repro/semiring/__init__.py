"""Commutative semirings and aggregate operators for the FAQ framework.

The FAQ problem (Abo Khamis, Ngo, Rudra, PODS 2016) is parameterised by a
domain ``D``, a product operator ``⊗`` and, for every bound variable, an
aggregate operator ``⊕^(i)`` that either equals ``⊗`` or forms a commutative
semiring ``(D, ⊕^(i), ⊗)`` with the shared additive identity ``0`` and
multiplicative identity ``1``.

This package provides:

* :class:`~repro.semiring.base.Semiring` — a value type describing a
  commutative semiring together with its identities,
* :mod:`~repro.semiring.standard` — the standard semirings used throughout
  the paper (Boolean, sum-product / counting, max-product, min-plus, set),
* :mod:`~repro.semiring.aggregates` — aggregate descriptors used by
  :class:`~repro.core.query.FAQQuery` to tag each bound variable as either a
  *semiring aggregate* or a *product aggregate*.
"""

from repro.semiring.base import Semiring, SemiringError
from repro.semiring.standard import (
    BOOLEAN,
    COUNTING,
    MAX_PRODUCT,
    MAX_SUM,
    MIN_PLUS,
    MIN_PRODUCT,
    SUM_PRODUCT,
    STANDARD_SEMIRINGS,
    set_semiring,
)
from repro.semiring.aggregates import (
    Aggregate,
    ProductAggregate,
    SemiringAggregate,
    product_aggregate,
    semiring_aggregate,
)

__all__ = [
    "Semiring",
    "SemiringError",
    "BOOLEAN",
    "COUNTING",
    "MAX_PRODUCT",
    "MAX_SUM",
    "MIN_PLUS",
    "MIN_PRODUCT",
    "SUM_PRODUCT",
    "STANDARD_SEMIRINGS",
    "set_semiring",
    "Aggregate",
    "ProductAggregate",
    "SemiringAggregate",
    "product_aggregate",
    "semiring_aggregate",
]

"""Aggregate descriptors for bound variables of an FAQ query.

Every bound variable ``X_i`` of an FAQ query carries an aggregate operator
``⊕^(i)``.  The paper distinguishes two kinds (Section 1.2):

* **semiring aggregates** — ``(D, ⊕^(i), ⊗)`` forms a commutative semiring
  sharing the query's ``0`` and ``1``;
* **product aggregates** — ``⊕^(i)`` *is* the product ``⊗`` itself.

The tag of a variable (``free``, the semiring aggregate's name, or
``product``) drives the construction of the expression tree and the
precedence poset (Section 6).  Two semiring aggregates with the same tag are
treated as identical operators; the engine never tries to detect "accidental"
functional identity of differently-named aggregates (the paper explicitly
assumes differently written aggregates are functionally different).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable


FREE_TAG = "free"
PRODUCT_TAG = "product"


@dataclass(frozen=True)
class Aggregate:
    """An aggregate operator attached to one bound variable.

    Attributes
    ----------
    kind:
        Either ``"semiring"`` or ``"product"``.
    name:
        The tag of the aggregate.  For product aggregates this is always
        ``"product"``; for semiring aggregates it identifies the ``⊕``
        operator (e.g. ``"sum"``, ``"max"``, ``"or"``).
    op:
        The binary combine function for semiring aggregates.  ``None`` for
        product aggregates (the query's ``⊗`` is used instead).
    identity:
        The identity element of ``op`` (the shared ``0`` for semiring
        aggregates, the shared ``1`` for product aggregates).  May be ``None``
        when the caller relies on the query-level semiring identities.
    """

    kind: str
    name: str
    op: Callable[[Any, Any], Any] | None = None
    identity: Any = None

    def __post_init__(self) -> None:
        if self.kind not in ("semiring", "product"):
            raise ValueError(f"unknown aggregate kind {self.kind!r}")
        if self.kind == "product" and self.op is not None:
            raise ValueError("product aggregates must not carry their own op")
        if self.kind == "semiring" and self.op is None:
            raise ValueError("semiring aggregates require an op")

    # ------------------------------------------------------------------ #
    @property
    def is_product(self) -> bool:
        """``True`` iff this aggregate is the product ``⊗`` itself."""
        return self.kind == "product"

    @property
    def is_semiring(self) -> bool:
        """``True`` iff ``(D, ⊕, ⊗)`` forms a semiring (the usual case)."""
        return self.kind == "semiring"

    @property
    def tag(self) -> str:
        """Tag used by the expression tree: the aggregate name."""
        return PRODUCT_TAG if self.is_product else self.name

    def same_tag(self, other: "Aggregate") -> bool:
        """Return ``True`` if both aggregates carry the same tag."""
        return self.tag == other.tag

    def combine(self, a: Any, b: Any) -> Any:
        """Apply the ``⊕`` operator (only valid for semiring aggregates)."""
        if self.op is None:
            raise ValueError(
                "product aggregates are combined with the query product, "
                "not Aggregate.combine"
            )
        return self.op(a, b)

    def reduce(self, values: Iterable[Any], start: Any) -> Any:
        """Fold :meth:`combine` over ``values`` starting from ``start``."""
        acc = start
        for value in values:
            acc = self.combine(acc, value)
        return acc

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Aggregate({self.tag})"


def semiring_aggregate(name: str, op: Callable[[Any, Any], Any], identity: Any = None) -> Aggregate:
    """Build a semiring aggregate with the given tag and ``⊕`` operator."""
    return Aggregate(kind="semiring", name=name, op=op, identity=identity)


def product_aggregate() -> Aggregate:
    """Build the product aggregate (``⊕^(i) = ⊗``)."""
    return Aggregate(kind="product", name=PRODUCT_TAG, op=None, identity=None)


# The standard combine operators are module-level functions (not lambdas) so
# the aggregates — and with them whole queries — pickle: the replicated
# serving tier (:mod:`repro.serve`) ships query skeletons to worker
# processes over multiprocessing pipes.
def _op_sum(a: Any, b: Any) -> Any:
    return a + b


def _op_max(a: Any, b: Any) -> Any:
    return a if a >= b else b


def _op_min(a: Any, b: Any) -> Any:
    return a if a <= b else b


def _op_or(a: Any, b: Any) -> bool:
    return bool(a or b)


class SemiringAggregate:
    """Namespace of convenience constructors for common semiring aggregates."""

    @staticmethod
    def sum() -> Aggregate:
        """The ``Σ`` aggregate over a numeric domain."""
        return semiring_aggregate("sum", _op_sum, 0)

    @staticmethod
    def max() -> Aggregate:
        """The ``max`` aggregate over a numeric domain."""
        return semiring_aggregate("max", _op_max)

    @staticmethod
    def min() -> Aggregate:
        """The ``min`` aggregate (for (min,+)/(min,×) style queries)."""
        return semiring_aggregate("min", _op_min)

    @staticmethod
    def logical_or() -> Aggregate:
        """The ``∃`` / ``∨`` aggregate over the Boolean domain."""
        return semiring_aggregate("or", _op_or, False)


class ProductAggregate:
    """Namespace mirror of :class:`SemiringAggregate` for product aggregates."""

    @staticmethod
    def product() -> Aggregate:
        """The ``⊗`` aggregate (``∀`` in the logic encodings)."""
        return product_aggregate()

"""The standard semirings used throughout the FAQ paper (Appendix A).

* ``BOOLEAN``      — ``({False, True}, ∨, ∧)``: SAT, BCQ, CSP feasibility.
* ``COUNTING``     — ``(N, +, ×)``: #SAT, #CQ, permanent, triangle counting.
* ``SUM_PRODUCT``  — ``(R, +, ×)``: PGM marginals, matrix products, DFT.
* ``MAX_PRODUCT``  — ``(R+, max, ×)``: MAP inference.
* ``MIN_PLUS``     — ``(R ∪ {∞}, min, +)``: shortest paths / tropical.
* ``MAX_SUM``      — ``(R ∪ {-∞}, max, +)``: log-domain MAP.
* ``MIN_PRODUCT``  — ``([0, ∞], min, ×)``: used in some decoding problems.
* :func:`set_semiring` — ``(2^U, ∪, ∩)``: the set semiring over a finite
  universe, used to explain Yannakakis' algorithm.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterable

from repro.semiring.base import Semiring


def _or(a: bool, b: bool) -> bool:
    return bool(a or b)


def _and(a: bool, b: bool) -> bool:
    return bool(a and b)


def _add(a, b):
    return a + b


def _mul(a, b):
    return a * b


def _max(a, b):
    return a if a >= b else b


def _min(a, b):
    return a if a <= b else b


BOOLEAN = Semiring(name="boolean", add=_or, mul=_and, zero=False, one=True)
"""The Boolean semiring ``({False, True}, ∨, ∧)``."""

COUNTING = Semiring(name="counting", add=_add, mul=_mul, zero=0, one=1)
"""The counting semiring ``(N, +, ×)`` (integer sum-product)."""

SUM_PRODUCT = Semiring(name="sum-product", add=_add, mul=_mul, zero=0.0, one=1.0)
"""The real sum-product semiring ``(R, +, ×)``."""

MAX_PRODUCT = Semiring(name="max-product", add=_max, mul=_mul, zero=0.0, one=1.0)
"""The max-product semiring ``(R+, max, ×)`` used for MAP queries."""

MIN_PLUS = Semiring(
    name="min-plus", add=_min, mul=_add, zero=math.inf, one=0.0
)
"""The tropical (min, +) semiring with ``0 = +inf`` and ``1 = 0``."""

MAX_SUM = Semiring(
    name="max-sum", add=_max, mul=_add, zero=-math.inf, one=0.0
)
"""The (max, +) semiring, i.e. MAP inference in log-space."""

MIN_PRODUCT = Semiring(
    name="min-product", add=_min, mul=_mul, zero=math.inf, one=1.0
)
"""The (min, ×) semiring over ``[0, ∞]`` (note ``0 = +inf`` only when all
factor values are in ``[0, ∞]`` — it is the annihilating absorbing element
for ``min`` but *not* for ``×``; use with care and only with non-negative
finite factor values, where the engine never multiplies by ``∞``)."""


def set_semiring(universe: Iterable) -> Semiring:
    """Build the set semiring ``(2^U, ∪, ∩)`` over a finite universe.

    The additive identity is the empty set and the multiplicative identity is
    the full universe.  Values must be ``frozenset`` instances that are
    subsets of ``universe``.
    """
    full: FrozenSet = frozenset(universe)

    def union(a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a | b

    def intersect(a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a & b

    return Semiring(
        name=f"set({len(full)})",
        add=union,
        mul=intersect,
        zero=frozenset(),
        one=full,
    )


STANDARD_SEMIRINGS = {
    "boolean": BOOLEAN,
    "counting": COUNTING,
    "sum-product": SUM_PRODUCT,
    "max-product": MAX_PRODUCT,
    "min-plus": MIN_PLUS,
    "max-sum": MAX_SUM,
    "min-product": MIN_PRODUCT,
}
"""Registry of the standard named semirings."""

"""The in-process serving loop: one warm engine behind a typed submit API.

:class:`PlanServer` owns a thread pool, a shared
:class:`~repro.planner.cache.PlanCache` and a bounded store of
:class:`~repro.factors.index.SharedTrieCache` instances.  The redesigned
surface speaks :class:`~repro.serve.api.ServeRequest` /
:class:`~repro.serve.api.ServeResult`; the PR 5 call forms (bare
``FAQQuery`` objects in/``PlanResult`` futures out, ``dag_workers=``) keep
working through deprecation shims.

Three reuse effects stack on repeated traffic, now keyed by *content* —
stable cross-process digests from :func:`repro.planner.signature.query_content_key`
— instead of object identity:

1. **content-hash coalescing** — value-equal in-flight requests (even
   distinct objects from different clients) execute once; duplicates get
   the same result flagged ``coalesced=True``.
2. **digest-addressed plans** — a content-key hit in the plan cache skips
   even the WL signature computation; the stored ordering transfers by
   variable name because equal digests certify value equality.
3. **canonical-query pinning** — the first query object seen for a content
   key becomes the *canonical* instance all value-equal traffic executes
   as, so identity-keyed machinery downstream (hypergraph memos, the
   shared trie stores) hits across distinct-but-equal objects.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.query import FAQQuery, QueryError
from repro.exec import _UNSET, resolve_workers
from repro.factors.index import SharedTrieCache
from repro.planner import (
    DigestPlan,
    Plan,
    PlanCache,
    PlanResult,
    STRATEGY_INSIDEOUT,
    plan,
    query_content_key,
)
from repro.serve.api import PlanFailure, ServeRequest, ServeResult

_MAX_SHARED_QUERIES = 64
_MAX_CANONICAL_QUERIES = 256

_LEGACY_SUBMIT_MESSAGE = (
    "submitting bare FAQQuery objects is deprecated; wrap the query in a "
    "repro.serve.ServeRequest (returns a typed ServeResult)"
)


def _plan_digest(request: ServeRequest) -> Optional[str]:
    """The plan-cache digest of a request, or ``None`` when not cacheable.

    Pinned orderings are never cached (matching the planner), and
    ``use_cache=False`` opts out entirely.  The digest excludes the output
    mode — plans are execution-mode agnostic.
    """
    options = dict(request.options)
    if options.get("ordering") is not None or options.get("use_cache") is False:
        return None
    try:
        query_key = query_content_key(request.query)
    except TypeError:
        return None
    option_tag = ",".join(f"{k}={v!r}" for k, v in sorted(options.items()))
    return f"{query_key}|{option_tag}"


class PlanServer:
    """A long-lived serving loop over the planner and the engines.

    Parameters
    ----------
    workers:
        Per-query step-DAG parallelism forwarded to
        :meth:`~repro.planner.plan.Plan.execute` — the *unified* ``workers=``
        meaning shared with every other entry point (``None``/1 = serial
        per query; the pool still overlaps distinct queries).
    pool_size:
        Thread-pool size for concurrent query execution (defaults to the
        CPU count).  This is what ``PlanServer(workers=N)`` meant before
        the serving API redesign.
    cache:
        The :class:`~repro.planner.cache.PlanCache` to plan against
        (defaults to a server-private cache).
    coalesce:
        Server-wide default for content-hash coalescing of in-flight
        value-equal requests (individual requests opt out via
        ``ServeRequest(coalesce=False)``).
    share_tries:
        Keep a bounded LRU of per-content-key :class:`SharedTrieCache`
        stores so repeated executions skip re-indexing their base factors
        (InsideOut strategy only).
    dag_workers:
        Deprecated alias of ``workers`` (emits ``DeprecationWarning``).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        pool_size: Optional[int] = None,
        cache: Optional[PlanCache] = None,
        coalesce: bool = True,
        share_tries: bool = True,
        dag_workers: Any = _UNSET,
        max_shared_queries: int = _MAX_SHARED_QUERIES,
    ) -> None:
        self.workers = resolve_workers(workers, dag_workers)
        self.pool_size = resolve_workers(pool_size) or (os.cpu_count() or 1)
        self.cache = cache if cache is not None else PlanCache()
        self.coalesce = coalesce
        self.share_tries = share_tries
        self._pool = ThreadPoolExecutor(
            max_workers=self.pool_size, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        # content key -> primary in-flight future (typed path only).
        self._inflight: Dict[str, "Future[ServeResult]"] = {}
        # content key -> pinned canonical query object (LRU).  All
        # value-equal traffic executes as the canonical instance so the
        # identity-keyed stores below hit across distinct objects.
        self._canonical: "OrderedDict[str, FAQQuery]" = OrderedDict()
        # (content key | id, ordering) -> (query, SharedTrieCache).  The
        # query object is pinned so an id-keyed entry can never resolve a
        # recycled id() to another query's store, and so a content-keyed
        # entry is dropped when its canonical instance rotates.
        self._shared: "OrderedDict[tuple, Tuple[FAQQuery, SharedTrieCache]]" = OrderedDict()
        self._max_shared = max_shared_queries
        self._evicted_trie_hits = 0
        self._evicted_trie_misses = 0
        self._submitted = 0
        self._coalesced = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # the submit loop
    # ------------------------------------------------------------------ #
    def submit(
        self, request: Union[ServeRequest, FAQQuery], **kwargs: Any
    ) -> "Future[ServeResult]":
        """Enqueue one request; returns a future resolving to its result.

        Value-equal requests already in flight coalesce onto one execution:
        the duplicate's future resolves to the same result with
        ``coalesced=True``.  Asyncio callers wrap the returned future with
        :func:`asyncio.wrap_future`.

        Passing a bare :class:`FAQQuery` (plus ``plan()`` kwargs) is the
        deprecated PR 5 form; it returns a ``Future[PlanResult]``.
        """
        if self._closed:
            raise RuntimeError("PlanServer is shut down")
        if not isinstance(request, ServeRequest):
            warnings.warn(_LEGACY_SUBMIT_MESSAGE, DeprecationWarning, stacklevel=2)
            with self._lock:
                self._submitted += 1
            return self._pool.submit(self._run_legacy, request, kwargs)
        if kwargs:
            raise QueryError(
                f"ServeRequest submissions take no kwargs (got {sorted(kwargs)}); "
                "put planner overrides in ServeRequest.options"
            )
        key = request.content_key if (self.coalesce and request.coalesce) else None
        with self._lock:
            self._submitted += 1
            if key is not None:
                primary = self._inflight.get(key)
                if primary is not None:
                    self._coalesced += 1
                    return _chain_coalesced(primary)
            future: "Future[ServeResult]" = Future()
            if key is not None:
                self._inflight[key] = future
        self._pool.submit(self._fulfil, request, key, future)
        return future

    def execute_request(self, request: ServeRequest) -> ServeResult:
        """Execute one request synchronously on the calling thread.

        Bypasses the pool and the in-flight coalescing map (the replica
        tier calls this — its frontend already coalesced) but shares the
        plan cache, digest plans, canonical pinning and trie stores.
        """
        return self._run_request(request)

    def execute_batch(
        self,
        requests: Sequence[Union[ServeRequest, FAQQuery]],
        coalesce: bool = True,
        **kwargs: Any,
    ) -> List[Union[ServeResult, PlanResult]]:
        """Execute ``requests`` concurrently; results come back in input order.

        With ``coalesce=True`` value-equal in-flight requests execute once
        and share one result (duplicates flagged ``coalesced=True``).  A
        batch of bare queries is the deprecated PR 5 form and returns
        ``PlanResult`` objects (coalesced on object identity, as before).
        """
        if requests and not isinstance(requests[0], ServeRequest):
            return self._execute_batch_legacy(requests, coalesce, kwargs)
        if kwargs:
            raise QueryError(
                f"ServeRequest batches take no kwargs (got {sorted(kwargs)}); "
                "put planner overrides in ServeRequest.options"
            )
        if not coalesce:
            requests = [
                r if not r.coalesce else ServeRequest(
                    query=r.query,
                    output_mode=r.output_mode,
                    tenant=r.tenant,
                    deadline=r.deadline,
                    coalesce=False,
                    options=r.options,
                )
                for r in requests
            ]
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _fulfil(
        self, request: ServeRequest, key: Optional[str], future: "Future[ServeResult]"
    ) -> None:
        try:
            result = self._run_request(request)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the future
            self._retire(key, future)
            future.set_exception(exc)
        else:
            self._retire(key, future)
            future.set_result(result)

    def _retire(self, key: Optional[str], future: "Future[ServeResult]") -> None:
        # Remove from the in-flight map *before* resolving the future, so a
        # request arriving after resolution starts a fresh execution
        # instead of coalescing onto a completed one forever.
        if key is None:
            return
        with self._lock:
            if self._inflight.get(key) is future:
                del self._inflight[key]

    def _run_request(self, request: ServeRequest) -> ServeResult:
        try:
            query_key = query_content_key(request.query)
        except TypeError:
            query_key = None
        query = self._canonical_query(query_key, request.query)
        started = time.perf_counter()
        try:
            chosen = self._plan_for(query, request)
            shared = None
            if self.share_tries and chosen.strategy == STRATEGY_INSIDEOUT:
                shared = self._shared_tries_for(query_key, query, chosen.ordering)
            executed = chosen.execute(
                output_mode=request.output_mode,
                workers=self.workers,
                shared_tries=shared,
            )
        except QueryError as exc:
            raise PlanFailure(str(exc), cause_type=type(exc).__name__) from exc
        return ServeResult(
            factor=executed.factor,
            factorized=executed.factorized,
            ordering=tuple(executed.ordering),
            strategy=chosen.strategy,
            backend=chosen.backend,
            content_key=request.content_key,
            coalesced=False,
            replica=None,
            seconds=time.perf_counter() - started,
            stats=executed.stats,
        )

    def _plan_for(self, query: FAQQuery, request: ServeRequest) -> Plan:
        digest = _plan_digest(request)
        if digest is not None:
            hit = self.cache.lookup_digest(digest)
            if hit is not None and set(hit.ordering) == set(query.order):
                # Equal content digests certify value equality, so the
                # stored ordering/strategy/backend transfer verbatim — no
                # signature computation, no canonical-index translation.
                return Plan(
                    query=query,
                    strategy=hit.strategy,
                    ordering=hit.ordering,
                    backend=hit.backend,
                    estimated_cost=hit.estimated_cost,
                    faq_width=hit.faq_width,
                    cache_hit=True,
                )
        chosen = plan(query, cache=self.cache, **request.plan_kwargs())
        if digest is not None:
            self.cache.store_digest(
                digest,
                DigestPlan(
                    strategy=chosen.strategy,
                    backend=chosen.backend,
                    ordering=tuple(chosen.ordering),
                    estimated_cost=chosen.estimated_cost,
                    faq_width=chosen.faq_width,
                ),
            )
        return chosen

    def _canonical_query(self, query_key: Optional[str], query: FAQQuery) -> FAQQuery:
        """The pinned canonical instance for this content key (LRU).

        The first object seen under a key wins; value-equal later arrivals
        execute as that instance, so identity-keyed downstream machinery
        (hypergraph memos, trie stores) hits across distinct objects.
        """
        if query_key is None:
            return query
        with self._lock:
            canonical = self._canonical.get(query_key)
            if canonical is not None:
                self._canonical.move_to_end(query_key)
                return canonical
            self._canonical[query_key] = query
            while len(self._canonical) > _MAX_CANONICAL_QUERIES:
                self._canonical.popitem(last=False)
            return query

    def _shared_tries_for(
        self, query_key: Optional[str], query: FAQQuery, ordering: Sequence[str]
    ) -> SharedTrieCache:
        """The cross-run trie store for (content key, ordering), LRU-bounded.

        Falls back to object identity for queries with no content key.
        Entries pin the query object they were built for: a store must
        neither serve a recycled ``id()`` nor outlive the canonical
        instance whose factors it indexes (``covers`` checks factor
        identity, so a mismatched store would silently disable sharing).
        """
        key = (query_key if query_key is not None else id(query), tuple(ordering))
        with self._lock:
            entry = self._shared.get(key)
            if entry is not None and entry[0] is query:
                self._shared.move_to_end(key)
                return entry[1]
            shared = SharedTrieCache(ordering, query.semiring, query.factors)
            self._shared[key] = (query, shared)
            while len(self._shared) > self._max_shared:
                _, (_, evicted) = self._shared.popitem(last=False)
                self._evicted_trie_hits += evicted.hits
                self._evicted_trie_misses += evicted.misses
            return shared

    # ------------------------------------------------------------------ #
    # the deprecated PR 5 surface
    # ------------------------------------------------------------------ #
    def _run_legacy(self, query: FAQQuery, kwargs: Dict[str, Any]) -> PlanResult:
        output_mode = kwargs.pop("output_mode", "listing")
        chosen = plan(query, cache=self.cache, **kwargs)
        shared = None
        if self.share_tries and chosen.strategy == STRATEGY_INSIDEOUT:
            try:
                query_key = query_content_key(query)
            except TypeError:
                query_key = None
            shared = self._shared_tries_for(
                query_key, self._canonical_query(query_key, query), chosen.ordering
            )
        return chosen.execute(
            output_mode=output_mode, workers=self.workers, shared_tries=shared
        )

    def _execute_batch_legacy(
        self, queries: Sequence[FAQQuery], coalesce: bool, kwargs: Dict[str, Any]
    ) -> List[PlanResult]:
        warnings.warn(_LEGACY_SUBMIT_MESSAGE, DeprecationWarning, stacklevel=3)
        futures: List[Future] = []
        in_flight: Dict[int, Future] = {}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)  # already warned once
            for query in queries:
                if coalesce:
                    future = in_flight.get(id(query))
                    if future is not None:
                        with self._lock:
                            self._coalesced += 1
                        futures.append(future)
                        continue
                future = self.submit(query, **dict(kwargs))
                if coalesce:
                    in_flight[id(query)] = future
                futures.append(future)
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # observability + lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Serving counters: submissions, coalescing, cache and trie reuse.

        ``coalesced`` counts requests answered by another request's
        execution (content-hash coalescing, plus identity coalescing on the
        deprecated batch path).  The trie counters are cumulative over the
        server's lifetime — stores evicted from the LRU contribute the
        counts they had at eviction time, so ``shared_trie_hits`` is
        monotone and safe to trend.
        """
        with self._lock:
            shared = [entry[1] for entry in self._shared.values()]
            submitted = self._submitted
            coalesced = self._coalesced
            evicted_hits = self._evicted_trie_hits
            evicted_misses = self._evicted_trie_misses
            inflight = len(self._inflight)
        return {
            "submitted": submitted,
            "coalesced": coalesced,
            "inflight": inflight,
            "plan_cache_hits": self.cache.hits,
            "plan_cache_misses": self.cache.misses,
            "shared_trie_stores": len(shared),
            "shared_trie_hits": evicted_hits + sum(s.hits for s in shared),
            "shared_trie_misses": evicted_misses + sum(s.misses for s in shared),
        }

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for in-flight requests."""
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "PlanServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)


def _chain_coalesced(primary: "Future[ServeResult]") -> "Future[ServeResult]":
    """A future resolving to the primary's result flagged ``coalesced=True``."""
    chained: "Future[ServeResult]" = Future()

    def _copy(done: "Future[ServeResult]") -> None:
        if done.cancelled():
            chained.cancel()
            return
        exc = done.exception()
        if exc is not None:
            chained.set_exception(exc)
        else:
            chained.set_result(done.result().mark_coalesced())

    primary.add_done_callback(_copy)
    return chained


def execute_batch(
    requests: Sequence[Union[ServeRequest, FAQQuery]],
    *,
    workers: Optional[int] = None,
    pool_size: Optional[int] = None,
    cache: Optional[PlanCache] = None,
    coalesce: bool = True,
    share_tries: bool = True,
    dag_workers: Any = _UNSET,
    **kwargs: Any,
) -> List[Union[ServeResult, PlanResult]]:
    """Run a batch of requests against a transient :class:`PlanServer`.

    Results come back in input order.  For long-lived traffic keep a
    :class:`PlanServer` (or a replicated :class:`~repro.serve.frontend.Frontend`)
    instead — its plan cache and shared tries stay warm across batches.
    """
    with PlanServer(
        workers=workers,
        pool_size=pool_size,
        cache=cache,
        share_tries=share_tries,
        dag_workers=dag_workers,
    ) as server:
        return server.execute_batch(requests, coalesce=coalesce, **kwargs)

"""The in-process serving loop: one warm engine behind a typed submit API.

:class:`PlanServer` owns a thread pool, a shared
:class:`~repro.planner.cache.PlanCache` and a bounded store of
:class:`~repro.factors.index.SharedTrieCache` instances.  The redesigned
surface speaks :class:`~repro.serve.api.ServeRequest` /
:class:`~repro.serve.api.ServeResult`; the PR 5 call forms (bare
``FAQQuery`` objects in/``PlanResult`` futures out, ``dag_workers=``) keep
working through deprecation shims.

Three reuse effects stack on repeated traffic, now keyed by *content* —
stable cross-process digests from :func:`repro.planner.signature.query_content_key`
— instead of object identity:

1. **content-hash coalescing** — value-equal in-flight requests (even
   distinct objects from different clients) execute once; duplicates get
   the same result flagged ``coalesced=True``.
2. **digest-addressed plans** — a content-key hit in the plan cache skips
   even the WL signature computation; the stored ordering transfers by
   variable name because equal digests certify value equality.
3. **canonical-query pinning** — the first query object seen for a content
   key becomes the *canonical* instance all value-equal traffic executes
   as, so identity-keyed machinery downstream (hypergraph memos, the
   shared trie stores) hits across distinct-but-equal objects.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.caching import LruCache
from repro.core.query import FAQQuery, QueryError
from repro.exec import (
    _UNSET,
    DagExecutor,
    MergedRunInfo,
    RunSpec,
    StepResultCache,
    resolve_workers,
)
from repro.factors.delta import FactorDelta
from repro.factors.index import SharedTrieCache
from repro.incremental import IncrementalView
from repro.planner import (
    CostModel,
    DigestPlan,
    Plan,
    PlanCache,
    PlanResult,
    STRATEGY_INSIDEOUT,
    plan,
    query_content_key,
    record_plan_feedback,
)
from repro.serve.api import PlanFailure, ServeRequest, ServeResult
from repro.serve.snapshot import SnapshotStore

_MAX_SHARED_QUERIES = 64
_MAX_CANONICAL_QUERIES = 256
_MAX_INCREMENTAL_VIEWS = 32

# kind/version tags of the completed-result section inside a snapshot.
_RESULT_SNAPSHOT_KIND = "repro-serve-results"
_RESULT_SNAPSHOT_VERSION = 1

_LEGACY_SUBMIT_MESSAGE = (
    "submitting bare FAQQuery objects is deprecated; wrap the query in a "
    "repro.serve.ServeRequest (returns a typed ServeResult)"
)


def _plan_digest(request: ServeRequest) -> Optional[str]:
    """The plan-cache digest of a request, or ``None`` when not cacheable.

    Pinned orderings are never cached (matching the planner), and
    ``use_cache=False`` opts out entirely.  The digest excludes the output
    mode — plans are execution-mode agnostic.
    """
    options = dict(request.options)
    if options.get("ordering") is not None or options.get("use_cache") is False:
        return None
    try:
        query_key = query_content_key(request.query)
    except TypeError:
        return None
    option_tag = ",".join(f"{k}={v!r}" for k, v in sorted(options.items()))
    return f"{query_key}|{option_tag}"


class PlanServer:
    """A long-lived serving loop over the planner and the engines.

    Parameters
    ----------
    workers:
        Per-query step-DAG parallelism forwarded to
        :meth:`~repro.planner.plan.Plan.execute` — the *unified* ``workers=``
        meaning shared with every other entry point (``None``/1 = serial
        per query, ``"auto"`` = capped CPU count; the pool still overlaps
        distinct queries).
    workers_mode:
        Pool flavour for per-query parallelism: ``"thread"`` (default) or
        ``"process"`` (shared-memory worker processes — the sparse kernels
        escape the GIL; see :mod:`repro.exec.procpool`).  Applies to plain
        executions; merged batches and incremental views always use
        threads.
    pool_size:
        Thread-pool size for concurrent query execution (defaults to the
        CPU count).  This is what ``PlanServer(workers=N)`` meant before
        the serving API redesign.
    cache:
        The :class:`~repro.planner.cache.PlanCache` to plan against.
        Defaults to a server-private cache *paired with a server-private
        cost model* (``PlanCache(cost_model=CostModel())``), closing the
        planning loop: every InsideOut execution feeds its observed step
        sizes back through :func:`repro.planner.record_plan_feedback`, so
        mis-estimated plans are invalidated and re-searched against the
        calibrated model without perturbing the process-wide default model.
    coalesce:
        Server-wide default for content-hash coalescing of in-flight
        value-equal requests (individual requests opt out via
        ``ServeRequest(coalesce=False)``).
    share_tries:
        Keep a bounded LRU of per-content-key :class:`SharedTrieCache`
        stores so repeated executions skip re-indexing their base factors
        (InsideOut strategy only).
    share_steps:
        Keep a digest-keyed :class:`~repro.exec.StepResultCache` of
        completed elimination steps, so sequential repeated traffic (and
        merged batches) replays shared elimination prefixes instead of
        recomputing them.  Engaged only for coalescible requests under the
        default backend policy — equal step digests certify bit-identical
        results, so replay is invisible apart from wall-clock time.
    merge:
        Server-wide default for cross-query common sub-elimination in
        :meth:`execute_batch`: InsideOut requests of one batch are lowered
        to content-addressed step DAGs, merged into one multi-sink DAG,
        and each distinct step digest executes exactly once.
    cache_results:
        Keep a bounded LRU of *completed* :class:`ServeResult` objects
        keyed by content digest, answering value-identical repeats without
        re-execution.  Off by default in-process (in-process repeats
        already replay via ``share_steps``); the replica tier enables it —
        its rendezvous-routed traffic concentrates repeats per replica.
    dag_workers:
        Deprecated alias of ``workers`` (emits ``DeprecationWarning``).
    """

    def __init__(
        self,
        workers: Optional[int | str] = None,
        *,
        workers_mode: str = "thread",
        pool_size: Optional[int] = None,
        cache: Optional[PlanCache] = None,
        coalesce: bool = True,
        share_tries: bool = True,
        share_steps: bool = True,
        merge: bool = True,
        cache_results: bool = False,
        result_cache_size: int = 256,
        step_cache_size: int = 512,
        snapshot_store: Optional[SnapshotStore] = None,
        dag_workers: Any = _UNSET,
        max_shared_queries: int = _MAX_SHARED_QUERIES,
    ) -> None:
        self.workers = resolve_workers(workers, dag_workers)
        if workers_mode not in ("thread", "process"):
            raise QueryError(
                f'workers_mode must be "thread" or "process", got {workers_mode!r}'
            )
        self.workers_mode = workers_mode
        self.pool_size = resolve_workers(pool_size) or (os.cpu_count() or 1)
        self.cache = cache if cache is not None else PlanCache(cost_model=CostModel())
        self.coalesce = coalesce
        self.share_tries = share_tries
        self.share_steps = share_steps
        self.merge = merge
        self._pool = ThreadPoolExecutor(
            max_workers=self.pool_size, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        # content key -> primary in-flight future (typed path only).
        self._inflight: Dict[str, "Future[ServeResult]"] = {}
        # content key -> pinned canonical query object (LRU).  All
        # value-equal traffic executes as the canonical instance so the
        # identity-keyed stores below hit across distinct objects.
        self._canonical: "OrderedDict[str, FAQQuery]" = OrderedDict()
        # (content key | id, ordering) -> (query, SharedTrieCache).  The
        # query object is pinned so an id-keyed entry can never resolve a
        # recycled id() to another query's store, and so a content-keyed
        # entry is dropped when its canonical instance rotates.
        self._shared: "OrderedDict[tuple, Tuple[FAQQuery, SharedTrieCache]]" = OrderedDict()
        self._max_shared = max_shared_queries
        self._evicted_trie_hits = 0
        self._evicted_trie_misses = 0
        # content-addressed step IR caches: completed elimination steps
        # (replayed into later runs) and completed whole results.
        self._step_results = StepResultCache(maxsize=step_cache_size) if share_steps else None
        self._results: Optional[LruCache] = (
            LruCache(maxsize=result_cache_size) if cache_results else None
        )
        self._result_cache_hits = 0
        # query content key -> warm IncrementalView (LRU).  An update hit
        # answers from the view's maintained state instead of re-executing.
        self._incremental: "OrderedDict[str, IncrementalView]" = OrderedDict()
        self._incremental_hits = 0
        self._incremental_misses = 0
        # Durable snapshot spill: restore warm views + completed results
        # from a prior incarnation over the same directory, and spill
        # after every update batch (best-effort on both sides).
        self._snapshots = snapshot_store
        self._snapshot_restores = 0
        self._restore_snapshots()
        self._merged_batches = 0
        self._merged_queries = 0
        self._merged_total_nodes = 0
        self._merged_unique_nodes = 0
        self._merged_executed_nodes = 0
        self._merged_replayed_nodes = 0
        self._submitted = 0
        self._coalesced = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # the submit loop
    # ------------------------------------------------------------------ #
    def submit(
        self, request: Union[ServeRequest, FAQQuery], **kwargs: Any
    ) -> "Future[ServeResult]":
        """Enqueue one request; returns a future resolving to its result.

        Value-equal requests already in flight coalesce onto one execution:
        the duplicate's future resolves to the same result with
        ``coalesced=True``.  Asyncio callers wrap the returned future with
        :func:`asyncio.wrap_future`.

        Passing a bare :class:`FAQQuery` (plus ``plan()`` kwargs) is the
        deprecated PR 5 form; it returns a ``Future[PlanResult]``.
        """
        if self._closed:
            raise RuntimeError("PlanServer is shut down")
        if not isinstance(request, ServeRequest):
            warnings.warn(_LEGACY_SUBMIT_MESSAGE, DeprecationWarning, stacklevel=2)
            with self._lock:
                self._submitted += 1
            return self._pool.submit(self._run_legacy, request, kwargs)
        if kwargs:
            raise QueryError(
                f"ServeRequest submissions take no kwargs (got {sorted(kwargs)}); "
                "put planner overrides in ServeRequest.options"
            )
        key = request.content_key if (self.coalesce and request.coalesce) else None
        with self._lock:
            self._submitted += 1
            if key is not None:
                primary = self._inflight.get(key)
                if primary is not None:
                    self._coalesced += 1
                    return _chain_coalesced(primary)
            future: "Future[ServeResult]" = Future()
            if key is not None:
                self._inflight[key] = future
        self._pool.submit(self._fulfil, request, key, future)
        return future

    def execute_request(self, request: ServeRequest) -> ServeResult:
        """Execute one request synchronously on the calling thread.

        Bypasses the pool and the in-flight coalescing map (the replica
        tier calls this — its frontend already coalesced) but shares the
        plan cache, digest plans, canonical pinning and trie stores.
        """
        return self._run_request(request)

    def update_factor(
        self, request: ServeRequest, factor_index: int, delta: FactorDelta
    ) -> ServeResult:
        """Apply one factor update and answer the request incrementally.

        Shorthand for :meth:`update_factors` with a single-delta batch —
        see there for the semantics.
        """
        return self.update_factors(request, [(factor_index, delta)])

    def update_factors(
        self, request: ServeRequest, deltas: Sequence[Tuple[int, FactorDelta]]
    ) -> ServeResult:
        """Apply a batch of factor updates atomically and answer incrementally.

        The request's query identifies the *current* (pre-update) state;
        each ``(factor_index, delta)`` changes cells of
        ``query.factors[factor_index]``, applied in order as **one atomic
        batch**: every cache keyed by the pre-update content stays live
        (and keeps answering with the consistent pre-batch state) until the
        whole batch has been applied, and only then is the view re-pinned
        under the post-batch key — no request can observe a half-applied
        batch.  A warm :class:`~repro.incremental.IncrementalView` for the
        query's content key answers via delta propagation / monotone append
        / dirty-subgraph replay (counted in ``incremental_hits``); a cold
        miss plans the query, builds a baseline, then applies the batch.

        Updates never mutate old factors — they stay frozen under their
        digests — so every digest-keyed cache stays sound.  What *is* keyed
        by the old query digest is invalidated here: the canonical-query
        pin, the shared trie stores and any completed-result cache entries
        under the stale key are evicted before the fresh answer is
        returned.  (The step-result cache needs no eviction: updated
        factors have *new* digests, so stale step keys simply stop being
        looked up.)  When the server owns a
        :class:`~repro.serve.snapshot.SnapshotStore`, the advanced view is
        spilled to disk afterwards so a restarted server resumes warm.
        """
        if self._closed:
            raise RuntimeError("PlanServer is shut down")
        if request.output_mode != "listing":
            raise PlanFailure(
                "incremental updates support listing output only "
                f"(got output_mode={request.output_mode!r})"
            )
        deltas = list(deltas)
        if not deltas:
            raise PlanFailure("update_factors needs at least one (index, delta) pair")
        started = time.perf_counter()
        try:
            old_key: Optional[str] = query_content_key(request.query)
        except TypeError:
            old_key = None
        view: Optional[IncrementalView] = None
        if old_key is not None:
            with self._lock:
                view = self._incremental.pop(old_key, None)
        with self._lock:
            if view is not None:
                self._incremental_hits += 1
            else:
                self._incremental_misses += 1
        if view is None:
            query = self._canonical_query(old_key, request.query)
            try:
                chosen = self._plan_for(query, request)
                ordering = (
                    list(chosen.ordering)
                    if chosen.strategy == STRATEGY_INSIDEOUT
                    else None
                )
                view = IncrementalView(
                    query, ordering=ordering, workers=self.workers or 1
                )
                view.result()  # baseline answer + step snapshot
            except QueryError as exc:
                raise PlanFailure(str(exc), cause_type=type(exc).__name__) from exc
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 - e.g. an injected kernel fault
                raise PlanFailure(
                    f"{type(exc).__name__}: {exc}", cause_type=type(exc).__name__
                ) from exc
        factor: Any = None
        try:
            for factor_index, delta in deltas:
                factor = view.update_factor(factor_index, delta)
        except QueryError as exc:
            raise PlanFailure(str(exc), cause_type=type(exc).__name__) from exc
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # noqa: BLE001 - e.g. an injected kernel fault
            raise PlanFailure(
                f"{type(exc).__name__}: {exc}", cause_type=type(exc).__name__
            ) from exc
        if old_key is not None:
            self._evict_content(old_key)
        try:
            new_key: Optional[str] = query_content_key(view.query)
        except TypeError:
            new_key = None
        if new_key is not None:
            self._canonical_query(new_key, view.query)
            with self._lock:
                self._incremental[new_key] = view
                self._incremental.move_to_end(new_key)
                while len(self._incremental) > _MAX_INCREMENTAL_VIEWS:
                    self._incremental.popitem(last=False)
        self._spill_snapshots()
        return ServeResult(
            factor=factor,
            ordering=tuple(view.ordering),
            strategy=STRATEGY_INSIDEOUT,
            backend=view.backend,
            content_key=replace(request, query=view.query).content_key,
            coalesced=False,
            replica=None,
            seconds=time.perf_counter() - started,
            stats=view.stats,
        )

    # ------------------------------------------------------------------ #
    # durable snapshot spill / restore
    # ------------------------------------------------------------------ #
    def _restore_snapshots(self) -> None:
        """Adopt views + completed results from a prior incarnation's spill.

        Best-effort: a missing, torn, corrupt or stale-version file adopts
        nothing (the store validates magic + checksum + version).  Each
        restored view starts with fresh stats, so ``full_runs == 0`` on a
        restored view certifies its answers never paid a cold full run.
        """
        if self._snapshots is None:
            return
        sections = self._snapshots.load("server")
        if not isinstance(sections, dict):
            return
        restored = 0
        for key, state in sections.get("views") or []:
            try:
                view = IncrementalView.restore(state, workers=self.workers or 1)
            except Exception:  # noqa: BLE001 - a stale entry, not a failure
                continue
            with self._lock:
                self._incremental[key] = view
                self._incremental.move_to_end(key)
                while len(self._incremental) > _MAX_INCREMENTAL_VIEWS:
                    self._incremental.popitem(last=False)
            self._canonical_query(key, view.query)
            restored += 1
        if self._results is not None:
            restored += self._results.adopt_entries(
                sections.get("results"),
                kind=_RESULT_SNAPSHOT_KIND,
                version=_RESULT_SNAPSHOT_VERSION,
            )
        with self._lock:
            self._snapshot_restores += restored

    def _spill_snapshots(self) -> bool:
        """Persist the warm views + result cache (best-effort; False on failure)."""
        if self._snapshots is None:
            return False
        with self._lock:
            views = list(self._incremental.items())
        sections: Dict[str, Any] = {
            "views": [(key, view.dump_state()) for key, view in views],
        }
        if self._results is not None:
            sections["results"] = self._results.dump_entries(
                kind=_RESULT_SNAPSHOT_KIND, version=_RESULT_SNAPSHOT_VERSION
            )
        try:
            return self._snapshots.save("server", sections)
        except Exception:  # noqa: BLE001 - spill must never fail the request
            return False

    def snapshot_now(self) -> bool:
        """Spill the current warm state immediately (e.g. before shutdown)."""
        return self._spill_snapshots()

    def _evict_content(self, query_key: str) -> None:
        """Drop every cache entry keyed under a now-stale query digest.

        Called on the update path after a factor changed: the canonical
        pin, the shared trie stores indexing the old factors, and any
        completed results for the old query content must not answer future
        traffic.  In-flight coalescing needs no eviction (the old key maps
        to a result that was correct when those requests were admitted).
        """
        with self._lock:
            self._canonical.pop(query_key, None)
            stale = [key for key in self._shared if key[0] == query_key]
            for key in stale:
                _, evicted = self._shared.pop(key)
                self._evicted_trie_hits += evicted.hits
                self._evicted_trie_misses += evicted.misses
        if self._results is not None:
            prefix = query_key + ":"
            for key, _ in self._results.items():
                if isinstance(key, str) and key.startswith(prefix):
                    self._results.pop(key, None)

    def execute_batch(
        self,
        requests: Sequence[Union[ServeRequest, FAQQuery]],
        coalesce: bool = True,
        merge: Optional[bool] = None,
        **kwargs: Any,
    ) -> List[Union[ServeResult, PlanResult]]:
        """Execute ``requests`` concurrently; results come back in input order.

        With ``coalesce=True`` value-equal requests execute once and share
        one result (duplicates flagged ``coalesced=True``).  With ``merge``
        (defaulting to the server-wide setting) the batch's InsideOut
        requests are additionally lowered to content-addressed step DAGs
        and merged into one multi-sink DAG — structurally identical
        elimination steps *across distinct queries* execute exactly once
        and replay into every run that needs them, with per-query stats
        attributed back to each result.  A batch of bare queries is the
        deprecated PR 5 form and returns ``PlanResult`` objects (coalesced
        on object identity, as before).
        """
        if requests and not isinstance(requests[0], ServeRequest):
            return self._execute_batch_legacy(requests, coalesce, kwargs)
        if kwargs:
            raise QueryError(
                f"ServeRequest batches take no kwargs (got {sorted(kwargs)}); "
                "put planner overrides in ServeRequest.options"
            )
        if merge is None:
            merge = self.merge
        if merge and coalesce and self.coalesce and len(requests) > 1:
            return self._execute_batch_merged(list(requests))
        if not coalesce:
            requests = [
                r if not r.coalesce else ServeRequest(
                    query=r.query,
                    output_mode=r.output_mode,
                    tenant=r.tenant,
                    deadline=r.deadline,
                    coalesce=False,
                    options=r.options,
                )
                for r in requests
            ]
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def _execute_batch_merged(self, requests: List[ServeRequest]) -> List[ServeResult]:
        """Cross-query common sub-elimination over one batch.

        Content-key duplicates first coalesce onto one representative
        (preserving the ``coalesced`` counter semantics of the submit
        path, deterministically).  Representative InsideOut requests are
        then executed as one merged multi-sink step DAG
        (:meth:`repro.exec.DagExecutor.run_many`) sharing the server's
        step-result cache; other strategies, coalesce-opted-out requests
        and completed-result-cache hits run on the ordinary paths.  Any
        merged-run failure falls back to independent execution — merging
        is an optimisation, never a correctness risk.
        """
        if self._closed:
            raise RuntimeError("PlanServer is shut down")
        with self._lock:
            self._submitted += len(requests)
            self._merged_batches += 1

        # --- content-key dedup onto representatives -------------------- #
        rep_of: List[int] = []
        duplicate: List[bool] = []
        reps: List[ServeRequest] = []
        first_of: Dict[str, int] = {}
        dup_count = 0
        for request in requests:
            key = request.content_key if (self.coalesce and request.coalesce) else None
            if key is not None and key in first_of:
                rep_of.append(first_of[key])
                duplicate.append(True)
                dup_count += 1
                continue
            if key is not None:
                first_of[key] = len(reps)
            rep_of.append(len(reps))
            duplicate.append(False)
            reps.append(request)
        if dup_count:
            with self._lock:
                self._coalesced += dup_count

        # --- plan representatives; partition mergeable vs solo ---------- #
        rep_results: List[Optional[ServeResult]] = [None] * len(reps)
        rep_errors: List[Optional[BaseException]] = [None] * len(reps)
        merged: List[Tuple[int, Plan, float]] = []  # (rep index, plan, started)
        specs: List[RunSpec] = []
        solo: List[int] = []
        for i, request in enumerate(reps):
            cached = self._completed_result(request)
            if cached is not None:
                rep_results[i] = cached
                continue
            if not request.coalesce:
                # A private execution was promised; keep it out of the
                # shared DAG (and the step cache — _run_request gates it).
                solo.append(i)
                continue
            started = time.perf_counter()
            try:
                query_key = query_content_key(request.query)
            except TypeError:
                query_key = None
            query = self._canonical_query(query_key, request.query)
            try:
                chosen = self._plan_for(query, request)
            except QueryError as exc:
                rep_errors[i] = PlanFailure(str(exc), cause_type=type(exc).__name__)
                continue
            if chosen.strategy != STRATEGY_INSIDEOUT:
                solo.append(i)
                continue
            shared = None
            if self.share_tries:
                shared = self._shared_tries_for(query_key, query, chosen.ordering)
            specs.append(RunSpec(
                query=query,
                ordering=list(chosen.ordering),
                output_mode=request.output_mode,
                backend=chosen.backend,
                shared_tries=shared,
            ))
            merged.append((i, chosen, started))

        # --- the merged multi-sink run ---------------------------------- #
        if specs:
            info = MergedRunInfo()
            executor = DagExecutor(workers=self.workers or 1)
            try:
                outcomes = executor.run_many(
                    specs, step_cache=self._step_results, info=info
                )
            except QueryError as exc:
                failure = PlanFailure(str(exc), cause_type=type(exc).__name__)
                for i, _, _ in merged:
                    rep_errors[i] = failure
            except BaseException:
                # Correctness fallback: execute the runs independently.
                for i, _, _ in merged:
                    try:
                        rep_results[i] = self._run_request(reps[i])
                    except BaseException as exc:  # noqa: BLE001 - per-request
                        rep_errors[i] = exc
            else:
                with self._lock:
                    self._merged_queries += len(specs)
                    self._merged_total_nodes += info.total_nodes
                    self._merged_unique_nodes += info.merged_nodes
                    self._merged_executed_nodes += info.executed_nodes
                    self._merged_replayed_nodes += info.replayed_nodes
                for (i, chosen, started), outcome in zip(merged, outcomes):
                    executed = PlanResult(
                        plan=chosen,
                        factor=outcome.factor,
                        factorized=outcome.factorized,
                        ordering=outcome.ordering,
                        raw=outcome,
                    )
                    rep_results[i] = self._finish(reps[i], chosen, executed, started)

        # --- solo representatives on the pool --------------------------- #
        if solo:
            futures = {i: self._pool.submit(self._run_request, reps[i]) for i in solo}
            for i, future in futures.items():
                try:
                    rep_results[i] = future.result()
                except BaseException as exc:  # noqa: BLE001 - per-request
                    rep_errors[i] = exc

        # --- reassemble in input order ---------------------------------- #
        results: List[ServeResult] = []
        for index, request in enumerate(requests):
            rep = rep_of[index]
            error = rep_errors[rep]
            if error is not None:
                raise error
            result = rep_results[rep]
            results.append(result.mark_coalesced() if duplicate[index] else result)
        return results

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _fulfil(
        self, request: ServeRequest, key: Optional[str], future: "Future[ServeResult]"
    ) -> None:
        try:
            result = self._run_request(request)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the future
            self._retire(key, future)
            future.set_exception(exc)
        else:
            self._retire(key, future)
            future.set_result(result)

    def _retire(self, key: Optional[str], future: "Future[ServeResult]") -> None:
        # Remove from the in-flight map *before* resolving the future, so a
        # request arriving after resolution starts a fresh execution
        # instead of coalescing onto a completed one forever.
        if key is None:
            return
        with self._lock:
            if self._inflight.get(key) is future:
                del self._inflight[key]

    def _run_request(self, request: ServeRequest) -> ServeResult:
        cached = self._completed_result(request)
        if cached is not None:
            return cached
        try:
            query_key = query_content_key(request.query)
        except TypeError:
            query_key = None
        query = self._canonical_query(query_key, request.query)
        started = time.perf_counter()
        try:
            chosen = self._plan_for(query, request)
            shared = None
            step_cache = None
            if chosen.strategy == STRATEGY_INSIDEOUT:
                if self.share_tries:
                    shared = self._shared_tries_for(query_key, query, chosen.ordering)
                if request.coalesce:
                    step_cache = self._step_results
            executed = chosen.execute(
                output_mode=request.output_mode,
                workers=self.workers,
                workers_mode=self.workers_mode,
                shared_tries=shared,
                step_cache=step_cache,
            )
        except QueryError as exc:
            raise PlanFailure(str(exc), cause_type=type(exc).__name__) from exc
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # noqa: BLE001 - e.g. an injected kernel fault
            raise PlanFailure(
                f"{type(exc).__name__}: {exc}", cause_type=type(exc).__name__
            ) from exc
        return self._finish(request, chosen, executed, started)

    def _completed_result(self, request: ServeRequest) -> Optional[ServeResult]:
        """A completed-result cache hit for this request, if any.

        Engaged only for coalescible requests — ``coalesce=False`` promises
        a private execution (e.g. a timed run), which a replayed result
        would violate just as much as a shared in-flight one.
        """
        if self._results is None or not request.coalesce:
            return None
        key = request.content_key
        if key is None:
            return None
        hit = self._results.get(key)
        if hit is None:
            return None
        with self._lock:
            self._result_cache_hits += 1
        return hit.mark_coalesced()

    def _finish(
        self,
        request: ServeRequest,
        chosen: Plan,
        executed: PlanResult,
        started: float,
    ) -> ServeResult:
        """Build the typed result, close the feedback loop, fill caches."""
        if chosen.strategy == STRATEGY_INSIDEOUT and executed.stats is not None:
            # Observed-vs-estimated step sizes calibrate the cache's paired
            # cost model and accumulate into the cached plan's health (a
            # plan past the error threshold is invalidated — the next
            # occurrence re-plans against the calibrated model).
            record_plan_feedback(chosen, executed.stats, cache=self.cache)
        result = ServeResult(
            factor=executed.factor,
            factorized=executed.factorized,
            ordering=tuple(executed.ordering),
            strategy=chosen.strategy,
            backend=chosen.backend,
            content_key=request.content_key,
            coalesced=False,
            replica=None,
            seconds=time.perf_counter() - started,
            stats=executed.stats,
        )
        if (
            self._results is not None
            and request.coalesce
            and request.output_mode == "listing"
            and result.content_key is not None
        ):
            self._results.put(result.content_key, result)
        return result

    def _plan_for(self, query: FAQQuery, request: ServeRequest) -> Plan:
        digest = _plan_digest(request)
        if digest is not None:
            hit = self.cache.lookup_digest(digest)
            if hit is not None and set(hit.ordering) == set(query.order):
                # Equal content digests certify value equality, so the
                # stored ordering/strategy/backend transfer verbatim — no
                # signature computation, no canonical-index translation.
                # The digest string doubles as the feedback key: a plan
                # whose health degrades invalidates this very entry.
                return Plan(
                    query=query,
                    strategy=hit.strategy,
                    ordering=hit.ordering,
                    backend=hit.backend,
                    estimated_cost=hit.estimated_cost,
                    faq_width=hit.faq_width,
                    cache_hit=True,
                    step_sizes=hit.step_sizes,
                    cache_key=digest,
                )
        chosen = plan(query, cache=self.cache, **request.plan_kwargs())
        if digest is not None:
            self.cache.store_digest(
                digest,
                DigestPlan(
                    strategy=chosen.strategy,
                    backend=chosen.backend,
                    ordering=tuple(chosen.ordering),
                    estimated_cost=chosen.estimated_cost,
                    faq_width=chosen.faq_width,
                    step_sizes=chosen.step_sizes,
                ),
            )
        return chosen

    def _canonical_query(self, query_key: Optional[str], query: FAQQuery) -> FAQQuery:
        """The pinned canonical instance for this content key (LRU).

        The first object seen under a key wins; value-equal later arrivals
        execute as that instance, so identity-keyed downstream machinery
        (hypergraph memos, trie stores) hits across distinct objects.
        """
        if query_key is None:
            return query
        with self._lock:
            canonical = self._canonical.get(query_key)
            if canonical is not None:
                self._canonical.move_to_end(query_key)
                return canonical
            self._canonical[query_key] = query
            while len(self._canonical) > _MAX_CANONICAL_QUERIES:
                self._canonical.popitem(last=False)
            return query

    def _shared_tries_for(
        self, query_key: Optional[str], query: FAQQuery, ordering: Sequence[str]
    ) -> SharedTrieCache:
        """The cross-run trie store for (content key, ordering), LRU-bounded.

        Falls back to object identity for queries with no content key.
        Entries pin the query object they were built for: a store must
        neither serve a recycled ``id()`` nor outlive the canonical
        instance whose factors it indexes (``covers`` checks factor
        identity, so a mismatched store would silently disable sharing).
        """
        key = (query_key if query_key is not None else id(query), tuple(ordering))
        with self._lock:
            entry = self._shared.get(key)
            if entry is not None and entry[0] is query:
                self._shared.move_to_end(key)
                return entry[1]
            shared = SharedTrieCache(ordering, query.semiring, query.factors)
            self._shared[key] = (query, shared)
            while len(self._shared) > self._max_shared:
                _, (_, evicted) = self._shared.popitem(last=False)
                self._evicted_trie_hits += evicted.hits
                self._evicted_trie_misses += evicted.misses
            return shared

    # ------------------------------------------------------------------ #
    # the deprecated PR 5 surface
    # ------------------------------------------------------------------ #
    def _run_legacy(self, query: FAQQuery, kwargs: Dict[str, Any]) -> PlanResult:
        output_mode = kwargs.pop("output_mode", "listing")
        chosen = plan(query, cache=self.cache, **kwargs)
        shared = None
        if self.share_tries and chosen.strategy == STRATEGY_INSIDEOUT:
            try:
                query_key = query_content_key(query)
            except TypeError:
                query_key = None
            shared = self._shared_tries_for(
                query_key, self._canonical_query(query_key, query), chosen.ordering
            )
        return chosen.execute(
            output_mode=output_mode, workers=self.workers,
            workers_mode=self.workers_mode, shared_tries=shared,
        )

    def _execute_batch_legacy(
        self, queries: Sequence[FAQQuery], coalesce: bool, kwargs: Dict[str, Any]
    ) -> List[PlanResult]:
        warnings.warn(_LEGACY_SUBMIT_MESSAGE, DeprecationWarning, stacklevel=3)
        futures: List[Future] = []
        in_flight: Dict[int, Future] = {}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)  # already warned once
            for query in queries:
                if coalesce:
                    future = in_flight.get(id(query))
                    if future is not None:
                        with self._lock:
                            self._coalesced += 1
                        futures.append(future)
                        continue
                future = self.submit(query, **dict(kwargs))
                if coalesce:
                    in_flight[id(query)] = future
                futures.append(future)
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # observability + lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Serving counters: submissions, coalescing, cache and trie reuse.

        ``coalesced`` counts requests answered by another request's
        execution (content-hash coalescing, plus identity coalescing on the
        deprecated batch path).  The trie counters are cumulative over the
        server's lifetime — stores evicted from the LRU contribute the
        counts they had at eviction time, so ``shared_trie_hits`` is
        monotone and safe to trend.
        """
        with self._lock:
            shared = [entry[1] for entry in self._shared.values()]
            submitted = self._submitted
            coalesced = self._coalesced
            evicted_hits = self._evicted_trie_hits
            evicted_misses = self._evicted_trie_misses
            inflight = len(self._inflight)
            merged = {
                "merged_batches": self._merged_batches,
                "merged_queries": self._merged_queries,
                "merged_total_steps": self._merged_total_nodes,
                "merged_unique_steps": self._merged_unique_nodes,
                "merged_executed_steps": self._merged_executed_nodes,
                "merged_replayed_steps": self._merged_replayed_nodes,
            }
            result_cache_hits = self._result_cache_hits
            incremental_views = len(self._incremental)
            incremental_hits = self._incremental_hits
            incremental_misses = self._incremental_misses
            incremental_full_runs = sum(
                view.stats.full_runs for view in self._incremental.values()
            )
            snapshot_restores = self._snapshot_restores
        snapshot_stats = (
            self._snapshots.stats()
            if self._snapshots is not None
            else {
                "snapshot_saves": 0,
                "snapshot_save_errors": 0,
                "snapshot_loads": 0,
                "snapshot_load_errors": 0,
            }
        )
        step_stats = (
            self._step_results.stats()
            if self._step_results is not None
            else {"entries": 0, "computed": 0, "replayed": 0}
        )
        return {
            "submitted": submitted,
            "coalesced": coalesced,
            "inflight": inflight,
            "plan_cache_hits": self.cache.hits,
            "plan_cache_misses": self.cache.misses,
            "plan_replans": self.cache.replans,
            "shared_trie_stores": len(shared),
            "shared_trie_hits": evicted_hits + sum(s.hits for s in shared),
            "shared_trie_misses": evicted_misses + sum(s.misses for s in shared),
            "step_cache_entries": step_stats["entries"],
            "step_cache_computed": step_stats["computed"],
            "step_cache_replayed": step_stats["replayed"],
            "result_cache_hits": result_cache_hits,
            "incremental_views": incremental_views,
            "incremental_hits": incremental_hits,
            "incremental_misses": incremental_misses,
            "incremental_full_runs": incremental_full_runs,
            "snapshot_restores": snapshot_restores,
            **snapshot_stats,
            **merged,
        }

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for in-flight requests."""
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "PlanServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)


def _chain_coalesced(primary: "Future[ServeResult]") -> "Future[ServeResult]":
    """A future resolving to the primary's result flagged ``coalesced=True``."""
    chained: "Future[ServeResult]" = Future()

    def _copy(done: "Future[ServeResult]") -> None:
        if done.cancelled():
            chained.cancel()
            return
        exc = done.exception()
        if exc is not None:
            chained.set_exception(exc)
        else:
            chained.set_result(done.result().mark_coalesced())

    primary.add_done_callback(_copy)
    return chained


def execute_batch(
    requests: Sequence[Union[ServeRequest, FAQQuery]],
    *,
    workers: Optional[int | str] = None,
    workers_mode: str = "thread",
    pool_size: Optional[int] = None,
    cache: Optional[PlanCache] = None,
    coalesce: bool = True,
    share_tries: bool = True,
    merge: bool = True,
    dag_workers: Any = _UNSET,
    **kwargs: Any,
) -> List[Union[ServeResult, PlanResult]]:
    """Run a batch of requests against a transient :class:`PlanServer`.

    Results come back in input order.  For long-lived traffic keep a
    :class:`PlanServer` (or a replicated :class:`~repro.serve.frontend.Frontend`)
    instead — its plan cache, shared tries and step-result cache stay warm
    across batches.
    """
    with PlanServer(
        workers=workers,
        workers_mode=workers_mode,
        pool_size=pool_size,
        cache=cache,
        share_tries=share_tries,
        merge=merge,
        dag_workers=dag_workers,
    ) as server:
        return server.execute_batch(requests, coalesce=coalesce, **kwargs)

"""The stable serving contract: typed requests, results and errors.

Everything a serving client touches lives here, frozen and explicit:

* :class:`ServeRequest` — what to run (query + output mode + planner
  overrides), for whom (``tenant``), and under what latency budget
  (``deadline`` seconds).  Requests are immutable values; their
  :attr:`~ServeRequest.content_key` is the stable cross-process digest the
  whole tier coalesces and routes on.
* :class:`ServeResult` — what came back: the output factor, the plan
  choices that produced it, and serving metadata (which replica ran it,
  whether the request was coalesced onto another in-flight execution).
* the error hierarchy — :class:`ServeError` is the base; admission control
  rejects with :class:`Overloaded` (retryable: back off), planner/engine
  failures surface as :class:`PlanFailure` (not retryable: fix the query).

The serving layer never hands back bare engine objects or raw
``concurrent.futures.Future`` payloads — those were the PR 5 surface, kept
working through deprecation shims in :mod:`repro.serve.server`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Tuple

from repro.core.query import FAQQuery, QueryError
from repro.factors.factor import Factor
from repro.planner.signature import canonical_bytes, query_content_key
from repro.semiring.base import Semiring


class ServeError(Exception):
    """Base class of every serving-tier error."""


class Overloaded(ServeError):
    """The tier shed this request (admission control or load shedding).

    Retryable by construction: the query itself is fine, the tier just
    cannot take it *now*.  ``reason`` says which limit tripped; ``tenant``
    names the quota owner when a per-tenant bound did.
    """

    def __init__(self, reason: str, tenant: Optional[str] = None) -> None:
        self.reason = reason
        self.tenant = tenant
        detail = f"{reason} (tenant={tenant})" if tenant else reason
        super().__init__(detail)


class PlanFailure(ServeError):
    """Planning or executing the query failed (not retryable as-is).

    Wraps the underlying engine error — ``cause_type`` carries the original
    exception class name even when the failure crossed a process boundary
    (the original object may not be picklable or importable).
    """

    def __init__(self, message: str, cause_type: str = "QueryError") -> None:
        self.cause_type = cause_type
        super().__init__(message)


class ReplicaCrashed(ServeError):
    """A replica died mid-request and the retry budget is exhausted."""


class ReplicaTimeout(ReplicaCrashed):
    """A replica failed to answer an RPC within its deadline.

    A timeout is *treated as* a crash — the replica may be wedged rather
    than dead, but the recovery path is identical (terminate, restart,
    retry elsewhere), so the subclass relationship lets every existing
    crash handler cover the wedge case for free.  Kept distinct so the
    ``timeouts`` counter can tell the two apart in stats.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """How the tier retries replica-side failures.

    Applied by :class:`~repro.serve.frontend.Frontend` on the dispatch
    path when a replica crashes or times out mid-request (never for
    :class:`PlanFailure` — the query itself is broken, a retry cannot
    help).  ``rpc_timeout`` is the per-RPC deadline every wire round-trip
    is armed with: a replica that neither answers nor dies surfaces as a
    typed :class:`ReplicaTimeout` instead of hanging the caller forever.

    Parameters
    ----------
    attempts:
        Total execution attempts per request (the first try included).
    base_delay / max_delay / jitter:
        Exponential backoff between attempts: attempt ``n`` sleeps
        ``min(max_delay, base_delay * 2**(n-1))`` scaled by a random
        factor in ``[1, 1 + jitter]`` so synchronized retries fan out.
    rpc_timeout:
        Per-RPC deadline in seconds (``None`` disables the deadline —
        discouraged; a wedged replica then blocks its caller thread).
    """

    attempts: int = 3
    base_delay: float = 0.02
    max_delay: float = 1.0
    jitter: float = 0.5
    rpc_timeout: Optional[float] = 30.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise QueryError(f"RetryPolicy needs attempts >= 1, got {self.attempts}")
        if self.rpc_timeout is not None and self.rpc_timeout <= 0:
            raise QueryError(
                f"rpc_timeout must be positive seconds or None, got {self.rpc_timeout!r}"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        import random

        delay = min(self.max_delay, self.base_delay * (2 ** max(0, attempt - 1)))
        return delay * (1.0 + self.jitter * random.random())


_VALID_OUTPUT_MODES = ("listing", "factorized")

# plan() keyword overrides a request may carry.  Anything else is rejected
# at construction, so malformed requests fail in the client's stack frame
# instead of deep inside a replica.
_ALLOWED_OPTIONS = ("strategy", "backend", "ordering", "use_cache")


def _normalized_options(options: Any) -> Tuple[Tuple[str, Any], ...]:
    if options is None:
        return ()
    if isinstance(options, Mapping):
        items = options.items()
    else:
        items = tuple(options)
    normalized = []
    for key, value in sorted(items):
        if key not in _ALLOWED_OPTIONS:
            raise QueryError(
                f"unknown serve option {key!r}; allowed: {_ALLOWED_OPTIONS}"
            )
        if key == "ordering" and value is not None and not isinstance(value, str):
            value = tuple(value)
        normalized.append((key, value))
    return tuple(normalized)


@dataclass(frozen=True)
class ServeRequest:
    """One admitted unit of serving work.

    Parameters
    ----------
    query:
        The :class:`~repro.core.query.FAQQuery` to answer.
    output_mode:
        ``"listing"`` (default) or ``"factorized"`` (in-process serving
        only — factorized outputs do not cross process boundaries).
    tenant:
        Admission-control bucket; per-tenant quotas meter on this.
    deadline:
        Optional latency budget in seconds from submission.  The front-end
        sheds the request (:class:`Overloaded`) rather than dispatch it
        once the budget cannot be met.
    coalesce:
        Opt out of content-hash coalescing with ``False`` (e.g. when the
        run is being timed and must not share another request's execution).
    options:
        Planner overrides forwarded to :func:`repro.planner.plan` —
        ``strategy=``/``backend=``/``ordering=``/``use_cache=`` only,
        normalised to a sorted tuple so requests stay hashable values.
    """

    query: FAQQuery
    output_mode: str = "listing"
    tenant: str = "default"
    deadline: Optional[float] = None
    coalesce: bool = True
    options: Tuple[Tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        if not isinstance(self.query, FAQQuery):
            raise QueryError(
                f"ServeRequest.query must be an FAQQuery, got {type(self.query).__name__}"
            )
        if self.output_mode not in _VALID_OUTPUT_MODES:
            raise QueryError(f"unknown output mode {self.output_mode!r}")
        if self.deadline is not None and self.deadline <= 0:
            raise QueryError(f"deadline must be positive seconds, got {self.deadline!r}")
        object.__setattr__(self, "options", _normalized_options(self.options))

    # ------------------------------------------------------------------ #
    @property
    def content_key(self) -> Optional[str]:
        """The stable coalescing/routing key of this request.

        Equal keys certify that one execution answers both requests: the
        key digests the query *content* (structure, domains, factor
        tables) plus the output mode and planner overrides.  ``None`` when
        the query's values have no canonical encoding (exotic semiring
        domains) — such requests are never coalesced, only executed.
        """
        try:
            query_key = query_content_key(self.query)
            option_part = canonical_bytes((self.output_mode, self.options))
        except TypeError:
            return None
        return f"{query_key}:{option_part.hex()}"

    def plan_kwargs(self) -> dict:
        """The request's planner overrides as ``plan()`` keyword arguments."""
        return dict(self.options)


@dataclass(frozen=True)
class ServeResult:
    """The typed answer to one :class:`ServeRequest`.

    ``factor`` is the output in the listing representation (``None`` in
    factorized mode, where ``factorized`` is populated instead).  The
    serving metadata says how the answer was produced: the plan choices,
    which replica ran it (``None`` = in-process), whether this request
    coalesced onto another execution, and the wall-clock seconds the
    execution took on the server.
    """

    factor: Optional[Factor]
    ordering: Tuple[str, ...]
    strategy: str
    backend: str
    content_key: Optional[str] = None
    factorized: Any = None
    coalesced: bool = False
    replica: Optional[int] = None
    seconds: float = 0.0
    stats: Any = None

    def mark_coalesced(self) -> "ServeResult":
        """A copy of this result flagged as served by a shared execution."""
        if self.coalesced:
            return self
        return replace(self, coalesced=True)

    # ------------------------------------------------------------------ #
    # the PlanResult convenience surface, preserved on the typed result
    # ------------------------------------------------------------------ #
    @property
    def scalar(self) -> Any:
        """The scalar value for queries with no free variables."""
        if self.factor is None:
            raise QueryError("scalar access requires listing output mode")
        if self.factor.scope:
            raise QueryError("query has free variables; use .factor")
        return self.factor.table.get((), None)

    def scalar_or_zero(self, semiring: Semiring) -> Any:
        """The scalar value, or the semiring zero if the output is empty."""
        if self.factor is None:
            raise QueryError("scalar access requires listing output mode")
        return self.factor.table.get((), semiring.zero)

"""Durable, checksummed snapshot spill for warm server restarts.

A :class:`PlanServer` that owns a :class:`SnapshotStore` spills its warm
incremental state — the per-content-key
:class:`~repro.incremental.IncrementalView` states (query, pinned
ordering, digest-keyed :class:`~repro.exec.executor.RunSnapshot`, current
answer) and the digest-keyed completed-result cache — to disk after every
update batch.  A replica restarted over the same directory restores them
at construction, so its first incremental request after a crash is
answered *warm* (delta propagation against the restored snapshot) instead
of paying a cold full run.

File format (mirrors the shared-memory segment layout of
:mod:`repro.exec.shm`, with its own magic)::

    bytes 0..7    magic  b"REPROSN1"  (store kind + layout version)
    bytes 8..15   payload length, little-endian u64
    bytes 16..47  SHA-256 of the payload
    bytes 48..    pickled payload  {"kind", "version", "sections"}

Durability rules:

* **atomic** — payloads are written to a temp file and ``os.replace``\\ d
  into place, so a crash mid-spill leaves the previous snapshot intact;
* **checksummed** — the SHA-256 rejects torn or bit-rotted files;
* **version-tagged** — both the magic and the embedded kind/version tags
  must match, so a layout change invalidates old files cleanly;
* **best-effort** — save returns ``False`` and load returns ``None`` on
  any failure (including injected ``snapshot.io`` faults); a snapshot is
  an optimisation, never a correctness requirement.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from pathlib import Path
from typing import Any, Optional

from repro.faults import SITE_SNAPSHOT_IO, maybe_raise

_MAGIC = b"REPROSN1"
_LEN_OFFSET = 8
_SHA_OFFSET = 16
_PAYLOAD_OFFSET = 48

SNAPSHOT_KIND = "repro-serve-snapshot"
SNAPSHOT_VERSION = 1


class SnapshotStore:
    """Checksummed, version-tagged snapshot files under one directory.

    One store per server; named sections (``"server"`` for the combined
    view/result spill) map to one file each.  All I/O is best-effort by
    contract — see the module docstring.
    """

    def __init__(self, directory: os.PathLike | str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.saves = 0
        self.save_errors = 0
        self.loads = 0
        self.load_errors = 0

    def path_for(self, name: str) -> Path:
        return self.directory / f"{name}.snapshot"

    # ------------------------------------------------------------------ #
    def save(self, name: str, sections: Any) -> bool:
        """Atomically persist ``sections`` under ``name``; False on failure."""
        try:
            maybe_raise(SITE_SNAPSHOT_IO, OSError)
            payload = {
                "kind": SNAPSHOT_KIND,
                "version": SNAPSHOT_VERSION,
                "sections": sections,
            }
            data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            blob = bytearray(_PAYLOAD_OFFSET + len(data))
            blob[:8] = _MAGIC
            blob[_LEN_OFFSET:_SHA_OFFSET] = struct.pack("<Q", len(data))
            blob[_SHA_OFFSET:_PAYLOAD_OFFSET] = hashlib.sha256(data).digest()
            blob[_PAYLOAD_OFFSET:] = data
            fd, tmp_path = tempfile.mkstemp(
                dir=self.directory, prefix=f".{name}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(bytes(blob))
                os.replace(tmp_path, self.path_for(name))
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except Exception:
            self.save_errors += 1
            return False
        self.saves += 1
        return True

    def load(self, name: str) -> Optional[Any]:
        """The sections persisted under ``name``; ``None`` on any mismatch."""
        try:
            maybe_raise(SITE_SNAPSHOT_IO, OSError)
            raw = self.path_for(name).read_bytes()
            if len(raw) < _PAYLOAD_OFFSET or raw[:8] != _MAGIC:
                return None
            (length,) = struct.unpack("<Q", raw[_LEN_OFFSET:_SHA_OFFSET])
            data = raw[_PAYLOAD_OFFSET:_PAYLOAD_OFFSET + length]
            if len(data) != length:
                return None
            if hashlib.sha256(data).digest() != raw[_SHA_OFFSET:_PAYLOAD_OFFSET]:
                return None
            payload = pickle.loads(data)
            if (
                not isinstance(payload, dict)
                or payload.get("kind") != SNAPSHOT_KIND
                or payload.get("version") != SNAPSHOT_VERSION
            ):
                return None
        except FileNotFoundError:
            return None
        except Exception:
            self.load_errors += 1
            return None
        self.loads += 1
        return payload.get("sections")

    def stats(self) -> dict:
        return {
            "snapshot_saves": self.saves,
            "snapshot_save_errors": self.save_errors,
            "snapshot_loads": self.loads,
            "snapshot_load_errors": self.load_errors,
        }

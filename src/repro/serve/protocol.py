"""The replica wire protocol: query skeletons + digest-addressed factors.

Factor tables dominate the bytes of a query, and repeated traffic repeats
them verbatim — so the tier ships each distinct table to each replica
**once** and addresses it by its stable content digest
(:func:`repro.planner.signature.factor_digest`) thereafter.  A query
crosses the pipe as a :class:`WireQuery` *skeleton* (variables, free
prefix, aggregates, semiring, factor digests) plus only the payloads the
replica does not already hold.

Messages are plain tuples (the :mod:`multiprocessing` connection pickles
them); the first element is the message kind:

========================  ============================================
frontend → replica
========================  ============================================
``("exec", req_id, wire_query, payloads, output_mode, options,
coalesce)``                execute one request; ``payloads`` maps digests
                           to factor objects the replica is missing
                           (per-query ``workers=`` is fixed at replica
                           spawn time, not per message); ``coalesce``
                           carries the request's sharing opt-in so the
                           replica's step/result caches engage only for
                           traffic that allowed it
``("exec_many", req_id, items, payloads)``
                           execute a batch as one merged step DAG;
                           ``items`` is a tuple of ``(wire_query,
                           output_mode, options, coalesce)`` and
                           ``payloads`` covers the whole batch
``("update", req_id, wire_query, payloads, deltas, output_mode,
options)``                 apply a factor-update batch to the query's
                           standing incremental view and answer with the
                           fresh result; ``deltas`` is a tuple of
                           ``(factor_index, FactorDelta)`` applied in
                           order as one atomic batch
``("ping", nonce)``        health probe
``("shutdown",)``          drain and exit
========================  ============================================

========================  ============================================
replica → frontend
========================  ============================================
``("ok", req_id, result)``            a :class:`WireResult`
``("ok_many", req_id, outcomes)``      per-item outcomes for ``exec_many``:
                                       each is ``("ok", WireResult)`` or
                                       ``("err", kind, message,
                                       cause_type)`` in item order
``("err", req_id, kind, message,
cause_type)``                          typed failure (``kind`` ∈
                                       ``{"plan", "internal"}``)
``("need", req_id, digests)``          the replica lacks these factor
                                       payloads (e.g. it restarted);
                                       resend ``exec`` with them included
``("pong", nonce, stats)``             health reply + serving counters
========================  ============================================

Unpicklable payloads (e.g. semirings built by ``set_semiring`` closures)
fail at the *sender* — the frontend surfaces that as
:class:`~repro.serve.api.PlanFailure` instead of crashing a replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.core.query import FAQQuery, Variable
from repro.planner.signature import factor_digest, query_content_key
from repro.semiring.aggregates import Aggregate
from repro.semiring.base import Semiring

MSG_EXEC = "exec"
MSG_EXEC_MANY = "exec_many"
MSG_UPDATE = "update"
MSG_PING = "ping"
MSG_SHUTDOWN = "shutdown"
MSG_OK = "ok"
MSG_OK_MANY = "ok_many"
MSG_ERR = "err"
MSG_NEED = "need"
MSG_PONG = "pong"

ERR_PLAN = "plan"
ERR_INTERNAL = "internal"


@dataclass(frozen=True)
class WireQuery:
    """A query skeleton: everything except the factor tables.

    ``factor_digests`` lists the content digest of each factor in query
    order; the replica resolves them against its digest-addressed table
    store.  ``query_key`` is the query's content key, precomputed on the
    frontend so the replica can memoise the rebuilt query without
    re-digesting the tables.
    """

    variables: Tuple[Variable, ...]
    free: Tuple[str, ...]
    aggregates: Tuple[Tuple[str, Aggregate], ...]
    semiring: Semiring
    name: str
    factor_digests: Tuple[str, ...]
    query_key: Optional[str]


@dataclass(frozen=True)
class WireResult:
    """An execution result crossing back over the pipe (listing mode only).

    ``coalesced`` says the replica answered from a shared execution (a
    merged-batch duplicate or its completed-result cache) rather than
    running the query itself.
    """

    factor: Any
    ordering: Tuple[str, ...]
    strategy: str
    backend: str
    seconds: float
    coalesced: bool = False


# query object -> (WireQuery, {digest: factor}).  FAQQuery instances are
# treated as immutable after construction (the hypergraph memo already
# relies on this), so the encoding is computed once per object.
_ENCODE_MEMO: "WeakKeyDictionary[FAQQuery, Tuple[WireQuery, Dict[str, Any]]]" = (
    WeakKeyDictionary()
)


def encode_query(query: FAQQuery) -> Tuple[WireQuery, Dict[str, Any]]:
    """Split ``query`` into a wire skeleton and its factor payloads.

    Returns ``(wire, tables)`` where ``tables`` maps every factor digest to
    its factor object; the caller ships only the digests the target replica
    is missing.  Raises ``TypeError`` for queries whose values have no
    canonical byte encoding (such queries cannot be digest-addressed and
    must be served in-process).
    """
    memo = _ENCODE_MEMO.get(query)
    if memo is not None:
        return memo
    digests = tuple(factor_digest(factor) for factor in query.factors)
    try:
        query_key = query_content_key(query)
    except TypeError:
        query_key = None
    wire = WireQuery(
        variables=tuple(query.variables[v] for v in query.order),
        free=tuple(query.free),
        aggregates=tuple(query.aggregates.items()),
        semiring=query.semiring,
        name=query.name,
        factor_digests=digests,
        query_key=query_key,
    )
    tables = dict(zip(digests, query.factors))
    encoded = (wire, tables)
    _ENCODE_MEMO[query] = encoded
    return encoded


def decode_query(wire: WireQuery, store: Dict[str, Any]) -> FAQQuery:
    """Rebuild the query from a skeleton and the replica's factor store.

    Raises ``KeyError`` naming the first missing digest — the replica turns
    that into a ``("need", ...)`` reply rather than failing the request.
    """
    factors = []
    for digest in wire.factor_digests:
        factor = store.get(digest)
        if factor is None:
            raise KeyError(digest)
        factors.append(factor)
    return FAQQuery(
        variables=list(wire.variables),
        free=wire.free,
        aggregates=dict(wire.aggregates),
        factors=factors,
        semiring=wire.semiring,
        name=wire.name,
    )


def missing_digests(wire: WireQuery, known: set) -> Tuple[str, ...]:
    """The factor digests of ``wire`` not in ``known`` (deduplicated, ordered)."""
    seen = set()
    missing = []
    for digest in wire.factor_digests:
        if digest not in known and digest not in seen:
            seen.add(digest)
            missing.append(digest)
    return tuple(missing)

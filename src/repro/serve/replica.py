"""Replica processes: one warm :class:`PlanServer` per OS process.

:func:`_replica_main` is the child-process entry point — a blocking loop
over one pipe, speaking :mod:`repro.serve.protocol`.  Each replica keeps

* a digest-addressed **factor store** (tables ship once, then are referred
  to by digest — the amortisation the wire protocol exists for);
* a **query memo** (content key → rebuilt :class:`FAQQuery`), so repeated
  traffic reuses one query object and with it every identity-keyed memo
  downstream (hypergraph, shared tries);
* its own :class:`~repro.serve.server.PlanServer` for digest-addressed
  plans and trie reuse.

The parent side is :class:`ReplicaHandle` (spawn, locked request/response
call, known-digest tracking, restart) and :class:`ReplicaSet` (a fixed
fleet with rendezvous-hash routing and dead-replica sweeps).  Handles are
thread-safe; the asyncio front-end calls them via ``asyncio.to_thread``.

Every wire RPC carries a deadline (``rpc_timeout``): a replica that
accepts a request but never answers surfaces as a typed
:class:`~repro.serve.api.ReplicaTimeout` (a :class:`ReplicaCrashed`
subclass — the caller's restart-and-retry path covers both) instead of
wedging the caller forever.  Replies are validated against the request id
they answer; a mismatched or malformed reply means the conversation
desynced (e.g. a corrupted message) and is treated as a crash.  Fault
sites from :mod:`repro.faults` are threaded through both pipe directions
and the child loop, so the chaos tests can exercise every one of these
paths deterministically.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import multiprocessing
import os
import pickle
import threading
import weakref
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults import (
    ACTION_CORRUPT,
    ACTION_DELAY,
    ACTION_DROP,
    SITE_REPLICA_KILL,
    SITE_WIRE_RECV,
    SITE_WIRE_SEND,
    FaultPlan,
    current_plan,
    fire,
    install_plan,
)
from repro.serve.api import (
    PlanFailure,
    ReplicaCrashed,
    ReplicaTimeout,
    ServeError,
    ServeRequest,
    ServeResult,
)
from repro.serve.protocol import (
    ERR_INTERNAL,
    ERR_PLAN,
    MSG_ERR,
    MSG_EXEC,
    MSG_EXEC_MANY,
    MSG_NEED,
    MSG_OK,
    MSG_OK_MANY,
    MSG_PING,
    MSG_PONG,
    MSG_SHUTDOWN,
    MSG_UPDATE,
    WireResult,
    decode_query,
    encode_query,
    missing_digests,
)

_MAX_REPLICA_QUERIES = 256
_REQ_IDS = itertools.count(1)

# Default per-RPC deadline (seconds).  Generous — it exists to convert a
# genuinely wedged replica into a typed ReplicaTimeout, not to police slow
# queries; latency-sensitive deployments pass a tighter RetryPolicy.
DEFAULT_RPC_TIMEOUT = 30.0

# Live replica fleets, reaped at interpreter exit so a caller that forgets
# close() cannot leak daemon processes + their pipes.  close() is
# idempotent, so double-reaping is safe.
_LIVE_SETS: "weakref.WeakSet" = weakref.WeakSet()

# Serialises the pipe-create → fork → close-child-end window of _start().
# With the fork start method, a process forked by a *concurrent* _start
# would inherit this pipe's child end and hold it open forever — then a
# replica dying mid-reply never EOFs the parent's recv (an unbounded hang
# instead of a clean ReplicaCrashed).
_START_LOCK = threading.Lock()


@atexit.register
def _reap_replicas() -> None:
    for replica_set in list(_LIVE_SETS):
        try:
            replica_set.close()
        except Exception:  # pragma: no cover - interpreter is going down
            pass


# ---------------------------------------------------------------------- #
# the child process
# ---------------------------------------------------------------------- #
def _memoised_query(wire, store: Dict[str, Any], queries: "OrderedDict[str, Any]"):
    """Rebuild (or recall) the query for a wire skeleton, LRU-bounded."""
    query = queries.get(wire.query_key) if wire.query_key is not None else None
    if query is None:
        query = decode_query(wire, store)
        if wire.query_key is not None:
            queries[wire.query_key] = query
            while len(queries) > _MAX_REPLICA_QUERIES:
                queries.popitem(last=False)
    else:
        queries.move_to_end(wire.query_key)
    return query


def _wire_ok(result) -> tuple:
    return (
        MSG_OK,
        WireResult(
            factor=result.factor,
            ordering=result.ordering,
            strategy=result.strategy,
            backend=result.backend,
            seconds=result.seconds,
            coalesced=result.coalesced,
        ),
    )


def _replica_main(
    conn,
    replica_id: int,
    workers: Optional[int] = None,
    workers_mode: str = "thread",
    shared_cache_name: Optional[str] = None,
    snapshot_dir: Optional[str] = None,
    fault_config: Optional[Dict[str, Any]] = None,
) -> None:
    """The replica loop (module-level so the spawn start method can pickle it)."""
    from repro.serve.server import PlanServer
    from repro.serve.snapshot import SnapshotStore

    # A replica carries its own deterministic fault plan (derived from the
    # parent's seed) so chaos runs inject inside the child too: worker
    # kills, step-kernel faults, shm-attach failures, snapshot I/O errors
    # and hard replica deaths all originate here.
    install_plan(FaultPlan.from_config(fault_config))
    snapshots = SnapshotStore(snapshot_dir) if snapshot_dir else None
    # cache_results=True is the replica-side completed-result cache: repeat
    # traffic that opted into sharing (coalesce=True on the wire) is answered
    # by content digest without re-executing.
    server = PlanServer(
        workers=workers, workers_mode=workers_mode, pool_size=1, cache_results=True,
        snapshot_store=snapshots,
    )
    # Adopt the fleet-wide warm caches the parent published to shared
    # memory (best-effort: a missing/stale segment adopts nothing) so a
    # cold replica starts with the warm ρ* memo and plan cache instead of
    # warming private copies.
    shared_cache_adopted = 0
    if shared_cache_name:
        from repro.exec.shm import SharedCacheStore
        from repro.hypergraph.covers import adopt_rho_star_section

        sections = SharedCacheStore.adopt(shared_cache_name)
        shared_cache_adopted += adopt_rho_star_section(sections.get("rho_star"))
        shared_cache_adopted += server.cache.adopt_section(sections.get("plans"))
    store: Dict[str, Any] = {}
    queries: "OrderedDict[str, Any]" = OrderedDict()
    served = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == MSG_SHUTDOWN:
            break
        if kind == MSG_PING:
            plan = current_plan()
            stats = {
                "replica": replica_id,
                "served": served,
                "factor_store": len(store),
                "query_memo": len(queries),
                "shared_cache_adopted": shared_cache_adopted,
                "faults_injected": plan.total_injected if plan is not None else 0,
            }
            stats.update(server.stats())
            conn.send((MSG_PONG, message[1], stats))
            continue
        # A hard replica death (child side): exit without answering — the
        # parent sees a pipe error or an RPC timeout and restarts us.
        if fire(SITE_REPLICA_KILL) is not None:
            os._exit(1)
        if kind == MSG_EXEC_MANY:
            _, req_id, items, payloads = message
            store.update(payloads)
            missing: list = []
            seen_missing: set = set()
            for wire, _, _, _ in items:
                for digest in missing_digests(wire, store.keys()):
                    if digest not in seen_missing:
                        seen_missing.add(digest)
                        missing.append(digest)
            if missing:
                conn.send((MSG_NEED, req_id, tuple(missing)))
                continue
            requests: List[Optional[ServeRequest]] = []
            outcomes: List[Optional[tuple]] = []
            for wire, output_mode, options, coalesce in items:
                try:
                    request = ServeRequest(
                        query=_memoised_query(wire, store, queries),
                        output_mode=output_mode,
                        coalesce=coalesce,
                        options=options,
                    )
                except Exception as exc:  # noqa: BLE001 - fail the item, not the batch
                    requests.append(None)
                    outcomes.append(
                        (MSG_ERR, ERR_INTERNAL, f"{type(exc).__name__}: {exc}", type(exc).__name__)
                    )
                    continue
                requests.append(request)
                outcomes.append(None)
            live = [r for r in requests if r is not None]
            results: Optional[List[Any]] = None
            if live:
                try:
                    results = list(server.execute_batch(live))
                except Exception:  # noqa: BLE001 - retry item-by-item for typed errors
                    results = None
            if results is None and live:
                results = []
                for request in live:
                    try:
                        results.append(server.execute_request(request))
                    except PlanFailure as exc:
                        results.append((MSG_ERR, ERR_PLAN, str(exc), exc.cause_type))
                    except Exception as exc:  # noqa: BLE001
                        results.append(
                            (MSG_ERR, ERR_INTERNAL, f"{type(exc).__name__}: {exc}", type(exc).__name__)
                        )
            answers = iter(results or [])
            wire_outcomes = []
            for slot in outcomes:
                if slot is not None:
                    wire_outcomes.append(slot)
                    continue
                result = next(answers)
                if isinstance(result, tuple):
                    wire_outcomes.append(result)
                    continue
                if not result.coalesced:
                    served += 1
                wire_outcomes.append(_wire_ok(result))
            conn.send((MSG_OK_MANY, req_id, wire_outcomes))
            continue
        if kind == MSG_UPDATE:
            _, req_id, wire, payloads, deltas, output_mode, options = message
            store.update(payloads)
            missing = missing_digests(wire, store.keys())
            if missing:
                conn.send((MSG_NEED, req_id, missing))
                continue
            try:
                request = ServeRequest(
                    query=_memoised_query(wire, store, queries),
                    output_mode=output_mode,
                    options=options,
                )
                result = server.update_factors(request, list(deltas))
            except PlanFailure as exc:
                conn.send((MSG_ERR, req_id, ERR_PLAN, str(exc), exc.cause_type))
                continue
            except Exception as exc:  # noqa: BLE001 - replica must not die on a bad update
                conn.send((MSG_ERR, req_id, ERR_INTERNAL, f"{type(exc).__name__}: {exc}", type(exc).__name__))
                continue
            served += 1
            # The pre-update query object answers nothing after this; drop
            # the memo entry so the stale instance cannot be recalled.
            if wire.query_key is not None:
                queries.pop(wire.query_key, None)
            conn.send((MSG_OK, req_id, _wire_ok(result)[1]))
            continue
        if kind != MSG_EXEC:
            conn.send((MSG_ERR, None, ERR_INTERNAL, f"unknown message {kind!r}", "ServeError"))
            continue
        _, req_id, wire, payloads, output_mode, options, coalesce = message
        store.update(payloads)
        missing = missing_digests(wire, store.keys())
        if missing:
            conn.send((MSG_NEED, req_id, missing))
            continue
        try:
            request = ServeRequest(
                query=_memoised_query(wire, store, queries),
                output_mode=output_mode,
                coalesce=coalesce,
                options=options,
            )
            result = server.execute_request(request)
        except PlanFailure as exc:
            conn.send((MSG_ERR, req_id, ERR_PLAN, str(exc), exc.cause_type))
            continue
        except Exception as exc:  # noqa: BLE001 - replica must not die on a bad request
            conn.send((MSG_ERR, req_id, ERR_INTERNAL, f"{type(exc).__name__}: {exc}", type(exc).__name__))
            continue
        if not result.coalesced:
            served += 1
        conn.send((MSG_OK, req_id, _wire_ok(result)[1]))
    conn.close()


# ---------------------------------------------------------------------- #
# the parent side
# ---------------------------------------------------------------------- #
class ReplicaHandle:
    """One replica process plus its pipe, lock and known-digest set.

    ``load`` is the front-end's in-flight count for routing decisions (the
    handle itself serialises calls under ``self.lock`` — one pipe, one
    outstanding request).  A pipe failure raises
    :class:`~repro.serve.api.ReplicaCrashed`; a reply missing its deadline
    raises :class:`~repro.serve.api.ReplicaTimeout`; :meth:`restart`
    replaces the process and resets the known-digest set, after which
    factor tables re-ship lazily.  With a ``snapshot_dir`` the replacement
    process restores its warm incremental views and completed-result cache
    from the dead one's spill, so it answers its first incremental request
    without a cold full run.
    """

    def __init__(
        self,
        index: int,
        *,
        workers: Optional[int | str] = None,
        workers_mode: str = "thread",
        shared_cache_name: Optional[str] = None,
        rpc_timeout: Optional[float] = DEFAULT_RPC_TIMEOUT,
        snapshot_dir: Optional[str] = None,
        fault_config: Optional[Dict[str, Any]] = None,
        context=None,
    ) -> None:
        self.index = index
        self.workers = workers
        self.workers_mode = workers_mode
        self.shared_cache_name = shared_cache_name
        self.rpc_timeout = rpc_timeout
        self.snapshot_dir = snapshot_dir
        self.fault_config = fault_config
        self._ctx = context if context is not None else multiprocessing.get_context()
        self.lock = threading.Lock()
        self.load = 0
        self.restarts = 0
        self.timeouts = 0
        self.last_pong: Optional[Dict[str, Any]] = None
        self._closed = False
        self._start()

    def _start(self) -> None:
        with _START_LOCK:
            parent, child = self._ctx.Pipe()
            self.process = self._ctx.Process(
                target=_replica_main,
                args=(
                    child, self.index, self.workers, self.workers_mode,
                    self.shared_cache_name, self.snapshot_dir, self.fault_config,
                ),
                name=f"repro-replica-{self.index}",
                daemon=True,
            )
            self.process.start()
            child.close()
        self.conn = parent
        self.known: set = set()
        self._closed = False  # a restarted handle is open again

    def alive(self) -> bool:
        return self.process.is_alive()

    def restart(self) -> None:
        """Replace a dead (or wedged) replica process with a fresh one.

        Taken under the handle lock: an RPC in flight on another thread
        finishes (or hits its deadline) before the pipe is torn down —
        closing a connection out from under a blocked reader would strand
        it on a dead (and soon recycled) file descriptor.
        """
        with self.lock:
            self._terminate()
            self.restarts += 1
            self._start()

    # ------------------------------------------------------------------ #
    def execute(self, request: ServeRequest) -> ServeResult:
        """Run one request on this replica (blocking; thread-safe).

        Ships only the factor payloads the replica is missing; answers a
        ``("need", ...)`` reply (a replica that restarted mid-conversation)
        by resending with the requested tables.
        """
        try:
            wire, tables = encode_query(request.query)
        except TypeError as exc:
            raise PlanFailure(
                f"query is not digest-addressable and cannot be served by a replica: {exc}",
                cause_type=type(exc).__name__,
            ) from exc
        req_id = next(_REQ_IDS)

        def exec_msg(payloads):
            return (
                MSG_EXEC, req_id, wire, payloads, request.output_mode,
                request.options, request.coalesce,
            )

        with self.lock:
            payloads = {d: tables[d] for d in missing_digests(wire, self.known)}
            reply = self._validated(self._call(exec_msg(payloads)), req_id)
            self.known.update(payloads)
            if reply[0] == MSG_NEED:
                payloads = {d: tables[d] for d in reply[2]}
                reply = self._validated(self._call(exec_msg(payloads)), req_id)
                self.known.update(payloads)
        if reply[0] == MSG_OK:
            result: WireResult = reply[2]
            return self._serve_result(result, request)
        if reply[0] == MSG_ERR:
            _, _, err_kind, message, cause_type = reply
            raise PlanFailure(message, cause_type=cause_type)
        raise ReplicaCrashed(
            f"replica {self.index} sent unexpected reply {reply[0]!r}"
        )

    def update(
        self, request: ServeRequest, deltas: Sequence[Tuple[int, Any]]
    ) -> ServeResult:
        """Apply an atomic factor-update batch on this replica (blocking).

        The replica's warm :class:`~repro.serve.server.PlanServer` view
        advances through the whole batch before the reply; the handle's
        known-digest set keeps only digests that still name live factors
        (the pre-update factors' digests simply stop being referenced).
        """
        try:
            wire, tables = encode_query(request.query)
        except TypeError as exc:
            raise PlanFailure(
                f"query is not digest-addressable and cannot be served by a replica: {exc}",
                cause_type=type(exc).__name__,
            ) from exc
        req_id = next(_REQ_IDS)

        def update_msg(payloads):
            return (
                MSG_UPDATE, req_id, wire, payloads, tuple(deltas),
                request.output_mode, request.options,
            )

        with self.lock:
            payloads = {d: tables[d] for d in missing_digests(wire, self.known)}
            reply = self._validated(self._call(update_msg(payloads)), req_id)
            self.known.update(payloads)
            if reply[0] == MSG_NEED:
                payloads = {d: tables[d] for d in reply[2]}
                reply = self._validated(self._call(update_msg(payloads)), req_id)
                self.known.update(payloads)
        if reply[0] == MSG_OK:
            result: WireResult = reply[2]
            return self._serve_result(result, request)
        if reply[0] == MSG_ERR:
            _, _, err_kind, message, cause_type = reply
            raise PlanFailure(message, cause_type=cause_type)
        raise ReplicaCrashed(
            f"replica {self.index} sent unexpected reply {reply[0]!r}"
        )

    def execute_many(self, requests: List[ServeRequest]) -> List[Any]:
        """Run a batch on this replica as one merged dispatch (blocking).

        The whole batch crosses the pipe in a single ``exec_many`` message;
        the replica's :class:`~repro.serve.server.PlanServer` merges the
        queries' step DAGs so structurally shared elimination steps execute
        once.  Returns per-request outcomes in order — each a
        :class:`~repro.serve.api.ServeResult` or an exception object
        (:class:`~repro.serve.api.PlanFailure`); a dead replica raises
        :class:`~repro.serve.api.ReplicaCrashed` for the whole batch.
        """
        outcomes: List[Any] = [None] * len(requests)
        encoded: List[Tuple[int, ServeRequest, Any, Dict[str, Any]]] = []
        for i, request in enumerate(requests):
            try:
                wire, tables = encode_query(request.query)
            except TypeError as exc:
                outcomes[i] = PlanFailure(
                    f"query is not digest-addressable and cannot be served by a replica: {exc}",
                    cause_type=type(exc).__name__,
                )
                continue
            encoded.append((i, request, wire, tables))
        if not encoded:
            return outcomes
        req_id = next(_REQ_IDS)
        items = tuple(
            (wire, request.output_mode, request.options, request.coalesce)
            for _, request, wire, _ in encoded
        )
        combined: Dict[str, Any] = {}
        for _, _, _, tables in encoded:
            combined.update(tables)
        with self.lock:
            payloads: Dict[str, Any] = {}
            for _, _, wire, _ in encoded:
                for digest in missing_digests(wire, self.known):
                    payloads.setdefault(digest, combined[digest])
            reply = self._validated(
                self._call((MSG_EXEC_MANY, req_id, items, payloads)), req_id
            )
            self.known.update(payloads)
            if reply[0] == MSG_NEED:
                payloads = {d: combined[d] for d in reply[2]}
                reply = self._validated(
                    self._call((MSG_EXEC_MANY, req_id, items, payloads)), req_id
                )
                self.known.update(payloads)
        if reply[0] != MSG_OK_MANY or len(reply[2]) != len(encoded):
            raise ReplicaCrashed(
                f"replica {self.index} sent unexpected reply {reply[0]!r}"
            )
        for (i, request, _, _), outcome in zip(encoded, reply[2]):
            if outcome[0] == MSG_OK:
                outcomes[i] = self._serve_result(outcome[1], request)
            else:
                _, err_kind, message, cause_type = outcome
                outcomes[i] = PlanFailure(message, cause_type=cause_type)
        return outcomes

    def _serve_result(self, result: WireResult, request: ServeRequest) -> ServeResult:
        return ServeResult(
            factor=result.factor,
            ordering=result.ordering,
            strategy=result.strategy,
            backend=result.backend,
            content_key=request.content_key,
            coalesced=result.coalesced,
            replica=self.index,
            seconds=result.seconds,
        )

    def ping(
        self, timeout: Optional[float] = None, lock_wait: float = 0.1
    ) -> Optional[Dict[str, Any]]:
        """Health probe; the replica's serving counters, or ``None`` if dead.

        A replica busy executing a long request holds the handle lock; that
        is *alive-but-busy*, not wedged, so the probe answers with the last
        pong it got instead of blocking behind the request (or worse,
        timing out and triggering a spurious restart).  ``None`` therefore
        means the replica accepted the probe and failed to answer it — a
        real crash or wedge the caller should restart.
        """
        nonce = next(_REQ_IDS)
        if not self.lock.acquire(timeout=lock_wait):
            return self.last_pong
        try:
            reply = self._call((MSG_PING, nonce), timeout=timeout)
        except ServeError:
            return None
        finally:
            self.lock.release()
        if not isinstance(reply, tuple) or len(reply) != 3:
            return None
        if reply[0] != MSG_PONG or reply[1] != nonce:
            return None
        self.last_pong = reply[2]
        return reply[2]

    def _call(self, message: tuple, timeout: Optional[float] = None) -> tuple:
        """One locked request/response round trip (caller holds ``self.lock``).

        ``timeout`` defaults to the handle's ``rpc_timeout``; a reply that
        misses the deadline raises :class:`ReplicaTimeout` — the caller
        must treat the conversation as lost (the late reply, if it ever
        comes, would desync the pipe) and restart the replica.  The
        ``replica.kill`` / ``wire.send`` / ``wire.recv`` fault sites hook
        in here, which is what makes every failure path this method can
        take reachable from a seeded :class:`~repro.faults.FaultPlan`.
        """
        if timeout is None:
            timeout = self.rpc_timeout
        if fire(SITE_REPLICA_KILL) is not None:
            # Parent-side kill: the process dies before (or while) we talk
            # to it — the send or the recv below surfaces the crash.
            self.process.terminate()
            self.process.join(1.0)
        action = fire(SITE_WIRE_SEND)
        try:
            if action == ACTION_DROP:
                pass  # the request never reaches the replica
            elif action == ACTION_CORRUPT:
                self.conn.send(("corrupt", None))
            else:
                if action == ACTION_DELAY:
                    plan = current_plan()
                    if plan is not None:
                        plan.sleep()
                self.conn.send(message)
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            # Pickling happens before any bytes hit the pipe, so the
            # connection is still clean — fail the request, not the replica.
            raise PlanFailure(
                f"request is not picklable for replica dispatch: {exc}",
                cause_type=type(exc).__name__,
            ) from exc
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ReplicaCrashed(f"replica {self.index} died mid-send: {exc!r}") from exc
        try:
            if timeout is not None and not self.conn.poll(timeout):
                self.timeouts += 1
                raise ReplicaTimeout(
                    f"replica {self.index} did not answer within {timeout}s"
                )
            reply = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise ReplicaCrashed(f"replica {self.index} died mid-request: {exc!r}") from exc
        action = fire(SITE_WIRE_RECV)
        if action == ACTION_DROP:
            self.timeouts += 1
            raise ReplicaTimeout(
                f"replica {self.index} reply lost in transit (injected)"
            )
        if action == ACTION_CORRUPT:
            return ("corrupt", None)
        if action == ACTION_DELAY:
            plan = current_plan()
            if plan is not None:
                plan.sleep()
        return reply

    def _validated(self, reply: Any, req_id: int) -> tuple:
        """Reject replies that do not answer ``req_id`` — protocol desync.

        A corrupted request makes the replica answer with ``req_id=None``;
        a timed-out request's late reply answers an *earlier* id.  Either
        way the conversation is unrecoverable on this pipe, so the caller
        gets :class:`ReplicaCrashed` and the restart path re-syncs.
        """
        if (
            not isinstance(reply, tuple)
            or len(reply) < 2
            or reply[0] not in (MSG_OK, MSG_OK_MANY, MSG_ERR, MSG_NEED)
            or reply[1] != req_id
        ):
            raise ReplicaCrashed(
                f"replica {self.index} protocol desync: "
                f"expected a reply to request {req_id}, got {reply!r}"
            )
        return reply

    # ------------------------------------------------------------------ #
    def close(self, timeout: float = 2.0) -> None:
        """Ask the replica to drain and exit; escalate to terminate.

        Idempotent — a second close (e.g. the atexit reaper after an
        explicit shutdown) is a no-op.
        """
        if self._closed:
            return
        self._closed = True
        try:
            with self.lock:
                self.conn.send((MSG_SHUTDOWN,))
        except Exception:  # noqa: BLE001 - already dead is fine
            pass
        self.process.join(timeout)
        self._terminate()

    def _terminate(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)
        try:
            self.conn.close()
        except Exception:  # noqa: BLE001
            pass


class ReplicaSet:
    """A fixed fleet of replicas with content-affine routing.

    Routing is rendezvous (highest-random-weight) hashing on the request's
    content key: value-equal traffic lands on the replica that already
    holds the factor tables, the query memo and the warm tries for it.
    When the affine choice is overloaded (or the request has no content
    key) the least-loaded replica wins instead — shipping a table again is
    cheaper than queueing behind a hot spot.
    """

    def __init__(
        self,
        size: int,
        *,
        workers: Optional[int | str] = None,
        workers_mode: str = "thread",
        shared_cache_name: Optional[str] = None,
        start_method: Optional[str] = None,
        rpc_timeout: Optional[float] = DEFAULT_RPC_TIMEOUT,
        snapshot_dir: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"a ReplicaSet needs at least one replica, got {size}")
        context = multiprocessing.get_context(start_method)
        self._closed = False
        self.replicas: List[ReplicaHandle] = [
            ReplicaHandle(
                i, workers=workers, workers_mode=workers_mode,
                shared_cache_name=shared_cache_name, context=context,
                rpc_timeout=rpc_timeout,
                # Per-replica spill directories: a restarted replica i
                # resumes from replica i's own snapshot, warm.
                snapshot_dir=(
                    os.path.join(snapshot_dir, f"replica-{i}")
                    if snapshot_dir else None
                ),
                # Per-replica derived seeds keep chaos runs deterministic
                # yet uncorrelated across the fleet; a restarted replica
                # reinstalls the same derived plan.
                fault_config=(
                    fault_plan.child_config(i) if fault_plan is not None else None
                ),
            )
            for i in range(size)
        ]
        _LIVE_SETS.add(self)

    def __len__(self) -> int:
        return len(self.replicas)

    def pick(self, content_key: Optional[str], overload_margin: int = 2) -> ReplicaHandle:
        """The replica to route this key to (see the class docstring)."""
        live = [r for r in self.replicas if r.alive()] or self.replicas
        least = min(live, key=lambda r: (r.load, r.index))
        if content_key is None:
            return least
        affine = max(live, key=lambda r: _rendezvous_score(content_key, r.index))
        if affine.load > least.load + overload_margin:
            return least
        return affine

    def restart_dead(self) -> List[int]:
        """Replace every dead replica; returns the indices restarted."""
        restarted = []
        for replica in self.replicas:
            if not replica.alive():
                replica.restart()
                restarted.append(replica.index)
        return restarted

    def stats(self) -> List[Dict[str, Any]]:
        """Per-replica liveness, load and restart counters (no pipe traffic)."""
        return [
            {
                "replica": r.index,
                "alive": r.alive(),
                "load": r.load,
                "restarts": r.restarts,
                "timeouts": r.timeouts,
                "known_factors": len(r.known),
            }
            for r in self.replicas
        ]

    def close(self) -> None:
        """Shut the whole fleet down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for replica in self.replicas:
            replica.close()


def _rendezvous_score(content_key: str, index: int) -> Tuple[bytes, int]:
    digest = hashlib.sha256(f"{content_key}|{index}".encode("utf-8")).digest()
    return (digest, index)

"""The horizontal serving tier: an asyncio front-end over N replicas.

:class:`Frontend` is the admission point of the replicated tier.  One
``await frontend.submit(request)`` walks the full serving path:

1. **admission control** — a global pending bound, a per-tenant in-flight
   quota and deadline-aware rejection (don't dispatch work whose latency
   budget the current backlog already exceeds).  Shed requests raise
   :class:`~repro.serve.api.Overloaded`, which is retryable by contract.
2. **content-hash coalescing** — value-equal requests in flight *anywhere
   in the tier* (any client, any connection) share one execution; the
   duplicates' results come back flagged ``coalesced=True``.
3. **routing** — rendezvous hashing on the content key sends repeated
   traffic to the replica that already holds its factor tables and warm
   tries, falling back to least-loaded under skew (see
   :class:`~repro.serve.replica.ReplicaSet`).
4. **dispatch** — the blocking pipe round-trip runs in a worker thread
   (``asyncio.to_thread``), so the event loop keeps admitting while
   replicas compute.  Failure handling follows the tier's
   :class:`~repro.serve.api.RetryPolicy`: a crashed (or RPC-deadline
   missing) replica is restarted and the request retried with jittered
   exponential backoff until the attempt budget runs out, after which the
   typed :class:`~repro.serve.api.ReplicaCrashed` /
   :class:`~repro.serve.api.ReplicaTimeout` surfaces.

**Fleet-wide factor updates** go through :meth:`Frontend.update_factors`:
the delta batch fans out to *every* replica as one atomic unit, gated by
an epoch barrier — reads drain, the batch applies everywhere, the update
epoch advances, reads resume.  No request can observe a half-applied
batch; a replica that fails its update is restarted cold, which
content-addressed serving makes safe (it re-ships state lazily — a
replica that missed an update is merely cold, never wrong).

A background health loop sweeps for dead replicas every
``health_interval`` seconds and deep-pings the fleet — a replica that
accepts the ping but misses its RPC deadline is wedged and gets
restarted.  Synchronous callers (tests, benchmarks) use
:meth:`Frontend.serve_batch`, which runs the submissions in a private
event loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.query import FAQQuery
from repro.faults import FaultPlan, current_plan
from repro.planner.signature import query_sharing_key
from repro.serve.api import (
    Overloaded,
    PlanFailure,
    ReplicaCrashed,
    ReplicaTimeout,
    RetryPolicy,
    ServeRequest,
    ServeResult,
)
from repro.serve.replica import ReplicaSet

_EWMA_ALPHA = 0.2


def _publish_shared_caches(plan_cache):
    """Publish the parent's warm read-only caches to shared memory.

    Returns the owning :class:`~repro.exec.shm.SharedCacheStore` (the
    frontend closes it on shutdown), or ``None`` when publication fails —
    sharing is an optimisation, never a startup requirement.  Publishing
    before the fleet forks also guarantees the resource tracker is
    running, so replicas share it instead of spawning private ones.
    """
    from repro.exec.shm import SharedCacheStore, ensure_tracker_running
    from repro.hypergraph.covers import dump_rho_star_section

    ensure_tracker_running()
    sections = {"rho_star": dump_rho_star_section()}
    if plan_cache is not None:
        try:
            sections["plans"] = plan_cache.dump_section()
        except Exception:  # noqa: BLE001 - plans are optional cargo
            pass
    try:
        return SharedCacheStore.publish(sections)
    except Exception:  # noqa: BLE001 - e.g. unpicklable cache entries
        return None


class Frontend:
    """Admit, coalesce and route requests across a replica fleet.

    Parameters
    ----------
    replicas:
        Fleet size (defaults to the CPU count).
    workers:
        Per-query step-DAG parallelism *inside* each replica — the unified
        ``workers=`` meaning (``None``/1 = serial per query, ``"auto"`` =
        capped CPU count; the fleet still overlaps distinct queries across
        processes).
    workers_mode:
        Pool flavour for per-query parallelism inside each replica:
        ``"thread"`` (default) or ``"process"`` (shared-memory worker
        processes; see :mod:`repro.exec.procpool`).
    start_method:
        ``multiprocessing`` start method (platform default when ``None``).
    share_caches:
        Publish the parent's warm read-only caches (the process-wide ρ*
        LP memo and, when ``plan_cache`` is given, the plan cache) to a
        shared-memory :class:`~repro.exec.shm.SharedCacheStore` that every
        replica adopts at startup — cold replicas start with the
        fleet-wide warm caches instead of warming private copies.  Each
        replica reports how many entries it adopted as the
        ``shared_cache_adopted`` health stat.
    plan_cache:
        A warm :class:`~repro.planner.cache.PlanCache` to include in the
        published store (:meth:`Engine.serve` passes the engine's own).
    max_pending:
        Global bound on dispatched-but-unfinished requests; past it new
        arrivals are shed with ``Overloaded("queue full")``.
    tenant_limit:
        Per-tenant in-flight quota (``None`` disables per-tenant
        metering).
    health_interval:
        Seconds between dead-replica sweeps (``None`` disables the loop;
        crashes are then only repaired on the dispatch retry path).
    coalesce:
        Tier-wide default for content-hash coalescing (requests opt out
        individually with ``ServeRequest(coalesce=False)``).
    retry:
        The tier's :class:`~repro.serve.api.RetryPolicy` — attempt budget,
        backoff shape and per-RPC deadline for every replica round trip.
        Defaults to ``RetryPolicy()`` (3 attempts, 30 s deadline).
    snapshot_dir:
        Directory for per-replica durable snapshot spill.  Each replica
        persists its warm incremental views + completed-result cache there
        and a restarted replica resumes from them warm.  ``None`` (the
        default) disables durability.
    fault_plan:
        A seeded :class:`~repro.faults.FaultPlan` for chaos testing; each
        replica installs a deterministically derived child plan.  ``None``
        injects nothing.
    """

    def __init__(
        self,
        replicas: Optional[int] = None,
        *,
        workers: Optional[int | str] = None,
        workers_mode: str = "thread",
        start_method: Optional[str] = None,
        max_pending: int = 1024,
        tenant_limit: Optional[int] = None,
        health_interval: Optional[float] = 1.0,
        coalesce: bool = True,
        share_caches: bool = True,
        plan_cache: Any = None,
        retry: Optional[RetryPolicy] = None,
        snapshot_dir: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        size = replicas if replicas is not None else (os.cpu_count() or 1)
        self.max_pending = max_pending
        self.tenant_limit = tenant_limit
        self.health_interval = health_interval
        self.coalesce = coalesce
        self.retry = retry if retry is not None else RetryPolicy()
        self._shared_caches = (
            _publish_shared_caches(plan_cache) if share_caches else None
        )
        self._set = ReplicaSet(
            size,
            workers=workers,
            workers_mode=workers_mode,
            shared_cache_name=(
                self._shared_caches.name if self._shared_caches is not None else None
            ),
            start_method=start_method,
            rpc_timeout=self.retry.rpc_timeout,
            snapshot_dir=snapshot_dir,
            fault_plan=fault_plan,
        )
        # content key -> the primary's asyncio future (per-loop objects, but
        # the map is only touched from whichever loop is currently driving
        # submissions — serve_batch runs one loop at a time).
        self._inflight: Dict[str, "asyncio.Future[ServeResult]"] = {}
        self._tenant_pending: Dict[str, int] = {}
        self._pending = 0
        self._latency_ewma: Optional[float] = None
        self._health_task: Optional[asyncio.Task] = None
        self._health_loop_obj: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False
        self._submitted = 0
        self._coalesced = 0
        self._shed_queue = 0
        self._shed_tenant = 0
        self._shed_deadline = 0
        self._replica_crashes = 0
        self._merged_groups = 0
        self._merged_group_requests = 0
        self._retries = 0
        self._timeouts = 0
        # The update-epoch gate: reads pass while the write gate is open;
        # an update batch closes it, drains readers, applies fleet-wide,
        # advances the epoch and reopens.  asyncio primitives are
        # loop-bound, so the gate is lazily (re)built per driving loop —
        # serve_batch runs one private loop at a time.
        self._update_epoch = 0
        self._gate_loop: Optional[asyncio.AbstractEventLoop] = None
        self._write_gate: Optional[asyncio.Event] = None
        self._no_readers: Optional[asyncio.Event] = None
        self._readers = 0
        self._last_pongs: List[Optional[Dict[str, Any]]] = []

    # ------------------------------------------------------------------ #
    # the serving path
    # ------------------------------------------------------------------ #
    async def submit(self, request: ServeRequest) -> ServeResult:
        """Admit one request and return its typed result.

        Raises :class:`Overloaded` when shed, :class:`PlanFailure` when the
        query cannot be planned/executed, :class:`ReplicaCrashed` (or its
        :class:`ReplicaTimeout` subclass) when the fleet lost the request
        ``retry.attempts`` times.
        """
        if self._closed:
            raise RuntimeError("Frontend is shut down")
        if not isinstance(request, ServeRequest):
            raise TypeError(
                f"Frontend.submit takes a ServeRequest, got {type(request).__name__} "
                "(the deprecated bare-query form exists only on PlanServer)"
            )
        if request.output_mode != "listing":
            raise PlanFailure(
                "factorized output cannot cross a process boundary; "
                "serve factorized queries in-process via PlanServer",
                cause_type="QueryError",
            )
        self._ensure_health_task()
        self._submitted += 1

        # -------------------------- admission -------------------------- #
        if self._pending >= self.max_pending:
            self._shed_queue += 1
            self._decay_latency()
            raise Overloaded(f"queue full ({self._pending} pending)", request.tenant)
        if (
            self.tenant_limit is not None
            and self._tenant_pending.get(request.tenant, 0) >= self.tenant_limit
        ):
            self._shed_tenant += 1
            self._decay_latency()
            raise Overloaded(
                f"tenant quota exceeded ({self.tenant_limit} in flight)", request.tenant
            )
        if request.deadline is not None:
            estimated = self._estimated_wait()
            if estimated > request.deadline:
                self._shed_deadline += 1
                self._decay_latency()
                raise Overloaded(
                    f"deadline {request.deadline:.3f}s unmeetable "
                    f"(estimated wait {estimated:.3f}s)",
                    request.tenant,
                )

        # ------------------------- coalescing -------------------------- #
        key = request.content_key if (self.coalesce and request.coalesce) else None
        if key is not None:
            primary = self._inflight.get(key)
            if primary is not None:
                self._coalesced += 1
                result = await asyncio.shield(primary)
                return result.mark_coalesced()

        loop = asyncio.get_running_loop()
        future: Optional["asyncio.Future[ServeResult]"] = None
        if key is not None:
            future = loop.create_future()
            self._inflight[key] = future
        self._pending += 1
        self._tenant_pending[request.tenant] = self._tenant_pending.get(request.tenant, 0) + 1
        try:
            await self._reader_enter(loop)
            try:
                result = await self._dispatch(request, loop)
            finally:
                self._reader_exit()
        except BaseException as exc:
            if future is not None and not future.done():
                future.set_exception(exc)
                future.exception()  # mark retrieved: waiters re-raise their own copy
            raise
        else:
            if future is not None and not future.done():
                future.set_result(result)
            return result
        finally:
            if key is not None and self._inflight.get(key) is future:
                del self._inflight[key]
            self._pending -= 1
            remaining = self._tenant_pending.get(request.tenant, 1) - 1
            if remaining <= 0:
                self._tenant_pending.pop(request.tenant, None)
            else:
                self._tenant_pending[request.tenant] = remaining

    async def _dispatch(
        self, request: ServeRequest, loop: asyncio.AbstractEventLoop
    ) -> ServeResult:
        deadline_at = (
            loop.time() + request.deadline if request.deadline is not None else None
        )
        attempts = 0
        while True:
            if deadline_at is not None and loop.time() >= deadline_at:
                self._shed_deadline += 1
                self._decay_latency()
                raise Overloaded("deadline expired before dispatch", request.tenant)
            replica = self._set.pick(request.content_key)
            replica.load += 1
            started = loop.time()
            try:
                result = await asyncio.to_thread(replica.execute, request)
            except ReplicaCrashed as exc:
                self._replica_crashes += 1
                if isinstance(exc, ReplicaTimeout):
                    self._timeouts += 1
                await asyncio.to_thread(replica.restart)
                attempts += 1
                if attempts >= self.retry.attempts:
                    raise
                self._retries += 1
                await asyncio.sleep(self.retry.backoff(attempts))
                continue
            finally:
                replica.load -= 1
                self._observe_latency(loop.time() - started)
            return result

    async def submit_many(self, requests: Sequence[ServeRequest]) -> List[Any]:
        """Dispatch a sharing-key group to one replica as a merged batch.

        All requests cross the pipe in a single ``exec_many`` message and the
        replica merges their step DAGs, so structurally shared elimination
        steps execute once.  Returns per-request outcomes in order — each a
        :class:`ServeResult` or an exception object; admission shedding
        raises :class:`Overloaded` for the whole group.
        """
        if self._closed:
            raise RuntimeError("Frontend is shut down")
        for request in requests:
            if request.output_mode != "listing":
                raise PlanFailure(
                    "factorized output cannot cross a process boundary; "
                    "serve factorized queries in-process via PlanServer",
                    cause_type="QueryError",
                )
        self._ensure_health_task()
        count = len(requests)
        self._submitted += count
        if self._pending >= self.max_pending:
            self._shed_queue += count
            self._decay_latency()
            raise Overloaded(f"queue full ({self._pending} pending)", requests[0].tenant)
        loop = asyncio.get_running_loop()
        self._pending += count
        tenants: Dict[str, int] = {}
        for request in requests:
            tenants[request.tenant] = tenants.get(request.tenant, 0) + 1
        for tenant, n in tenants.items():
            self._tenant_pending[tenant] = self._tenant_pending.get(tenant, 0) + n
        self._merged_groups += 1
        self._merged_group_requests += count
        try:
            await self._reader_enter(loop)
            try:
                attempts = 0
                while True:
                    replica = self._set.pick(requests[0].content_key)
                    replica.load += count
                    started = loop.time()
                    try:
                        outcomes = await asyncio.to_thread(
                            replica.execute_many, list(requests)
                        )
                    except ReplicaCrashed as exc:
                        self._replica_crashes += 1
                        if isinstance(exc, ReplicaTimeout):
                            self._timeouts += 1
                        await asyncio.to_thread(replica.restart)
                        attempts += 1
                        if attempts >= self.retry.attempts:
                            raise
                        self._retries += 1
                        await asyncio.sleep(self.retry.backoff(attempts))
                        continue
                    finally:
                        replica.load -= count
                        self._observe_latency(loop.time() - started)
                    self._coalesced += sum(
                        1
                        for o in outcomes
                        if isinstance(o, ServeResult) and o.coalesced
                    )
                    return outcomes
            finally:
                self._reader_exit()
        finally:
            self._pending -= count
            for tenant, n in tenants.items():
                remaining = self._tenant_pending.get(tenant, n) - n
                if remaining <= 0:
                    self._tenant_pending.pop(tenant, None)
                else:
                    self._tenant_pending[tenant] = remaining

    # ------------------------------------------------------------------ #
    # fleet-wide factor updates (epoch-gated)
    # ------------------------------------------------------------------ #
    def _ensure_gate(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._gate_loop is not loop:
            self._gate_loop = loop
            self._write_gate = asyncio.Event()
            self._write_gate.set()
            self._no_readers = asyncio.Event()
            self._no_readers.set()
            self._readers = 0

    async def _reader_enter(self, loop: asyncio.AbstractEventLoop) -> None:
        self._ensure_gate(loop)
        await self._write_gate.wait()
        self._readers += 1
        self._no_readers.clear()

    def _reader_exit(self) -> None:
        self._readers -= 1
        if self._readers <= 0:
            self._readers = 0
            if self._no_readers is not None:
                self._no_readers.set()

    async def update_factors(
        self, request: ServeRequest, deltas: Sequence[Tuple[int, Any]]
    ) -> ServeResult:
        """Apply an atomic factor-update batch to the whole fleet.

        Closes the write gate (new reads wait), drains in-flight reads,
        fans the ``(factor_index, delta)`` batch out to every replica,
        advances the update epoch and reopens the gate — so no request
        ever observes a half-applied batch, tier-wide.  Returns the fresh
        post-batch answer for ``request``.

        A replica whose update fails after the retry budget is restarted
        cold rather than failing the update: content-addressed serving
        re-ships it the post-update state lazily, so a missed update makes
        a replica cold, never wrong.  The call fails (typed) only when
        *no* replica could apply the batch.
        """
        if self._closed:
            raise RuntimeError("Frontend is shut down")
        if request.output_mode != "listing":
            raise PlanFailure(
                "incremental updates support listing output only "
                f"(got output_mode={request.output_mode!r})"
            )
        self._ensure_health_task()
        loop = asyncio.get_running_loop()
        self._ensure_gate(loop)
        await self._write_gate.wait()  # one update batch at a time
        self._write_gate.clear()
        try:
            await self._no_readers.wait()
            deltas = list(deltas)
            outcomes = await asyncio.gather(
                *(
                    self._update_one(replica, request, deltas)
                    for replica in self._set.replicas
                )
            )
            results = [o for o in outcomes if isinstance(o, ServeResult)]
            if not results:
                failure = next(
                    (o for o in outcomes if isinstance(o, PlanFailure)), None
                )
                if failure is not None:
                    raise failure
                crash = next(
                    (o for o in outcomes if isinstance(o, BaseException)), None
                )
                raise crash if crash is not None else ReplicaCrashed(
                    "no replica answered the update batch"
                )
            self._update_epoch += 1
            return results[0]
        finally:
            self._write_gate.set()

    async def update_factor(
        self, request: ServeRequest, factor_index: int, delta: Any
    ) -> ServeResult:
        """Single-delta convenience for :meth:`update_factors`."""
        return await self.update_factors(request, [(factor_index, delta)])

    async def _update_one(
        self, replica, request: ServeRequest, deltas: List[Tuple[int, Any]]
    ) -> Any:
        """One replica's update with the tier retry policy; returns the
        result or, after the attempt budget, the final exception object
        (the replica is left restarted — cold, not wrong)."""
        attempts = 0
        while True:
            try:
                return await asyncio.to_thread(replica.update, request, deltas)
            except PlanFailure as exc:
                return exc
            except ReplicaCrashed as exc:
                self._replica_crashes += 1
                if isinstance(exc, ReplicaTimeout):
                    self._timeouts += 1
                await asyncio.to_thread(replica.restart)
                attempts += 1
                if attempts >= self.retry.attempts:
                    return exc
                self._retries += 1
                await asyncio.sleep(self.retry.backoff(attempts))

    def update_batch(
        self, request: ServeRequest, deltas: Sequence[Tuple[int, Any]]
    ) -> ServeResult:
        """Blocking :meth:`update_factors` for non-async callers."""

        async def _run() -> ServeResult:
            try:
                return await self.update_factors(request, deltas)
            finally:
                await self._cancel_health_task()

        return asyncio.run(_run())

    # ------------------------------------------------------------------ #
    # load estimation
    # ------------------------------------------------------------------ #
    def _estimated_wait(self) -> float:
        """Expected queueing delay for a new arrival, from the latency EWMA.

        Optimistic before any observation (admit; the tier has no basis to
        shed yet) — thereafter ``ewma × ceil(backlog share per replica)``.
        """
        if self._latency_ewma is None or self._pending == 0:
            return 0.0
        per_replica = self._pending / max(1, len(self._set))
        return self._latency_ewma * per_replica

    def _observe_latency(self, seconds: float) -> None:
        if self._latency_ewma is None:
            self._latency_ewma = seconds
        else:
            self._latency_ewma = _EWMA_ALPHA * seconds + (1 - _EWMA_ALPHA) * self._latency_ewma

    def _decay_latency(self) -> None:
        """Decay the latency EWMA on a shed.

        A shed produces no latency sample, so after a failure or slow-query
        burst inflated the EWMA the estimate would stay pinned high forever
        — every deadline-carrying request gets rejected, no request runs,
        and no observation can ever pull the estimate back down.  Decaying
        by the EWMA step on each shed lets the tier probe its way out: a
        few rejections shrink the estimate until a request is admitted and
        contributes a real sample again.
        """
        if self._latency_ewma is not None:
            self._latency_ewma *= 1 - _EWMA_ALPHA

    # ------------------------------------------------------------------ #
    # health
    # ------------------------------------------------------------------ #
    def _ensure_health_task(self) -> None:
        if self.health_interval is None or self._closed:
            return
        loop = asyncio.get_running_loop()
        if (
            self._health_task is not None
            and not self._health_task.done()
            and self._health_loop_obj is loop
        ):
            return
        self._health_task = loop.create_task(self._health_loop())
        self._health_loop_obj = loop

    async def _health_loop(self) -> None:
        while not self._closed:
            await asyncio.sleep(self.health_interval)
            restarted = await asyncio.to_thread(self._set.restart_dead)
            self._replica_crashes += len(restarted)
            self._replica_crashes += await asyncio.to_thread(self._ping_sweep)

    def _ping_sweep(self) -> int:
        """Deep-ping the fleet; restart wedged replicas.  Returns restarts.

        A busy replica answers with its cached pong (alive-but-busy); only
        a replica that accepted the ping and missed its RPC deadline — or
        died — comes back ``None`` and is restarted.
        """
        restarted = 0
        pongs: List[Optional[Dict[str, Any]]] = []
        for replica in self._set.replicas:
            if self._closed:
                break
            pong = replica.ping()
            if pong is None:
                try:
                    replica.restart()
                    restarted += 1
                except Exception:  # noqa: BLE001 - next sweep retries
                    pass
            pongs.append(pong)
        self._last_pongs = pongs
        return restarted

    async def _cancel_health_task(self) -> None:
        task = self._health_task
        if (
            task is not None
            and not task.done()
            and self._health_loop_obj is asyncio.get_running_loop()
        ):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._health_task = None
        self._health_loop_obj = None

    # ------------------------------------------------------------------ #
    # synchronous conveniences
    # ------------------------------------------------------------------ #
    def serve_batch(
        self,
        requests: Sequence[Union[ServeRequest, FAQQuery]],
        *,
        return_exceptions: bool = False,
        merge: bool = True,
    ) -> List[Any]:
        """Run a batch through the tier in a private event loop (blocking).

        Bare queries are wrapped into default :class:`ServeRequest` values.
        With ``return_exceptions=True`` shed/failed entries come back as
        their exception objects instead of raising, so open-loop callers
        (the benchmark) can count sheds without losing the batch.

        With ``merge=True`` (the default) requests whose queries share a
        :func:`~repro.planner.signature.query_sharing_key` — same semiring
        over the same factor content — are routed to one replica as a single
        merged batch, so their structurally shared elimination steps execute
        once tier-wide.  Requests that opted out of coalescing, carry a
        deadline, or are not digest-addressable take the per-request path.
        """
        wrapped = [
            r if isinstance(r, ServeRequest) else ServeRequest(query=r) for r in requests
        ]

        groups: Dict[str, List[int]] = {}
        if merge and self.coalesce:
            for i, request in enumerate(wrapped):
                if (
                    not request.coalesce
                    or request.deadline is not None
                    or request.output_mode != "listing"
                ):
                    continue
                try:
                    key = query_sharing_key(request.query)
                except TypeError:
                    continue
                groups.setdefault(key, []).append(i)
        merged = {key: idxs for key, idxs in groups.items() if len(idxs) > 1}
        grouped = {i for idxs in merged.values() for i in idxs}
        singles = [i for i in range(len(wrapped)) if i not in grouped]

        async def _run() -> List[Any]:
            try:
                jobs: List[Tuple[List[int], Any]] = [
                    (idxs, self.submit_many([wrapped[i] for i in idxs]))
                    for idxs in merged.values()
                ]
                jobs.extend(([i], self.submit(wrapped[i])) for i in singles)
                replies = await asyncio.gather(
                    *(job for _, job in jobs), return_exceptions=True
                )
                results: List[Any] = [None] * len(wrapped)
                for (idxs, _), reply in zip(jobs, replies):
                    if isinstance(reply, BaseException):
                        for i in idxs:
                            results[i] = reply
                    elif len(idxs) > 1:
                        for i, outcome in zip(idxs, reply):
                            results[i] = outcome
                    else:
                        results[idxs[0]] = reply
                if not return_exceptions:
                    for outcome in results:
                        if isinstance(outcome, BaseException):
                            raise outcome
                return results
            finally:
                await self._cancel_health_task()

        return asyncio.run(_run())

    def ping(self) -> List[Optional[Dict[str, Any]]]:
        """Deep health probe: each replica's serving counters (``None`` = dead)."""
        pongs = [replica.ping() for replica in self._set.replicas]
        self._last_pongs = pongs
        return pongs

    def stats(self) -> Dict[str, Any]:
        """Tier counters: admission, coalescing, shedding, crashes, fleet state.

        ``faults_injected`` is the parent process's count; each replica
        reports its own in its health pong.  ``snapshot_restores`` sums
        the fleet's counters as of the last deep ping (health sweep or
        explicit :meth:`ping`).
        """
        plan = current_plan()
        return {
            "replicas": len(self._set),
            "submitted": self._submitted,
            "coalesced": self._coalesced,
            "pending": self._pending,
            "shed_queue": self._shed_queue,
            "shed_tenant": self._shed_tenant,
            "shed_deadline": self._shed_deadline,
            "replica_crashes": self._replica_crashes,
            "retries": self._retries,
            "timeouts": self._timeouts,
            "update_epoch": self._update_epoch,
            "faults_injected": plan.total_injected if plan is not None else 0,
            "snapshot_restores": sum(
                pong.get("snapshot_restores", 0)
                for pong in self._last_pongs
                if pong is not None
            ),
            "merged_groups": self._merged_groups,
            "merged_group_requests": self._merged_group_requests,
            "latency_ewma_s": self._latency_ewma,
            "fleet": self._set.stats(),
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def aclose(self) -> None:
        """Stop the health loop and shut the fleet down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        await self._cancel_health_task()
        await asyncio.to_thread(self._set.close)
        self._close_shared_caches()

    def close(self) -> None:
        """Synchronous shutdown (for non-async callers; idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._health_task = None
        self._health_loop_obj = None
        self._set.close()
        self._close_shared_caches()

    def _close_shared_caches(self) -> None:
        if self._shared_caches is not None:
            self._shared_caches.close()
            self._shared_caches = None

    def __enter__(self) -> "Frontend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    async def __aenter__(self) -> "Frontend":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

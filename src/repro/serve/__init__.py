"""The serving tier: typed requests in, typed results out, at any scale.

PR 2–4 made a *single* query fast (cost-based planning, plan caching,
fused kernels) and PR 5 served batches from one warm process; this package
is the horizontal tier on top, behind one stable contract:

* :mod:`repro.serve.api` — the public value types
  (:class:`ServeRequest` / :class:`ServeResult`), the typed error
  hierarchy (:class:`ServeError`, retryable :class:`Overloaded`,
  non-retryable :class:`PlanFailure`, :class:`ReplicaCrashed` and its
  :class:`ReplicaTimeout` subclass) and the tier's :class:`RetryPolicy`;
* :mod:`repro.serve.snapshot` — :class:`SnapshotStore`, checksummed
  atomic on-disk spill of warm serving state, so a restarted server (or
  replica) resumes incremental service without a cold full run;
* :mod:`repro.serve.server` — :class:`PlanServer`, the in-process serving
  loop (thread pool + plan cache + shared tries) with **content-hash
  coalescing**: value-equal in-flight requests execute once, keyed by the
  stable digests of :func:`repro.planner.signature.query_content_key`
  rather than object identity;
* :mod:`repro.serve.replica` / :mod:`repro.serve.protocol` — replica
  processes speaking a digest-addressed wire protocol (factor tables ship
  to each replica once, then travel as digests);
* :mod:`repro.serve.frontend` — :class:`Frontend`, the asyncio admission
  point: per-tenant quotas, deadline-aware load shedding, tier-wide
  coalescing, rendezvous-hash routing and replica health/restart.

Scaling ladder — all three speak the same request/result types::

    PlanServer().execute_request(req)          # one thread, warm caches
    PlanServer().submit(req)                   # thread pool, Future out
    await Frontend(replicas=4).submit(req)     # process fleet, coalesced

The PR 5 call forms (bare ``FAQQuery`` in, ``PlanResult`` future out,
``dag_workers=``) keep working through deprecation shims on
:class:`PlanServer` and :func:`execute_batch`.
"""

from repro.serve.api import (
    Overloaded,
    PlanFailure,
    ReplicaCrashed,
    ReplicaTimeout,
    RetryPolicy,
    ServeError,
    ServeRequest,
    ServeResult,
)
from repro.serve.frontend import Frontend
from repro.serve.replica import ReplicaHandle, ReplicaSet
from repro.serve.server import PlanServer, execute_batch
from repro.serve.snapshot import SnapshotStore

__all__ = [
    "ServeRequest",
    "ServeResult",
    "ServeError",
    "Overloaded",
    "PlanFailure",
    "ReplicaCrashed",
    "ReplicaTimeout",
    "RetryPolicy",
    "SnapshotStore",
    "PlanServer",
    "execute_batch",
    "Frontend",
    "ReplicaSet",
    "ReplicaHandle",
]

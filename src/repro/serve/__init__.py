"""Batched plan serving: many queries, one warm engine.

PR 2–4 made a *single* query fast (cost-based planning, plan caching, fused
kernels); this package is the layer that serves *traffic*.  A
:class:`PlanServer` owns a worker pool, a shared
:class:`~repro.planner.cache.PlanCache` and a bounded store of
:class:`~repro.factors.index.SharedTrieCache` instances, and exposes

* :meth:`PlanServer.submit` — an async-friendly submit loop: enqueue one
  query, get a :class:`concurrent.futures.Future` back immediately (wrap it
  with :func:`asyncio.wrap_future` inside an event loop);
* :meth:`PlanServer.execute_batch` — run a whole batch concurrently and
  return results in input order;
* :func:`execute_batch` — the one-shot convenience wrapper.

Three effects stack up on repeated traffic:

1. **plan reuse** — every query plans against the shared cache, so all but
   the first occurrence of a signature skip the ordering search;
2. **trie reuse** — repeated executions of the *same query object* share
   their base-factor tries and indicator projections through a
   :class:`SharedTrieCache` instead of re-indexing the inputs every run;
3. **request coalescing** — identical in-flight query objects inside one
   batch execute once and fan the result out (``coalesce=False`` opts
   out).  Coalescing keys on object identity: two *equal but distinct*
   query objects are conservatively treated as different requests.

Per-query parallelism composes: ``dag_workers`` forwards to the step-DAG
executor (:mod:`repro.exec`) so each InsideOut run can itself fan out.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from repro.core.insideout import _validated_workers
from repro.core.query import FAQQuery
from repro.factors.index import SharedTrieCache
from repro.planner import STRATEGY_INSIDEOUT, PlanCache, PlanResult, plan

__all__ = ["PlanServer", "execute_batch"]

_MAX_SHARED_QUERIES = 64


class PlanServer:
    """A long-lived serving loop over the planner and the engines.

    Parameters
    ----------
    workers:
        Pool size for concurrent query execution (defaults to the CPU
        count).  The dense/NumPy kernels release the GIL, so distinct
        queries overlap on multicore hosts; on any host the pool still
        amortises planning and trie building across the batch.
    cache:
        The :class:`~repro.planner.cache.PlanCache` to plan against
        (defaults to a server-private cache).
    share_tries:
        Keep a bounded LRU of per-query :class:`SharedTrieCache` stores so
        repeated executions of the same query object skip re-indexing
        their base factors (InsideOut strategy only).
    dag_workers:
        Per-query ``workers=`` forwarded to
        :meth:`~repro.planner.plan.Plan.execute` (``None``/1 = serial per
        query; the batch itself still parallelises across queries).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[PlanCache] = None,
        share_tries: bool = True,
        dag_workers: Optional[int] = None,
        max_shared_queries: int = _MAX_SHARED_QUERIES,
    ) -> None:
        # Same validation as inside_out/DagExecutor (rejects bools, zero,
        # negatives) so the three entry points cannot drift.
        self.workers = _validated_workers(workers) or (os.cpu_count() or 1)
        self.cache = cache if cache is not None else PlanCache()
        self.share_tries = share_tries
        self.dag_workers = dag_workers
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        # key -> (query, SharedTrieCache): the query object is pinned so a
        # recycled id() can never resolve to another query's store.  A
        # plain OrderedDict under self._lock rather than caching.LruCache:
        # the store needs atomic get-or-create *with identity validation*
        # in one critical section, which a generic get/put surface cannot
        # express without a second race-prone round trip.
        self._shared: "OrderedDict[tuple, tuple[FAQQuery, SharedTrieCache]]" = OrderedDict()
        self._max_shared = max_shared_queries
        # Counters of stores already evicted from the LRU, so stats() stays
        # cumulative (monotone) across evictions.
        self._evicted_trie_hits = 0
        self._evicted_trie_misses = 0
        self._submitted = 0
        self._coalesced = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # the submit loop
    # ------------------------------------------------------------------ #
    def submit(self, query: FAQQuery, **kwargs: Any) -> "Future[PlanResult]":
        """Enqueue one query; returns a future resolving to its result.

        ``kwargs`` are forwarded to :func:`repro.planner.plan` (e.g.
        ``strategy=``/``backend=``/``ordering=`` overrides) plus
        ``output_mode=``.  Asyncio callers wrap the returned future with
        :func:`asyncio.wrap_future`.
        """
        if self._closed:
            raise RuntimeError("PlanServer is shut down")
        with self._lock:
            self._submitted += 1
        return self._pool.submit(self._run_one, query, kwargs)

    def execute_batch(
        self,
        queries: Sequence[FAQQuery],
        coalesce: bool = True,
        **kwargs: Any,
    ) -> List[PlanResult]:
        """Execute ``queries`` concurrently; results come back in input order.

        With ``coalesce=True`` identical query *objects* in the batch are
        executed once and share one :class:`PlanResult` (request
        coalescing — the standard serving-layer optimisation for repeated
        traffic).
        """
        futures: List[Future] = []
        in_flight: Dict[int, Future] = {}
        for query in queries:
            if coalesce:
                future = in_flight.get(id(query))
                if future is not None:
                    with self._lock:
                        self._coalesced += 1
                    futures.append(future)
                    continue
            future = self.submit(query, **kwargs)
            if coalesce:
                in_flight[id(query)] = future
            futures.append(future)
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    def _run_one(self, query: FAQQuery, kwargs: Dict[str, Any]) -> PlanResult:
        output_mode = kwargs.pop("output_mode", "listing")
        chosen = plan(query, cache=self.cache, **kwargs)
        shared = None
        if self.share_tries and chosen.strategy == STRATEGY_INSIDEOUT:
            shared = self._shared_tries_for(query, chosen.ordering)
        return chosen.execute(
            output_mode=output_mode, workers=self.dag_workers, shared_tries=shared
        )

    def _shared_tries_for(
        self, query: FAQQuery, ordering: Sequence[str]
    ) -> SharedTrieCache:
        """The cross-run trie store for (query object, ordering), LRU-bounded.

        Entries pin the query object they were built for: a dead query's
        recycled ``id()`` must neither serve the old store (its ``covers``
        checks would reject every factor, silently disabling sharing) nor
        keep the old factor list alive behind a mismatched key.
        """
        key = (id(query), tuple(ordering))
        with self._lock:
            entry = self._shared.get(key)
            if entry is not None and entry[0] is query:
                self._shared.move_to_end(key)
                return entry[1]
            shared = SharedTrieCache(ordering, query.semiring, query.factors)
            self._shared[key] = (query, shared)
            while len(self._shared) > self._max_shared:
                _, (_, evicted) = self._shared.popitem(last=False)
                self._evicted_trie_hits += evicted.hits
                self._evicted_trie_misses += evicted.misses
            return shared

    # ------------------------------------------------------------------ #
    # observability + lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Serving counters: submissions, coalescing, cache and trie reuse.

        The trie counters are cumulative over the server's lifetime —
        stores evicted from the LRU contribute the counts they had at
        eviction time, so ``shared_trie_hits`` is monotone and safe to
        trend.  They are a (tight) lower bound, not an exact total: a
        store evicted while another pool thread's in-flight run still
        holds it stops contributing that run's remaining increments.
        """
        with self._lock:
            shared = [entry[1] for entry in self._shared.values()]
            submitted = self._submitted
            coalesced = self._coalesced
            evicted_hits = self._evicted_trie_hits
            evicted_misses = self._evicted_trie_misses
        return {
            "submitted": submitted,
            "coalesced": coalesced,
            "plan_cache_hits": self.cache.hits,
            "plan_cache_misses": self.cache.misses,
            "shared_trie_stores": len(shared),
            "shared_trie_hits": evicted_hits + sum(s.hits for s in shared),
            "shared_trie_misses": evicted_misses + sum(s.misses for s in shared),
        }

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for in-flight queries."""
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "PlanServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)


def execute_batch(
    queries: Sequence[FAQQuery],
    *,
    workers: Optional[int] = None,
    cache: Optional[PlanCache] = None,
    coalesce: bool = True,
    share_tries: bool = True,
    dag_workers: Optional[int] = None,
    **kwargs: Any,
) -> List[PlanResult]:
    """Run a batch of queries against a transient :class:`PlanServer`.

    Results come back in input order.  For long-lived traffic keep a
    :class:`PlanServer` instead — its plan cache and shared tries stay warm
    across batches.
    """
    with PlanServer(
        workers=workers, cache=cache, share_tries=share_tries, dag_workers=dag_workers
    ) as server:
        return server.execute_batch(queries, coalesce=coalesce, **kwargs)

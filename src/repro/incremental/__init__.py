"""Delta maintenance of FAQ answers over the content-addressed step IR.

See :mod:`repro.incremental.view` for the regime taxonomy (delta
propagation, monotone append, dirty-subgraph re-execution) and the
:class:`IncrementalView` entry point.
"""

from repro.incremental.view import (
    ADDITIVE_TAGS,
    REGIME_APPEND,
    REGIME_DELTA,
    REGIME_DIRTY,
    SUBTRACTABLE,
    IncrementalStats,
    IncrementalView,
    additive_tag,
    is_flat_query,
)

__all__ = [
    "IncrementalView",
    "IncrementalStats",
    "REGIME_DELTA",
    "REGIME_APPEND",
    "REGIME_DIRTY",
    "ADDITIVE_TAGS",
    "SUBTRACTABLE",
    "additive_tag",
    "is_flat_query",
]

"""Incremental (delta) maintenance of FAQ query answers.

Given a standing :class:`~repro.core.query.FAQQuery` and a stream of
:class:`~repro.factors.FactorDelta` updates, an :class:`IncrementalView`
keeps the query answer current without full recomputation.  Three regimes,
chosen per update from the semiring and the shape of the delta:

* **delta propagation** (``REGIME_DELTA``) — for ⊕-invertible semirings
  (counting, sum-product): the FAQ expression is ⊕-linear in each factor
  when every bound aggregate *is* the semiring ⊕, so the change to the
  answer is the same query evaluated with the touched factor replaced by
  the sparse *signed difference* ``new ⊖ old``.  Cost scales with the
  delta's support, not the factor's.
* **monotone append** (``REGIME_APPEND``) — for idempotent semirings
  (max-product, boolean, min-plus) when every changed cell *absorbs* its
  old value (``old ⊕ new = new``): re-running the query over just the
  changed cells and ⊕-combining into the stale answer is exact, because
  every stale contribution is absorbed by a fresh one.
* **dirty-subgraph re-execution** (``REGIME_DIRTY``) — the universal
  fallback: re-lower the updated query and replay every step-DAG node
  whose content digest is unchanged from the previous run
  (:meth:`repro.exec.DagExecutor.run_incremental`); only the subgraph
  downstream of the touched base factor recomputes.

All three regimes produce answers bit-identical to a full recomputation
(the differential tests enforce this cell-for-cell across backends and
worker counts).  Updates never mutate factors in place — factor tables
freeze when digested, and the supported update path is
``Factor.apply_delta`` producing a new factor with a new digest, which is
what keeps every digest-keyed cache in the engine honest.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.core.insideout import InsideOutResult, apply_output_delta, _validated_ordering
from repro.core.query import FAQQuery, QueryError
from repro.exec.executor import DagExecutor, IncrementalRunInfo, RunSnapshot
from repro.factors.backend import BACKEND_SPARSE, as_sparse, validate_backend
from repro.factors.delta import FactorDelta
from repro.factors.factor import Factor
from repro.semiring.base import Semiring

REGIME_DELTA = "delta"
REGIME_APPEND = "append"
REGIME_DIRTY = "dirty"

#: Semiring name → the aggregate tag that *is* that semiring's ⊕.  A query
#: whose bound aggregates all carry this tag computes a polynomial that is
#: ⊕-linear in each factor (the flat FAQ form), which is what the delta
#: and append regimes rely on.
ADDITIVE_TAGS: Dict[str, str] = {
    "counting": "sum",
    "sum-product": "sum",
    "complex-sum-product": "sum",
    "max-product": "max",
    "max-sum": "max",
    "min-plus": "min",
    "min-product": "min",
    "boolean": "or",
}

#: Semiring name → a subtraction inverting its ⊕ (delta-propagation
#: regime).  Idempotent semirings have no such inverse and fall through
#: to monotone append or dirty re-execution.
SUBTRACTABLE: Dict[str, Callable[[Any, Any], Any]] = {
    "counting": operator.sub,
    "sum-product": operator.sub,
    "complex-sum-product": operator.sub,
}


def additive_tag(semiring: Semiring, override: Optional[str] = None) -> Optional[str]:
    """The aggregate tag matching ``semiring``'s ⊕, or ``None`` if unknown.

    Pass ``override`` for custom semirings whose ⊕ corresponds to a tag
    the registry does not know about.
    """
    if override is not None:
        return override
    return ADDITIVE_TAGS.get(semiring.name)


def is_flat_query(query: FAQQuery, add_tag: Optional[str]) -> bool:
    """True when every bound aggregate is the semiring ⊕ (no product vars).

    Flat queries are ⊕-linear in each input factor — the precondition for
    the delta-propagation and monotone-append regimes.
    """
    if add_tag is None:
        return False
    return all(
        not agg.is_product and agg.tag == add_tag
        for agg in query.aggregates.values()
    )


@dataclass
class IncrementalStats:
    """Per-view accounting of how updates were answered."""

    full_runs: int = 0
    delta_updates: int = 0
    append_updates: int = 0
    dirty_updates: int = 0
    nodes_reused: int = 0
    nodes_executed: int = 0
    regimes: Dict[str, int] = field(default_factory=dict)

    def record(self, regime: str) -> None:
        self.regimes[regime] = self.regimes.get(regime, 0) + 1


class IncrementalView:
    """A standing query whose answer is maintained under factor updates.

    Parameters
    ----------
    query:
        The FAQ query to maintain.  Listing output only — factorized
        outputs share sub-factors whose identity an update would break.
    ordering:
        Variable ordering pinned for the view's lifetime (every regime
        must eliminate in the same order for digests and deltas to line
        up).  ``None`` keeps the query's own order.
    use_indicator_projections / backend / workers:
        Execution knobs, same meaning as in
        :func:`repro.core.insideout.inside_out`.
    add_tag:
        Override for :func:`additive_tag` on custom semirings.
    """

    def __init__(
        self,
        query: FAQQuery,
        ordering: Sequence[str] | str | None = None,
        use_indicator_projections: bool = True,
        backend: str = BACKEND_SPARSE,
        workers: Optional[int] = None,
        add_tag: Optional[str] = None,
    ) -> None:
        self.query = query
        self._order: Tuple[str, ...] = tuple(_validated_ordering(query, ordering))
        self._uip = use_indicator_projections
        self._backend = validate_backend(backend)
        self._executor = DagExecutor(workers=workers or 1)
        self._add_tag = additive_tag(query.semiring, add_tag)
        self._snapshot: Optional[RunSnapshot] = None
        self._output: Optional[Factor] = None
        self.stats = IncrementalStats()

    # ------------------------------------------------------------------ #
    # durable state (snapshot spill / warm restart)
    # ------------------------------------------------------------------ #
    def dump_state(self) -> Dict[str, Any]:
        """The view's picklable state for snapshot spill.

        Everything a restarted server needs to resume *warm*: the current
        query (frozen factors), the pinned ordering/backend knobs, the
        digest-keyed step snapshot and the current answer.  Runtime-only
        machinery (the executor) and the accounting stats are excluded —
        a restored view starts with fresh stats, which is what lets tests
        assert "no full recompute after restore" as ``full_runs == 0``.
        """
        return {
            "query": self.query,
            "order": self._order,
            "uip": self._uip,
            "backend": self._backend,
            "add_tag": self._add_tag,
            "snapshot": self._snapshot,
            "output": self._output,
        }

    @classmethod
    def restore(cls, state: Dict[str, Any], workers: Optional[int] = None) -> "IncrementalView":
        """Rebuild a view from :meth:`dump_state` output.

        The restored view answers :meth:`result` from the saved output
        without any execution, and its first :meth:`update_factor` runs
        against the saved step snapshot — only the dirty subgraph of that
        update executes, exactly as if the process had never restarted.
        """
        view = cls.__new__(cls)
        view.query = state["query"]
        view._order = tuple(state["order"])
        view._uip = state["uip"]
        view._backend = state["backend"]
        view._add_tag = state["add_tag"]
        view._executor = DagExecutor(workers=workers or 1)
        view._snapshot = state["snapshot"]
        view._output = state["output"]
        view.stats = IncrementalStats()
        return view

    # ------------------------------------------------------------------ #
    @property
    def ordering(self) -> Tuple[str, ...]:
        return self._order

    @property
    def backend(self) -> str:
        return self._backend

    def result(self) -> Factor:
        """The current answer (normalized sparse factor over the free vars).

        Computed from scratch on first access; afterwards maintained by
        :meth:`update_factor`.
        """
        if self._output is None:
            self._output = self._full_run()
        return self._output

    # ------------------------------------------------------------------ #
    def update_factor(self, index: int, delta: FactorDelta) -> Factor:
        """Apply ``delta`` to factor ``index`` and return the fresh answer.

        Picks the cheapest sound regime for this update (see the module
        docstring); the returned factor is bit-identical to a full
        recomputation of the updated query.
        """
        if not 0 <= index < len(self.query.factors):
            raise QueryError(
                f"factor index {index} out of range (query has "
                f"{len(self.query.factors)} factors)"
            )
        base = self.result()  # ensure a baseline answer + snapshot exist
        semiring = self.query.semiring
        old_factor = self.query.factors[index]
        changes = delta.effective_changes(old_factor, semiring)
        new_factor = old_factor.apply_delta(
            FactorDelta(old_factor.scope, changes), semiring
        )

        if not changes:
            # No-op update: nothing changed, keep the cached answer.
            self.query = self._with_factor(index, new_factor)
            return base

        regime = self._choose_regime(old_factor, changes)
        self.stats.record(regime)
        if regime == REGIME_DELTA:
            self.stats.delta_updates += 1
            output = self._apply_delta_regime(index, old_factor, changes, base)
        elif regime == REGIME_APPEND:
            self.stats.append_updates += 1
            output = self._apply_append_regime(index, old_factor, changes, base)
        else:
            self.stats.dirty_updates += 1
            self.query = self._with_factor(index, new_factor)
            output = self._dirty_run()
            self._output = output
            return output

        self.query = self._with_factor(index, new_factor)
        # The snapshot stays: its entries are *content-addressed*, so a
        # stale entry can never replay wrongly — it either matches a future
        # node's digest (and is then valid by construction) or is ignored.
        # Steps disjoint from the updated factor keep replaying across
        # arbitrarily many updates.
        self._output = output
        return output

    # ------------------------------------------------------------------ #
    # regime selection and application
    # ------------------------------------------------------------------ #
    def _choose_regime(
        self, old_factor: Factor, changes: Dict[Tuple[Any, ...], Any]
    ) -> str:
        semiring = self.query.semiring
        if not is_flat_query(self.query, self._add_tag):
            return REGIME_DIRTY
        if semiring.name in SUBTRACTABLE:
            return REGIME_DELTA
        # Idempotent ⊕: sound to append only when every changed cell
        # absorbs its old value (old ⊕ new = new) — deletions and
        # "worsening" updates fall through to dirty re-execution.
        for cell, value in changes.items():
            old_value = old_factor.value_of_tuple(cell, semiring)
            if not semiring.values_equal(semiring.add(old_value, value), value):
                return REGIME_DIRTY
        return REGIME_APPEND

    def _apply_delta_regime(
        self,
        index: int,
        old_factor: Factor,
        changes: Dict[Tuple[Any, ...], Any],
        base: Factor,
    ) -> Factor:
        semiring = self.query.semiring
        sub = SUBTRACTABLE[semiring.name]
        diff: Dict[Tuple[Any, ...], Any] = {}
        for cell, value in changes.items():
            old_value = old_factor.value_of_tuple(cell, semiring)
            signed = sub(value, old_value)
            if not semiring.values_equal(signed, semiring.zero):
                diff[cell] = signed
        if not diff:
            return base
        delta_factor = Factor(
            old_factor.scope, diff, name=old_factor.name + "+delta"
        )
        correction = self._run_with_factor(index, delta_factor)
        return apply_output_delta(base, correction, semiring, name=base.name)

    def _apply_append_regime(
        self,
        index: int,
        old_factor: Factor,
        changes: Dict[Tuple[Any, ...], Any],
        base: Factor,
    ) -> Factor:
        semiring = self.query.semiring
        appended = {
            cell: value
            for cell, value in changes.items()
            if not semiring.is_zero(value)
        }
        if not appended:
            return base
        delta_factor = Factor(
            old_factor.scope, appended, name=old_factor.name + "+append"
        )
        correction = self._run_with_factor(index, delta_factor)
        return apply_output_delta(base, correction, semiring, name=base.name)

    # ------------------------------------------------------------------ #
    # execution helpers
    # ------------------------------------------------------------------ #
    def _with_factor(self, index: int, factor: Factor) -> FAQQuery:
        """The current query with factor ``index`` replaced.

        The delta-propagation signed differences survive FAQQuery's
        zero-pruning because a non-zero ⊖ difference is, by construction,
        a non-zero semiring value.
        """
        factors = list(self.query.factors)
        factors[index] = factor
        return FAQQuery(
            variables=[self.query.variables[v] for v in self.query.order],
            free=self.query.free,
            aggregates=self.query.aggregates,
            factors=factors,
            semiring=self.query.semiring,
            name=self.query.name,
        )

    def _run_with_factor(self, index: int, factor: Factor) -> Factor:
        """Evaluate the view's query with factor ``index`` swapped for
        ``factor`` (the delta/append correction run).

        Runs against the view's step snapshot: every elimination step *not*
        involving the swapped factor has the same content digest as the
        baseline run and replays instead of recomputing, so the correction
        run pays only for the (small) subgraph the delta actually touches —
        the joins of a few changed cells, not the full factor tables.
        """
        query = self._with_factor(index, factor)
        info = IncrementalRunInfo()
        result, snapshot = self._executor.run_incremental(
            query,
            ordering=list(self._order),
            use_indicator_projections=self._uip,
            backend=self._backend,
            prior=self._snapshot,
            info=info,
        )
        self._merge_snapshot(snapshot)
        self.stats.nodes_reused += info.reused_nodes
        self.stats.nodes_executed += info.executed_nodes
        return self._normalize(result)

    def _full_run(self) -> Factor:
        self.stats.full_runs += 1
        result, snapshot = self._executor.run_incremental(
            self.query,
            ordering=list(self._order),
            use_indicator_projections=self._uip,
            backend=self._backend,
        )
        self._snapshot = snapshot
        return self._normalize(result)

    def _dirty_run(self) -> Factor:
        info = IncrementalRunInfo()
        result, snapshot = self._executor.run_incremental(
            self.query,
            ordering=list(self._order),
            use_indicator_projections=self._uip,
            backend=self._backend,
            prior=self._snapshot,
            info=info,
        )
        self._merge_snapshot(snapshot)
        self.stats.nodes_reused += info.reused_nodes
        self.stats.nodes_executed += info.executed_nodes
        return self._normalize(result)

    def _merge_snapshot(self, fresh: RunSnapshot) -> None:
        """Fold a run's snapshot into the view's, bounding growth.

        Entries are digest-keyed, so accumulating them is always sound;
        the bound just stops an unbounded update stream from pinning every
        intermediate ever computed.  When the accumulated map outgrows the
        latest run by 8x, the latest run's (complete) snapshot wins.
        """
        if self._snapshot is None:
            self._snapshot = fresh
            return
        self._snapshot.entries.update(fresh.entries)
        if len(self._snapshot.entries) > max(512, 8 * len(fresh.entries)):
            self._snapshot = fresh

    def _normalize(self, result: InsideOutResult) -> Factor:
        factor = as_sparse(result.factor, self.query.semiring)
        return factor.normalize_scope(self.query.free)

"""Lowering an InsideOut run to an explicit step DAG.

The sequential InsideOut loop hides a dependency structure: every factor's
scope is known *statically* (an elimination step over induced set ``U_k``
always produces a factor on ``U_k \\ {X_k}``), so the dataflow between
elimination steps can be computed before anything executes.  Steps touching
disjoint factor groups share no slots and get no edge — the paper's own
hypergraph structure exposes the parallel schedule for free.

``lower_insideout`` simulates the elimination over scopes only and emits a
:class:`StepDag`:

* **slots** hold factors.  Slots ``0 .. num_base-1`` are the query's input
  factors (available before any step runs); every step writes its outputs
  into fresh slots.
* **nodes** are the elimination steps, in the exact order the sequential
  loop would run them (``node.index`` is that position).  A semiring node
  *consumes* its incident slots and *reads* the slots it takes indicator
  projections from; a product node maps every live slot to a fresh output
  slot; the final output node reads all surviving slots.
* **edges** (``depends_on``) connect a node to the producers of every slot
  it consumes or reads.

Executing the nodes in any topological order — in particular, concurrently
where the DAG allows — reproduces the sequential run exactly, because each
step kernel (:func:`repro.core.insideout.eliminate_semiring_step` etc.) is a
pure function of its input factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.query import FAQQuery

KIND_SEMIRING = "semiring"
KIND_PRODUCT = "product"
KIND_OUTPUT = "output"


@dataclass
class StepNode:
    """One step of the lowered run (a node of the step DAG)."""

    index: int                      # sequential position (execution tie-break)
    kind: str                       # "semiring" | "product" | "output"
    variable: Optional[str]         # eliminated variable (None for output)
    incident: Tuple[int, ...]       # slots consumed by the step
    reads: Tuple[int, ...] = ()     # slots read for indicator projections
    outputs: Tuple[int, ...] = ()   # slots produced
    depends_on: Tuple[int, ...] = ()  # indices of producer nodes
    digest: Optional[str] = None    # content address (see annotate_digests)


@dataclass
class StepDag:
    """The lowered step DAG of one InsideOut run."""

    nodes: List[StepNode]
    num_slots: int
    num_base: int                   # slots [0, num_base) hold the input factors
    slot_scope: List[FrozenSet[str]] = field(default_factory=list)
    final_live: List[int] = field(default_factory=list)  # slots alive at the end
    slot_digests: List[Optional[str]] = field(default_factory=list)  # per-slot content address

    def dependents(self) -> Dict[int, List[int]]:
        """Node index → indices of the nodes that depend on it."""
        result: Dict[int, List[int]] = {node.index: [] for node in self.nodes}
        for node in self.nodes:
            for producer in node.depends_on:
                result[producer].append(node.index)
        return result

    # ------------------------------------------------------------------ #
    # introspection (benchmarks / explain)
    # ------------------------------------------------------------------ #
    def levels(self) -> List[List[int]]:
        """Topological levels: nodes in one level have no mutual edges.

        Level ``k`` holds the nodes whose longest dependency chain has
        length ``k`` — the width of a level is the parallelism available at
        that depth of the run.
        """
        depth: Dict[int, int] = {}
        for node in self.nodes:  # nodes are already topologically sorted
            depth[node.index] = 1 + max(
                (depth[d] for d in node.depends_on), default=-1
            )
        levels: List[List[int]] = [[] for _ in range(max(depth.values(), default=-1) + 1)]
        for index, level in depth.items():
            levels[level].append(index)
        return levels

    @property
    def max_parallelism(self) -> int:
        """The widest topological level (upper bound on useful workers)."""
        return max((len(level) for level in self.levels()), default=0)

    @property
    def critical_path_length(self) -> int:
        """Number of nodes on the longest dependency chain."""
        return len(self.levels())

    def explain(self) -> str:
        """A human-readable rendering of the step DAG."""
        lines = [
            f"step DAG: {len(self.nodes)} nodes, {self.num_slots} slots "
            f"({self.num_base} base), max parallelism {self.max_parallelism}, "
            f"critical path {self.critical_path_length}",
        ]
        for node in self.nodes:
            target = node.variable if node.variable is not None else "<output>"
            deps = ",".join(map(str, node.depends_on)) or "-"
            lines.append(
                f"  [{node.index:>3}] {node.kind:<8} {target:<12} "
                f"in={list(node.incident)} reads={list(node.reads)} "
                f"out={list(node.outputs)} deps={deps}"
            )
        return "\n".join(lines)


def lower_insideout(
    query: FAQQuery,
    order: Sequence[str],
    use_indicator_projections: bool = True,
    output_mode: str = "listing",
    content_digests: bool = False,
) -> StepDag:
    """Lower one InsideOut run over ``order`` to a :class:`StepDag`.

    ``order`` must already be a validated free-prefix ordering (the caller
    — :class:`repro.exec.DagExecutor` — resolves ``"plan"``/``"auto"``
    forms first).  The simulation mirrors the sequential loop of
    :func:`repro.core.insideout.inside_out` exactly: the live list evolves
    as ``others + [new]`` so that node input orders (and therefore factor
    orders inside each step) match the loop's.

    With ``content_digests=True`` every node (and slot) additionally gets a
    content address via :func:`annotate_digests`, turning the DAG into the
    content-addressed step IR: structurally identical steps from different
    queries over the same factor content collide by construction.
    """
    scopes: List[FrozenSet[str]] = [frozenset(f.scope) for f in query.factors]
    if not scopes:
        scopes = [frozenset()]  # the synthetic unit factor of an empty product
    num_base = len(scopes)
    producer: Dict[int, Optional[int]] = {i: None for i in range(num_base)}
    live: List[int] = list(range(num_base))
    nodes: List[StepNode] = []

    def new_slot(scope: FrozenSet[str], node_index: int) -> int:
        slot = len(scopes)
        scopes.append(scope)
        producer[slot] = node_index
        return slot

    def deps_of(slots: Sequence[int]) -> Tuple[int, ...]:
        return tuple(sorted({
            producer[s] for s in slots if producer[s] is not None
        }))

    for position in range(len(order) - 1, query.num_free - 1, -1):
        variable = order[position]
        aggregate = query.aggregates[variable]
        index = len(nodes)
        if aggregate.is_product:
            incident = tuple(live)
            outputs = []
            new_live = []
            for slot in incident:
                out = new_slot(scopes[slot] - {variable}, index)
                outputs.append(out)
                new_live.append(out)
            nodes.append(StepNode(
                index=index,
                kind=KIND_PRODUCT,
                variable=variable,
                incident=incident,
                outputs=tuple(outputs),
                depends_on=deps_of(incident),
            ))
            live = new_live
            continue

        incident = [s for s in live if variable in scopes[s]]
        others = [s for s in live if variable not in scopes[s]]
        induced: FrozenSet[str] = frozenset().union(*(scopes[s] for s in incident)) \
            if incident else frozenset({variable})
        reads: Tuple[int, ...] = ()
        if incident and use_indicator_projections:
            reads = tuple(s for s in others if scopes[s] & induced)
        result_scope = induced - {variable}
        out = new_slot(result_scope if incident else frozenset(), index)
        nodes.append(StepNode(
            index=index,
            kind=KIND_SEMIRING,
            variable=variable,
            incident=tuple(incident),
            reads=reads,
            outputs=(out,),
            depends_on=deps_of(tuple(incident) + reads),
        ))
        live = others + [out]

    if output_mode == "listing":
        index = len(nodes)
        incident = tuple(live)
        out = new_slot(frozenset(query.free), index)
        nodes.append(StepNode(
            index=index,
            kind=KIND_OUTPUT,
            variable=None,
            incident=incident,
            outputs=(out,),
            depends_on=deps_of(incident),
        ))
        live = [out]

    dag = StepDag(
        nodes=nodes,
        num_slots=len(scopes),
        num_base=num_base,
        slot_scope=scopes,
        final_live=list(live),
    )
    if content_digests:
        annotate_digests(dag, query, order, use_indicator_projections)
    return dag


# ---------------------------------------------------------------------- #
# content addressing — the step IR
# ---------------------------------------------------------------------- #
def annotate_digests(
    dag: StepDag,
    query: FAQQuery,
    order: Sequence[str],
    use_indicator_projections: bool = True,
) -> None:
    """Assign a content address to every slot and node of ``dag``.

    A node's digest is a stable hash of *everything its result depends on*:
    the op kind, the semiring, the eliminated variable's aggregate, the
    relevant domain values, the elimination/written-order restrictions that
    fix enumeration and scope order inside the step kernels, and — ordered,
    because semiring combines need not be associative in float arithmetic —
    the digests of its input slots (leaves reuse
    :func:`repro.planner.signature.factor_digest`).  Equal digests therefore
    certify bit-identical step results *under the same backend selection*,
    which is why executor-side caches key on ``(digest, backend)`` and only
    engage under the default backend policy.

    Factor names are deliberately excluded (they never influence values);
    unencodable content (exotic domain or table values) yields ``None``
    digests, which propagate and simply disable sharing for the affected
    subgraph.
    """
    from repro.planner.signature import _digest, canonical_bytes, factor_digest

    def encode(payload) -> Optional[bytes]:
        try:
            return canonical_bytes(payload)
        except TypeError:
            return None

    slot_digests: List[Optional[str]] = [None] * dag.num_slots
    if query.factors:
        for i, factor in enumerate(query.factors):
            try:
                slot_digests[i] = factor_digest(factor)
            except TypeError:
                slot_digests[i] = None
    else:
        # the synthetic unit factor of an empty product
        slot_digests[0] = _digest(b"unit", canonical_bytes(query.semiring.name))

    sem = query.semiring.name
    scopes = dag.slot_scope

    def domain_spec(variables) -> tuple:
        return tuple((v, tuple(query.domain(v))) for v in sorted(variables))

    for node in dag.nodes:
        inputs = tuple(slot_digests[s] for s in node.incident)
        if any(d is None for d in inputs):
            continue
        if node.kind == KIND_SEMIRING:
            variable = node.variable
            induced = (
                frozenset().union(*(scopes[s] for s in node.incident))
                if node.incident
                else frozenset({variable})
            )
            reads = tuple(
                (slot_digests[s], tuple(sorted(scopes[s] & induced)))
                for s in node.reads
            )
            if any(d is None for d, _ in reads):
                continue
            payload = encode((
                "semiring",
                sem,
                variable,
                query.tag(variable),
                bool(use_indicator_projections),
                tuple(v for v in order if v in induced),
                tuple(v for v in query.order if v in induced),
                domain_spec(induced),
                inputs,
                reads,
            ))
            if payload is None:
                continue
            node.digest = _digest(b"step", payload)
            slot_digests[node.outputs[0]] = node.digest
        elif node.kind == KIND_PRODUCT:
            variable = node.variable
            size = query.domain_size(variable)
            head = encode(("product", sem, variable, size))
            if head is None:
                continue
            for slot, out, digest in zip(node.incident, node.outputs, inputs):
                out_payload = encode((variable in scopes[slot],))
                slot_digests[out] = _digest(
                    b"step", head, out_payload, digest.encode("ascii")
                )
            node.digest = _digest(
                b"step", head, canonical_bytes(inputs)
            )
        else:  # KIND_OUTPUT
            free = set(query.free)
            payload = encode((
                "output",
                sem,
                tuple(query.free),
                tuple(v for v in order if v in free),
                tuple(v for v in query.order if v in free),
                domain_spec(query.free),
                inputs,
            ))
            if payload is None:
                continue
            node.digest = _digest(b"step", payload)
            slot_digests[node.outputs[0]] = node.digest

    dag.slot_digests = slot_digests

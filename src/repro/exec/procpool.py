"""A process-pool backend for the step-DAG executor.

Threads only help the dense kernels (NumPy releases the GIL); the sparse
trie kernel and the flat kernel's Python glue still serialise on it.
``DagExecutor(workers_mode="process")`` escapes the GIL entirely: the
parent lowers the run as usual, then drives a pool of worker *processes*
over the same step DAG.

Data movement is digest-keyed shared memory, not pipe pickling: every
factor a worker needs (base factors and intermediate step results alike)
is published once into a :class:`~repro.exec.shm.ShmBlobStore` segment —
keyed by the slot's content digest when the step IR carries one — and a
worker receives only ``(slot, segment name)`` references, attaching and
unpickling each segment at most once per worker.  Workers execute the very
same step kernels (:func:`~repro.core.insideout.eliminate_semiring_step`,
:func:`~repro.core.insideout.eliminate_product_step`) against a
worker-local :class:`~repro.factors.index.TrieCache`; the kernels are pure
functions of their input factors, so results, step records, and join
counters are identical to the serial path no matter which process ran a
step.  The output phase always runs in the parent (its result never feeds
another step).

Fault handling is degrade-don't-hang: a worker dying mid-step (EOF on its
pipe) marks the pool *degraded* — the lost step is retried in-process by
the parent and every remaining step runs serially in-process, so a crashed
worker costs wall-clock, never the run.  A worker that reports a step
*error* (not a death) has the step retried in-process too, which either
succeeds or re-raises the real exception with a proper traceback.

Environments whose run context cannot cross a process boundary (lambda
semirings, unpicklable aggregates) raise
:class:`ProcessPoolUnavailable` at pool construction; the executor falls
back to the thread scheduler.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.insideout import (
    eliminate_product_step,
    eliminate_semiring_step,
)
from repro.core.outsidein import OutsideInStats
from repro.core.query import FAQQuery, Variable
from repro.exec.dag import KIND_PRODUCT, KIND_SEMIRING
from repro.exec.shm import ShmBlobStore, ensure_tracker_running, read_blob
from repro.factors.index import TrieCache
from repro.faults import SITE_WORKER_KILL, fire

# Legacy test hook: node indices whose dispatch first poisons the target
# worker (it exits immediately), deterministically exercising the
# death-recovery path.  Consumed indices are removed.  New code uses the
# ``worker.kill`` fault site of :mod:`repro.faults` instead.
_TEST_CRASH_NODES: Set[int] = set()


class ProcessPoolUnavailable(Exception):
    """The run context cannot be shipped to worker processes."""


def build_run_spec(state) -> Dict[str, Any]:
    """The per-run context shipped to every worker once.

    The query travels as a *skeleton* — variables, free prefix, aggregates
    and semiring, but no factor tables (those go through shared memory,
    once per worker, as the steps need them).
    """
    query = state.query
    skeleton = FAQQuery(
        variables=[Variable(v, query.domain(v)) for v in query.order],
        free=list(query.free),
        aggregates=dict(query.aggregates),
        factors=[],
        semiring=query.semiring,
        name=query.name,
    )
    return {
        "query": skeleton,
        "order": list(state.order),
        "backend": state.backend,
        "policy": state.policy,
        "uip": state.uip,
    }


# ---------------------------------------------------------------------- #
# worker side
# ---------------------------------------------------------------------- #
class _WorkerRun:
    """Worker-local mirror of the parent's run state."""

    def __init__(self, spec: Dict[str, Any]) -> None:
        self.query: FAQQuery = spec["query"]
        self.order = spec["order"]
        self.backend = spec["backend"]
        self.policy = spec["policy"]
        self.uip = spec["uip"]
        self.slots: Dict[int, Any] = {}
        self.blobs: Dict[str, Any] = {}  # segment name -> factor
        self.tries = TrieCache(self.order, self.query.semiring)

    def load_refs(self, refs) -> None:
        for slot, name in refs:
            if name is None:
                self.slots[slot] = None
            else:
                factor = self.blobs.get(name)
                if factor is None:
                    factor = read_blob(name)
                    self.blobs[name] = factor
                self.slots[slot] = factor

    def execute(self, payload) -> Tuple[Tuple[Any, ...], Any, OutsideInStats]:
        kind, variable, incident, reads, outputs, refs = payload
        self.load_refs(refs)
        join_stats = OutsideInStats()
        if kind == KIND_SEMIRING:
            incident_factors = [self.slots[s] for s in incident]
            others = [self.slots[s] for s in reads]
            new_factor, record = eliminate_semiring_step(
                self.query, incident_factors, others, variable, self.uip,
                join_stats, backend=self.backend, policy=self.policy,
                tries=self.tries,
            )
            self.slots[outputs[0]] = new_factor
            return (new_factor,), record, join_stats
        if kind == KIND_PRODUCT:
            # Mirrors _RunState.execute_node: outputs align positionally
            # with the incident slots; None inputs keep None outputs.
            pairs = [
                (k, self.slots[s]) for k, s in enumerate(incident)
                if self.slots[s] is not None
            ]
            new_factors, record = eliminate_product_step(
                self.query, [factor for _, factor in pairs], variable
            )
            outs: List[Any] = [None] * len(outputs)
            for (k, old), new in zip(pairs, new_factors):
                outs[k] = new
                self.slots[outputs[k]] = new
                if new is not old:
                    self.tries.discard(old)
            return tuple(outs), record, join_stats
        raise ValueError(f"process worker cannot execute step kind {kind!r}")


def _worker_main(conn) -> None:
    """The worker process entry point (module-level for spawn picklability)."""
    run: Optional[_WorkerRun] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        tag = message[0]
        if tag == "run":
            run = _WorkerRun(message[1])
        elif tag == "step":
            index = message[1]
            try:
                outputs, record, join_stats = run.execute(message[2])
            except BaseException as exc:  # noqa: BLE001 - reported to parent
                try:
                    conn.send(("error", index, repr(exc)))
                except (OSError, ValueError):
                    return
                continue
            try:
                conn.send(("done", index, outputs, record, join_stats))
            except (OSError, ValueError):
                return
        elif tag == "crash":
            os._exit(17)
        elif tag == "exit":
            return


# ---------------------------------------------------------------------- #
# parent side
# ---------------------------------------------------------------------- #
class _Worker:
    __slots__ = ("process", "conn", "alive", "present", "busy_on")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.alive = True
        self.present: Set[int] = set()  # slots already shipped
        self.busy_on: Optional[int] = None  # in-flight node index


class ProcessPool:
    """Drives one lowered run over a pool of worker processes."""

    def __init__(self, workers: int, spec: Dict[str, Any], context=None) -> None:
        try:
            pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise ProcessPoolUnavailable(
                f"run context is not picklable for process workers: {exc!r}"
            ) from exc
        ctx = context if context is not None else multiprocessing.get_context()
        ensure_tracker_running()  # fork children must share the tracker
        self.workers: List[_Worker] = []
        try:
            for _ in range(workers):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main, args=(child_conn,), daemon=True
                )
                process.start()
                child_conn.close()
                parent_conn.send(("run", spec))
                self.workers.append(_Worker(process, parent_conn))
        except Exception as exc:
            self.shutdown()
            raise ProcessPoolUnavailable(
                f"could not start process workers: {exc!r}"
            ) from exc
        self.info: Dict[str, Any] = {
            "mode": "process",
            "workers": workers,
            "remote_steps": 0,
            "local_steps": 0,
            "retried_steps": 0,
            "degraded": False,
            "shipped_blobs": 0,
        }

    # ------------------------------------------------------------------ #
    def run(self, state, dag, step_cache=None) -> Dict[str, Any]:
        """Execute ``dag`` against ``state``; returns the pool info dict."""
        from multiprocessing.connection import wait

        blob_store = ShmBlobStore()
        slot_digests = getattr(dag, "slot_digests", None) or [None] * dag.num_slots
        indegree = {node.index: len(node.depends_on) for node in dag.nodes}
        dependents = dag.dependents()
        ready = sorted(
            (index for index, degree in indegree.items() if degree == 0),
            reverse=True,
        )
        total = len(dag.nodes)
        processed = 0
        claimed: Dict[int, tuple] = {}   # node index -> held cache key
        parked: Dict[tuple, List[int]] = {}  # key -> nodes awaiting our claim

        def complete(index: int) -> None:
            nonlocal processed
            processed += 1
            for dependent in dependents[index]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)

        def resolve(index: int, entry) -> None:
            """Fulfil a held claim and release any nodes parked on it."""
            key = claimed.pop(index, None)
            if key is None:
                return
            step_cache.fulfil(key, entry)
            for waiter in parked.pop(key, ()):
                state.replay(waiter, entry)
                complete(waiter)

        def execute_local(index: int) -> None:
            key = claimed.get(index)
            if key is None:
                state.execute_node(index)
                self.info["local_steps"] += 1
                return
            try:
                state.execute_node(index)
                entry = state.capture(index)
            except BaseException:
                step_cache.abandon(claimed.pop(index))
                raise
            self.info["local_steps"] += 1
            resolve(index, entry)

        def handle_death(worker: _Worker) -> None:
            worker.alive = False
            self.info["degraded"] = True
            try:
                worker.conn.close()
            except OSError:
                pass
            index = worker.busy_on
            worker.busy_on = None
            if index is not None:
                self.info["retried_steps"] += 1
                execute_local(index)
                complete(index)

        try:
            while processed < total:
                deferred: List[int] = []
                while ready:
                    index = ready.pop()
                    node = dag.nodes[index]
                    key = state.cache_key(index) if step_cache is not None else None
                    if key is not None and index not in claimed:
                        if key in parked or any(k == key for k in claimed.values()):
                            # Our own run holds this claim in flight; park the
                            # node instead of deadlocking the event loop on
                            # the cache's in-flight event.
                            parked.setdefault(key, []).append(index)
                            continue
                        entry = step_cache.lookup_or_claim(key)
                        if entry is not None:
                            state.replay(index, entry)
                            complete(index)
                            continue
                        claimed[index] = key
                    idle = next(
                        (w for w in self.workers if w.alive and w.busy_on is None),
                        None,
                    )
                    remote_ok = (
                        node.kind in (KIND_SEMIRING, KIND_PRODUCT)
                        and not self.info["degraded"]
                    )
                    if not remote_ok:
                        execute_local(index)
                        complete(index)
                    elif idle is None:
                        deferred.append(index)
                    else:
                        self._dispatch(
                            idle, state, node, blob_store, slot_digests
                        )
                        if not idle.alive:
                            handle_death(idle)
                ready = deferred
                if processed >= total:
                    break
                busy = [w for w in self.workers if w.alive and w.busy_on is not None]
                if not busy:
                    if ready:
                        continue  # degraded mid-loop; drain locally
                    raise RuntimeError("process pool stalled with no runnable steps")
                for conn in wait([w.conn for w in busy]):
                    worker = next(w for w in busy if w.conn is conn)
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        handle_death(worker)
                        continue
                    index = worker.busy_on
                    worker.busy_on = None
                    if message[0] == "done":
                        _, _, outputs, record, join_delta = message
                        from repro.exec.executor import _StepEntry

                        entry = _StepEntry(
                            outputs=tuple(outputs),
                            record=record,
                            join_delta=join_delta,
                        )
                        state.replay(index, entry)
                        node = dag.nodes[index]
                        for slot in node.outputs:
                            worker.present.add(slot)
                        self.info["remote_steps"] += 1
                        resolve(index, entry)
                        complete(index)
                    else:  # ("error", index, repr) — retry in-process
                        self.info["retried_steps"] += 1
                        execute_local(index)
                        complete(index)
        except BaseException:
            for key in claimed.values():
                step_cache.abandon(key)
            raise
        finally:
            blob_store.close()
        return dict(self.info)

    # ------------------------------------------------------------------ #
    def _dispatch(self, worker: _Worker, state, node, blob_store, slot_digests) -> None:
        """Ship missing inputs by reference and send one step to a worker."""
        refs: List[Tuple[int, Optional[str]]] = []
        for slot in tuple(node.incident) + tuple(node.reads):
            if slot in worker.present:
                continue
            factor = state.slots[slot]
            if factor is None:
                refs.append((slot, None))
            else:
                key = slot_digests[slot] if slot_digests[slot] is not None else slot
                before = len(blob_store)
                name = blob_store.put(key, factor)
                if len(blob_store) > before:
                    self.info["shipped_blobs"] += 1
                refs.append((slot, name))
            worker.present.add(slot)
        payload = (
            node.kind, node.variable, tuple(node.incident), tuple(node.reads),
            tuple(node.outputs), refs,
        )
        crash = node.index in _TEST_CRASH_NODES
        if crash:
            _TEST_CRASH_NODES.discard(node.index)
        elif fire(SITE_WORKER_KILL) is not None:
            crash = True
        if crash:
            try:
                worker.conn.send(("crash",))
            except OSError:
                pass
        worker.busy_on = node.index
        try:
            worker.conn.send(("step", node.index, payload))
        except (OSError, ValueError):
            worker.alive = False  # caller runs the death path

    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        for worker in self.workers:
            if worker.alive:
                try:
                    worker.conn.send(("exit",))
                except (OSError, ValueError):
                    pass
            try:
                worker.conn.close()
            except OSError:
                pass
        for worker in self.workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)

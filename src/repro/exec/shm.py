"""Shared-memory stores for the multiprocess execution and serving tiers.

Two stores live here, both built on :mod:`multiprocessing.shared_memory`:

* :class:`ShmBlobStore` — a parent-owned, content-keyed blob store.  The
  process-pool executor (:mod:`repro.exec.procpool`) publishes each factor
  table (base factors and intermediate step results) exactly once, keyed by
  its content digest; workers attach by segment name, unpickle, and cache
  by key, so a factor crosses the process boundary **once per worker** no
  matter how many steps read it.

* :class:`SharedCacheStore` — a named, versioned, checksummed segment
  publishing read-only cache payloads (the process-wide ρ* LP memo and the
  planner's plan cache) fleet-wide.  The serving tier's parent process
  publishes its warm caches; every replica adopts them at startup instead
  of warming a private copy (ROADMAP item 2's mmap-store follow-on).

Segment layout of a :class:`SharedCacheStore` (and of every
:class:`ShmBlobStore` blob, which uses the header's length field only)::

    bytes 0..7    magic  b"REPROSH1"  (store kind + layout version)
    bytes 8..15   payload length, little-endian u64
    bytes 16..47  SHA-256 of the payload   (SharedCacheStore only)
    bytes 48..    pickled payload

Invalidation is by construction: the magic pins the layout, the payload
embeds the same ``kind``/``version`` tags the on-disk persistence of
:meth:`repro.caching.LruCache.save` uses, and the checksum rejects torn or
foreign segments.  Adoption is *best-effort everywhere* — any mismatch
(missing segment, wrong magic, wrong version, bad checksum, unpicklable
payload) adopts nothing rather than failing the process.

``resource_tracker`` note: attaching a segment from a child process
registers it with the child's resource tracker, which would unlink it when
the child exits (bpo-39959).  Both stores therefore unregister the
attach-side handle immediately — the creating parent owns cleanup.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import pickle
import struct
import sys
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Optional

from repro.faults import SITE_SHM_ATTACH, maybe_raise

_MAGIC = b"REPROSH1"
_LEN_OFFSET = 8
_SHA_OFFSET = 16
_PAYLOAD_OFFSET = 48

# Payload tags of the SharedCacheStore (mirrors LruCache.save's envelope).
SHARED_CACHE_KIND = "repro-shared-caches"
SHARED_CACHE_VERSION = 1


def _private_tracker() -> bool:
    """Whether this process's resource tracker is private to it.

    Fork children inherit the parent's tracker: registrations are
    idempotent set-adds and exactly one unregister (the creator's
    ``unlink``) must happen, so attach must *not* unregister — doing so
    makes the later unlink a double-unregister the tracker logs noisily.
    Spawn children start their own tracker, which would unlink shared
    segments when the child exits (bpo-39959) unless the attach-side
    handle is unregistered.
    """
    try:
        method = multiprocessing.get_start_method(allow_none=True)
    except Exception:  # pragma: no cover - context API drift
        return True
    if method is None:
        method = "fork" if sys.platform.startswith("linux") else "spawn"
    return method != "fork"


def ensure_tracker_running() -> None:
    """Start the resource tracker *before* forking attach-side children.

    Fork children inherit a running tracker and share it; a child that
    attaches a segment then performs an idempotent re-registration instead
    of spinning up a private tracker that would warn about "leaked"
    segments (already unlinked by the parent) when the child exits.
    """
    try:
        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - tracker API drift
        pass


# Live segment-owning stores, reaped at interpreter exit so a caller that
# forgets close() (or dies in a test) cannot leak kernel-lifetime shared
# memory.  A WeakSet: an explicitly closed + collected store simply drops
# out; close() is idempotent so double-reaping the rest is safe.
_LIVE_STORES: "weakref.WeakSet" = weakref.WeakSet()


@atexit.register
def _reap_segments() -> None:
    for store in list(_LIVE_STORES):
        try:
            store.close()
        except Exception:  # pragma: no cover - interpreter is going down
            pass


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting cleanup duty."""
    maybe_raise(SITE_SHM_ATTACH, OSError)
    segment = shared_memory.SharedMemory(name=name)
    if _private_tracker():
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
    return segment


class ShmBlobStore:
    """Parent-owned content-keyed blobs in shared memory.

    ``put`` pickles a value under a key once and returns the segment name;
    repeated puts of the same key are free.  Readers (in any process) call
    :func:`read_blob` with the name.  The creating process must call
    :meth:`close` when the run ends — segments have kernel lifetime, not
    process lifetime.
    """

    def __init__(self) -> None:
        self._segments: Dict[Any, shared_memory.SharedMemory] = {}
        _LIVE_STORES.add(self)

    def __len__(self) -> int:
        return len(self._segments)

    def put(self, key: Any, value: Any) -> str:
        """Publish ``value`` under ``key`` (idempotent), returning the name."""
        segment = self._segments.get(key)
        if segment is None:
            data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            segment = shared_memory.SharedMemory(
                create=True, size=_PAYLOAD_OFFSET + len(data)
            )
            segment.buf[:8] = _MAGIC
            segment.buf[_LEN_OFFSET:_SHA_OFFSET] = struct.pack("<Q", len(data))
            segment.buf[_PAYLOAD_OFFSET:_PAYLOAD_OFFSET + len(data)] = data
            self._segments[key] = segment
        return segment.name

    def name_for(self, key: Any) -> Optional[str]:
        segment = self._segments.get(key)
        return segment.name if segment is not None else None

    def close(self) -> None:
        """Close and unlink every published segment."""
        for segment in self._segments.values():
            try:
                segment.close()
                segment.unlink()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
        self._segments.clear()


def read_blob(name: str) -> Any:
    """Unpickle the blob published under segment ``name`` (any process)."""
    segment = _attach(name)
    try:
        if bytes(segment.buf[:8]) != _MAGIC:
            raise ValueError(f"segment {name!r} is not a repro blob")
        (length,) = struct.unpack("<Q", bytes(segment.buf[_LEN_OFFSET:_SHA_OFFSET]))
        data = bytes(segment.buf[_PAYLOAD_OFFSET:_PAYLOAD_OFFSET + length])
        return pickle.loads(data)
    finally:
        segment.close()


class SharedCacheStore:
    """A published read-only cache snapshot shared across a replica fleet.

    The payload is ``{"kind", "version", "sections"}`` where ``sections``
    maps a section name (``"rho_star"``, ``"plans"``) to the same
    ``{"kind", "version", "entries"}`` envelope the on-disk persistence
    uses — adopters validate both layers, so a version bump on either the
    store or an individual cache invalidates cleanly.
    """

    def __init__(self, segment: shared_memory.SharedMemory) -> None:
        self._segment: Optional[shared_memory.SharedMemory] = segment
        self._name = segment.name
        _LIVE_STORES.add(self)

    @property
    def name(self) -> str:
        return self._name

    @classmethod
    def publish(cls, sections: Dict[str, Any]) -> "SharedCacheStore":
        """Create a checksummed segment holding ``sections`` (parent side)."""
        payload = {
            "kind": SHARED_CACHE_KIND,
            "version": SHARED_CACHE_VERSION,
            "sections": sections,
        }
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(data).digest()
        segment = shared_memory.SharedMemory(
            create=True, size=_PAYLOAD_OFFSET + len(data)
        )
        segment.buf[:8] = _MAGIC
        segment.buf[_LEN_OFFSET:_SHA_OFFSET] = struct.pack("<Q", len(data))
        segment.buf[_SHA_OFFSET:_PAYLOAD_OFFSET] = digest
        segment.buf[_PAYLOAD_OFFSET:_PAYLOAD_OFFSET + len(data)] = data
        return cls(segment)

    @staticmethod
    def adopt(name: Optional[str]) -> Dict[str, Any]:
        """Read and validate a published store; ``{}`` on any mismatch."""
        if not name:
            return {}
        try:
            segment = _attach(name)
        except Exception:
            return {}
        try:
            if bytes(segment.buf[:8]) != _MAGIC:
                return {}
            (length,) = struct.unpack(
                "<Q", bytes(segment.buf[_LEN_OFFSET:_SHA_OFFSET])
            )
            expected = bytes(segment.buf[_SHA_OFFSET:_PAYLOAD_OFFSET])
            data = bytes(segment.buf[_PAYLOAD_OFFSET:_PAYLOAD_OFFSET + length])
            if hashlib.sha256(data).digest() != expected:
                return {}
            payload = pickle.loads(data)
            if (
                not isinstance(payload, dict)
                or payload.get("kind") != SHARED_CACHE_KIND
                or payload.get("version") != SHARED_CACHE_VERSION
            ):
                return {}
            sections = payload.get("sections")
            return sections if isinstance(sections, dict) else {}
        except Exception:
            return {}
        finally:
            segment.close()

    def close(self) -> None:
        """Close and unlink the segment (publisher side; idempotent)."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        try:
            segment.close()
            segment.unlink()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass

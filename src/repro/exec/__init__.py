"""Parallel execution of InsideOut runs as explicit step DAGs.

The planner's chosen ordering fixes *what* each elimination step computes;
this package makes the dependency structure between those steps explicit
(:func:`lower_insideout` → :class:`StepDag`) and executes independent steps
on a worker pool (:class:`DagExecutor`).  Entry points stay where they are:
pass ``workers=`` to :func:`repro.core.insideout.inside_out`,
:meth:`repro.planner.Plan.execute`, :func:`repro.planner.execute`, any
solver wrapper, ``db.join`` or the serving layer (:mod:`repro.serve`) —
``workers=`` means the *same thing everywhere*: per-query step-DAG
parallelism (``None``/1 = serial, ``"auto"`` = CPU count capped at
:data:`AUTO_WORKERS_CAP`).  :func:`resolve_workers` is the one shim that
folds the deprecated ``dag_workers=`` alias into it.

``workers_mode="process"`` (accepted wherever ``workers=`` is) swaps the
thread pool for worker *processes* fed through digest-keyed shared memory
(:mod:`repro.exec.procpool` / :mod:`repro.exec.shm`), letting the sparse
Python kernels scale past the GIL.
"""

import warnings

from repro.core.insideout import AUTO_WORKERS_CAP
from repro.core.insideout import _validated_workers as validate_workers
from repro.exec.dag import (
    KIND_OUTPUT,
    KIND_PRODUCT,
    KIND_SEMIRING,
    StepDag,
    StepNode,
    annotate_digests,
    lower_insideout,
)
from repro.exec.executor import (
    DagExecutor,
    IncrementalRunInfo,
    MergedRunInfo,
    RunSnapshot,
    RunSpec,
    StepResultCache,
)
from repro.exec.shm import SharedCacheStore, ShmBlobStore, read_blob

_UNSET = object()


def resolve_workers(workers=None, dag_workers=_UNSET, *, stacklevel: int = 3):
    """Fold the deprecated ``dag_workers=`` alias into the unified ``workers=``.

    Returns the validated worker count (``None`` = serial).  Passing
    ``dag_workers=`` emits a :class:`DeprecationWarning`; passing both with
    conflicting values raises ``QueryError`` rather than guessing.
    """
    from repro.core.query import QueryError

    if dag_workers is not _UNSET and dag_workers is not None:
        warnings.warn(
            "dag_workers= is deprecated; pass workers= instead "
            "(the unified per-query parallelism argument)",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        if workers is not None and workers != dag_workers:
            raise QueryError(
                f"conflicting workers={workers!r} and deprecated dag_workers={dag_workers!r}"
            )
        workers = dag_workers
    return validate_workers(workers)


__all__ = [
    "DagExecutor",
    "StepResultCache",
    "RunSpec",
    "MergedRunInfo",
    "RunSnapshot",
    "IncrementalRunInfo",
    "StepDag",
    "StepNode",
    "lower_insideout",
    "annotate_digests",
    "KIND_SEMIRING",
    "KIND_PRODUCT",
    "KIND_OUTPUT",
    "validate_workers",
    "resolve_workers",
    "AUTO_WORKERS_CAP",
    "ShmBlobStore",
    "SharedCacheStore",
    "read_blob",
]

"""Parallel execution of InsideOut runs as explicit step DAGs.

The planner's chosen ordering fixes *what* each elimination step computes;
this package makes the dependency structure between those steps explicit
(:func:`lower_insideout` → :class:`StepDag`) and executes independent steps
on a worker pool (:class:`DagExecutor`).  Entry points stay where they are:
pass ``workers=`` to :func:`repro.core.insideout.inside_out`,
:meth:`repro.planner.Plan.execute`, :func:`repro.planner.execute` or any
solver wrapper, or batch whole queries through :mod:`repro.serve`.
"""

from repro.exec.dag import (
    KIND_OUTPUT,
    KIND_PRODUCT,
    KIND_SEMIRING,
    StepDag,
    StepNode,
    lower_insideout,
)
from repro.exec.executor import DagExecutor

__all__ = [
    "DagExecutor",
    "StepDag",
    "StepNode",
    "lower_insideout",
    "KIND_SEMIRING",
    "KIND_PRODUCT",
    "KIND_OUTPUT",
]

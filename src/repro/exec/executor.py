"""The parallel step-DAG executor over the content-addressed step IR.

:class:`DagExecutor` runs the :class:`~repro.exec.dag.StepDag` of one
InsideOut run on a thread pool.  Independent elimination steps — steps over
disjoint factor groups, whose DAG nodes share no slots — execute
concurrently; the dense/NumPy kernels release the GIL inside their ufunc
reductions, so multi-block dense workloads scale with cores.  The sparse
kernels are pure Python and gain nothing from threads, but remain *correct*
under the pool: every step kernel is a pure function of its input factors.

On top of the per-run DAG, the content addresses of
:func:`~repro.exec.dag.annotate_digests` enable cross-run sharing:

* :class:`StepResultCache` is a digest-keyed LRU of finished step results
  (output factors, the step record, and the step's join-counter delta), so
  sequential repeated traffic replays shared elimination prefixes instead
  of recomputing them;
* :meth:`DagExecutor.run_many` merges several lowered runs into one
  multi-sink DAG in which nodes with equal content digests execute exactly
  once — the first run introducing a digest owns the execution, every other
  (run, node) pair replays the owner's entry into its own context.

Replaying an entry merges the *original* step record and join-counter
delta, so per-run stats describe the logical execution and stay identical
to an uncached run (wall-clock ``seconds`` aside).

Guarantees (enforced by ``tests/test_exec_parallel.py`` and
``tests/test_exec_merged.py``):

* the output factor is **bit-identical** to the sequential
  :func:`repro.core.insideout.inside_out` run for every worker count, with
  or without a step cache and inside or outside a merged batch, and
* the :class:`~repro.core.insideout.InsideOutStats` totals (per-step
  records, join counters, max intermediate size) are identical too —
  per-node counters are accumulated privately and merged in sequential
  step order once the run completes.

``workers=1`` is the serial fallback: the nodes run in exactly the
sequential loop's order on the calling thread (no pool, no locks beyond
the always-cheap ones), which keeps the serial path's cost profile.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.caching import LruCache
from repro.core.insideout import (
    EliminationRecord,
    InsideOutResult,
    InsideOutStats,
    _validated_ordering,
    _validated_workers,
    eliminate_product_step,
    eliminate_semiring_step,
    output_phase,
)
from repro.core.output import FactorizedOutput
from repro.core.outsidein import OutsideInStats
from repro.core.query import FAQQuery, QueryError
from repro.exec.dag import (
    KIND_OUTPUT,
    KIND_PRODUCT,
    KIND_SEMIRING,
    StepDag,
    lower_insideout,
)
from repro.factors.backend import (
    BACKEND_SPARSE,
    BackendPolicy,
    DEFAULT_POLICY,
    as_sparse,
    validate_backend,
)
from repro.factors.factor import Factor
from repro.factors.index import SharedTrieCache, TrieCache
from repro.faults import SITE_STEP_KERNEL, maybe_raise


@dataclass(frozen=True)
class _StepEntry:
    """A finished step: its outputs plus the stats it logically performed."""

    outputs: Tuple[Optional[Factor], ...]
    record: Optional[EliminationRecord]
    join_delta: OutsideInStats


class StepResultCache:
    """Digest-keyed LRU of completed elimination-step results.

    Keys are ``(node digest, backend)`` pairs — equal digests certify equal
    inputs and operation, the backend pins the representation choice, and
    callers only engage the cache under the default
    :class:`~repro.factors.backend.BackendPolicy` — so a hit replays a
    bit-identical result.  The cache is shared across queries (the serving
    tier holds one per :class:`~repro.serve.PlanServer`), which is what
    makes *sequential* repeated traffic skip shared elimination prefixes.

    Thread-safe, with an in-flight claim map so concurrent executions of
    the same digest compute it exactly once: the first caller *claims* the
    key and computes, later callers block until the claimant fulfils (or
    abandons) it.  ``computed``/``replayed`` count resolved lookups and are
    the executor counters the differential tests assert exactly-once with.
    """

    def __init__(self, maxsize: int = 512) -> None:
        self._entries = LruCache(maxsize=maxsize)
        self._lock = threading.Lock()
        self._inflight: Dict[object, threading.Event] = {}
        self.computed = 0
        self.replayed = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup_or_claim(self, key) -> Optional[_StepEntry]:
        """Return a finished entry, or claim ``key`` and return ``None``.

        A ``None`` return means the caller now *owns* the computation and
        must resolve the claim with :meth:`fulfil` or :meth:`abandon` —
        other threads asking for the same key are blocked on it.
        """
        while True:
            entry = self._entries.get(key)
            if entry is not None:
                with self._lock:
                    self.replayed += 1
                return entry
            with self._lock:
                event = self._inflight.get(key)
                if event is None:
                    self._inflight[key] = threading.Event()
                    return None
            event.wait()

    def fulfil(self, key, entry: _StepEntry) -> None:
        """Store the computed entry and release any blocked claimants."""
        self._entries.put(key, entry)
        with self._lock:
            self.computed += 1
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    def abandon(self, key) -> None:
        """Release a claim without a result (the computation failed)."""
        with self._lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    def clear(self) -> None:
        self._entries.clear()
        with self._lock:
            self.computed = 0
            self.replayed = 0

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "computed": self.computed,
            "replayed": self.replayed,
        }


@dataclass
class RunSpec:
    """One query's execution parameters inside a merged multi-sink run."""

    query: FAQQuery
    ordering: Sequence[str] | str | None = None
    use_indicator_projections: bool = True
    output_mode: str = "listing"
    backend: str = BACKEND_SPARSE
    backend_policy: BackendPolicy | None = None
    shared_tries: SharedTrieCache | None = None


@dataclass
class MergedRunInfo:
    """Dedup accounting of one :meth:`DagExecutor.run_many` call."""

    total_nodes: int = 0     # sum of per-run DAG nodes
    merged_nodes: int = 0    # distinct nodes after digest merging
    executed_nodes: int = 0  # nodes actually computed
    replayed_nodes: int = 0  # merged nodes served from the step cache

    @property
    def dedup_ratio(self) -> float:
        """Total logical nodes per executed node (≥ 1; higher is better)."""
        return self.total_nodes / self.executed_nodes if self.executed_nodes else 1.0


@dataclass
class RunSnapshot:
    """The digest-keyed node results of one completed run.

    Returned by :meth:`DagExecutor.run_incremental` and fed back into the
    next call: a node of the new run whose ``(digest, backend)`` key
    appears here replays the prior entry instead of recomputing.  Because a
    node's digest folds in its *input* digests all the way down to the base
    factors, the set of keys that stop matching after a factor update is
    exactly the dirty subgraph downstream of the touched factors — clean
    nodes keep their digests and replay for free.

    Entries reference immutable factors (frozen on digest), so holding a
    snapshot across updates is safe by construction.
    """

    entries: Dict[tuple, _StepEntry] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class IncrementalRunInfo:
    """Reuse accounting of one :meth:`DagExecutor.run_incremental` call."""

    total_nodes: int = 0     # nodes of the lowered DAG
    reused_nodes: int = 0    # replayed from the prior snapshot
    executed_nodes: int = 0  # recomputed (the dirty subgraph)

    @property
    def reuse_ratio(self) -> float:
        """Fraction of nodes replayed from the prior run (0.0 when cold)."""
        return self.reused_nodes / self.total_nodes if self.total_nodes else 0.0


class _RunState:
    """The mutable execution context of one lowered run.

    Owns the slots, the per-run :class:`~repro.factors.index.TrieCache`,
    and the per-node records/join counters.  ``execute_node`` runs a node's
    kernel exactly like the sequential loop; ``capture``/``replay`` move a
    node's outputs *and* its logical stats in and out of step-cache
    entries, so a replayed run's stats match an uncached run's.
    """

    __slots__ = (
        "query", "order", "dag", "output_mode", "backend", "policy", "uip",
        "slots", "tries", "records", "node_join_stats", "started",
    )

    def __init__(
        self,
        query: FAQQuery,
        order: List[str],
        dag: StepDag,
        output_mode: str,
        backend: str,
        policy: BackendPolicy,
        uip: bool,
        shared_tries: SharedTrieCache | None,
        thread_safe: bool,
        started: float,
    ) -> None:
        self.query = query
        self.order = order
        self.dag = dag
        self.output_mode = output_mode
        self.backend = backend
        self.policy = policy
        self.uip = uip
        self.started = started

        semiring = query.semiring
        self.slots: List[Optional[Factor]] = [None] * dag.num_slots
        base_factors: List[Factor] = list(query.factors)
        if not base_factors:
            base_factors = [Factor((), {(): semiring.one}, name="unit")]
        for i, factor in enumerate(base_factors):
            self.slots[i] = factor

        self.tries = TrieCache(order, semiring, thread_safe=thread_safe)
        self.tries.adopt_parent(shared_tries)
        self.records: List[Optional[EliminationRecord]] = [None] * len(dag.nodes)
        self.node_join_stats = [OutsideInStats() for _ in dag.nodes]

    # ------------------------------------------------------------------ #
    def cache_key(self, index: int):
        """The step cache key of a node (``None`` disables sharing)."""
        digest = self.dag.nodes[index].digest
        if digest is None or self.policy is not DEFAULT_POLICY:
            return None
        return (digest, self.backend)

    def execute_node(self, index: int) -> None:
        maybe_raise(SITE_STEP_KERNEL)
        node = self.dag.nodes[index]
        slots = self.slots
        join_stats = self.node_join_stats[index]
        if node.kind == KIND_SEMIRING:
            incident = [slots[s] for s in node.incident]
            others = [slots[s] for s in node.reads]
            new_factor, record = eliminate_semiring_step(
                self.query, incident, others, node.variable,
                self.uip, join_stats,
                backend=self.backend, policy=self.policy, tries=self.tries,
            )
            slots[node.outputs[0]] = new_factor
            self.records[index] = record
        elif node.kind == KIND_PRODUCT:
            pairs = [
                (k, slots[s]) for k, s in enumerate(node.incident)
                if slots[s] is not None
            ]
            new_factors, record = eliminate_product_step(
                self.query, [factor for _, factor in pairs], node.variable
            )
            for (k, old), new in zip(pairs, new_factors):
                slots[node.outputs[k]] = new
                if new is not old:
                    self.tries.discard(old)
            self.records[index] = record
        elif node.kind == KIND_OUTPUT:
            factors = [slots[s] for s in node.incident if slots[s] is not None]
            slots[node.outputs[0]] = output_phase(
                self.query, factors, self.order, self.backend, self.policy,
                join_stats,
            )
        else:  # pragma: no cover - defensive
            raise QueryError(f"unknown step kind {node.kind!r}")

    def capture(self, index: int) -> _StepEntry:
        """Snapshot an executed node as a shareable step-cache entry."""
        node = self.dag.nodes[index]
        return _StepEntry(
            outputs=tuple(self.slots[s] for s in node.outputs),
            record=self.records[index],
            join_delta=replace(self.node_join_stats[index]),
        )

    def replay(self, index: int, entry: _StepEntry) -> None:
        """Apply a finished entry as if this run had executed the node.

        Input-independent by design (consumed input slots are only touched
        to drop their now-dead tries, guarded for not-yet-filled slots), so
        a merged run may replay a node before the replaying run's own
        producers have run.
        """
        node = self.dag.nodes[index]
        for slot, factor in zip(node.outputs, entry.outputs):
            self.slots[slot] = factor
        if entry.record is not None:
            self.records[index] = replace(entry.record)
        self.node_join_stats[index].merge(entry.join_delta)
        if node.kind == KIND_PRODUCT:
            for slot, new in zip(node.incident, entry.outputs):
                old = self.slots[slot]
                if old is not None and new is not old:
                    self.tries.discard(old)
        elif node.kind == KIND_SEMIRING:
            for slot in node.incident:
                old = self.slots[slot]
                if old is not None:
                    self.tries.discard(old)

    def finish(self) -> InsideOutResult:
        """Assemble the run's result and stats in sequential step order.

        Totals are accumulated independently of the order the pool happened
        to complete (or replay) nodes in, so they match the serial run.
        """
        query, dag = self.query, self.dag
        stats = InsideOutStats()
        for index in range(len(dag.nodes)):
            record = self.records[index]
            if record is not None:
                stats.steps.append(record)
                if record.kind == KIND_PRODUCT or record.incident_count > 0:
                    stats.max_intermediate_size = max(
                        stats.max_intermediate_size, record.result_size
                    )
            stats.join_stats.merge(self.node_join_stats[index])

        semiring = query.semiring
        if self.output_mode == "factorized":
            factorized = FactorizedOutput(
                free=tuple(self.order[: query.num_free]),
                factors=tuple(
                    as_sparse(self.slots[s], semiring)
                    for s in dag.final_live
                    if self.slots[s] is not None
                ),
                semiring=semiring,
                domains={v: query.domain(v) for v in query.free},
            )
            stats.output_size = -1
            stats.total_seconds = time.perf_counter() - self.started
            return InsideOutResult(
                factor=None, factorized=factorized,
                ordering=tuple(self.order), stats=stats,
            )

        output = self.slots[dag.final_live[0]]
        stats.output_size = len(output)
        stats.total_seconds = time.perf_counter() - self.started
        return InsideOutResult(
            factor=output, factorized=None, ordering=tuple(self.order), stats=stats
        )


@dataclass
class _MergedNode:
    """One node of the merged multi-sink DAG."""

    owner: Tuple[int, int]                      # (run index, node index)
    key: Optional[tuple]                        # step cache key, if shareable
    subscribers: List[Tuple[int, int]] = field(default_factory=list)


class DagExecutor:
    """Executes lowered InsideOut step DAGs on a worker pool.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` runs the serial fallback (bit-identical to the
        sequential loop, executed inline); larger values run independent
        steps concurrently.  ``"auto"`` resolves to the CPU count (capped);
        ``None`` lets the platform decide (``os.cpu_count()``).
    workers_mode:
        ``"thread"`` (default) runs steps on a thread pool; ``"process"``
        runs them on worker processes fed through digest-keyed shared
        memory (:mod:`repro.exec.procpool`) so the sparse Python kernels
        escape the GIL.  Process mode applies to :meth:`run`; the
        incremental and merged entry points always use threads.  A run
        whose context cannot cross the process boundary (e.g. lambda
        semirings) falls back to the thread pool; ``last_process_info``
        reports what the previous :meth:`run` actually did.
    """

    def __init__(
        self, workers: Optional[int | str] = None, workers_mode: str = "thread"
    ) -> None:
        workers = _validated_workers(workers)
        if workers is None:
            import os

            workers = os.cpu_count() or 1
        if workers_mode not in ("thread", "process"):
            raise QueryError(
                f'workers_mode must be "thread" or "process", got {workers_mode!r}'
            )
        self.workers = workers
        self.workers_mode = workers_mode
        self.last_process_info: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    def run(
        self,
        query: FAQQuery,
        ordering: Sequence[str] | str | None = None,
        use_indicator_projections: bool = True,
        output_mode: str = "listing",
        backend: str = BACKEND_SPARSE,
        backend_policy: BackendPolicy | None = None,
        shared_tries: SharedTrieCache | None = None,
        step_cache: StepResultCache | None = None,
    ) -> InsideOutResult:
        """Lower ``query`` to a step DAG and execute it.

        Accepts the same arguments as
        :func:`repro.core.insideout.inside_out` and returns the same
        :class:`~repro.core.insideout.InsideOutResult`.  With a
        ``step_cache``, nodes are content-addressed and finished steps are
        replayed from / stored into the cache (under the default backend
        policy only — the digest does not encode bespoke thresholds).
        """
        if output_mode not in ("listing", "factorized"):
            raise QueryError(f"unknown output mode {output_mode!r}")
        backend = validate_backend(backend)
        policy = backend_policy if backend_policy is not None else DEFAULT_POLICY
        order = _validated_ordering(query, ordering)
        started = time.perf_counter()

        use_cache = step_cache is not None and policy is DEFAULT_POLICY
        dag = lower_insideout(
            query, order,
            use_indicator_projections=use_indicator_projections,
            output_mode=output_mode,
            content_digests=use_cache,
        )
        parallel = self.workers > 1 and dag.max_parallelism > 1
        state = _RunState(
            query, order, dag, output_mode, backend, policy,
            use_indicator_projections, shared_tries,
            thread_safe=parallel, started=started,
        )

        if parallel and self.workers_mode == "process":
            if self._run_process(state, dag, step_cache if use_cache else None):
                return state.finish()
            # The run context could not be shipped to processes; fall
            # through to the thread scheduler (state is still untouched).

        if not use_cache:
            execute = state.execute_node
        else:
            def execute(index: int) -> None:
                key = state.cache_key(index)
                if key is None:
                    state.execute_node(index)
                    return
                entry = step_cache.lookup_or_claim(key)
                if entry is not None:
                    state.replay(index, entry)
                    return
                # The claim must be resolved on *every* exit path between
                # here and fulfil — capture included — or later claimants of
                # the same digest block forever on the in-flight event.
                try:
                    state.execute_node(index)
                    entry = state.capture(index)
                except BaseException:
                    step_cache.abandon(key)
                    raise
                step_cache.fulfil(key, entry)

        if parallel:
            indegree = {node.index: len(node.depends_on) for node in dag.nodes}
            self._run_scheduler(indegree, dag.dependents(), execute)
        else:
            for node in dag.nodes:
                execute(node.index)
        return state.finish()

    # ------------------------------------------------------------------ #
    def _run_process(self, state, dag, step_cache) -> Optional[Dict[str, object]]:
        """Try the process-pool scheduler; ``None`` means fall back to threads."""
        from repro.exec.procpool import (
            ProcessPool,
            ProcessPoolUnavailable,
            build_run_spec,
        )

        try:
            pool = ProcessPool(self.workers, build_run_spec(state))
        except ProcessPoolUnavailable:
            self.last_process_info = None
            return None
        try:
            self.last_process_info = pool.run(state, dag, step_cache)
        finally:
            pool.shutdown()
        return self.last_process_info

    # ------------------------------------------------------------------ #
    def run_incremental(
        self,
        query: FAQQuery,
        ordering: Sequence[str] | str | None = None,
        use_indicator_projections: bool = True,
        output_mode: str = "listing",
        backend: str = BACKEND_SPARSE,
        backend_policy: BackendPolicy | None = None,
        shared_tries: SharedTrieCache | None = None,
        prior: RunSnapshot | None = None,
        info: IncrementalRunInfo | None = None,
    ) -> Tuple[InsideOutResult, RunSnapshot]:
        """Execute a run, replaying every node unchanged since ``prior``.

        This is the dirty-subgraph regime of incremental evaluation: the
        query is lowered with content digests, and a node whose
        ``(digest, backend)`` key appears in the prior run's
        :class:`RunSnapshot` replays that entry instead of recomputing.
        After a factor update the stale keys are exactly the nodes
        downstream of the touched base factors — the dataflow edges of
        :mod:`repro.exec.dag` give the dirty set for free — so only that
        subgraph re-executes.  Works for *any* semiring (no algebraic
        assumptions); the result is bit-identical to a fresh :meth:`run`.

        Returns ``(result, snapshot)``; feed the snapshot into the next
        call after the next update.  Pass an :class:`IncrementalRunInfo`
        as ``info`` to receive the reuse accounting.  With a non-default
        ``backend_policy`` digests are disabled (they do not encode bespoke
        thresholds) and every node executes.
        """
        if output_mode not in ("listing", "factorized"):
            raise QueryError(f"unknown output mode {output_mode!r}")
        backend = validate_backend(backend)
        policy = backend_policy if backend_policy is not None else DEFAULT_POLICY
        order = _validated_ordering(query, ordering)
        started = time.perf_counter()

        dag = lower_insideout(
            query, order,
            use_indicator_projections=use_indicator_projections,
            output_mode=output_mode,
            content_digests=policy is DEFAULT_POLICY,
        )
        parallel = self.workers > 1 and dag.max_parallelism > 1
        state = _RunState(
            query, order, dag, output_mode, backend, policy,
            use_indicator_projections, shared_tries,
            thread_safe=parallel, started=started,
        )

        prior_entries = prior.entries if prior is not None else {}
        snapshot = RunSnapshot()
        run_info = info if info is not None else IncrementalRunInfo()
        run_info.total_nodes += len(dag.nodes)
        counters_lock = threading.Lock()

        def execute(index: int) -> None:
            key = state.cache_key(index)
            entry = prior_entries.get(key) if key is not None else None
            if entry is not None:
                state.replay(index, entry)
                with counters_lock:
                    run_info.reused_nodes += 1
            else:
                state.execute_node(index)
                entry = state.capture(index)
                with counters_lock:
                    run_info.executed_nodes += 1
            if key is not None:
                with counters_lock:
                    snapshot.entries[key] = entry

        if parallel:
            indegree = {node.index: len(node.depends_on) for node in dag.nodes}
            self._run_scheduler(indegree, dag.dependents(), execute)
        else:
            for node in dag.nodes:
                execute(node.index)
        return state.finish(), snapshot

    # ------------------------------------------------------------------ #
    def run_many(
        self,
        specs: Sequence[RunSpec],
        step_cache: StepResultCache | None = None,
        info: MergedRunInfo | None = None,
    ) -> List[InsideOutResult]:
        """Execute several runs as one merged multi-sink step DAG.

        The runs' step DAGs are lowered with content digests and merged:
        nodes with equal ``(digest, backend)`` keys collapse into one
        merged node, owned by the first run that introduced the digest;
        every other (run, node) pair subscribes and has the owner's entry
        replayed into its own context.  Each distinct key therefore
        executes **exactly once** per batch — and not at all when a
        ``step_cache`` already holds it.  Results and per-run stats are
        bit-identical to independent :meth:`run` calls (wall-clock
        ``seconds`` fields aside; they reflect where the work actually
        happened).

        Pass a :class:`MergedRunInfo` as ``info`` to receive the dedup
        accounting for the batch.
        """
        specs = list(specs)
        if not specs:
            return []
        started = time.perf_counter()

        states: List[_RunState] = []
        for spec in specs:
            if spec.output_mode not in ("listing", "factorized"):
                raise QueryError(f"unknown output mode {spec.output_mode!r}")
            backend = validate_backend(spec.backend)
            policy = (
                spec.backend_policy if spec.backend_policy is not None
                else DEFAULT_POLICY
            )
            order = _validated_ordering(spec.query, spec.ordering)
            dag = lower_insideout(
                spec.query, order,
                use_indicator_projections=spec.use_indicator_projections,
                output_mode=spec.output_mode,
                content_digests=True,
            )
            states.append(_RunState(
                spec.query, order, dag, spec.output_mode, backend, policy,
                spec.use_indicator_projections, spec.shared_tries,
                thread_safe=self.workers > 1, started=started,
            ))

        # Merge by content address: the first (run, node) with a key owns it.
        merged: List[_MergedNode] = []
        owner_of: Dict[tuple, int] = {}
        mid_of: Dict[Tuple[int, int], int] = {}
        for r, state in enumerate(states):
            for node in state.dag.nodes:
                key = state.cache_key(node.index)
                if key is not None and key in owner_of:
                    mid = owner_of[key]
                    merged[mid].subscribers.append((r, node.index))
                else:
                    mid = len(merged)
                    merged.append(_MergedNode(owner=(r, node.index), key=key))
                    if key is not None:
                        owner_of[key] = mid
                mid_of[(r, node.index)] = mid

        # Edges come from the owners only: replays are input-independent, so
        # a subscriber's own producers need not have run before its replay.
        indegree = {mid: 0 for mid in range(len(merged))}
        dependents: Dict[int, List[int]] = {mid: [] for mid in range(len(merged))}
        for mid, node in enumerate(merged):
            r, index = node.owner
            deps = {mid_of[(r, dep)] for dep in states[r].dag.nodes[index].depends_on}
            indegree[mid] = len(deps)
            for dep in sorted(deps):
                dependents[dep].append(mid)

        run_info = info if info is not None else MergedRunInfo()
        run_info.total_nodes += sum(len(s.dag.nodes) for s in states)
        run_info.merged_nodes += len(merged)
        counters_lock = threading.Lock()

        def execute(mid: int) -> None:
            node = merged[mid]
            r, index = node.owner
            state = states[r]
            entry = None
            claimed = False
            if node.key is not None and step_cache is not None:
                entry = step_cache.lookup_or_claim(node.key)
                claimed = entry is None
            if entry is None:
                # Capture stays inside the guarded region: a claimant dying
                # between claim and fulfil (kernel *or* capture failure)
                # must release the claim, or every later claimant of the
                # same digest wedges on the in-flight event.
                try:
                    state.execute_node(index)
                    entry = state.capture(index)
                except BaseException:
                    if claimed:
                        step_cache.abandon(node.key)
                    raise
                if claimed:
                    step_cache.fulfil(node.key, entry)
                with counters_lock:
                    run_info.executed_nodes += 1
            else:
                state.replay(index, entry)
                with counters_lock:
                    run_info.replayed_nodes += 1
            for sub_run, sub_index in node.subscribers:
                states[sub_run].replay(sub_index, entry)

        if self.workers > 1 and len(merged) > 1:
            self._run_scheduler(indegree, dependents, execute)
        else:
            # Merged-id order is a topological order of the owner edges
            # (every owner dependency maps to an earlier merged id).
            for mid in range(len(merged)):
                execute(mid)
        return [state.finish() for state in states]

    # ------------------------------------------------------------------ #
    def _run_scheduler(self, indegree: Dict[int, int], dependents, execute) -> None:
        """Run the nodes of a dependency graph as their producers complete.

        The calling thread schedules: it submits every dependency-free node,
        then wakes on each completion to release the node's dependents.
        Worker exceptions are re-raised here after the pool drains.
        """
        from concurrent.futures import ThreadPoolExecutor

        lock = threading.Lock()
        ready_cv = threading.Condition(lock)
        finished: List[int] = []
        errors: List[BaseException] = []
        total = len(indegree)

        def work(index: int) -> None:
            try:
                execute(index)
            except BaseException as exc:  # noqa: BLE001 - re-raised by scheduler
                with ready_cv:
                    errors.append(exc)
                    ready_cv.notify()
                return
            with ready_cv:
                finished.append(index)
                ready_cv.notify()

        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-dag"
        ) as pool:
            with ready_cv:
                for index, degree in indegree.items():
                    if degree == 0:
                        pool.submit(work, index)
                processed = 0
                while processed < total and not errors:
                    while not finished and not errors:
                        ready_cv.wait()
                    while finished:
                        completed = finished.pop()
                        processed += 1
                        for dependent in dependents[completed]:
                            indegree[dependent] -= 1
                            if indegree[dependent] == 0:
                                pool.submit(work, dependent)
        if errors:
            raise errors[0]

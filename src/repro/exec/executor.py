"""The parallel step-DAG executor.

:class:`DagExecutor` runs the :class:`~repro.exec.dag.StepDag` of one
InsideOut run on a thread pool.  Independent elimination steps — steps over
disjoint factor groups, whose DAG nodes share no slots — execute
concurrently; the dense/NumPy kernels release the GIL inside their ufunc
reductions, so multi-block dense workloads scale with cores.  The sparse
kernels are pure Python and gain nothing from threads, but remain *correct*
under the pool: every step kernel is a pure function of its input factors.

Guarantees (enforced by ``tests/test_exec_parallel.py``):

* the output factor is **bit-identical** to the sequential
  :func:`repro.core.insideout.inside_out` run for every worker count, and
* the :class:`~repro.core.insideout.InsideOutStats` totals (per-step
  records, join counters, max intermediate size) are identical too —
  per-node counters are accumulated privately and merged in sequential
  step order once the run completes.

``workers=1`` is the serial fallback: the nodes run in exactly the
sequential loop's order on the calling thread (no pool, no locks beyond
the always-cheap ones), which keeps the serial path's cost profile.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

from repro.core.insideout import (
    EliminationRecord,
    InsideOutResult,
    InsideOutStats,
    _validated_ordering,
    _validated_workers,
    eliminate_product_step,
    eliminate_semiring_step,
    output_phase,
)
from repro.core.output import FactorizedOutput
from repro.core.outsidein import OutsideInStats
from repro.core.query import FAQQuery, QueryError
from repro.exec.dag import (
    KIND_OUTPUT,
    KIND_PRODUCT,
    KIND_SEMIRING,
    StepDag,
    lower_insideout,
)
from repro.factors.backend import (
    BACKEND_SPARSE,
    BackendPolicy,
    DEFAULT_POLICY,
    as_sparse,
    validate_backend,
)
from repro.factors.factor import Factor
from repro.factors.index import SharedTrieCache, TrieCache


class DagExecutor:
    """Executes a lowered InsideOut step DAG on a worker pool.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` runs the serial fallback (bit-identical to the
        sequential loop, executed inline); larger values run independent
        steps concurrently on threads.  ``None`` lets the platform decide
        (``os.cpu_count()``).
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        workers = _validated_workers(workers)
        if workers is None:
            import os

            workers = os.cpu_count() or 1
        self.workers = workers

    # ------------------------------------------------------------------ #
    def run(
        self,
        query: FAQQuery,
        ordering: Sequence[str] | str | None = None,
        use_indicator_projections: bool = True,
        output_mode: str = "listing",
        backend: str = BACKEND_SPARSE,
        backend_policy: BackendPolicy | None = None,
        shared_tries: SharedTrieCache | None = None,
    ) -> InsideOutResult:
        """Lower ``query`` to a step DAG and execute it.

        Accepts the same arguments as
        :func:`repro.core.insideout.inside_out` and returns the same
        :class:`~repro.core.insideout.InsideOutResult`.
        """
        if output_mode not in ("listing", "factorized"):
            raise QueryError(f"unknown output mode {output_mode!r}")
        backend = validate_backend(backend)
        policy = backend_policy if backend_policy is not None else DEFAULT_POLICY
        order = _validated_ordering(query, ordering)
        semiring = query.semiring
        started = time.perf_counter()

        dag = lower_insideout(
            query, order,
            use_indicator_projections=use_indicator_projections,
            output_mode=output_mode,
        )

        slots: List[Optional[Factor]] = [None] * dag.num_slots
        base_factors: List[Factor] = list(query.factors)
        if not base_factors:
            base_factors = [Factor((), {(): semiring.one}, name="unit")]
        for i, factor in enumerate(base_factors):
            slots[i] = factor

        parallel = self.workers > 1 and dag.max_parallelism > 1
        tries = TrieCache(order, semiring, thread_safe=parallel)
        tries.adopt_parent(shared_tries)

        records: List[Optional[EliminationRecord]] = [None] * len(dag.nodes)
        node_join_stats = [OutsideInStats() for _ in dag.nodes]

        def execute_node(index: int) -> None:
            node = dag.nodes[index]
            join_stats = node_join_stats[index]
            if node.kind == KIND_SEMIRING:
                incident = [slots[s] for s in node.incident]
                others = [slots[s] for s in node.reads]
                new_factor, record = eliminate_semiring_step(
                    query, incident, others, node.variable,
                    use_indicator_projections, join_stats,
                    backend=backend, policy=policy, tries=tries,
                )
                slots[node.outputs[0]] = new_factor
                records[index] = record
            elif node.kind == KIND_PRODUCT:
                pairs = [
                    (k, slots[s]) for k, s in enumerate(node.incident)
                    if slots[s] is not None
                ]
                new_factors, record = eliminate_product_step(
                    query, [factor for _, factor in pairs], node.variable
                )
                for (k, old), new in zip(pairs, new_factors):
                    slots[node.outputs[k]] = new
                    if new is not old:
                        tries.discard(old)
                records[index] = record
            elif node.kind == KIND_OUTPUT:
                factors = [slots[s] for s in node.incident if slots[s] is not None]
                slots[node.outputs[0]] = output_phase(
                    query, factors, order, backend, policy, join_stats
                )
            else:  # pragma: no cover - defensive
                raise QueryError(f"unknown step kind {node.kind!r}")

        if parallel:
            self._run_parallel(dag, execute_node)
        else:
            for node in dag.nodes:
                execute_node(node.index)

        # Assemble stats in sequential step order, independent of the order
        # the pool happened to complete nodes in: totals match the serial run.
        stats = InsideOutStats()
        for index in range(len(dag.nodes)):
            record = records[index]
            if record is not None:
                stats.steps.append(record)
                if record.kind == KIND_PRODUCT or record.incident_count > 0:
                    stats.max_intermediate_size = max(
                        stats.max_intermediate_size, record.result_size
                    )
            stats.join_stats.merge(node_join_stats[index])

        if output_mode == "factorized":
            factorized = FactorizedOutput(
                free=tuple(order[: query.num_free]),
                factors=tuple(
                    as_sparse(slots[s], semiring)
                    for s in dag.final_live
                    if slots[s] is not None
                ),
                semiring=semiring,
                domains={v: query.domain(v) for v in query.free},
            )
            stats.output_size = -1
            stats.total_seconds = time.perf_counter() - started
            return InsideOutResult(
                factor=None, factorized=factorized, ordering=tuple(order), stats=stats
            )

        output = slots[dag.final_live[0]]
        stats.output_size = len(output)
        stats.total_seconds = time.perf_counter() - started
        return InsideOutResult(
            factor=output, factorized=None, ordering=tuple(order), stats=stats
        )

    # ------------------------------------------------------------------ #
    def _run_parallel(self, dag: StepDag, execute_node) -> None:
        """Run the DAG nodes as their dependencies complete.

        The calling thread schedules: it submits every dependency-free node,
        then wakes on each completion to release the node's dependents.
        Worker exceptions are re-raised here after the pool drains.
        """
        dependents = dag.dependents()
        indegree = {node.index: len(node.depends_on) for node in dag.nodes}
        lock = threading.Lock()
        ready_cv = threading.Condition(lock)
        finished: List[int] = []
        errors: List[BaseException] = []

        def work(index: int) -> None:
            try:
                execute_node(index)
            except BaseException as exc:  # noqa: BLE001 - re-raised by scheduler
                with ready_cv:
                    errors.append(exc)
                    ready_cv.notify()
                return
            with ready_cv:
                finished.append(index)
                ready_cv.notify()

        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-dag"
        ) as pool:
            with ready_cv:
                for node in dag.nodes:
                    if indegree[node.index] == 0:
                        pool.submit(work, node.index)
                processed = 0
                while processed < len(dag.nodes) and not errors:
                    while not finished and not errors:
                        ready_cv.wait()
                    while finished:
                        completed = finished.pop()
                        processed += 1
                        for dependent in dependents[completed]:
                            indegree[dependent] -= 1
                            if indegree[dependent] == 0:
                                pool.submit(work, dependent)
        if errors:
            raise errors[0]

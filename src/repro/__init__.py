"""faq-engine: a reproduction of "FAQ: Questions Asked Frequently" (PODS 2016).

The package implements the Functional Aggregate Query (FAQ) framework of
Abo Khamis, Ngo and Rudra: the InsideOut / OutsideIn algorithms, the
FAQ-width theory (expression trees, equivalent variable orderings, the
Section 7 approximation algorithm), and the application layers the paper
derives as corollaries — joins, conjunctive queries with quantifiers and
counting, probabilistic graphical model inference, CSP/SAT/#SAT, matrix
chain multiplication and the DFT.

Quick start::

    from repro import FAQQuery, Variable, Factor, inside_out
    from repro.semiring import COUNTING, SemiringAggregate

    psi = Factor(("A", "B"), {(0, 1): 1, (1, 0): 1})
    query = FAQQuery(
        variables=[Variable("A", (0, 1)), Variable("B", (0, 1))],
        free=["A"],
        aggregates={"B": SemiringAggregate.sum()},
        factors=[psi],
        semiring=COUNTING,
    )
    print(inside_out(query).factor.table)

or, through the stable top-level facade::

    from repro import Engine

    with Engine() as engine:
        print(engine.query(query).factor.table)
"""

from repro.core.insideout import InsideOutResult, InsideOutStats, inside_out
from repro.core.query import FAQQuery, QueryError, Variable
from repro.core.variable_elimination import variable_elimination
from repro.core.expression_tree import ExpressionTree, build_expression_tree
from repro.core.evo import is_equivalent_ordering, linear_extensions
from repro.core.faqw import (
    approximate_faqw_ordering,
    faq_width_of_ordering,
    faq_width_of_query,
)
from repro.engine import Engine, EngineConfig
from repro.factors.delta import FactorDelta
from repro.factors.factor import Factor
from repro.hypergraph.hypergraph import Hypergraph
from repro.incremental import IncrementalStats, IncrementalView
from repro.planner import Plan, PlanCache, PlanResult
from repro.planner import execute as execute_query
from repro.planner import plan as plan_query
from repro.semiring.aggregates import Aggregate, ProductAggregate, SemiringAggregate
from repro.semiring.base import Semiring
from repro.serve.api import (
    Overloaded,
    PlanFailure,
    ServeError,
    ServeRequest,
    ServeResult,
)

__version__ = "1.0.0"

__all__ = [
    "FAQQuery",
    "QueryError",
    "Variable",
    "Factor",
    "FactorDelta",
    "IncrementalView",
    "IncrementalStats",
    "Hypergraph",
    "Semiring",
    "Aggregate",
    "SemiringAggregate",
    "ProductAggregate",
    "inside_out",
    "InsideOutResult",
    "InsideOutStats",
    "variable_elimination",
    "plan_query",
    "execute_query",
    "Plan",
    "PlanResult",
    "PlanCache",
    "ExpressionTree",
    "build_expression_tree",
    "is_equivalent_ordering",
    "linear_extensions",
    "approximate_faqw_ordering",
    "faq_width_of_ordering",
    "faq_width_of_query",
    "Engine",
    "EngineConfig",
    "ServeRequest",
    "ServeResult",
    "ServeError",
    "Overloaded",
    "PlanFailure",
    "__version__",
]

"""CNF formula generators: random k-CNF and β-acyclic families (Section 8)."""

from __future__ import annotations

import random
from typing import List

from repro.factors.compact import Clause, Literal
from repro.solvers.sat import CNFFormula


def random_k_cnf(
    num_variables: int, num_clauses: int, clause_width: int = 3, seed: int = 0
) -> CNFFormula:
    """A uniform random k-CNF formula (the classic SAT benchmark family)."""
    rng = random.Random(seed)
    names = [f"x{i}" for i in range(1, num_variables + 1)]
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        width = min(clause_width, num_variables)
        chosen = rng.sample(names, width)
        clauses.append(Clause([Literal(v, rng.random() < 0.5) for v in chosen]))
    return CNFFormula(clauses)


def chain_cnf(length: int, seed: int = 0) -> CNFFormula:
    """A chain of binary clauses ``(x_i ∨ ±x_{i+1})`` — β-acyclic, width 2."""
    rng = random.Random(seed)
    clauses = []
    for i in range(1, length):
        clauses.append(
            Clause(
                [
                    Literal(f"x{i}", rng.random() < 0.5),
                    Literal(f"x{i + 1}", rng.random() < 0.5),
                ]
            )
        )
    return CNFFormula(clauses)


def beta_acyclic_cnf(num_blocks: int, block_width: int = 3, seed: int = 0) -> CNFFormula:
    """A β-acyclic CNF built from nested clause chains.

    Block ``i`` introduces fresh variables ``x_{i,1}..x_{i,w}`` plus a link to
    block ``i+1`` through a single shared variable; within each block the
    clauses form an inclusion chain, so every variable has a nest point and
    the whole formula is β-acyclic (the tractable class of Theorems 8.3/8.4).
    """
    rng = random.Random(seed)
    clauses: List[Clause] = []
    previous_link = None
    for block in range(num_blocks):
        block_vars = [f"b{block}_{j}" for j in range(block_width)]
        if previous_link is not None:
            block_vars = [previous_link] + block_vars
        # Nested chain of clauses: {v1}, {v1,v2}, {v1,v2,v3}, ...
        for width in range(1, len(block_vars) + 1):
            literals = [
                Literal(v, rng.random() < 0.5) for v in block_vars[:width]
            ]
            clauses.append(Clause(literals))
        previous_link = block_vars[-1]
    return CNFFormula(clauses)

"""FAQ query generators: the paper's worked examples plus random queries.

The three named constructors rebuild, factor for factor, the queries the
paper uses to illustrate its machinery:

* :func:`example_5_6_query` — the 6-variable ``max/∏/Σ`` query of
  Example 5.6 (the variable-ordering effect: ``O(N²)`` vs ``O(N)``),
* :func:`example_6_2_query` — the 7-variable ``Σ/max`` query of Example 6.2
  whose expression tree is depicted in Figures 2-3,
* :func:`example_6_19_query` — the 8-variable query with product aggregates
  of Example 6.19, Figures 4-6.

:func:`random_faq_query` generates small random multi-semiring queries used
by the property-based tests and the Figure 1 pipeline benchmark.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Tuple

from repro.core.query import FAQQuery, Variable
from repro.factors.factor import Factor
from repro.semiring.aggregates import Aggregate, ProductAggregate, SemiringAggregate
from repro.semiring.base import Semiring
from repro.semiring.standard import COUNTING, SUM_PRODUCT


def _random_binary_factor(
    scope: Tuple[str, ...],
    domains: Dict[str, Tuple[int, ...]],
    rng: random.Random,
    density: float,
    zero_one: bool,
) -> Factor:
    """A random sparse factor over ``scope`` (0/1-valued when ``zero_one``)."""
    table = {}
    for values in itertools.product(*(domains[v] for v in scope)):
        if rng.random() < density:
            table[values] = 1 if zero_one else round(rng.uniform(0.1, 3.0), 3)
    if not table:
        table[tuple(domains[v][0] for v in scope)] = 1
    return Factor(scope, table)


def example_5_6_query(
    domain_size: int = 3, seed: int = 0, zero_one: bool = True
) -> FAQQuery:
    """Example 5.6: ``max_x1 max_x2 ∏_x3 Σ_x4 max_x5 max_x6  ψ15 ψ25 ψ134 ψ236``.

    With 0/1-valued factors the product aggregate on ``x3`` is idempotent and
    the ordering ``(x5, x1, x2, x3, x4, x6)`` brings the runtime from
    ``O(N²)`` down to ``O(N)``.
    """
    rng = random.Random(seed)
    names = [f"x{i}" for i in range(1, 7)]
    domains = {v: tuple(range(domain_size)) for v in names}
    scopes = [("x1", "x5"), ("x2", "x5"), ("x1", "x3", "x4"), ("x2", "x3", "x6")]
    factors = [
        _random_binary_factor(scope, domains, rng, density=0.6, zero_one=zero_one)
        for scope in scopes
    ]
    aggregates: Dict[str, Aggregate] = {
        "x1": SemiringAggregate.max(),
        "x2": SemiringAggregate.max(),
        "x3": ProductAggregate.product(),
        "x4": SemiringAggregate.sum(),
        "x5": SemiringAggregate.max(),
        "x6": SemiringAggregate.max(),
    }
    return FAQQuery(
        variables=[Variable(v, domains[v]) for v in names],
        free=[],
        aggregates=aggregates,
        factors=factors,
        semiring=SUM_PRODUCT if not zero_one else COUNTING,
        name="example-5.6",
    )


def example_6_2_query(domain_size: int = 2, seed: int = 0) -> FAQQuery:
    """Example 6.2: ``Σ_x1 Σ_x2 max_x3 Σ_x4 Σ_x5 max_x6 max_x7`` over six factors.

    The factor scopes are ``{1,2}, {1,3,5}, {1,4}, {2,4,6}, {2,7}, {3,7}``;
    Figures 2-3 of the paper depict its expression tree.
    """
    rng = random.Random(seed)
    names = [f"x{i}" for i in range(1, 8)]
    domains = {v: tuple(range(domain_size)) for v in names}
    scopes = [
        ("x1", "x2"),
        ("x1", "x3", "x5"),
        ("x1", "x4"),
        ("x2", "x4", "x6"),
        ("x2", "x7"),
        ("x3", "x7"),
    ]
    factors = [
        _random_binary_factor(scope, domains, rng, density=0.7, zero_one=False)
        for scope in scopes
    ]
    aggregates = {
        "x1": SemiringAggregate.sum(),
        "x2": SemiringAggregate.sum(),
        "x3": SemiringAggregate.max(),
        "x4": SemiringAggregate.sum(),
        "x5": SemiringAggregate.sum(),
        "x6": SemiringAggregate.max(),
        "x7": SemiringAggregate.max(),
    }
    return FAQQuery(
        variables=[Variable(v, domains[v]) for v in names],
        free=[],
        aggregates=aggregates,
        factors=factors,
        semiring=SUM_PRODUCT,
        name="example-6.2",
    )


def example_6_13_query(domain_size: int = 3, seed: int = 0) -> FAQQuery:
    """Example 6.13: ``Σ_x1 max_x2 Σ_x3  ψ12 ψ13`` (EVO has exactly 3 members)."""
    rng = random.Random(seed)
    names = ["x1", "x2", "x3"]
    domains = {v: tuple(range(domain_size)) for v in names}
    factors = [
        _random_binary_factor(("x1", "x2"), domains, rng, density=0.8, zero_one=False),
        _random_binary_factor(("x1", "x3"), domains, rng, density=0.8, zero_one=False),
    ]
    aggregates = {
        "x1": SemiringAggregate.sum(),
        "x2": SemiringAggregate.max(),
        "x3": SemiringAggregate.sum(),
    }
    return FAQQuery(
        variables=[Variable(v, domains[v]) for v in names],
        free=[],
        aggregates=aggregates,
        factors=factors,
        semiring=SUM_PRODUCT,
        name="example-6.13",
    )


def example_6_19_query(domain_size: int = 2, seed: int = 0) -> FAQQuery:
    """Example 6.19: eight variables, two product aggregates, 0/1 factors.

    ``max_x1 max_x2 Σ_x3 Σ_x4 ∏_x5 max_x6 ∏_x7 max_x8`` over the scopes
    ``{1,3},{2,4},{3,4},{1,5},{1,6},{2,6},{2,5,7},{1,6,7},{2,7,8}``; its
    expression tree construction is depicted in Figures 4-6.
    """
    rng = random.Random(seed)
    names = [f"x{i}" for i in range(1, 9)]
    domains = {v: tuple(range(domain_size)) for v in names}
    scopes = [
        ("x1", "x3"),
        ("x2", "x4"),
        ("x3", "x4"),
        ("x1", "x5"),
        ("x1", "x6"),
        ("x2", "x6"),
        ("x2", "x5", "x7"),
        ("x1", "x6", "x7"),
        ("x2", "x7", "x8"),
    ]
    factors = [
        _random_binary_factor(scope, domains, rng, density=0.7, zero_one=True)
        for scope in scopes
    ]
    aggregates: Dict[str, Aggregate] = {
        "x1": SemiringAggregate.max(),
        "x2": SemiringAggregate.max(),
        "x3": SemiringAggregate.sum(),
        "x4": SemiringAggregate.sum(),
        "x5": ProductAggregate.product(),
        "x6": SemiringAggregate.max(),
        "x7": ProductAggregate.product(),
        "x8": SemiringAggregate.max(),
    }
    return FAQQuery(
        variables=[Variable(v, domains[v]) for v in names],
        free=[],
        aggregates=aggregates,
        factors=factors,
        semiring=COUNTING,
        name="example-6.19",
    )


def random_faq_query(
    seed: int = 0,
    max_variables: int = 6,
    max_factors: int = 5,
    max_domain: int = 3,
    allow_products: bool = True,
    allow_free: bool = True,
    semiring: Semiring = COUNTING,
    zero_one: bool = False,
) -> FAQQuery:
    """A small random FAQ query (used by property tests and benchmarks)."""
    rng = random.Random(seed)
    n = rng.randint(2, max_variables)
    names = [f"x{i}" for i in range(n)]
    domains = {v: tuple(range(rng.randint(2, max_domain))) for v in names}
    num_free = rng.randint(0, 2) if allow_free else 0
    num_free = min(num_free, n - 1)
    free = names[:num_free]
    aggregates: Dict[str, Aggregate] = {}
    for name in names[num_free:]:
        roll = rng.random()
        if allow_products and roll < 0.25:
            aggregates[name] = ProductAggregate.product()
        elif roll < 0.65:
            aggregates[name] = SemiringAggregate.sum()
        else:
            aggregates[name] = SemiringAggregate.max()
    factors = []
    for _ in range(rng.randint(1, max_factors)):
        arity = rng.randint(1, min(3, n))
        scope = tuple(rng.sample(names, arity))
        factors.append(
            _random_binary_factor(scope, domains, rng, density=0.65, zero_one=zero_one)
        )
    return FAQQuery(
        variables=[Variable(v, domains[v]) for v in names],
        free=free,
        aggregates=aggregates,
        factors=factors,
        semiring=semiring,
        name=f"random-{seed}",
    )

"""Synthetic workload generators for the examples, tests and benchmarks.

The paper's evaluation is analytic (Table 1 runtime bounds); to reproduce its
*shape* we generate controlled synthetic workloads: random relations and
graphs for the join/logic rows, random sparse graphical models for the
marginal/MAP rows, skewed matrix chains and power-of-two vectors for the
matrix rows, and structured CNF families for the Section 8 results.
"""

from repro.datasets.relations import (
    random_relation,
    path_query_relations,
    star_query_relations,
    cycle_query_relations,
)
from repro.datasets.graphs import (
    random_graph,
    graph_edge_relation,
    clique_pattern,
    cycle_pattern,
)
from repro.datasets.pgm_models import (
    chain_model,
    grid_model,
    random_sparse_model,
    star_model,
)
from repro.datasets.cnf import beta_acyclic_cnf, chain_cnf, random_k_cnf
from repro.datasets.queries import (
    example_5_6_query,
    example_6_2_query,
    example_6_13_query,
    example_6_19_query,
    random_faq_query,
)

__all__ = [
    "random_relation",
    "path_query_relations",
    "star_query_relations",
    "cycle_query_relations",
    "random_graph",
    "graph_edge_relation",
    "clique_pattern",
    "cycle_pattern",
    "chain_model",
    "grid_model",
    "random_sparse_model",
    "star_model",
    "beta_acyclic_cnf",
    "chain_cnf",
    "random_k_cnf",
    "example_5_6_query",
    "example_6_2_query",
    "example_6_13_query",
    "example_6_19_query",
    "random_faq_query",
]

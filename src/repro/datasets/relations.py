"""Random relations and the standard join-query shapes (path, star, cycle)."""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.db.relation import Relation


def random_relation(
    name: str,
    schema: Sequence[str],
    domain_size: int,
    num_tuples: int,
    seed: int = 0,
) -> Relation:
    """A relation with ``num_tuples`` distinct uniform-random tuples."""
    rng = random.Random(seed)
    arity = len(schema)
    capacity = domain_size ** arity
    target = min(num_tuples, capacity)
    rows = set()
    while len(rows) < target:
        rows.add(tuple(rng.randrange(domain_size) for _ in range(arity)))
    return Relation(name, schema, rows)


def path_query_relations(
    length: int, domain_size: int, num_tuples: int, seed: int = 0
) -> List[Relation]:
    """The α-acyclic path join ``R_1(A_1,A_2) ⋈ R_2(A_2,A_3) ⋈ ...``."""
    return [
        random_relation(
            f"R{i}", (f"A{i}", f"A{i + 1}"), domain_size, num_tuples, seed=seed + i
        )
        for i in range(1, length + 1)
    ]


def star_query_relations(
    arms: int, domain_size: int, num_tuples: int, seed: int = 0
) -> List[Relation]:
    """The star join ``R_i(Hub, A_i)`` for ``i = 1..arms`` (acyclic, fhtw 1)."""
    return [
        random_relation(f"R{i}", ("Hub", f"A{i}"), domain_size, num_tuples, seed=seed + i)
        for i in range(1, arms + 1)
    ]


def cycle_query_relations(
    length: int, domain_size: int, num_tuples: int, seed: int = 0
) -> List[Relation]:
    """The cyclic join ``R_1(A_1,A_2) ⋈ ... ⋈ R_k(A_k,A_1)`` (fhtw = k / 2... > 1)."""
    relations = []
    for i in range(1, length + 1):
        right = 1 if i == length else i + 1
        relations.append(
            random_relation(
                f"R{i}", (f"A{i}", f"A{right}"), domain_size, num_tuples, seed=seed + i
            )
        )
    return relations

"""Random and structured discrete graphical models for the PGM workloads."""

from __future__ import annotations

import itertools
import random
from typing import Dict, Sequence, Tuple

from repro.factors.factor import Factor
from repro.pgm.model import DiscreteGraphicalModel


def _random_factor(
    scope: Sequence[str],
    domains: Dict[str, Tuple[int, ...]],
    rng: random.Random,
    density: float,
) -> Factor:
    """A random non-negative sparse factor over ``scope``."""
    table = {}
    for values in itertools.product(*(domains[v] for v in scope)):
        if rng.random() < density:
            table[values] = round(rng.uniform(0.1, 2.0), 3)
    if not table:
        # Guarantee at least one non-zero entry so the model is not degenerate.
        values = tuple(domains[v][0] for v in scope)
        table[values] = 1.0
    return Factor(tuple(scope), table)


def chain_model(length: int, domain_size: int = 2, seed: int = 0) -> DiscreteGraphicalModel:
    """A chain MRF ``X_1 - X_2 - ... - X_length`` (treewidth 1)."""
    rng = random.Random(seed)
    domains = {f"X{i}": tuple(range(domain_size)) for i in range(1, length + 1)}
    factors = [
        _random_factor((f"X{i}", f"X{i + 1}"), domains, rng, density=1.0)
        for i in range(1, length)
    ]
    return DiscreteGraphicalModel(domains, factors)


def star_model(arms: int, domain_size: int = 2, seed: int = 0) -> DiscreteGraphicalModel:
    """A star MRF with a hub connected to ``arms`` leaves (treewidth 1)."""
    rng = random.Random(seed)
    domains = {"Hub": tuple(range(domain_size))}
    factors = []
    for i in range(1, arms + 1):
        domains[f"Leaf{i}"] = tuple(range(domain_size))
        factors.append(_random_factor(("Hub", f"Leaf{i}"), domains, rng, density=1.0))
    return DiscreteGraphicalModel(domains, factors)


def grid_model(
    rows: int, cols: int, domain_size: int = 2, seed: int = 0
) -> DiscreteGraphicalModel:
    """An ``rows × cols`` grid MRF (treewidth ``min(rows, cols)``)."""
    rng = random.Random(seed)
    domains = {
        f"X{r}_{c}": tuple(range(domain_size)) for r in range(rows) for c in range(cols)
    }
    factors = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                factors.append(
                    _random_factor((f"X{r}_{c}", f"X{r}_{c + 1}"), domains, rng, density=1.0)
                )
            if r + 1 < rows:
                factors.append(
                    _random_factor((f"X{r}_{c}", f"X{r + 1}_{c}"), domains, rng, density=1.0)
                )
    return DiscreteGraphicalModel(domains, factors)


def random_sparse_model(
    num_variables: int,
    num_factors: int,
    max_arity: int = 3,
    domain_size: int = 3,
    density: float = 0.4,
    seed: int = 0,
) -> DiscreteGraphicalModel:
    """A random hypergraph MRF with sparse factor tables.

    Sparse tables are the regime where InsideOut's fractional-cover
    guarantees beat the dense treewidth baselines.
    """
    rng = random.Random(seed)
    names = [f"X{i}" for i in range(num_variables)]
    domains = {name: tuple(range(domain_size)) for name in names}
    factors = []
    for _ in range(num_factors):
        arity = rng.randint(1, min(max_arity, num_variables))
        scope = rng.sample(names, arity)
        factors.append(_random_factor(scope, domains, rng, density))
    return DiscreteGraphicalModel(domains, factors)

"""Random graphs and small pattern graphs for the join / counting workloads."""

from __future__ import annotations

import random
from typing import List, Tuple

import networkx as nx

from repro.db.relation import Relation


def random_graph(num_vertices: int, num_edges: int, seed: int = 0) -> nx.Graph:
    """A uniform random simple graph with the requested number of edges."""
    rng = random.Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(num_vertices))
    max_edges = num_vertices * (num_vertices - 1) // 2
    target = min(num_edges, max_edges)
    while graph.number_of_edges() < target:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v:
            graph.add_edge(u, v)
    return graph


def graph_edge_relation(graph: nx.Graph, name: str = "E", symmetric: bool = True) -> Relation:
    """The edge relation of a graph (both orientations when ``symmetric``)."""
    rows: List[Tuple[int, int]] = []
    for u, v in graph.edges:
        rows.append((u, v))
        if symmetric:
            rows.append((v, u))
    return Relation(name, ("src", "dst"), rows)


def clique_pattern(size: int) -> nx.Graph:
    """The complete pattern graph ``K_size`` (triangle for ``size=3``)."""
    return nx.complete_graph(size)


def cycle_pattern(size: int) -> nx.Graph:
    """The cycle pattern graph ``C_size`` (used for 4-cycle counting)."""
    return nx.cycle_graph(size)

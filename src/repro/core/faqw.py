"""FAQ-width of orderings and queries, and the Section 7 approximation.

* :func:`faq_width_of_ordering` — ``faqw(σ) = max_{k ∈ K} ρ*_H(U_k^σ)``
  (Definition 5.10), where ``K`` is the set of free and semiring-aggregate
  variables and the ``U_k`` come from the FAQ elimination sequence
  (Definition 5.4: product variables are dropped from edges rather than
  replaced by their neighbourhood).
* :func:`faq_width_of_query` — ``faqw(phi) = min_{σ ∈ LinEx(P)} faqw(σ)``
  (Corollaries 6.14 / 6.28), computed by enumerating linear extensions of
  the precedence poset (optionally capped) or via the approximation below.
* :func:`approximate_faqw_ordering` — the Theorem 7.2 / 7.5 algorithm: build
  the expression tree, construct the per-node hypergraphs ``H_L``, find a
  good ordering for each (exact for small nodes, heuristic otherwise) and
  concatenate them respecting the precedence poset.  The resulting ordering
  satisfies ``faqw(σ) ≤ faqw(phi) + g(faqw(phi))`` where ``g`` is the
  guarantee of the inner fhtw routine.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.expression_tree import (
    ExpressionNode,
    ExpressionTree,
    build_expression_tree,
)
from repro.core.query import FAQQuery
from repro.hypergraph.covers import fractional_edge_cover_number
from repro.hypergraph.elimination import induced_unions
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.orderings import best_ordering_exhaustive, min_fill_ordering
from repro.semiring.aggregates import FREE_TAG, PRODUCT_TAG


# ---------------------------------------------------------------------- #
# FAQ-width of a concrete ordering
# ---------------------------------------------------------------------- #
def faq_width_of_ordering(query: FAQQuery, ordering: Sequence[str]) -> float:
    """``faqw(σ)``: the maximum ``ρ*_H(U_k)`` over free/semiring steps.

    The fractional edge cover is always taken with respect to the *original*
    hypergraph ``H`` of the query (as in Definition 5.10), while the induced
    sets ``U_k`` follow the FAQ elimination sequence in which product
    variables simply disappear from every edge.
    """
    hypergraph = query.hypergraph()
    unions = induced_unions(hypergraph, ordering, query.product_variables)
    width = 0.0
    for vertex in query.k_set:
        value = fractional_edge_cover_number(hypergraph, unions[vertex], ignore_uncovered=True)
        if value > width:
            width = value
    return width


def faq_width_of_query(
    query: FAQQuery,
    extension_limit: int | None = 5000,
    return_ordering: bool = False,
):
    """``faqw(phi)``: minimise ``faqw(σ)`` over linear extensions of the poset.

    Enumeration is capped at ``extension_limit`` linear extensions; when the
    cap is hit the result is an upper bound on the true FAQ-width (still a
    valid, equivalent ordering).  Pass ``None`` to enumerate exhaustively.
    """
    from repro.core.evo import linear_extensions

    tree = build_expression_tree(query)
    best_width = float("inf")
    best_order: Optional[Tuple[str, ...]] = None
    for ordering in linear_extensions(tree, limit=extension_limit):
        width = faq_width_of_ordering(query, ordering)
        if width < best_width:
            best_width = width
            best_order = ordering
    if best_order is None:  # pragma: no cover - poset always has an extension
        best_order = tuple(query.order)
        best_width = faq_width_of_ordering(query, best_order)
    if return_ordering:
        return best_width, best_order
    return best_width


# ---------------------------------------------------------------------- #
# Section 7: per-node hypergraphs and the approximation algorithm
# ---------------------------------------------------------------------- #
def _subtree_semiring_sets(tree: ExpressionTree) -> Dict[int, FrozenSet[str]]:
    """For each node (by id) the semiring/free variables in its subtree."""
    result: Dict[int, FrozenSet[str]] = {}

    def walk(node: ExpressionNode) -> FrozenSet[str]:
        collected: Set[str] = set()
        if node.tag != PRODUCT_TAG:
            collected |= set(node.variables)
        for child in node.children:
            collected |= walk(child)
        result[id(node)] = frozenset(collected)
        return frozenset(collected)

    walk(tree.root)
    return result


def node_hypergraph(
    query: FAQQuery, tree: ExpressionTree, node: ExpressionNode
) -> Hypergraph:
    """The hypergraph ``H_L`` of Section 7.1 / 7.2 for an expression-tree node.

    Edges are the projections onto ``L`` of the original hyperedges that do
    not touch any semiring descendant of ``L``, plus — for every child
    subtree ``C`` — the projection ``S_{L,C}`` of the union of all edges
    touching a semiring node of that subtree.
    """
    semiring_sets = _subtree_semiring_sets(tree)
    node_vars = frozenset(node.variables)
    hypergraph = query.hypergraph()

    if not node.children:
        return hypergraph.induced(node_vars)

    edges: List[FrozenSet[str]] = []
    descendant_semiring: Set[str] = set()
    for child in node.children:
        descendant_semiring |= semiring_sets[id(child)]

    for edge in hypergraph.edges:
        if edge & node_vars and not (edge & descendant_semiring):
            edges.append(edge & node_vars)

    for child in node.children:
        child_semiring = semiring_sets[id(child)]
        union: Set[str] = set()
        for edge in hypergraph.edges:
            if edge & child_semiring:
                union |= edge
        contribution = frozenset(union) & node_vars
        if contribution:
            edges.append(contribution)

    edges = [e for e in edges if e]
    return Hypergraph(node_vars, edges)


def _node_ordering(
    query: FAQQuery, node_graph: Hypergraph, exact_limit: int
) -> List[str]:
    """A good vertex ordering of ``H_L`` minimising induced ``ρ*`` width."""
    vertices = sorted(node_graph.vertices, key=repr)
    if not vertices:
        return []
    if node_graph.num_edges == 0:
        return vertices
    free = [v for v in vertices if v in set(query.free)]
    if len(vertices) <= exact_limit:
        return best_ordering_exhaustive(
            node_graph,
            lambda bag: fractional_edge_cover_number(node_graph, bag, ignore_uncovered=True),
            free=free,
        )
    ordering = min_fill_ordering(node_graph)
    if free:
        free_set = set(free)
        prefix = [v for v in ordering if v in free_set]
        ordering = prefix + [v for v in ordering if v not in free_set]
    return ordering


def approximate_faqw_ordering(
    query: FAQQuery, exact_limit: int = 9
) -> Tuple[str, ...]:
    """Compute an equivalent ordering with near-optimal FAQ-width (Thm 7.2/7.5).

    The expression tree is traversed top-down; for every free/semiring node a
    width-minimising ordering of its hypergraph ``H_L`` is computed (exactly
    when the node has at most ``exact_limit`` variables, with the min-fill
    heuristic otherwise); product nodes keep their written order.  The exact
    search is the branch-and-bound of
    :func:`repro.hypergraph.orderings.best_ordering_search` backed by the
    process-wide ``ρ*`` memo, so ``exact_limit`` now affords 9 variables
    where the historical permutation scan struggled at 7.  The
    per-node orderings are concatenated pre-order, which is a linear
    extension of the precedence poset and therefore semantically equivalent
    to the query.
    """
    tree = build_expression_tree(query)
    order: List[str] = []
    seen: Set[str] = set()

    def emit(variables: Sequence[str]) -> None:
        for variable in variables:
            if variable not in seen:
                seen.add(variable)
                order.append(variable)

    def walk(node: ExpressionNode) -> None:
        if node.tag == PRODUCT_TAG:
            emit([v for v in query.order if v in set(node.variables)])
        elif node.tag == FREE_TAG and not node.children and not node.variables:
            pass
        else:
            graph = node_hypergraph(query, tree, node)
            emit(_node_ordering(query, graph, exact_limit))
            # Node variables never covered by H_L (isolated) keep query order.
            emit([v for v in query.order if v in set(node.variables)])
        for child in node.children:
            walk(child)

    walk(tree.root)
    # Safety net: append anything missed (cannot normally happen).
    emit(list(query.order))
    # Free variables must remain a prefix.
    free_set = set(query.free)
    prefix = [v for v in order if v in free_set]
    suffix = [v for v in order if v not in free_set]
    return tuple(prefix + suffix)

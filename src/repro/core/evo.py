"""Equivalent variable orderings (EVO), CW-equivalence and linear extensions.

Section 6 of the paper characterises the orderings that are semantically
interchangeable with the one the query was written in:

* every linear extension of the precedence poset is equivalent
  (Theorems 6.8 / 6.23 — *soundness*),
* every equivalent ordering is component-wise equivalent to some linear
  extension (Theorems 6.12 / 6.27 — *completeness*), and CW-equivalence
  preserves the FAQ-width (Propositions 6.11 / 6.26).

This module implements the precedence poset interface, a linear-extension
generator, the CW-equivalence relation and the polynomial-time EVO
membership test that follows from the completeness proof: the first bound
variable of an equivalent ordering must lie in a child node of the
expression-tree root (Lemmas 6.9 / 6.24); product-tagged first blocks must
be eliminated together; and the remainder must recursively be equivalent on
every (extended) connected component.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.core.expression_tree import (
    ExpressionTree,
    build_expression_tree,
    extended_components,
    query_tree_hypergraph,
    _compartmentalize,
    _compress,
    _restrict_sequence,
)
from repro.core.query import FAQQuery
from repro.hypergraph.hypergraph import Hypergraph
from repro.semiring.aggregates import PRODUCT_TAG


# ---------------------------------------------------------------------- #
# precedence poset and linear extensions
# ---------------------------------------------------------------------- #
def precedence_poset(query: FAQQuery) -> Set[Tuple[str, str]]:
    """The strict precedence pairs of the query's expression tree."""
    tree = build_expression_tree(query)
    return tree.precedence_pairs()


def linear_extensions(
    query_or_tree,
    limit: int | None = None,
) -> Iterator[Tuple[str, ...]]:
    """Generate linear extensions of the precedence poset.

    Accepts either an :class:`~repro.core.query.FAQQuery` or an
    :class:`~repro.core.expression_tree.ExpressionTree`.  Free variables (the
    root node) always come first because they precede everything else in the
    poset.  ``limit`` caps the number of generated extensions (the total
    number can be factorial).
    """
    if isinstance(query_or_tree, ExpressionTree):
        tree = query_or_tree
    else:
        tree = build_expression_tree(query_or_tree)
    variables = list(tree.variables)
    predecessors = tree.precedence_predecessors()

    produced = 0

    def backtrack(remaining: List[str], placed: List[str]) -> Iterator[Tuple[str, ...]]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if not remaining:
            produced += 1
            yield tuple(placed)
            return
        placed_set = set(placed)
        for variable in remaining:
            if predecessors[variable] <= placed_set:
                rest = [v for v in remaining if v != variable]
                yield from backtrack(rest, placed + [variable])
                if limit is not None and produced >= limit:
                    return

    yield from backtrack(variables, [])


def one_linear_extension(query: FAQQuery) -> Tuple[str, ...]:
    """A single linear extension of the precedence poset (deterministic)."""
    for extension in linear_extensions(query, limit=1):
        return extension
    raise ValueError("precedence poset has no linear extension")  # pragma: no cover


# ---------------------------------------------------------------------- #
# component-wise equivalence (Definitions 6.10 / 6.25)
# ---------------------------------------------------------------------- #
def _tagged_sequence(query: FAQQuery, keep: Sequence[str]) -> List[Tuple[str, str]]:
    """The query's tagged bound-variable sequence restricted to ``keep``."""
    keep_set = set(keep)
    return [(v, query.tag(v)) for v in query.order if v in keep_set]


def _restrict_order(order: Sequence[str], keep: FrozenSet[str]) -> Tuple[str, ...]:
    return tuple(v for v in order if v in keep)


def cw_equivalent(query: FAQQuery, sigma: Sequence[str], pi: Sequence[str]) -> bool:
    """Component-wise equivalence of two orderings (Definition 6.10 / 6.25).

    ``sigma`` is assumed to be an equivalent ordering of the query (typically
    a linear extension of the precedence poset); the function decides whether
    ``pi`` is CW-equivalent to it.  Free variables must form the prefix of
    both orderings.
    """
    sigma = tuple(sigma)
    pi = tuple(pi)
    if set(sigma) != set(query.order) or set(pi) != set(query.order):
        return False
    f = query.num_free
    if set(sigma[:f]) != set(query.free) or set(pi[:f]) != set(query.free):
        return False

    hypergraph = query_tree_hypergraph(query).remove_vertices(query.free)
    product_vars = frozenset(query.product_variables)
    tags = {v: query.tag(v) for v in query.order}

    def recurse(h: Hypergraph, sig: Tuple[str, ...], p: Tuple[str, ...]) -> bool:
        # Dangling / untouched product variables may go anywhere: compare only
        # the variables actually present in the hypergraph.
        vertices = frozenset(h.vertices)
        sig = _restrict_order(sig, vertices)
        p = _restrict_order(p, vertices)
        if len(sig) != len(p) or set(sig) != set(p):
            return False
        if len(sig) <= 1:
            return True

        components, dangling = extended_components(h, frozenset(), product_vars)
        if len(components) > 1:
            for vertex_set, sub in components:
                if not recurse(sub, _restrict_order(sig, vertex_set), _restrict_order(p, vertex_set)):
                    return False
            return True

        first = sig[0]
        if tags.get(first) == PRODUCT_TAG:
            # A product-tagged first block must match as a set.
            block_len = 1
            while block_len < len(sig) and tags.get(sig[block_len]) == PRODUCT_TAG:
                block_len += 1
            # Only require the maximal initial product run to coincide setwise.
            block = set(sig[:block_len])
            if set(p[:block_len]) != block:
                return False
            remainder = h.remove_vertices(block)
            comps, _ = extended_components(remainder, frozenset(), product_vars)
            for vertex_set, sub in comps:
                if not recurse(sub, _restrict_order(sig, vertex_set), _restrict_order(p, vertex_set)):
                    return False
            return True

        if first != p[0]:
            return False
        remainder = h.remove_vertices({first})
        comps, _ = extended_components(remainder, frozenset(), product_vars)
        for vertex_set, sub in comps:
            if not recurse(sub, _restrict_order(sig, vertex_set), _restrict_order(p, vertex_set)):
                return False
        return True

    return recurse(hypergraph, sigma[f:], pi[f:])


# ---------------------------------------------------------------------- #
# EVO membership (Lemmas 6.9 / 6.24 + Theorems 6.12 / 6.27)
# ---------------------------------------------------------------------- #
def is_equivalent_ordering(query: FAQQuery, ordering: Sequence[str]) -> bool:
    """Decide whether ``ordering`` belongs to ``EVO(phi)``.

    The test follows the completeness proof: after the free variables, the
    next variable must belong to a child node of the expression-tree root of
    the (sub-)query; if that node is product-tagged the entire node must be
    eliminated as one consecutive block; conditioning on the chosen variables
    splits the hypergraph into (extended) components that are checked
    recursively, with dangling product variables unconstrained.
    """
    order = tuple(ordering)
    if set(order) != set(query.order) or len(order) != len(query.order):
        return False
    f = query.num_free
    if set(order[:f]) != set(query.free):
        return False

    product_vars = frozenset(query.product_variables)
    tags = {v: query.tag(v) for v in query.order}
    hypergraph = query_tree_hypergraph(query).remove_vertices(query.free)
    bound_sequence = _tagged_sequence(query, query.bound)

    def recurse(h: Hypergraph, candidate: Tuple[str, ...]) -> bool:
        vertices = frozenset(h.vertices)
        candidate = _restrict_order(candidate, vertices)
        if len(candidate) <= 1:
            return True

        components, dangling = extended_components(h, frozenset(), product_vars)
        if len(components) > 1 or (components and dangling):
            ok = True
            for vertex_set, sub in components:
                ok = ok and recurse(sub, _restrict_order(candidate, vertex_set))
            # Dangling product variables impose no ordering constraints.
            return ok
        if not components:
            # Only dangling product variables remain: any order is fine.
            return True

        vertex_set, sub = components[0]
        sub_sequence = _restrict_sequence(bound_sequence, vertex_set)
        if not sub_sequence:
            return True
        node = _compartmentalize(sub_sequence, sub)
        _compress(node)

        allowed: Set[str] = set(node.variables)
        candidate = _restrict_order(candidate, vertex_set)
        if not candidate:
            return True
        first = candidate[0]
        if first not in allowed:
            return False

        if tags.get(first) == PRODUCT_TAG:
            block = [v for v in node.variables if tags.get(v) == PRODUCT_TAG]
            block_set = set(block)
            if set(candidate[: len(block)]) != block_set:
                return False
            remainder = sub.remove_vertices(block_set)
            return recurse(remainder, candidate[len(block):])

        remainder = sub.remove_vertices({first})
        return recurse(remainder, candidate[1:])

    return recurse(hypergraph, order[f:])

"""OutsideIn: the backtracking-search / worst-case-optimal multiway join.

Section 5.1.1 of the paper evaluates an FAQ-SS expression by backtracking
over the variables from the outermost aggregate inwards, at every level
intersecting the candidate values offered by the factors.  With factors
indexed as tries ordered by the global variable order this is exactly the
Generic-Join / LeapFrog-TrieJoin family of worst-case optimal join
algorithms, whose running time is bounded by the AGM bound of the joined
relations (Theorem 5.1).

The module exposes two entry points:

* :func:`enumerate_join` — a generator of ``(assignment, value)`` pairs over
  the union of the factor scopes, where ``value`` is the ``⊗``-product of
  the factor values (only non-zero assignments are produced),
* :func:`join_factors` — materialises the product as a single
  :class:`~repro.factors.factor.Factor` over a chosen output scope,
  optionally aggregating away the non-output variables with a semiring
  aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

from repro.factors.backend import as_sparse
from repro.factors.factor import Factor
from repro.factors.index import FactorTrie
from repro.semiring.base import Semiring


@dataclass
class OutsideInStats:
    """Counters describing one OutsideIn invocation (used by benchmarks)."""

    search_steps: int = 0
    emitted_tuples: int = 0
    intersections: int = 0

    def merge(self, other: "OutsideInStats") -> None:
        """Accumulate another invocation's counters into this one."""
        self.search_steps += other.search_steps
        self.emitted_tuples += other.emitted_tuples
        self.intersections += other.intersections


def _join_order(
    factors: Sequence[Factor], variable_order: Sequence[str] | None
) -> List[str]:
    """The global variable order used for the join.

    Variables are the union of the factor scopes; ``variable_order`` (when
    given) dictates their relative order, any variables it does not mention
    are appended in sorted order.
    """
    present: set = set()
    for factor in factors:
        present |= set(factor.scope)
    if variable_order is None:
        return sorted(present, key=repr)
    ordered = [v for v in variable_order if v in present]
    missing = sorted(present - set(ordered), key=repr)
    return ordered + missing


def enumerate_join(
    factors: Sequence[Factor],
    semiring: Semiring,
    variable_order: Sequence[str] | None = None,
    stats: OutsideInStats | None = None,
) -> Iterator[Tuple[Dict[str, Any], Any]]:
    """Enumerate the non-zero tuples of ``⊗_S psi_S`` by backtracking search.

    Yields ``(assignment, value)`` pairs where ``assignment`` maps every
    variable occurring in some factor scope to a value and ``value`` is the
    product of all factor values (never the semiring zero).

    Dense factors are accepted and converted to the listing representation
    (the backtracking search is inherently tuple-at-a-time).
    """
    factors = [as_sparse(f, semiring) for f in factors]
    if not factors:
        yield {}, semiring.one
        return
    if any(len(f) == 0 for f in factors):
        # Some factor is identically zero: the product is empty.
        return

    order = _join_order(factors, variable_order)
    tries = [FactorTrie(f, order, semiring) for f in factors]
    # Group tries by the variable that constitutes their next level at each
    # global depth: trie ``t`` participates at depth ``d`` iff
    # ``order[d] == t.variables[len(prefix_t)]``.
    by_variable: Dict[str, List[int]] = {v: [] for v in order}
    for idx, trie in enumerate(tries):
        for variable in trie.variables:
            by_variable[variable].append(idx)

    prefixes: List[Tuple[Any, ...]] = [() for _ in tries]
    assignment: Dict[str, Any] = {}
    counters = stats if stats is not None else OutsideInStats()

    def recurse(depth: int) -> Iterator[Tuple[Dict[str, Any], Any]]:
        if depth == len(order):
            value = semiring.one
            for idx, trie in enumerate(tries):
                value = semiring.mul(value, trie.value(prefixes[idx], semiring.zero))
                if semiring.is_zero(value):
                    return
            counters.emitted_tuples += 1
            yield dict(assignment), value
            return

        variable = order[depth]
        participating = by_variable[variable]
        candidate_sets = []
        for idx in participating:
            candidate_sets.append(tries[idx].candidate_values(prefixes[idx]))
            counters.intersections += 1
        if not candidate_sets:  # pragma: no cover - defensive (cannot happen)
            return
        candidate_sets.sort(key=len)
        candidates = candidate_sets[0]
        for other in candidate_sets[1:]:
            candidates = candidates & other
            if not candidates:
                return

        for value in candidates:
            counters.search_steps += 1
            assignment[variable] = value
            saved = [prefixes[idx] for idx in participating]
            for idx in participating:
                prefixes[idx] = prefixes[idx] + (value,)
            yield from recurse(depth + 1)
            for pos, idx in enumerate(participating):
                prefixes[idx] = saved[pos]
            del assignment[variable]

    yield from recurse(0)


def join_factors(
    factors: Sequence[Factor],
    semiring: Semiring,
    output_scope: Sequence[str] | None = None,
    combine: Callable[[Any, Any], Any] | None = None,
    variable_order: Sequence[str] | None = None,
    stats: OutsideInStats | None = None,
    name: str | None = None,
) -> Factor:
    """Materialise the multiway product of ``factors`` as a single factor.

    Parameters
    ----------
    output_scope:
        The scope of the result.  Variables of the join that are *not* in the
        output scope are aggregated away with ``combine``; when
        ``output_scope`` is ``None`` the full union of scopes is kept.
    combine:
        The semiring aggregate ``⊕`` used to merge values that collide on the
        output scope.  Required whenever some join variable is projected
        away; ignored otherwise.
    variable_order:
        Global variable order for the backtracking search (defaults to a
        deterministic sorted order).
    """
    all_vars: set = set()
    for factor in factors:
        all_vars |= set(factor.scope)
    if output_scope is None:
        scope = tuple(_join_order(factors, variable_order))
    else:
        scope = tuple(output_scope)
    projecting = bool(all_vars - set(scope))
    if projecting and combine is None:
        raise ValueError("join_factors needs `combine` when projecting variables away")

    table: Dict[Tuple[Any, ...], Any] = {}
    for assignment, value in enumerate_join(factors, semiring, variable_order, stats):
        key = tuple(assignment.get(v) for v in scope)
        if key in table:
            table[key] = combine(table[key], value) if combine is not None else semiring.add(
                table[key], value
            )
        else:
            table[key] = value
    table = {k: v for k, v in table.items() if not semiring.is_zero(v)}
    return Factor(scope, table, name=name or "join")

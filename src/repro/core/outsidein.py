"""OutsideIn: the backtracking-search / worst-case-optimal multiway join.

Section 5.1.1 of the paper evaluates an FAQ-SS expression by backtracking
over the variables from the outermost aggregate inwards, at every level
intersecting the candidate values offered by the factors.  With factors
indexed as tries ordered by the global variable order this is exactly the
Generic-Join / LeapFrog-TrieJoin family of worst-case optimal join
algorithms, whose running time is bounded by the AGM bound of the joined
relations (Theorem 5.1).

The module exposes three entry points:

* :func:`enumerate_join` — a generator of ``(assignment, value)`` pairs over
  the union of the factor scopes, where ``value`` is the ``⊗``-product of
  the factor values (only non-zero assignments are produced),
* :func:`join_factors` — materialises the product as a single
  :class:`~repro.factors.factor.Factor` over a chosen output scope,
  optionally aggregating away the non-output variables with a semiring
  aggregate,
* :func:`eliminate_join` — the fused single-variable elimination kernel used
  by InsideOut's hot loop: a hash join over pre-built tries that groups by
  the surviving variables directly and folds the eliminated variable's
  aggregate in place, never materialising the full induced-set factor nor a
  per-tuple assignment dict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

from repro.factors.backend import as_sparse
from repro.factors.factor import Factor
from repro.factors.index import _LEAF, FactorTrie
from repro.semiring.base import Semiring


@dataclass
class OutsideInStats:
    """Counters describing one OutsideIn invocation (used by benchmarks)."""

    search_steps: int = 0
    emitted_tuples: int = 0
    intersections: int = 0

    def merge(self, other: "OutsideInStats") -> None:
        """Accumulate another invocation's counters into this one."""
        self.search_steps += other.search_steps
        self.emitted_tuples += other.emitted_tuples
        self.intersections += other.intersections


def _join_order(
    factors: Sequence[Factor], variable_order: Sequence[str] | None
) -> List[str]:
    """The global variable order used for the join.

    Variables are the union of the factor scopes; ``variable_order`` (when
    given) dictates their relative order, any variables it does not mention
    are appended in sorted order.
    """
    present: set = set()
    for factor in factors:
        present |= set(factor.scope)
    if variable_order is None:
        return sorted(present, key=repr)
    ordered = [v for v in variable_order if v in present]
    missing = sorted(present - set(ordered), key=repr)
    return ordered + missing


def enumerate_join(
    factors: Sequence[Factor],
    semiring: Semiring,
    variable_order: Sequence[str] | None = None,
    stats: OutsideInStats | None = None,
) -> Iterator[Tuple[Dict[str, Any], Any]]:
    """Enumerate the non-zero tuples of ``⊗_S psi_S`` by backtracking search.

    Yields ``(assignment, value)`` pairs where ``assignment`` maps every
    variable occurring in some factor scope to a value and ``value`` is the
    product of all factor values (never the semiring zero).

    Dense factors are accepted and converted to the listing representation
    (the backtracking search is inherently tuple-at-a-time).
    """
    factors = [as_sparse(f, semiring) for f in factors]
    if not factors:
        yield {}, semiring.one
        return
    if any(len(f) == 0 for f in factors):
        # Some factor is identically zero: the product is empty.
        return

    order = _join_order(factors, variable_order)
    tries = [FactorTrie(f, order, semiring) for f in factors]
    # Group tries by the variable that constitutes their next level at each
    # global depth: trie ``t`` participates at depth ``d`` iff
    # ``order[d] == t.variables[len(prefix_t)]``.
    by_variable: Dict[str, List[int]] = {v: [] for v in order}
    for idx, trie in enumerate(tries):
        for variable in trie.variables:
            by_variable[variable].append(idx)

    prefixes: List[Tuple[Any, ...]] = [() for _ in tries]
    assignment: Dict[str, Any] = {}
    counters = stats if stats is not None else OutsideInStats()

    def recurse(depth: int) -> Iterator[Tuple[Dict[str, Any], Any]]:
        if depth == len(order):
            value = semiring.one
            for idx, trie in enumerate(tries):
                value = semiring.mul(value, trie.value(prefixes[idx], semiring.zero))
                if semiring.is_zero(value):
                    return
            counters.emitted_tuples += 1
            yield dict(assignment), value
            return

        variable = order[depth]
        participating = by_variable[variable]
        candidate_sets = []
        for idx in participating:
            candidate_sets.append(tries[idx].candidate_values(prefixes[idx]))
            counters.intersections += 1
        if not candidate_sets:  # pragma: no cover - defensive (cannot happen)
            return
        candidate_sets.sort(key=len)
        candidates = candidate_sets[0]
        for other in candidate_sets[1:]:
            candidates = candidates & other
            if not candidates:
                return

        for value in candidates:
            counters.search_steps += 1
            assignment[variable] = value
            saved = [prefixes[idx] for idx in participating]
            for idx in participating:
                prefixes[idx] = prefixes[idx] + (value,)
            yield from recurse(depth + 1)
            for pos, idx in enumerate(participating):
                prefixes[idx] = saved[pos]
            del assignment[variable]

    yield from recurse(0)


def join_factors(
    factors: Sequence[Factor],
    semiring: Semiring,
    output_scope: Sequence[str] | None = None,
    combine: Callable[[Any, Any], Any] | None = None,
    variable_order: Sequence[str] | None = None,
    stats: OutsideInStats | None = None,
    name: str | None = None,
) -> Factor:
    """Materialise the multiway product of ``factors`` as a single factor.

    Parameters
    ----------
    output_scope:
        The scope of the result.  Variables of the join that are *not* in the
        output scope are aggregated away with ``combine``; when
        ``output_scope`` is ``None`` the full union of scopes is kept.
    combine:
        The semiring aggregate ``⊕`` used to merge values that collide on the
        output scope.  Required whenever some join variable is projected
        away; ignored otherwise.
    variable_order:
        Global variable order for the backtracking search (defaults to a
        deterministic sorted order).
    """
    all_vars: set = set()
    for factor in factors:
        all_vars |= set(factor.scope)
    if output_scope is None:
        scope = tuple(_join_order(factors, variable_order))
    else:
        scope = tuple(output_scope)
    projecting = bool(all_vars - set(scope))
    if projecting and combine is None:
        raise ValueError("join_factors needs `combine` when projecting variables away")

    table: Dict[Tuple[Any, ...], Any] = {}
    for assignment, value in enumerate_join(factors, semiring, variable_order, stats):
        key = tuple(assignment.get(v) for v in scope)
        if key in table:
            table[key] = combine(table[key], value) if combine is not None else semiring.add(
                table[key], value
            )
        else:
            table[key] = value
    table = {k: v for k, v in table.items() if not semiring.is_zero(v)}
    return Factor(scope, table, name=name or "join")


def eliminate_join(
    tries: Sequence[FactorTrie],
    semiring: Semiring,
    variable: str,
    output_scope: Sequence[str],
    combine: Callable[[Any, Any], Any],
    variable_order: Sequence[str],
    stats: OutsideInStats | None = None,
    name: str | None = None,
) -> Factor:
    """Fused multiply-then-marginalize kernel for one elimination step.

    ``tries`` index the participating factors against the run's global
    variable order, in which ``variable`` (the variable being eliminated)
    comes *after* every surviving variable — InsideOut eliminates from the
    back of the ordering, so every remaining scope is a subset of the
    not-yet-eliminated prefix plus ``variable`` itself.  The kernel runs the
    OutsideIn backtracking search over the surviving variables only,
    descending trie *nodes* instead of re-walking prefixes from the root,
    and at each complete survivor assignment intersects the candidate
    values of ``variable`` and folds them into a single aggregated value —
    the grouped-by-survivors hash join.  Equivalent to
    ``join_factors(participants, output_scope=survivors, combine=...)`` but
    without materialising per-tuple assignment dicts or the induced-set
    relation.

    Falls back to the general :func:`join_factors` when ``variable`` is not
    last in the join order (never the case when called from InsideOut).
    """
    counters = stats if stats is not None else OutsideInStats()
    out_scope = tuple(output_scope)
    zero = semiring.zero
    empty = Factor(out_scope, {}, name=name or f"elim({variable})")
    if not tries:
        return empty

    # Join variables in the tries' shared global order (``variable_order``
    # must be the order the tries were built against).
    seen: set = set()
    for trie in tries:
        if not trie.root:
            return empty  # some participant is identically zero
        seen.update(trie.variables)
    order = [v for v in variable_order if v in seen]

    survivors = order[:-1]
    if (
        variable not in seen
        or order[-1] != variable
        or set(survivors) != set(out_scope)
        or len(survivors) != len(out_scope)
    ):
        return join_factors(
            [t.factor for t in tries],
            semiring,
            output_scope=out_scope,
            combine=combine,
            variable_order=order,
            stats=stats,
            name=name,
        )
    # Permutation from survivor enumeration order to the requested scope.
    if tuple(survivors) == out_scope:
        key_perm = None
    else:
        index = {v: i for i, v in enumerate(survivors)}
        key_perm = [index[v] for v in out_scope]

    var_set = {i for i, t in enumerate(tries) if variable in t.variables}
    var_tries = sorted(var_set)
    base_tries = [i for i in range(len(tries)) if i not in var_set]
    participating: List[List[int]] = [
        [i for i, t in enumerate(tries) if v in t.variables] for v in survivors
    ]

    nodes: List[Any] = [t.root for t in tries]
    values: List[Any] = [None] * len(survivors)
    table: Dict[Tuple[Any, ...], Any] = {}
    mul = semiring.mul
    is_zero = semiring.is_zero

    def emit() -> None:
        """All survivors bound: fold the eliminated variable's aggregate."""
        value = semiring.one
        for i in base_tries:
            held = nodes[i].get(_LEAF)
            if held is None:
                return  # pragma: no cover - defensive (descent guarantees a leaf)
            value = mul(value, held)
            if is_zero(value):
                return
        candidate_maps = [nodes[i] for i in var_tries]
        counters.intersections += len(candidate_maps)
        candidates = None
        for child in candidate_maps:
            keys = child.keys() - {_LEAF} if _LEAF in child else child.keys()
            candidates = set(keys) if candidates is None else candidates & keys
            if not candidates:
                return
        accumulated = None
        for candidate in candidates:
            counters.search_steps += 1
            product = value
            for i in var_tries:
                held = nodes[i][candidate].get(_LEAF)
                if held is None:
                    product = None  # pragma: no cover - defensive
                    break
                product = mul(product, held)
                if is_zero(product):
                    product = None
                    break
            if product is None:
                continue
            counters.emitted_tuples += 1
            accumulated = product if accumulated is None else combine(accumulated, product)
        if accumulated is None or is_zero(accumulated):
            return
        key = tuple(values) if key_perm is None else tuple(values[i] for i in key_perm)
        table[key] = accumulated

    def descend(depth: int) -> None:
        if depth == len(survivors):
            emit()
            return
        active = participating[depth]
        counters.intersections += len(active)
        candidates = None
        for i in active:
            keys = nodes[i].keys() - {_LEAF} if _LEAF in nodes[i] else nodes[i].keys()
            candidates = set(keys) if candidates is None else candidates & keys
            if not candidates:
                return
        for candidate in candidates:
            counters.search_steps += 1
            values[depth] = candidate
            saved = [nodes[i] for i in active]
            for i in active:
                nodes[i] = nodes[i][candidate]
            descend(depth + 1)
            for pos, i in enumerate(active):
                nodes[i] = saved[pos]

    descend(0)
    return Factor(out_scope, table, name=name or f"elim({variable})")

"""Expression trees and precedence posets (Section 6 of the paper).

The *expression tree* of an FAQ query is built in two phases:

* **compartmentalisation** (Definitions 6.1 / 6.18): starting from the
  tagged variable sequence as written in the query, the first tag block
  becomes a node; the rest of the query splits into the connected components
  of the hypergraph minus that block (minus the product variables, which are
  added back to every component they touch — the *extended components*);
  each component is processed recursively.  Product variables that only
  appear in edges whose non-block part is entirely product variables form
  the *dangling* node.
* **compression**: a child node with the same tag as its parent is merged
  into the parent, repeatedly.

The tree defines the *precedence poset* (Definitions 6.3 / 6.22): ``u ≺ v``
whenever ``u`` lies in a strict ancestor of (a copy of) ``v``.  Its linear
extensions are exactly the variable orderings the engine needs to consider
when optimising the FAQ-width (Corollaries 6.14 / 6.28).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.semiring.aggregates import FREE_TAG, PRODUCT_TAG


TaggedSequence = List[Tuple[str, str]]  # list of (variable, tag) pairs


class ExpressionTreeError(ValueError):
    """Raised when an expression tree cannot be built consistently."""


@dataclass
class ExpressionNode:
    """One node of the expression tree: a set of equally tagged variables."""

    variables: List[str]
    tag: str
    children: List["ExpressionNode"] = field(default_factory=list)

    def iter_nodes(self) -> Iterator["ExpressionNode"]:
        """Pre-order iteration over the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def variable_set(self) -> FrozenSet[str]:
        """The variables of this node as a frozenset."""
        return frozenset(self.variables)

    def subtree_variables(self) -> FrozenSet[str]:
        """All variables appearing anywhere in this subtree."""
        result: Set[str] = set()
        for node in self.iter_nodes():
            result |= set(node.variables)
        return frozenset(result)

    def pretty(self, indent: int = 0) -> str:
        """A human-readable rendering (used by the figure-reproduction tests)."""
        label = "{" + ",".join(map(str, self.variables)) + "}" if self.variables else "{}"
        lines = [" " * indent + f"{label} [{self.tag}]"]
        for child in self.children:
            lines.append(child.pretty(indent + 2))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExpressionNode({self.variables}, tag={self.tag}, children={len(self.children)})"


# ---------------------------------------------------------------------- #
# extended components (Definition 6.18)
# ---------------------------------------------------------------------- #
def extended_components(
    hypergraph: Hypergraph,
    block: Iterable[str],
    product_variables: Iterable[str],
) -> Tuple[List[Tuple[FrozenSet[str], Hypergraph]], FrozenSet[str]]:
    """Split ``H - block`` into extended components plus the dangling set.

    Returns ``(components, dangling)`` where each component is a pair
    ``(vertex_set, sub_hypergraph)`` — the vertex set includes the product
    variables added back — and ``dangling`` is the set of product variables
    that appear only in edges whose part outside ``block`` consists solely of
    product variables (plus product variables not reachable at all).
    """
    block_set = frozenset(block)
    product_set = frozenset(product_variables)
    remaining = frozenset(hypergraph.vertices) - block_set
    w_set = (product_set & remaining)

    core = hypergraph.remove_vertices(block_set | w_set)
    components = core.connected_components()

    result: List[Tuple[FrozenSet[str], Hypergraph]] = []
    covered: Set[str] = set()
    for component in components:
        extended_vertices: Set[str] = set(component)
        relevant_edges: List[FrozenSet[str]] = []
        for edge in hypergraph.edges:
            if edge & component:
                relevant_edges.append(edge)
                extended_vertices |= (edge & w_set)
        edge_set = [e & frozenset(extended_vertices) for e in relevant_edges]
        edge_set = [e for e in edge_set if e]
        sub = Hypergraph(extended_vertices, edge_set)
        result.append((frozenset(extended_vertices), sub))
        covered |= extended_vertices

    dangling: Set[str] = set()
    for edge in hypergraph.edges:
        outside = edge - block_set
        if outside and outside <= w_set:
            dangling |= (edge & w_set)
    # Product variables touched by no edge at all are also dangling.
    dangling |= (w_set - covered - dangling)

    return result, frozenset(dangling)


# ---------------------------------------------------------------------- #
# compartmentalisation + compression
# ---------------------------------------------------------------------- #
def _first_tag_block(sequence: TaggedSequence) -> Tuple[List[str], str]:
    """The longest prefix of ``sequence`` with a single tag."""
    if not sequence:
        raise ExpressionTreeError("cannot take the first tag block of an empty sequence")
    tag = sequence[0][1]
    block = []
    for variable, var_tag in sequence:
        if var_tag != tag:
            break
        block.append(variable)
    return block, tag


def _restrict_sequence(sequence: TaggedSequence, keep: Iterable[str]) -> TaggedSequence:
    """Restrict a tagged sequence to ``keep`` preserving relative order."""
    keep_set = set(keep)
    return [(v, t) for v, t in sequence if v in keep_set]


def _compartmentalize(sequence: TaggedSequence, hypergraph: Hypergraph) -> ExpressionNode:
    """Recursive compartmentalisation step (Definition 6.18)."""
    block, tag = _first_tag_block(sequence)
    node = ExpressionNode(variables=list(block), tag=tag)
    rest = sequence[len(block):]
    if not rest:
        return node

    product_vars = [v for v, t in rest if t == PRODUCT_TAG]
    components, dangling = extended_components(hypergraph, block, product_vars)

    for vertex_set, sub_hypergraph in components:
        sub_sequence = _restrict_sequence(rest, vertex_set)
        if not sub_sequence:
            continue
        child = _compartmentalize(sub_sequence, sub_hypergraph)
        node.children.append(child)

    if dangling:
        dangling_sequence = _restrict_sequence(rest, dangling)
        if dangling_sequence:
            node.children.append(
                ExpressionNode(variables=[v for v, _ in dangling_sequence], tag=PRODUCT_TAG)
            )
    return node


def _compress(node: ExpressionNode) -> None:
    """Compression step: merge same-tag children into their parent."""
    changed = True
    while changed:
        changed = False
        new_children: List[ExpressionNode] = []
        for child in node.children:
            if child.tag == node.tag and node.tag != FREE_TAG or (
                child.tag == node.tag == FREE_TAG
            ):
                for variable in child.variables:
                    if variable not in node.variables:
                        node.variables.append(variable)
                new_children.extend(child.children)
                changed = True
            else:
                new_children.append(child)
        node.children = new_children
    for child in node.children:
        _compress(child)


class ExpressionTree:
    """The expression tree of an FAQ query plus its precedence poset."""

    def __init__(self, root: ExpressionNode, variables: Sequence[str], free: Sequence[str]) -> None:
        self.root = root
        self.variables: Tuple[str, ...] = tuple(variables)
        self.free: Tuple[str, ...] = tuple(free)

    # ------------------------------------------------------------------ #
    def iter_nodes(self) -> Iterator[ExpressionNode]:
        """Pre-order iteration over all nodes."""
        yield from self.root.iter_nodes()

    def nodes_containing(self, variable: str) -> List[ExpressionNode]:
        """All nodes holding (a copy of) ``variable``."""
        return [node for node in self.iter_nodes() if variable in node.variables]

    def depth_of(self, node: ExpressionNode) -> int:
        """Depth of a node (root is 0)."""
        def search(current: ExpressionNode, depth: int) -> Optional[int]:
            if current is node:
                return depth
            for child in current.children:
                found = search(child, depth + 1)
                if found is not None:
                    return found
            return None

        depth = search(self.root, 0)
        if depth is None:
            raise ExpressionTreeError("node does not belong to this tree")
        return depth

    def parent_of(self, node: ExpressionNode) -> Optional[ExpressionNode]:
        """The parent of a node (``None`` for the root)."""
        for candidate in self.iter_nodes():
            if node in candidate.children:
                return candidate
        return None

    def pretty(self) -> str:
        """Readable multi-line rendering of the tree."""
        return self.root.pretty()

    # ------------------------------------------------------------------ #
    # precedence poset
    # ------------------------------------------------------------------ #
    def precedence_pairs(self) -> Set[Tuple[str, str]]:
        """The strict precedence relation ``{(u, v) : u ≺_P v}``.

        ``u ≺ v`` iff some node containing ``u`` is a strict ancestor of some
        node containing ``v``.  Corollary 6.21 guarantees antisymmetry; a
        violation raises :class:`ExpressionTreeError`.
        """
        pairs: Set[Tuple[str, str]] = set()

        def walk(node: ExpressionNode, ancestors: Tuple[str, ...]) -> None:
            for variable in node.variables:
                for ancestor_var in ancestors:
                    if ancestor_var != variable:
                        pairs.add((ancestor_var, variable))
            new_ancestors = ancestors + tuple(node.variables)
            for child in node.children:
                walk(child, new_ancestors)

        walk(self.root, ())
        for u, v in pairs:
            if (v, u) in pairs:
                raise ExpressionTreeError(
                    f"precedence relation is not antisymmetric ({u!r} <-> {v!r})"
                )
        return pairs

    def precedence_predecessors(self) -> Dict[str, Set[str]]:
        """Map each variable to the set of variables that must precede it."""
        predecessors: Dict[str, Set[str]] = {v: set() for v in self.variables}
        for u, v in self.precedence_pairs():
            predecessors[v].add(u)
        return predecessors


# ---------------------------------------------------------------------- #
# public constructor
# ---------------------------------------------------------------------- #

#: Semiring-aggregate tags that are closed under the idempotent elements
#: ``{0, 1}`` of the standard product operators.  ``sum`` is deliberately
#: absent (1 + 1 leaves {0, 1}).
_IDEMPOTENT_CLOSED_TAGS = frozenset({"max", "min", "or", "and"})


def uses_general_product_tree(query) -> bool:
    """Decide whether the Section 6.3 (non-idempotent product) treatment is needed.

    The Section 6.2 expression tree (extended components, unconstrained
    dangling product variables) allows a sub-expression to be pulled out of a
    product aggregate's scope.  That rewrite is only sound when the escaping
    sub-expression is guaranteed to take ⊗-idempotent values, which holds
    when the input factors are idempotent-valued (0/1) and the aggregates of
    the escaping variables are closed under the idempotent elements
    (``max``/``min``/``or``/``and`` — but not ``Σ``).

    This predicate builds the Section 6.2 tree tentatively and reports
    ``True`` (i.e. "fall back to the Definition 6.30 construction") when

    * some factor takes non-idempotent values, or
    * some variable written inside a product aggregate's scope escapes that
      product in the tree (is not a descendant of any copy of it) while
      carrying a non-closed aggregate such as ``Σ``.
    """
    product_vars = set(query.product_variables)
    if not product_vars:
        return False
    semiring = query.semiring
    if not all(factor.has_idempotent_range(semiring) for factor in query.factors):
        return True

    tentative = _build_tree(query, query.hypergraph())
    position = {v: i for i, v in enumerate(query.order)}
    for product_var in product_vars:
        below: Set[str] = set()
        for node in tentative.iter_nodes():
            if product_var in node.variables:
                below |= set(node.subtree_variables())
        for variable in query.order:
            if position[variable] <= position[product_var]:
                continue
            if variable in below or variable in product_vars:
                continue
            if query.tag(variable) not in _IDEMPOTENT_CLOSED_TAGS:
                return True
    return False


def query_tree_hypergraph(query) -> Hypergraph:
    """The hypergraph the expression tree is built on.

    Normally this is just the query hypergraph; in the Section 6.3 regime
    (see :func:`uses_general_product_tree`) every hyperedge — and every
    otherwise isolated bound variable — is extended with the full set of
    product variables so that the precedence poset forbids pulling semiring
    aggregates out through a non-idempotent product (Definition 6.30).
    """
    hypergraph = query.hypergraph()
    if not uses_general_product_tree(query):
        return hypergraph
    product_vars = frozenset(query.product_variables)
    edges = [frozenset(edge) | product_vars for edge in hypergraph.edges]
    covered = set()
    for edge in edges:
        covered |= edge
    for variable in query.bound:
        if variable not in covered:
            edges.append(frozenset({variable}) | product_vars)
    return Hypergraph(hypergraph.vertices, edges)


def build_expression_tree(query) -> ExpressionTree:
    """Build the (compressed) expression tree of an FAQ query.

    The query's free variables form the root (possibly empty, mirroring the
    dummy variable ``X_0`` trick of the paper); the bound variables are then
    compartmentalised against the query hypergraph and the result is
    compressed.  Queries with non-idempotent product aggregates use the
    Definition 6.30 extended hypergraph (see :func:`query_tree_hypergraph`).
    """
    return _build_tree(query, query_tree_hypergraph(query))


def _build_tree(query, hypergraph: Hypergraph) -> ExpressionTree:
    """Compartmentalise + compress against an explicitly chosen hypergraph."""
    root = ExpressionNode(variables=list(query.free), tag=FREE_TAG)

    bound_sequence: TaggedSequence = [(v, query.tag(v)) for v in query.bound]
    if bound_sequence:
        product_vars = [v for v, t in bound_sequence if t == PRODUCT_TAG]
        components, dangling = extended_components(hypergraph, query.free, product_vars)
        for vertex_set, sub_hypergraph in components:
            sub_sequence = _restrict_sequence(bound_sequence, vertex_set)
            if not sub_sequence:
                continue
            root.children.append(_compartmentalize(sub_sequence, sub_hypergraph))
        if dangling:
            dangling_sequence = _restrict_sequence(bound_sequence, dangling)
            if dangling_sequence:
                root.children.append(
                    ExpressionNode(
                        variables=[v for v, _ in dangling_sequence], tag=PRODUCT_TAG
                    )
                )
        # Bound variables not reachable through any hyperedge and not product
        # (isolated semiring variables) become leaf children of the root.
        covered = root.subtree_variables()
        for variable, tag in bound_sequence:
            if variable not in covered:
                root.children.append(ExpressionNode(variables=[variable], tag=tag))

    _compress(root)
    return ExpressionTree(root=root, variables=query.order, free=query.free)

"""Textbook variable elimination — the baseline InsideOut improves upon.

This is the classic PGM / CSP dynamic-programming algorithm
(Section 5.1.2): to eliminate a variable, multiply *only* the factors that
contain it (pairwise hash joins, no indicator projections, no worst-case
optimal multiway join) and aggregate the variable away.  Its intermediate
results are bounded by the treewidth / integral-cover bounds rather than the
fractional hypertree width, which is exactly the gap Table 1 attributes to
prior PGM algorithms (``O~(N^htw)`` vs ``O~(N^faqw)``).

Only FAQ-SS queries (a single semiring aggregate shared by all bound
variables) plus product aggregates are supported, which covers the Marginal
and MAP rows of Table 1; the general multi-semiring case is handled by
InsideOut itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.query import FAQQuery, QueryError
from repro.factors.backend import (
    BACKEND_SPARSE,
    BackendPolicy,
    DEFAULT_POLICY,
    as_sparse,
    choose_dense,
    dense_join_reduce,
    multiply_factors,
    validate_backend,
)
from repro.factors.factor import Factor
from repro.faults import SITE_STEP_KERNEL, maybe_raise


@dataclass
class VariableEliminationStats:
    """Per-run counters for the baseline variable elimination."""

    max_intermediate_size: int = 0
    intermediate_sizes: List[int] = field(default_factory=list)
    multiplications: int = 0


@dataclass
class VariableEliminationResult:
    """Result of :func:`variable_elimination`."""

    factor: Factor
    ordering: Tuple[str, ...]
    stats: VariableEliminationStats

    @property
    def scalar(self) -> Any:
        """Scalar output for queries without free variables."""
        if self.factor.scope:
            raise QueryError("query has free variables; use .factor")
        return self.factor.table.get((), None)


def variable_elimination(
    query: FAQQuery,
    ordering: Sequence[str] | str | None = None,
    backend: str = BACKEND_SPARSE,
    backend_policy: BackendPolicy | None = None,
) -> VariableEliminationResult:
    """Evaluate an FAQ query by textbook variable elimination.

    Differences from :func:`repro.core.insideout.inside_out`:

    * intermediate results are formed by *pairwise* products of exactly the
      factors containing the eliminated variable (no indicator projections),
    * the final output is the pairwise product of the residual factors.

    ``backend`` selects the factor representation per elimination step just
    as in :func:`~repro.core.insideout.inside_out`: ``"sparse"`` (default),
    ``"dense"``, or the cost-heuristic ``"auto"``.  ``ordering="plan"`` asks
    the cost-based planner (:mod:`repro.planner`) for its best ordering.

    Raises
    ------
    QueryError
        If the bound variables use more than one distinct semiring aggregate
        (this baseline is an FAQ-SS algorithm; use InsideOut for general FAQ).
    """
    semiring = query.semiring
    backend = validate_backend(backend)
    policy = backend_policy if backend_policy is not None else DEFAULT_POLICY
    tags = {query.aggregates[v].tag for v in query.semiring_variables}
    if len(tags) > 1:
        raise QueryError(
            f"variable_elimination supports a single semiring aggregate, got {sorted(tags)}"
        )

    if ordering is None:
        order = list(query.order)
    elif isinstance(ordering, str):
        if ordering != "plan":
            raise QueryError(f"unknown ordering specification {ordering!r}")
        # Cost-based planner ordering (cached; see :mod:`repro.planner`).
        from repro.planner import STRATEGY_VARIABLE_ELIMINATION, plan

        order = list(plan(query, strategy=STRATEGY_VARIABLE_ELIMINATION).ordering)
    else:
        order = list(ordering)
        if set(order) != set(query.order):
            raise QueryError("ordering must be a permutation of the query variables")
        if set(order[: query.num_free]) != set(query.free):
            raise QueryError("ordering must list the free variables first")

    stats = VariableEliminationStats()
    factors: List[Factor] = [f.copy() for f in query.factors]
    if not factors:
        factors = [Factor((), {(): semiring.one}, name="unit")]

    for position in range(len(order) - 1, query.num_free - 1, -1):
        maybe_raise(SITE_STEP_KERNEL)
        variable = order[position]
        aggregate = query.aggregates[variable]
        incident = [f for f in factors if variable in f.scope]
        rest = [f for f in factors if variable not in f.scope]

        if aggregate.is_product:
            domain_size = query.domain_size(variable)
            new_factors: List[Factor] = []
            for factor in incident:
                new_factors.append(factor.product_marginalize(variable, domain_size, semiring))
            for factor in rest:
                if factor.has_idempotent_range(semiring):
                    new_factors.append(factor)
                else:
                    new_factors.append(factor.power(domain_size, semiring))
            factors = new_factors
            continue

        if not incident:
            domain_size = query.domain_size(variable)
            value = semiring.one
            for _ in range(domain_size - 1):
                value = aggregate.combine(value, semiring.one)
            if not semiring.is_one(value):
                rest.append(Factor((), {(): value}, name=f"const({variable})"))
            factors = rest
            continue

        induced: set = set()
        for factor in incident:
            induced |= set(factor.scope)
        use_dense = choose_dense(
            backend, incident, induced, query.domains(), semiring, (aggregate.tag,), policy
        )
        if use_dense:
            output_scope = tuple(v for v in query.order if v in induced and v != variable)
            reduced = dense_join_reduce(
                incident,
                semiring,
                query.domains(),
                output_scope,
                (variable,),
                aggregate.tag,
                name=f"psi_elim({variable})",
            )
            # Account the *materialized* induced box, not the post-reduction
            # non-zero count, so intermediate sizes stay comparable with the
            # sparse path (which records the pre-marginalisation product).
            box_cells = 1
            for v in induced:
                box_cells *= query.domain_size(v)
            stats.multiplications += box_cells * max(len(incident) - 1, 0)
            stats.max_intermediate_size = max(stats.max_intermediate_size, box_cells)
            stats.intermediate_sizes.append(box_cells)
            factors = rest + [reduced]
            continue
        product = as_sparse(incident[0], semiring)
        if len(incident) == 1:
            reduced = product.aggregate_marginalize(variable, aggregate.combine, semiring)
            intermediate = len(product)
        else:
            # Pairwise products as before, but the *last* multiply is fused
            # with the marginalisation: the full induced-set product is never
            # materialised, while ``joined`` keeps the historical intermediate
            # accounting (it equals the listed size of the unfused product).
            for factor in incident[1:-1]:
                product = product.multiply(as_sparse(factor, semiring), semiring)
                stats.multiplications += len(product)
            reduced, joined = product.multiply_marginalize(
                as_sparse(incident[-1], semiring), variable, aggregate.combine, semiring
            )
            stats.multiplications += joined
            intermediate = joined
        stats.max_intermediate_size = max(stats.max_intermediate_size, intermediate)
        stats.intermediate_sizes.append(intermediate)
        factors = rest + [reduced]

    # Output phase: pairwise product of the residual factors.
    output = factors[0]
    for factor in factors[1:]:
        output = multiply_factors(output, factor, semiring)
        stats.multiplications += len(output)
    output = as_sparse(output, semiring)

    # Expand free variables that no factor mentions (constant directions).
    missing = [v for v in query.free if v not in output.scope]
    for variable in missing:
        domain = query.domain(variable)
        table: Dict[Tuple[Any, ...], Any] = {}
        for key, value in output.table.items():
            for dom_value in domain:
                table[key + (dom_value,)] = value
        output = Factor(tuple(output.scope) + (variable,), table, name=output.name)
    output = output.normalize_scope(query.free) if query.free else output

    stats.max_intermediate_size = max(stats.max_intermediate_size, len(output))
    return VariableEliminationResult(factor=output, ordering=tuple(order), stats=stats)

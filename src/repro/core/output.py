"""Output representations for FAQ queries (Section 8.4 of the paper).

InsideOut can return its result in several representations:

* **listing** (the default): the output is a single
  :class:`~repro.factors.factor.Factor` over the free variables.  Output
  pre-processing costs ``O~(AGM(F))``, value queries and enumeration are
  constant-delay.
* **factorized** (:class:`FactorizedOutput`): the final join is skipped and
  the output is kept as the product of the residual factors produced after
  eliminating the bound variables.  Pre-processing is free; value queries
  cost one lookup per residual factor; enumeration is a backtracking join
  with near-constant delay (the paper's ``O~(1)``-delay enumeration
  representation).

This mirrors the factorized-database view of Olteanu and Závodný discussed in
the paper; a :class:`FactorizedOutput` can always be materialised back into
the listing representation with :meth:`FactorizedOutput.to_factor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple

from repro.factors.factor import Factor
from repro.semiring.base import Semiring


@dataclass(frozen=True)
class FactorizedOutput:
    """The output of an FAQ query kept as a product of residual factors.

    Attributes
    ----------
    free:
        The free variables, in output order.
    factors:
        The residual factors (their scopes are subsets of ``free``).
    semiring:
        The query semiring (supplies ``⊗`` and ``0``).
    domains:
        Domains of the free variables, needed to enumerate variables that no
        residual factor mentions.
    """

    free: Tuple[str, ...]
    factors: Tuple[Factor, ...]
    semiring: Semiring
    domains: Mapping[str, Sequence[Any]]

    # ------------------------------------------------------------------ #
    def value(self, assignment: Mapping[str, Any]) -> Any:
        """Value query: evaluate the output on one free-variable assignment.

        Costs one hash lookup per residual factor (the paper's ``O~(1)``
        value-query time).
        """
        result = self.semiring.one
        for factor in self.factors:
            result = self.semiring.mul(result, factor.value(assignment, self.semiring))
            if self.semiring.is_zero(result):
                return self.semiring.zero
        return result

    def enumerate(self) -> Iterator[Tuple[Dict[str, Any], Any]]:
        """Enumerate all non-zero output tuples with their values.

        Runs a backtracking join over the residual factors; free variables
        not mentioned by any factor are expanded over their domains.
        """
        from repro.core.outsidein import enumerate_join

        covered = set()
        for factor in self.factors:
            covered |= set(factor.scope)
        isolated = [v for v in self.free if v not in covered]

        def expand(assignment: Dict[str, Any], value: Any, index: int):
            if index == len(isolated):
                yield dict(assignment), value
                return
            variable = isolated[index]
            for dom_value in self.domains[variable]:
                assignment[variable] = dom_value
                yield from expand(assignment, value, index + 1)
                del assignment[variable]

        if not self.factors:
            yield from expand({}, self.semiring.one, 0)
            return
        for assignment, value in enumerate_join(list(self.factors), self.semiring, list(self.free)):
            yield from expand(assignment, value, 0)

    def to_factor(self, name: str = "phi") -> Factor:
        """Materialise into the listing representation."""
        table: Dict[Tuple[Any, ...], Any] = {}
        for assignment, value in self.enumerate():
            key = tuple(assignment[v] for v in self.free)
            table[key] = value
        return Factor(self.free, table, name=name)

    def __len__(self) -> int:
        """Number of residual factors (not the output size)."""
        return len(self.factors)

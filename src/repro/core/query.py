"""The :class:`FAQQuery` class — the Functional Aggregate Query of Section 1.2.

An FAQ query is

``phi(x_F) = ⊕^(f+1)_{x_{f+1}} ... ⊕^(n)_{x_n} ⊗_{S ∈ E} psi_S(x_S)``

where the first ``f`` variables are *free* and every bound variable carries
an aggregate that is either the product ``⊗`` or forms a commutative
semiring with it.  This module also provides a brute-force reference
evaluator used throughout the test-suite to validate InsideOut.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.factors.factor import Factor
from repro.hypergraph.hypergraph import Hypergraph
from repro.semiring.aggregates import Aggregate, FREE_TAG
from repro.semiring.base import Semiring


class QueryError(ValueError):
    """Raised on malformed FAQ queries."""


@dataclass(frozen=True)
class Variable:
    """A query variable: a name plus its finite, totally ordered domain."""

    name: str
    domain: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if len(self.domain) == 0:
            raise QueryError(f"variable {self.name} has an empty domain")
        if len(set(self.domain)) != len(self.domain):
            raise QueryError(f"variable {self.name} has duplicate domain values")

    @property
    def size(self) -> int:
        """``|Dom(X)|``."""
        return len(self.domain)


class FAQQuery:
    """A Functional Aggregate Query.

    Parameters
    ----------
    variables:
        The query variables *in the order they are written in the query
        expression*: the free variables first, then the bound variables from
        the outermost aggregate to the innermost.
    free:
        Names of the free variables (must be a prefix of ``variables``).
    aggregates:
        Mapping from each bound variable name to its
        :class:`~repro.semiring.aggregates.Aggregate`.
    factors:
        The input factors ``psi_S`` (listing representation).  Explicit zero
        entries are pruned on construction.
    semiring:
        Provides the product ``⊗`` with identities ``0`` / ``1`` shared by
        all aggregates.  (The ``add`` of this semiring is *not* used unless a
        bound variable's aggregate happens to be that operator.)
    name:
        Optional human-readable query name.
    """

    def __init__(
        self,
        variables: Sequence[Variable],
        free: Sequence[str],
        aggregates: Mapping[str, Aggregate],
        factors: Sequence[Factor],
        semiring: Semiring,
        name: str = "phi",
    ) -> None:
        self.name = name
        self.semiring = semiring
        self.variables: Dict[str, Variable] = {}
        self.order: Tuple[str, ...] = tuple(v.name for v in variables)
        for variable in variables:
            if variable.name in self.variables:
                raise QueryError(f"duplicate variable {variable.name}")
            self.variables[variable.name] = variable

        self.free: Tuple[str, ...] = tuple(free)
        if tuple(self.order[: len(self.free)]) != self.free:
            raise QueryError(
                "free variables must be a prefix of the variable order "
                f"(order={self.order}, free={self.free})"
            )

        bound = self.order[len(self.free):]
        self.aggregates: Dict[str, Aggregate] = {}
        for var_name in bound:
            if var_name not in aggregates:
                raise QueryError(f"bound variable {var_name} has no aggregate")
            self.aggregates[var_name] = aggregates[var_name]
        extra = set(aggregates) - set(bound)
        if extra:
            raise QueryError(f"aggregates given for non-bound variables {sorted(extra)}")

        self.factors: List[Factor] = []
        for factor in factors:
            unknown = [v for v in factor.scope if v not in self.variables]
            if unknown:
                raise QueryError(
                    f"factor {factor.name} mentions unknown variables {unknown}"
                )
            self.factors.append(factor.pruned(semiring))
        self._hypergraph: Hypergraph | None = None

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        return len(self.order)

    @property
    def num_free(self) -> int:
        return len(self.free)

    @property
    def bound(self) -> Tuple[str, ...]:
        """The bound variables, outermost aggregate first."""
        return self.order[len(self.free):]

    @property
    def product_variables(self) -> Tuple[str, ...]:
        """Bound variables whose aggregate is the product ``⊗``."""
        return tuple(v for v in self.bound if self.aggregates[v].is_product)

    @property
    def semiring_variables(self) -> Tuple[str, ...]:
        """Bound variables with a genuine semiring aggregate."""
        return tuple(v for v in self.bound if self.aggregates[v].is_semiring)

    @property
    def k_set(self) -> frozenset:
        """The set ``K`` of equation (13): free plus semiring variables."""
        return frozenset(self.free) | frozenset(self.semiring_variables)

    def domain(self, variable: str) -> Tuple[Any, ...]:
        """The domain of a variable."""
        return self.variables[variable].domain

    def domain_size(self, variable: str) -> int:
        """``|Dom(X)|`` for a variable."""
        return self.variables[variable].size

    def domains(self) -> Dict[str, Tuple[Any, ...]]:
        """All domains keyed by variable name."""
        return {name: var.domain for name, var in self.variables.items()}

    def tag(self, variable: str) -> str:
        """The expression-tree tag of a variable (``free`` or aggregate tag)."""
        if variable in self.free:
            return FREE_TAG
        return self.aggregates[variable].tag

    def hypergraph(self) -> Hypergraph:
        """The query hypergraph ``H`` (vertices = variables, edges = scopes).

        The hypergraph is built lazily and memoised (queries are treated as
        immutable after construction), so repeated planner calls share one
        instance — and with it the planner's per-hypergraph LP memos.
        """
        if self._hypergraph is None:
            self._hypergraph = Hypergraph(self.order, [f.variables for f in self.factors])
        return self._hypergraph

    def factor_sizes(self) -> Dict[frozenset, int]:
        """Map each distinct hyperedge to the largest factor size on it."""
        sizes: Dict[frozenset, int] = {}
        for factor in self.factors:
            key = factor.variables
            sizes[key] = max(sizes.get(key, 0), len(factor))
        return sizes

    @property
    def input_size(self) -> int:
        """``N``: the size of the largest input factor."""
        return max((len(f) for f in self.factors), default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        aggs = ",".join(f"{v}:{self.tag(v)}" for v in self.bound)
        return (
            f"FAQQuery({self.name}, n={self.num_variables}, free={list(self.free)}, "
            f"aggregates=[{aggs}], m={len(self.factors)})"
        )

    # ------------------------------------------------------------------ #
    # derived queries
    # ------------------------------------------------------------------ #
    def with_ordering(self, ordering: Sequence[str]) -> "FAQQuery":
        """Re-write the query along a new variable ordering.

        The ordering must contain every variable exactly once and start with
        the free variables (in any order).  Aggregates travel with their
        variables.  No semantic check is performed here — use
        :func:`repro.core.evo.is_equivalent_ordering` for that.
        """
        order = list(ordering)
        if set(order) != set(self.order) or len(order) != len(self.order):
            raise QueryError("ordering must be a permutation of the query variables")
        if set(order[: self.num_free]) != set(self.free):
            raise QueryError("ordering must list the free variables first")
        variables = [self.variables[v] for v in order]
        return FAQQuery(
            variables=variables,
            free=tuple(order[: self.num_free]),
            aggregates=self.aggregates,
            factors=self.factors,
            semiring=self.semiring,
            name=self.name,
        )

    # ------------------------------------------------------------------ #
    # brute-force reference evaluation
    # ------------------------------------------------------------------ #
    def _evaluate_bound(self, assignment: Dict[str, Any], index: int) -> Any:
        """Recursively evaluate the aggregates from ``order[index]`` onwards."""
        semiring = self.semiring
        if index == self.num_variables:
            return semiring.product(f.value(assignment, semiring) for f in self.factors)
        variable = self.order[index]
        aggregate = self.aggregates[variable]
        domain = self.domain(variable)
        values = []
        for value in domain:
            assignment[variable] = value
            values.append(self._evaluate_bound(assignment, index + 1))
        del assignment[variable]
        if aggregate.is_product:
            return semiring.product(values)
        result = values[0]
        for value in values[1:]:
            result = aggregate.combine(result, value)
        return result

    def evaluate_brute_force(self) -> Factor:
        """Evaluate the query by exhaustive recursion (reference semantics).

        Returns a factor over the free variables (an empty-scope factor whose
        single entry is the scalar answer when there are no free variables).
        Exponential in the number of variables — for tests and tiny inputs.
        """
        semiring = self.semiring
        table: Dict[Tuple[Any, ...], Any] = {}
        free_domains = [self.domain(v) for v in self.free]
        for free_values in itertools.product(*free_domains) if self.free else [()]:
            assignment = dict(zip(self.free, free_values))
            value = self._evaluate_bound(assignment, self.num_free)
            if not semiring.is_zero(value):
                table[tuple(free_values)] = value
        return Factor(self.free, table, name=f"{self.name}(brute)")

    def evaluate_scalar_brute_force(self) -> Any:
        """Brute-force evaluation of a query with no free variables."""
        if self.free:
            raise QueryError("evaluate_scalar_brute_force requires a query with no free variables")
        result = self.evaluate_brute_force()
        return result.table.get((), self.semiring.zero)

"""InsideOut — Algorithm 1 of the paper.

InsideOut eliminates the bound variables of an FAQ query from the innermost
aggregate outwards (i.e. from the back of the chosen variable ordering),
with three twists over textbook variable elimination:

1. every intermediate factor is computed by the OutsideIn worst-case-optimal
   join (:mod:`repro.core.outsidein`), so each elimination step costs at most
   the AGM bound of the induced set ``U_k``;
2. *indicator projections* (Definition 4.2) of the factors outside ``∂(k)``
   that intersect ``U_k`` participate in the join, pruning intermediate
   tuples that later factors would annihilate anyway — this is what lifts
   the guarantee from treewidth to fractional hypertree width;
3. product aggregates are eliminated per-factor: factors containing the
   variable are product-marginalised, the remaining factors are raised to
   the ``|Dom(X_k)|``-th power unless their range is ⊗-idempotent
   (Definition 5.2), in which case they are left untouched.

The output over the free variables is produced either in the listing
representation (a final OutsideIn join, equation (9)) or as a
:class:`~repro.core.output.FactorizedOutput` (Section 8.4).

The per-variable step bodies are exposed as :func:`eliminate_semiring_step`,
:func:`eliminate_product_step` and :func:`output_phase` so that the parallel
step-DAG executor (:mod:`repro.exec`) runs *exactly* the same kernels as the
sequential loop below — a DAG run with any worker count computes the same
factors (and the same per-step stats) as ``inside_out`` itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.outsidein import OutsideInStats, eliminate_join, join_factors
from repro.core.output import FactorizedOutput
from repro.core.query import FAQQuery, QueryError
from repro.factors.backend import (
    BACKEND_DENSE,
    BACKEND_FLAT,
    BACKEND_SPARSE,
    BackendPolicy,
    DEFAULT_POLICY,
    as_sparse,
    choose_dense,
    dense_join_reduce,
    validate_backend,
)
from repro.factors.dense import DenseFactor
from repro.factors.factor import Factor
from repro.factors.index import SharedTrieCache, TrieCache, build_trie
from repro.faults import SITE_STEP_KERNEL, maybe_raise
from repro.semiring.base import Semiring


@dataclass
class EliminationRecord:
    """Bookkeeping for one variable elimination step."""

    variable: str
    kind: str  # "semiring" or "product"
    induced_set: frozenset
    incident_count: int
    projection_count: int
    result_size: int
    seconds: float
    backend: str = BACKEND_SPARSE  # representation used for this step


@dataclass
class InsideOutStats:
    """Counters and per-step records for one InsideOut run."""

    steps: List[EliminationRecord] = field(default_factory=list)
    join_stats: OutsideInStats = field(default_factory=OutsideInStats)
    max_intermediate_size: int = 0
    output_size: int = 0
    total_seconds: float = 0.0

    @property
    def largest_induced_set(self) -> int:
        """The largest ``|U_k|`` encountered (proxy for the induced width)."""
        return max((len(s.induced_set) for s in self.steps), default=0)


@dataclass
class InsideOutResult:
    """The result of an InsideOut run.

    ``factor`` holds the output in the listing representation (a factor over
    the free variables; an empty-scope factor for scalar queries).
    ``factorized`` is populated instead when ``output_mode='factorized'``.
    """

    factor: Optional[Factor]
    factorized: Optional[FactorizedOutput]
    ordering: Tuple[str, ...]
    stats: InsideOutStats

    @property
    def scalar(self) -> Any:
        """The scalar value for queries with no free variables."""
        if self.factor is None:
            raise QueryError("scalar access requires listing output mode")
        if self.factor.scope:
            raise QueryError("query has free variables; use .factor")
        return self.factor.table.get((), None)

    def scalar_or_zero(self, semiring: Semiring) -> Any:
        """The scalar value, or the semiring zero if the output is empty."""
        if self.factor is None:
            raise QueryError("scalar access requires listing output mode")
        return self.factor.table.get((), semiring.zero)


def _validated_ordering(query: FAQQuery, ordering: Sequence[str] | None) -> List[str]:
    """Resolve and validate the variable ordering used by InsideOut."""
    if ordering is None:
        return list(query.order)
    if isinstance(ordering, str):
        if ordering == "plan":
            # Ask the cost-based planner for its best InsideOut ordering
            # (cached by query signature; see :mod:`repro.planner`).
            from repro.planner import STRATEGY_INSIDEOUT, plan

            return list(plan(query, strategy=STRATEGY_INSIDEOUT).ordering)
        if ordering != "auto":
            raise QueryError(f"unknown ordering specification {ordering!r}")
        from repro.core.faqw import approximate_faqw_ordering

        return list(approximate_faqw_ordering(query))
    order = list(ordering)
    if set(order) != set(query.order) or len(order) != len(query.order):
        raise QueryError("ordering must be a permutation of the query variables")
    if set(order[: query.num_free]) != set(query.free):
        raise QueryError("ordering must list the free variables first")
    return order


# Cap for workers="auto": realistic step DAGs rarely have the topological
# width to keep more workers busy, and process workers each pay a startup
# plus shared-memory attach cost.
AUTO_WORKERS_CAP = 8


def _validated_workers(workers: int | str | None) -> int | None:
    """Validate an opt-in ``workers=`` argument (``None`` means serial).

    ``"auto"`` resolves to the machine's CPU count capped at
    :data:`AUTO_WORKERS_CAP`, so callers can opt into parallelism without
    hard-coding a pool size.
    """
    if workers is None:
        return None
    if workers == "auto":
        import os

        return max(1, min(os.cpu_count() or 1, AUTO_WORKERS_CAP))
    if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
        raise QueryError(
            f'workers must be a positive integer, "auto", or None, got {workers!r}'
        )
    return workers


def eliminate_semiring_step(
    query: FAQQuery,
    incident: List[Factor],
    others: List[Factor],
    variable: str,
    use_indicator_projections: bool,
    join_stats: OutsideInStats,
    backend: str = BACKEND_SPARSE,
    policy: BackendPolicy = DEFAULT_POLICY,
    tries: Optional[TrieCache] = None,
) -> Tuple[Optional[Factor], EliminationRecord]:
    """One semiring-aggregate elimination step (lines 5-11 of Algorithm 1).

    ``incident`` are the factors whose scope contains ``variable``;
    ``others`` are the remaining live factors (scanned for indicator
    projections).  Returns the step's new factor (``None`` when the step
    produces nothing — a constant fold to the semiring one) plus its
    :class:`EliminationRecord`.  The step is a pure function of its factor
    inputs, which is what lets the DAG executor run independent steps
    concurrently and still match the sequential loop bit for bit.

    The sparse path runs the fused hash-join-and-aggregate kernel
    (:func:`repro.core.outsidein.eliminate_join`) over tries from the
    per-run :class:`~repro.factors.index.TrieCache`: surviving factors and
    repeated indicator projections keep their index across steps instead of
    being re-hashed tuple-by-tuple at every elimination.
    """
    maybe_raise(SITE_STEP_KERNEL)
    semiring = query.semiring
    aggregate = query.aggregates[variable]
    start = time.perf_counter()

    if not incident:
        # The variable occurs in no remaining factor: the inner product is the
        # constant 1 and the aggregate folds |Dom| copies of it.
        domain_size = query.domain_size(variable)
        value = semiring.one
        for _ in range(domain_size - 1):
            value = aggregate.combine(value, semiring.one)
        new_factor = None
        if not semiring.is_one(value):
            new_factor = Factor((), {(): value}, name=f"const({variable})")
        record = EliminationRecord(
            variable=variable,
            kind="semiring",
            induced_set=frozenset({variable}),
            incident_count=0,
            projection_count=0,
            result_size=1,
            seconds=time.perf_counter() - start,
        )
        return new_factor, record

    induced: set = set()
    for factor in incident:
        induced |= set(factor.scope)

    participants: List[Factor] = list(incident)
    projections: List[Tuple[Factor, frozenset]] = []  # (sparse source, overlap)
    dense_projections: List[Factor] = []
    projection_count = 0
    if use_indicator_projections:
        for factor in others:
            overlap = frozenset(factor.scope) & induced
            if overlap:
                if tries is not None and not isinstance(factor, DenseFactor):
                    # Cached per (factor, overlap); the trie is built lazily
                    # on the sparse branch only (dense steps never need one).
                    projected = tries.projection_factor(factor, overlap)
                    projections.append((factor, overlap))
                else:
                    # Dense sources keep their vectorized projection (and
                    # stay dense for the backend heuristic below).
                    projected = factor.indicator_projection(overlap, semiring)
                    dense_projections.append(projected)
                participants.append(projected)
                projection_count += 1

    output_scope = tuple(v for v in query.order if v in induced and v != variable)
    use_dense = choose_dense(
        backend, participants, induced, query.domains(), semiring, (aggregate.tag,), policy
    )
    step_backend = BACKEND_DENSE if use_dense else BACKEND_SPARSE
    new_factor = None
    if not use_dense and tries is not None and policy.flat_enabled:
        new_factor = _try_flat_eliminate(
            query, incident, participants, projections, dense_projections,
            variable, output_scope, induced, aggregate.tag, policy, tries,
        )
        if new_factor is not None:
            step_backend = BACKEND_FLAT
    if use_dense:
        new_factor = dense_join_reduce(
            participants,
            semiring,
            query.domains(),
            output_scope,
            (variable,),
            aggregate.tag,
            name=f"psi_elim({variable})",
        )
    elif new_factor is not None:
        pass  # the flat kernel already produced the step result
    elif tries is not None:
        participant_tries = [tries.trie(f) for f in incident]
        participant_tries.extend(
            tries.projection(source, overlap)[1] for source, overlap in projections
        )
        # Projections of dense factors are transient (a new object per step):
        # index them directly rather than through the per-run cache.  The
        # dense-aware build walks the ndarray cells without a listing
        # detour.
        participant_tries.extend(
            build_trie(p, tries.order, semiring) for p in dense_projections
        )
        new_factor = eliminate_join(
            participant_tries,
            semiring,
            variable,
            output_scope,
            aggregate.combine,
            variable_order=tries.order,
            stats=join_stats,
            name=f"psi_elim({variable})",
        )
    else:
        new_factor = join_factors(
            participants,
            semiring,
            output_scope=output_scope,
            combine=aggregate.combine,
            variable_order=list(query.order),
            stats=join_stats,
            name=f"psi_elim({variable})",
        )
    if tries is not None:
        for factor in incident:
            tries.discard(factor)
    record = EliminationRecord(
        variable=variable,
        kind="semiring",
        induced_set=frozenset(induced),
        incident_count=len(incident),
        projection_count=projection_count,
        result_size=len(new_factor),
        seconds=time.perf_counter() - start,
        backend=step_backend,
    )
    return new_factor, record


def _try_flat_eliminate(
    query: FAQQuery,
    incident: List[Factor],
    participants: List[Factor],
    projections: List[Tuple[Factor, frozenset]],
    dense_projections: List[Factor],
    variable: str,
    output_scope: Tuple[str, ...],
    induced: set,
    tag: str,
    policy: BackendPolicy,
    tries: TrieCache,
) -> Optional[Factor]:
    """Attempt the vectorized flat-table kernel for one sparse step.

    Returns the step result, or ``None`` when the step does not qualify
    (non-ufunc-able algebra, too few rows, unsafe value dtypes, join
    blow-up past the row cap) — the caller then runs the trie kernel,
    which stays the universal fallback.  The participants are folded in
    the trie kernel's exact order — indicator projections (its base
    tries) first, then the incident factors — so the surviving rows and
    their partial products match the trie path's row for row.
    """
    from repro.factors.flat import encode_flat, flat_eliminate, flat_step_eligible

    semiring = query.semiring
    if not flat_step_eligible(
        semiring, tag, query.domains(), induced, participants, policy.flat_min_rows
    ):
        return None
    ctx = tries.flat_context(query.domains())
    if ctx is None:
        return None
    flats = []
    for source, overlap in projections:
        flat = tries.flat(tries.projection_factor(source, overlap), ctx)
        if flat is None:
            return None
        flats.append(flat)
    for projected in dense_projections:
        # Transient objects (a new projection per step): encode directly
        # rather than pinning them in the per-run cache.
        flat = encode_flat(projected, ctx)
        if flat is None:
            return None
        flats.append(flat)
    for factor in incident:
        flat = tries.flat(factor, ctx)
        if flat is None:
            return None
        flats.append(flat)
    produced = flat_eliminate(
        flats, variable, output_scope, tag, ctx, policy.flat_row_cap,
        name=f"psi_elim({variable})",
    )
    if produced is None:
        return None
    new_factor, encoding = produced
    tries.store_flat(new_factor, encoding)
    return new_factor


def _eliminate_semiring(
    query: FAQQuery,
    factors: List[Factor],
    variable: str,
    use_indicator_projections: bool,
    stats: InsideOutStats,
    backend: str = BACKEND_SPARSE,
    policy: BackendPolicy = DEFAULT_POLICY,
    tries: Optional[TrieCache] = None,
) -> List[Factor]:
    """Sequential-loop wrapper around :func:`eliminate_semiring_step`."""
    incident = [f for f in factors if variable in f.scope]
    others = [f for f in factors if variable not in f.scope]
    new_factor, record = eliminate_semiring_step(
        query, incident, others, variable, use_indicator_projections,
        stats.join_stats, backend=backend, policy=policy, tries=tries,
    )
    stats.steps.append(record)
    if incident:
        stats.max_intermediate_size = max(stats.max_intermediate_size, record.result_size)
    if new_factor is None:
        return list(others)
    return others + [new_factor]


def eliminate_product_step(
    query: FAQQuery,
    factors: List[Factor],
    variable: str,
) -> Tuple[List[Factor], EliminationRecord]:
    """One product-aggregate elimination step (lines 13-18 of Algorithm 1).

    Returns the new factor list aligned positionally with ``factors`` (the
    factor at index ``i`` is the image of ``factors[i]``) plus the step
    record, so the DAG executor can map input slots to output slots.
    """
    semiring = query.semiring
    domain_size = query.domain_size(variable)
    start = time.perf_counter()

    new_factors: List[Factor] = []
    incident_count = 0
    largest = 0
    for factor in factors:
        if variable in factor.scope:
            incident_count += 1
            marginalised = factor.product_marginalize(variable, domain_size, semiring)
            largest = max(largest, len(marginalised))
            new_factors.append(marginalised)
        elif factor.has_idempotent_range(semiring):
            new_factors.append(factor)
        else:
            powered = factor.power(domain_size, semiring)
            largest = max(largest, len(powered))
            new_factors.append(powered)

    record = EliminationRecord(
        variable=variable,
        kind="product",
        induced_set=frozenset({variable}),
        incident_count=incident_count,
        projection_count=0,
        result_size=largest,
        seconds=time.perf_counter() - start,
    )
    return new_factors, record


def _eliminate_product(
    query: FAQQuery,
    factors: List[Factor],
    variable: str,
    stats: InsideOutStats,
) -> List[Factor]:
    """Sequential-loop wrapper around :func:`eliminate_product_step`."""
    new_factors, record = eliminate_product_step(query, factors, variable)
    stats.max_intermediate_size = max(stats.max_intermediate_size, record.result_size)
    stats.steps.append(record)
    return new_factors


def _expand_isolated_free(
    query: FAQQuery, factor: Factor, semiring: Semiring
) -> Factor:
    """Extend the output factor over free variables it does not mention.

    A free variable that appears in no factor leaves the output constant
    along its domain: every domain value must be paired with every listed
    output tuple.
    """
    missing = [v for v in query.free if v not in factor.scope]
    if not missing:
        return factor
    result = factor
    for variable in missing:
        domain = query.domain(variable)
        table: Dict[Tuple[Any, ...], Any] = {}
        for key, value in result.table.items():
            for dom_value in domain:
                table[key + (dom_value,)] = value
        result = Factor(tuple(result.scope) + (variable,), table, name=result.name)
    return result.normalize_scope(query.free)


def output_phase(
    query: FAQQuery,
    factors: List[Factor],
    order: Sequence[str],
    backend: str,
    policy: BackendPolicy,
    join_stats: OutsideInStats,
) -> Factor:
    """The output phase over the free variables (listing mode, equation (9))."""
    semiring = query.semiring
    if query.num_free == 0:
        value = semiring.one
        for factor in factors:
            value = semiring.mul(value, factor.value({}, semiring))
        table = {} if semiring.is_zero(value) else {(): value}
        return Factor((), table, name=f"{query.name}(out)")

    output_scope = tuple(v for v in query.free if any(v in f.scope for f in factors))
    if factors and choose_dense(
        backend, factors, output_scope, query.domains(), semiring, (), policy
    ):
        output = dense_join_reduce(
            factors,
            semiring,
            query.domains(),
            output_scope,
            name=f"{query.name}(out)",
        ).to_factor(semiring, name=f"{query.name}(out)")
    else:
        output = join_factors(
            factors,
            semiring,
            output_scope=output_scope,
            combine=None,
            variable_order=list(order),
            stats=join_stats,
            name=f"{query.name}(out)",
        )
    return _expand_isolated_free(query, output, semiring)


def apply_output_delta(
    base: Factor, delta: Factor, semiring: Semiring, name: str | None = None
) -> Factor:
    """Combine a prior output factor with a delta output under ``⊕``.

    The delta-maintenance kernel of :mod:`repro.incremental`: ``delta``
    carries, per free tuple, the ⊕-aggregate of the changed assignments'
    contributions — the signed difference for ⊕-invertible semirings
    (delta propagation) or the improved values for monotone appends — and
    the refreshed answer is the cell-wise ``base ⊕ delta``.  Cells that
    combine to the semiring zero are dropped, so the result's listing
    matches a full recomputation's.
    """
    if set(base.scope) != set(delta.scope):
        raise QueryError(
            f"output delta scope {delta.scope} does not match output scope {base.scope}"
        )
    aligned = delta.normalize_scope(base.scope)
    table: Dict[Tuple[Any, ...], Any] = dict(base.table)
    for key, value in aligned.table.items():
        if key in table:
            combined = semiring.add(table[key], value)
            if semiring.is_zero(combined):
                del table[key]
            else:
                table[key] = combined
        elif not semiring.is_zero(value):
            table[key] = value
    return Factor(base.scope, table, name=name or base.name)


def inside_out(
    query: FAQQuery,
    ordering: Sequence[str] | str | None = None,
    use_indicator_projections: bool = True,
    output_mode: str = "listing",
    backend: str = BACKEND_SPARSE,
    backend_policy: BackendPolicy | None = None,
    workers: int | str | None = None,
    workers_mode: str = "thread",
    shared_tries: SharedTrieCache | None = None,
    step_cache=None,
) -> InsideOutResult:
    """Run InsideOut (Algorithm 1) on an FAQ query.

    Parameters
    ----------
    query:
        The FAQ query to evaluate.
    ordering:
        The variable ordering to eliminate along.  ``None`` uses the order
        the query was written in; ``"auto"`` runs the FAQ-width approximation
        of Section 7 to pick an equivalent ordering; ``"plan"`` asks the
        cost-based planner (:mod:`repro.planner`) for its best InsideOut
        ordering (with plan caching); otherwise a permutation
        of the variables (free variables first) is expected.  The caller is
        responsible for semantic equivalence when supplying an explicit
        ordering — use :func:`repro.core.evo.is_equivalent_ordering` or
        :func:`repro.core.faqw.approximate_faqw_ordering` to stay safe.
    use_indicator_projections:
        Disable to fall back to plain variable elimination intermediates
        (used by the ablation benchmark).
    output_mode:
        ``"listing"`` (default) materialises the output factor;
        ``"factorized"`` skips the final join and returns a
        :class:`~repro.core.output.FactorizedOutput`.
    backend:
        Factor representation for the elimination steps.  ``"sparse"``
        (default) keeps everything in the listing representation;
        ``"dense"`` vectorizes every step whose semiring and aggregates map
        to NumPy ufuncs (falling back to sparse otherwise); ``"auto"`` picks
        per elimination step via the cost heuristic
        (:func:`repro.factors.backend.prefer_dense`): dense when the induced
        domain box is small and the participating factors are dense enough,
        sparse otherwise.  The output factor is always returned in the
        listing representation regardless of the backend.
    backend_policy:
        Thresholds for the heuristic (defaults to
        :data:`repro.factors.backend.DEFAULT_POLICY`).
    workers:
        Opt-in parallelism.  ``None`` or ``1`` runs the sequential loop
        below; any larger value lowers the run to an explicit step DAG and
        executes independent elimination steps on a worker pool
        (:class:`repro.exec.DagExecutor`).  ``"auto"`` resolves to the
        machine's CPU count (capped).  Results and stats totals are
        identical to the serial run for every worker count and mode.
    workers_mode:
        Pool flavour when ``workers`` enables parallelism.  ``"thread"``
        (default) shares the interpreter — only the NumPy kernels escape
        the GIL.  ``"process"`` drives worker *processes* over the same
        step DAG, shipping factors through digest-keyed shared memory
        (:mod:`repro.exec.procpool`), so the sparse Python kernels scale
        with cores too; runs whose context cannot be pickled fall back to
        the thread pool transparently.
    shared_tries:
        A :class:`~repro.factors.index.SharedTrieCache` holding this
        query's base-factor tries across runs (supplied by the serving
        layer for repeated identical queries); ignored unless it was built
        for the same ordering and semiring.
    step_cache:
        A :class:`~repro.exec.StepResultCache` of finished elimination
        steps keyed by content digest.  Supplying one routes the run
        through the step-DAG executor (at any worker count — the serial
        DAG fallback is bit-identical to the loop below), which replays
        shared elimination prefixes instead of recomputing them.

    Returns
    -------
    :class:`InsideOutResult`
    """
    if output_mode not in ("listing", "factorized"):
        raise QueryError(f"unknown output mode {output_mode!r}")
    backend = validate_backend(backend)
    workers = _validated_workers(workers)
    policy = backend_policy if backend_policy is not None else DEFAULT_POLICY
    order = _validated_ordering(query, ordering)

    if (workers is not None and workers > 1) or step_cache is not None:
        from repro.exec import DagExecutor

        return DagExecutor(workers=workers or 1, workers_mode=workers_mode).run(
            query,
            ordering=order,
            use_indicator_projections=use_indicator_projections,
            output_mode=output_mode,
            backend=backend,
            backend_policy=policy,
            shared_tries=shared_tries,
            step_cache=step_cache,
        )

    semiring = query.semiring
    stats = InsideOutStats()
    started = time.perf_counter()

    factors: List[Factor] = list(query.factors)
    if not factors:
        # An empty product is the constant 1 over all free assignments.
        factors = [Factor((), {(): semiring.one}, name="unit")]

    # One trie index per run, shared across elimination steps: surviving
    # factors keep their per-variable buckets instead of being re-hashed at
    # every step (the ordering is the global trie order, so the variable
    # being eliminated is always the deepest remaining trie level).
    tries = TrieCache(order, semiring)
    tries.adopt_parent(shared_tries)

    # Eliminate bound variables from the innermost aggregate outwards.
    for position in range(len(order) - 1, query.num_free - 1, -1):
        variable = order[position]
        aggregate = query.aggregates[variable]
        if aggregate.is_product:
            before = factors
            factors = _eliminate_product(query, factors, variable, stats)
            # Product steps replace marginalised/powered factors with new
            # objects; drop the dead factors' cached tries.
            kept = {id(f) for f in factors}
            for factor in before:
                if id(factor) not in kept:
                    tries.discard(factor)
        else:
            factors = _eliminate_semiring(
                query, factors, variable, use_indicator_projections, stats,
                backend=backend, policy=policy, tries=tries,
            )

    # Output phase over the free variables.
    if output_mode == "factorized":
        factorized = FactorizedOutput(
            free=tuple(order[: query.num_free]),
            factors=tuple(as_sparse(f, semiring) for f in factors),
            semiring=semiring,
            domains={v: query.domain(v) for v in query.free},
        )
        stats.output_size = -1
        stats.total_seconds = time.perf_counter() - started
        return InsideOutResult(
            factor=None, factorized=factorized, ordering=tuple(order), stats=stats
        )

    output = output_phase(query, factors, order, backend, policy, stats.join_stats)
    stats.output_size = len(output)
    stats.total_seconds = time.perf_counter() - started
    return InsideOutResult(factor=output, factorized=None, ordering=tuple(order), stats=stats)

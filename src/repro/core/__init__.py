"""The FAQ core: queries, InsideOut/OutsideIn, expression trees and FAQ-width.

This package implements the paper's primary contribution:

* :class:`~repro.core.query.FAQQuery` — the Functional Aggregate Query of
  Section 1.2, together with a brute-force reference evaluator,
* :mod:`~repro.core.outsidein` — the OutsideIn worst-case-optimal
  backtracking join (Section 5.1.1),
* :mod:`~repro.core.insideout` — the InsideOut variable-elimination
  algorithm (Algorithm 1),
* :mod:`~repro.core.variable_elimination` — textbook variable elimination
  (the PGM baseline without indicator projections / multiway joins),
* :mod:`~repro.core.expression_tree` — expression trees and precedence
  posets (Section 6),
* :mod:`~repro.core.evo` — equivalent variable orderings, component-wise
  equivalence, EVO membership (Section 6),
* :mod:`~repro.core.faqw` — FAQ-width of orderings and queries, and the
  approximation algorithm of Section 7,
* :mod:`~repro.core.output` — output representations (Section 8.4).
"""

from repro.core.query import FAQQuery, QueryError, Variable
from repro.core.outsidein import enumerate_join, join_factors, OutsideInStats
from repro.core.insideout import InsideOutResult, InsideOutStats, inside_out
from repro.core.variable_elimination import variable_elimination
from repro.core.expression_tree import ExpressionTree, ExpressionNode, build_expression_tree
from repro.core.evo import (
    cw_equivalent,
    is_equivalent_ordering,
    linear_extensions,
    precedence_poset,
)
from repro.core.faqw import (
    approximate_faqw_ordering,
    faq_width_of_ordering,
    faq_width_of_query,
)
from repro.core.output import FactorizedOutput

__all__ = [
    "FAQQuery",
    "QueryError",
    "Variable",
    "enumerate_join",
    "join_factors",
    "OutsideInStats",
    "InsideOutResult",
    "InsideOutStats",
    "inside_out",
    "variable_elimination",
    "ExpressionTree",
    "ExpressionNode",
    "build_expression_tree",
    "cw_equivalent",
    "is_equivalent_ordering",
    "linear_extensions",
    "precedence_poset",
    "approximate_faqw_ordering",
    "faq_width_of_ordering",
    "faq_width_of_query",
    "FactorizedOutput",
]

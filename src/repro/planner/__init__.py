"""The cost-based query planner (ordering × backend × strategy + caching).

Public surface::

    from repro.planner import plan, execute

    result = plan(query).execute()          # or execute(query)
    print(result.plan.explain())            # why this plan was chosen

``plan()`` scores candidate variable orderings with a FAQ-width/AGM cost
model, picks an execution strategy (InsideOut, textbook variable
elimination, Yannakakis or generic join where the query shape allows) and a
factor backend (sparse listing vs dense ndarray), and caches the winning
plan under a structural query signature so repeated or isomorphic queries
skip planning entirely.
"""

from repro.planner.cache import (
    DEFAULT_PLAN_CACHE,
    CachedPlan,
    DigestPlan,
    PlanCache,
    PlanHealth,
)
from repro.planner.cost import (
    CostModel,
    OrderingEstimate,
    QueryStatistics,
    STRATEGIES,
    STRATEGY_GENERIC_JOIN,
    STRATEGY_INSIDEOUT,
    STRATEGY_VARIABLE_ELIMINATION,
    STRATEGY_YANNAKAKIS,
    StepEstimate,
    observed_step_errors,
)
from repro.planner.plan import Plan, PlanResult
from repro.planner.planner import (
    DEFAULT_COST_MODEL,
    PlanFeedback,
    applicable_strategies,
    candidate_orderings,
    execute,
    plan,
    record_plan_feedback,
)
from repro.planner.signature import (
    factor_digest,
    query_content_key,
    query_signature,
    signature_digest,
)

__all__ = [
    "plan",
    "execute",
    "Plan",
    "PlanResult",
    "PlanCache",
    "CachedPlan",
    "DigestPlan",
    "DEFAULT_PLAN_CACHE",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "QueryStatistics",
    "OrderingEstimate",
    "StepEstimate",
    "STRATEGIES",
    "STRATEGY_INSIDEOUT",
    "STRATEGY_VARIABLE_ELIMINATION",
    "STRATEGY_YANNAKAKIS",
    "STRATEGY_GENERIC_JOIN",
    "PlanHealth",
    "PlanFeedback",
    "record_plan_feedback",
    "observed_step_errors",
    "applicable_strategies",
    "candidate_orderings",
    "query_signature",
    "signature_digest",
    "factor_digest",
    "query_content_key",
]

"""The plan cache: repeated (or isomorphic) queries skip planning.

Plans are stored under the structural signature of
:func:`repro.planner.signature.query_signature` with the chosen ordering
translated into canonical variable indices, so a cached plan transfers to
any query with the same signature — the same query re-issued, the same
query over drifted data (factor sizes only enter the signature through log
buckets), or an isomorphic rename.  The cache is a small LRU keyed also by
the caller's forced strategy/backend so overridden plans do not shadow the
planner's free choice.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class CachedPlan:
    """The transferable part of a plan (ordering stored by canonical index)."""

    strategy: str
    backend: str
    ordering_indices: Tuple[int, ...]
    estimated_cost: float
    faq_width: float


class PlanCache:
    """A bounded LRU of :class:`CachedPlan` entries keyed by query signature."""

    def __init__(self, maxsize: int = 1024) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple, CachedPlan]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> Optional[CachedPlan]:
        """The cached plan for ``key``, updating LRU order and hit counters."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: tuple, plan: CachedPlan) -> None:
        """Insert (or refresh) a plan, evicting the least recently used."""
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0


DEFAULT_PLAN_CACHE = PlanCache()
"""The process-wide cache used when callers do not supply their own."""

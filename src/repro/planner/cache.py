"""The plan cache: repeated (or isomorphic) queries skip planning.

Plans are stored under the structural signature of
:func:`repro.planner.signature.query_signature` with the chosen ordering
translated into canonical variable indices, so a cached plan transfers to
any query with the same signature — the same query re-issued, the same
query over drifted data (factor sizes only enter the signature through log
buckets), or an isomorphic rename.  The cache is a bounded LRU (backed by
the thread-safe :class:`repro.caching.LruCache`, shared with the
process-wide ``ρ*`` memo) keyed also by the caller's forced
strategy/backend so overridden plans do not shadow the planner's free
choice.

Two capabilities beyond the plain LRU:

* **drift-tolerant lookup** — when the exact signature misses, the cache
  consults a secondary *shape* index (the signature with the per-factor
  size buckets zeroed out).  A stored plan whose buckets differ from the
  query's by at most one step transfers (data drifted mildly, the plan is
  still good); past that tolerance nothing transfers — the ROADMAP's
  "invalidate when factor-size buckets drift more than one step" rule.
  The out-of-tolerance entry itself is left in place: it is still exactly
  keyed for its own signature (which may have live traffic — alternating
  same-shape workloads must not thrash each other out), and retires by
  ordinary LRU aging or a signature-version bump.
* **persistence** — :meth:`PlanCache.save` / :meth:`PlanCache.load` move
  the entries to/from disk (tagged with
  :data:`repro.planner.signature.SIGNATURE_VERSION`, so a signature-format
  change silently discards stale files), letting repeated traffic hit warm
  plans across processes.  :func:`save_planner_caches` /
  :func:`load_planner_caches` bundle the plan cache with the ``ρ*`` memo
  of :mod:`repro.hypergraph.covers`.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.caching import LruCache
from repro.planner.signature import SIGNATURE_VERSION, bucket_drift, signature_shape

_PLAN_CACHE_KIND = "repro-plan-cache"
_PLAN_CACHE_FILE = "plan_cache.pkl"
_RHO_STAR_FILE = "rho_star.pkl"


@dataclass(frozen=True)
class CachedPlan:
    """The transferable part of a plan (ordering stored by canonical index)."""

    strategy: str
    backend: str
    ordering_indices: Tuple[int, ...]
    estimated_cost: float
    faq_width: float
    buckets: Tuple[int, ...] = field(default=())
    # Estimated result sizes per elimination step (NaN for product steps),
    # in elimination order, optionally followed by the output-phase
    # estimate.  Compared against observed sizes by record_feedback.
    step_sizes: Tuple[float, ...] = field(default=())


@dataclass(frozen=True)
class DigestPlan:
    """A plan addressed by content digest (ordering stored by variable name).

    Digest-addressed entries answer *value-identical* repeats (the serving
    tier's content-hash keys certify value equality), so — unlike
    :class:`CachedPlan` — no canonical-index translation is needed and the
    lookup skips the WL signature computation entirely.
    """

    strategy: str
    backend: str
    ordering: Tuple[str, ...]
    estimated_cost: float
    faq_width: float
    step_sizes: Tuple[float, ...] = field(default=())


@dataclass
class PlanHealth:
    """Accumulated observed-vs-estimated error of one cached plan."""

    ewma_error: float = 0.0   # EWMA of the max |log(observed/estimated)| per run
    observations: int = 0


# A cached plan is invalidated (forcing a fresh search on the next lookup)
# once the EWMA of its observed error exceeds the replan threshold — or the
# tighter drift threshold when the plan only transferred across a data
# drift in the first place (drift-transferred plans demote first).
REPLAN_ERROR_THRESHOLD = 1.5
DRIFT_REPLAN_ERROR_THRESHOLD = 0.75
_HEALTH_ALPHA = 0.5


def _shape_key(key: tuple) -> Optional[Tuple[tuple, Tuple[int, ...]]]:
    """Split a plan-cache key into its shape key and buckets.

    Keys are ``(signature, mode, strategy, backend)``; the shape key zeroes
    the signature's size buckets and keeps the rest.  Returns ``None`` for
    keys that do not carry a signature (defensive).
    """
    signature, *rest = key
    try:
        shape, buckets = signature_shape(signature)
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return None
    return (shape, *rest), buckets


class PlanCache:
    """A bounded LRU of :class:`CachedPlan` entries keyed by query signature."""

    def __init__(self, maxsize: int = 1024, cost_model=None) -> None:
        self.maxsize = maxsize
        # The cost model this cache is *paired* with for the feedback loop:
        # when the planner is handed this cache (and no explicit model), it
        # scores with the paired model, so calibration observations recorded
        # against the cache's plans shape exactly the searches that refill
        # it.  None pairs the cache with the process-wide default model.
        self.cost_model = cost_model
        self._entries = LruCache(maxsize=maxsize)
        # shape key -> exact key of the most recently stored entry with that
        # shape.  Pointers may go stale after eviction; resolved lazily.
        self._shapes: Dict[tuple, tuple] = {}
        # content digest (hex string) -> DigestPlan; a separate LRU so the
        # digest-addressed path of the serving tier cannot evict (or be
        # evicted by) signature-keyed traffic.
        self._digests = LruCache(maxsize=maxsize)
        # plan key (tuple or digest string) -> PlanHealth, written by
        # record_feedback.  Dropped on invalidation; bounded opportunistically
        # (stale keys of evicted entries age out when the map overgrows).
        self._health: Dict[object, PlanHealth] = {}
        self.replans = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return self._entries.hits + self._digests.hits

    @property
    def misses(self) -> int:
        return self._entries.misses + self._digests.misses

    def lookup(self, key: tuple) -> Optional[CachedPlan]:
        """The cached plan for ``key``, updating LRU order and hit counters."""
        return self._entries.get(key)

    def lookup_drifted(self, key: tuple, max_drift: int = 1) -> Optional[CachedPlan]:
        """Shape-indexed fallback for an exact miss (see the module docstring).

        Does not touch the hit/miss counters — the caller already recorded
        the exact-lookup miss.  Unlike an exact signature hit, a drifted
        transfer is *not* certified by a canonical labelling (the bucket
        change can perturb colour refinement), so the caller must validate
        the transferred ordering before trusting it — and re-store the
        validated plan under the new exact key itself.
        """
        split = _shape_key(key)
        if split is None:
            return None
        shape, buckets = split
        with self._lock:
            stored_key = self._shapes.get(shape)
        if stored_key is None or stored_key == key:
            return None
        entry = self._entries.peek(stored_key)
        if entry is None:  # stale pointer (evicted entry)
            with self._lock:
                if self._shapes.get(shape) == stored_key:
                    del self._shapes[shape]
            return None
        drift = bucket_drift(entry.buckets, buckets)
        if drift is None or drift > max_drift:
            # The data drifted past the tolerance: the stored plan must not
            # transfer to this query.  The entry itself stays — it is still
            # exactly keyed for its own signature, which may have live
            # traffic of its own (alternating same-shape workloads would
            # otherwise thrash each other out of the cache); if that
            # traffic never returns, ordinary LRU aging retires it.
            return None
        return entry

    def store(self, key: tuple, plan: CachedPlan) -> None:
        """Insert (or refresh) a plan, evicting the least recently used."""
        split = _shape_key(key)
        if split is not None and not plan.buckets:
            plan = replace(plan, buckets=split[1])
        evicted = self._entries.put(key, plan)
        with self._lock:
            if split is not None:
                self._shapes[split[0]] = key
            for evicted_key, _ in evicted:
                evicted_split = _shape_key(evicted_key)
                if evicted_split is not None and self._shapes.get(evicted_split[0]) == evicted_key:
                    del self._shapes[evicted_split[0]]

    # ------------------------------------------------------------------ #
    # digest-addressed lookup (the serving tier's cross-process keys)
    # ------------------------------------------------------------------ #
    def lookup_digest(self, digest: str) -> Optional[DigestPlan]:
        """The plan stored under a stable content digest, if any.

        Content digests (:func:`repro.planner.signature.query_content_key`)
        certify value equality, so a hit transfers verbatim — strategy,
        backend and the ordering by variable name — without recomputing the
        query signature.  Counted in the ordinary hit/miss counters.
        """
        return self._digests.get(digest)

    def store_digest(self, digest: str, plan: DigestPlan) -> None:
        """Insert (or refresh) a digest-addressed plan."""
        self._digests.put(digest, plan)

    # ------------------------------------------------------------------ #
    # the feedback loop — observed error accumulation and invalidation
    # ------------------------------------------------------------------ #
    def health(self, key) -> Optional[PlanHealth]:
        """The accumulated error state of the plan stored under ``key``."""
        with self._lock:
            return self._health.get(key)

    def record_feedback(self, key, errors, *, drifted: bool = False) -> bool:
        """Fold one run's observed step errors into the plan's health.

        ``key`` is either the exact tuple key of a signature-cached plan or
        the hex string of a digest-addressed one; ``errors`` the signed
        per-step log errors of
        :func:`repro.planner.cost.observed_step_errors`.  The run's *worst*
        absolute error updates an EWMA; once the EWMA exceeds
        :data:`REPLAN_ERROR_THRESHOLD` (:data:`DRIFT_REPLAN_ERROR_THRESHOLD`
        for plans that only transferred across a data drift) the entry is
        invalidated — the next lookup misses and the planner re-searches
        with freshly calibrated estimates.  Returns ``True`` when the plan
        was invalidated.
        """
        if not errors:
            return False
        signal = max(abs(e) for e in errors)
        threshold = DRIFT_REPLAN_ERROR_THRESHOLD if drifted else REPLAN_ERROR_THRESHOLD
        with self._lock:
            if len(self._health) > 4 * self.maxsize:
                self._health.clear()  # stale keys of long-evicted entries
            health = self._health.setdefault(key, PlanHealth())
            if health.observations == 0:
                health.ewma_error = signal
            else:
                health.ewma_error = (
                    (1.0 - _HEALTH_ALPHA) * health.ewma_error + _HEALTH_ALPHA * signal
                )
            health.observations += 1
            replan = health.ewma_error > threshold
            if replan:
                del self._health[key]
                self.replans += 1
        if replan:
            self.invalidate(key)
        return replan

    def invalidate(self, key) -> bool:
        """Drop the plan stored under ``key`` (tuple or digest string).

        Returns ``True`` when an entry was actually removed.  The shape
        pointer of a signature-keyed entry is cleaned up so a drifted
        lookup cannot resurrect the invalidated plan.
        """
        with self._lock:
            self._health.pop(key, None)
        if isinstance(key, str):
            return self._digests.pop(key, None) is not None
        removed = self._entries.pop(key, None) is not None
        split = _shape_key(key)
        if split is not None:
            with self._lock:
                if self._shapes.get(split[0]) == key:
                    del self._shapes[split[0]]
        return removed

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._entries.clear()
        self._digests.clear()
        with self._lock:
            self._shapes.clear()
            self._health.clear()
            self.replans = 0

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path) -> int:
        """Persist the entries to ``path``; returns the number written."""
        return self._entries.save(path, kind=_PLAN_CACHE_KIND, version=SIGNATURE_VERSION)

    def load(self, path) -> int:
        """Merge entries persisted by :meth:`save`; returns the number merged.

        Files written under a different :data:`SIGNATURE_VERSION` are
        ignored wholesale — persisted signatures from an older format must
        never match a new-format lookup.
        """
        merged = self._entries.load(path, kind=_PLAN_CACHE_KIND, version=SIGNATURE_VERSION)
        if merged:
            self._reindex_shapes()
        return merged

    def dump_section(self) -> dict:
        """Snapshot the entries as a shared-memory cache-store section.

        The serving tier's fleet parent publishes this through
        :class:`repro.exec.shm.SharedCacheStore` so cold replicas start
        with the fleet-wide warm plan cache instead of re-planning.
        """
        return self._entries.dump_entries(
            kind=_PLAN_CACHE_KIND, version=SIGNATURE_VERSION
        )

    def adopt_section(self, payload) -> int:
        """Merge a :meth:`dump_section` payload (best-effort)."""
        merged = self._entries.adopt_entries(
            payload, kind=_PLAN_CACHE_KIND, version=SIGNATURE_VERSION
        )
        if merged:
            self._reindex_shapes()
        return merged

    def _reindex_shapes(self) -> None:
        with self._lock:
            for key, _ in self._entries.items():
                split = _shape_key(key)
                if split is not None:
                    self._shapes[split[0]] = key


DEFAULT_PLAN_CACHE = PlanCache()
"""The process-wide cache used when callers do not supply their own."""


def save_planner_caches(directory, plan_cache: Optional[PlanCache] = None) -> Dict[str, int]:
    """Persist the plan cache *and* the process-wide ``ρ*`` memo to a directory.

    Returns ``{"plans": n, "rho_star": m}`` entry counts.  Load them back
    with :func:`load_planner_caches` at process start to serve repeated
    traffic warm across processes (the ROADMAP's "plan cache persistence"
    item).
    """
    from repro.hypergraph.covers import save_rho_star_cache

    os.makedirs(directory, exist_ok=True)
    cache = plan_cache if plan_cache is not None else DEFAULT_PLAN_CACHE
    return {
        "plans": cache.save(os.path.join(directory, _PLAN_CACHE_FILE)),
        "rho_star": save_rho_star_cache(os.path.join(directory, _RHO_STAR_FILE)),
    }


def load_planner_caches(directory, plan_cache: Optional[PlanCache] = None) -> Dict[str, int]:
    """Warm the plan cache and the ``ρ*`` memo from :func:`save_planner_caches`."""
    from repro.hypergraph.covers import load_rho_star_cache

    cache = plan_cache if plan_cache is not None else DEFAULT_PLAN_CACHE
    return {
        "plans": cache.load(os.path.join(directory, _PLAN_CACHE_FILE)),
        "rho_star": load_rho_star_cache(os.path.join(directory, _RHO_STAR_FILE)),
    }
